"""Fleet-scope faults: host crashes, eviction, re-placement."""

import pytest

from repro.analysis.chaos import (
    ChaosConfig,
    fault_metric_snapshot,
    run_chaos,
    run_cluster_chaos,
)
from repro.cluster import Cluster, ClusterConfig, Scheduler, TenantRequest
from repro.cluster.loadgen import ScenarioConfig
from repro.errors import AdmissionError, HostCrashedError
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.virt.manager import RankState


class TestHostCrash:
    def test_crash_fails_every_rank_and_stops_fitting(self, cluster):
        host = cluster.hosts[0]
        host.crash()
        assert not host.alive
        assert not host.fits(1)
        assert all(state is RankState.FAIL
                   for state in host.manager.states().values())

    def test_crash_is_idempotent(self, cluster):
        host = cluster.hosts[0]
        host.crash()
        failures = host.manager.stats.failures
        host.crash()
        assert host.manager.stats.failures == failures

    def test_migration_to_crashed_host_refused(self, cluster, scheduler):
        scheduler.submit(TenantRequest(tenant="t0", nr_ranks=1))
        placement = scheduler.try_place_next()
        target = next(h for h in cluster.hosts if h is not placement.host)
        target.crash()
        with pytest.raises(HostCrashedError, match="crashed host"):
            placement.move_to(target)


class TestEviction:
    def test_evicted_tenants_requeue_at_the_head(self, cluster, scheduler):
        for i in range(2):
            scheduler.submit(TenantRequest(tenant=f"t{i}", nr_ranks=1))
        first = scheduler.try_place_next()
        second = scheduler.try_place_next()
        assert first is not None and second is not None
        first.acquire()
        second.acquire()
        victim_host = first.host
        victims = scheduler.active_on(victim_host)
        victim_host.crash()
        evicted = scheduler.evict_host(victim_host)
        assert evicted == len(victims)
        assert len(scheduler.queue) == evicted
        # Head of queue, ahead of any later arrivals.
        assert scheduler.queue[0] is victims[0].request
        # Survivors keep running.
        for placement in scheduler.active:
            assert placement.host.alive

    def test_replacement_lands_on_a_surviving_host(self, cluster, scheduler):
        scheduler.submit(TenantRequest(tenant="t0", nr_ranks=1))
        placement = scheduler.try_place_next()
        placement.acquire()
        dead = placement.host
        dead.crash()
        scheduler.evict_host(dead)
        replacement = scheduler.try_place_next()
        assert replacement is not None
        assert replacement.host is not dead
        assert replacement.host.alive

    def test_admission_error_raised_on_strict_submit(self, scheduler):
        with pytest.raises(AdmissionError, match="rejected_oversize"):
            scheduler.submit_or_raise(
                TenantRequest(tenant="t0", nr_ranks=99))


class TestClusterChaosScenario:
    SCENARIO = ScenarioConfig(
        cluster=ClusterConfig(nr_hosts=3, ranks_per_host=2,
                              dpus_per_rank=4),
        nr_requests=12, run_apps=False, seed=1)

    def _plan(self):
        plan = FaultPlan(seed=1)
        plan.add(0.5, FaultKind.HOST_CRASH, "host:host0")
        return plan

    def test_host_crash_replaces_all_tenants(self):
        result = run_cluster_chaos(self.SCENARIO, self._plan())
        assert result.crashed_hosts == ["host0"]
        assert result.sessions_lost == 0
        assert result.completed == result.submitted
        assert "host_crash host:host0" in result.timeline

    def test_same_seed_same_fleet_timeline(self):
        a = run_cluster_chaos(self.SCENARIO, self._plan())
        b = run_cluster_chaos(self.SCENARIO, self._plan())
        assert a.timeline == b.timeline
        assert a.timeline_digest == b.timeline_digest
        assert a.metric_snapshot == b.metric_snapshot

    def test_wildcard_crash_picks_a_live_host(self):
        plan = FaultPlan(seed=0)
        plan.add(0.5, FaultKind.HOST_CRASH, "host:*")
        plan.add(0.6, FaultKind.HOST_CRASH, "host:*")
        result = run_cluster_chaos(self.SCENARIO, plan)
        assert len(result.crashed_hosts) == 2
        assert len(set(result.crashed_hosts)) == 2
        assert result.sessions_lost == 0


class TestSingleHostChaosDriver:
    def test_run_chaos_validates_config(self):
        with pytest.raises(Exception, match="positive"):
            run_chaos(ChaosConfig(nr_ranks=0))
        with pytest.raises(Exception, match="fault kinds"):
            run_chaos(ChaosConfig(kinds=("nope",)))

    def test_snapshot_merges_registries(self, cluster):
        injector = FaultInjector(FaultPlan(seed=0), cluster.clock,
                                 registry=cluster.metrics)
        injector.arm_cluster(cluster)
        plan_event = injector.plan.add(0.0, FaultKind.HOST_CRASH,
                                       "host:host0")
        injector.pending.append(plan_event)
        injector.fire_host_faults()
        merged = fault_metric_snapshot(
            [cluster.metrics] + [h.metrics for h in cluster.hosts])
        assert merged["repro_fault_injected_total{kind=host_crash}"] == 1.0
