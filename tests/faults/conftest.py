"""Shared fixtures: small armed stacks for fault-injection tests."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig, Scheduler
from repro.config import small_machine
from repro.core import VPim
from repro.faults import FaultInjector, FaultPlan


@pytest.fixture
def cluster() -> Cluster:
    """A 3-host fleet, 2 ranks x 4 DPUs per host."""
    return Cluster(ClusterConfig(nr_hosts=3, ranks_per_host=2,
                                 dpus_per_rank=4))


@pytest.fixture
def scheduler(cluster) -> Scheduler:
    return Scheduler(cluster, policy="round_robin", queue_limit=4)


@pytest.fixture
def chaos_vpim() -> VPim:
    """A 2-rank stack; rank 1 is the replacement pool."""
    return VPim(small_machine(nr_ranks=2, dpus_per_rank=8))


def arm_stack(chaos_vpim, opts=None):
    """Arm an empty-plan injector on machine + manager + one fresh VM."""
    plan = FaultPlan(seed=0)
    injector = FaultInjector(plan, chaos_vpim.clock,
                             registry=chaos_vpim.machine.metrics)
    injector.arm_machine(chaos_vpim.machine, chaos_vpim.manager)
    session = chaos_vpim.vm_session(nr_vupmem=1, opts=opts)
    injector.arm_vm(session.vm)
    return chaos_vpim, injector, session


@pytest.fixture
def armed(chaos_vpim):
    """An empty-plan injector armed on machine + manager + one VM.

    Tests schedule events through ``injector.plan.add`` *before* running
    operations; an empty plan never fires.
    """
    return arm_stack(chaos_vpim)


def schedule(injector, at, kind, target, **params):
    """Add an event to an armed injector's pending queue."""
    event = injector.plan.add(at, kind, target, **params)
    injector.pending.append(event)
    return event
