"""FaultPlan: typed events, target validation, seeded generation."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import FAULT_SCOPES, FaultEvent, FaultKind, FaultPlan


class TestFaultEvent:
    def test_target_prefix_must_match_scope(self):
        with pytest.raises(FaultInjectionError, match="rank"):
            FaultEvent(at=1.0, kind=FaultKind.RANK_OFFLINE,
                       target="host:host0")
        with pytest.raises(FaultInjectionError):
            FaultEvent(at=1.0, kind=FaultKind.HOST_CRASH, target="host:")

    def test_negative_time_rejected(self):
        with pytest.raises(FaultInjectionError, match="negative"):
            FaultEvent(at=-0.5, kind=FaultKind.RANK_OFFLINE, target="rank:0")

    def test_every_kind_has_a_scope(self):
        assert set(FAULT_SCOPES) == set(FaultKind)

    def test_wildcard_and_exact_matching(self):
        event = FaultEvent(at=0.0, kind=FaultKind.TRANSPORT_STALL,
                           target="transport:*")
        assert event.matches("transport", "vm-0.vupmem0")
        assert not event.matches("rank", "0")
        exact = FaultEvent(at=0.0, kind=FaultKind.RANK_OFFLINE,
                           target="rank:1")
        assert exact.matches("rank", "1")
        assert not exact.matches("rank", "0")

    def test_params_accessible_and_in_describe(self):
        plan = FaultPlan()
        event = plan.add(2.0, FaultKind.RANK_DEGRADED, "rank:0", factor=4.0)
        assert event.param("factor") == 4.0
        assert event.param("missing", 7) == 7
        assert "factor=4.0" in event.describe()
        assert event.describe().startswith("2.000000000 rank_degraded")


class TestFaultPlan:
    def test_events_kept_sorted_by_time(self):
        plan = FaultPlan()
        plan.add(3.0, FaultKind.RANK_OFFLINE, "rank:0")
        plan.add(1.0, FaultKind.BACKEND_HANG, "backend:*")
        assert [e.at for e in plan] == [1.0, 3.0]
        assert len(plan) == 2

    def test_generate_is_a_pure_function_of_the_seed(self):
        a = FaultPlan.generate(seed=5, horizon_s=10.0, rate_per_s=2.0)
        b = FaultPlan.generate(seed=5, horizon_s=10.0, rate_per_s=2.0)
        assert a.describe() == b.describe()
        c = FaultPlan.generate(seed=6, horizon_s=10.0, rate_per_s=2.0)
        assert a.describe() != c.describe()

    def test_generate_respects_per_kind_limits(self):
        plan = FaultPlan.generate(
            seed=0, horizon_s=50.0, rate_per_s=4.0,
            kinds=(FaultKind.RANK_OFFLINE,),
            limits={FaultKind.RANK_OFFLINE: 1})
        assert len(plan) == 1

    def test_generate_rejects_bad_horizon(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.generate(seed=0, horizon_s=0.0, rate_per_s=1.0)
        with pytest.raises(FaultInjectionError):
            FaultPlan.generate(seed=0, horizon_s=1.0, rate_per_s=-1.0)
