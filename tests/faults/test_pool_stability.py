"""BufferPool stability under fault drills.

The zero-copy data plane loans pooled scratch buffers across the
serialize/transport/scatter path.  Every abort point — transport
corruption, DPU kernel faults, a rank dying mid-session — must return
the loans: ``pool.outstanding == 0`` between operations is the
invariant, and a pool that keeps reusing buffers afterwards proves no
buffer was leaked *or* double-released.
"""

from __future__ import annotations

import pytest

from repro.apps.prim.va import VectorAdd
from repro.errors import DpuFaultError, TransportCorruptionError
from repro.faults import FaultKind, run_with_recovery

from tests.faults.conftest import arm_stack, schedule

APP = dict(nr_dpus=8, n_elements=1 << 12)


def backend_pools(session):
    return [dev.backend.pool for dev in session.vm.devices]


def assert_quiescent(session):
    for pool in backend_pools(session):
        assert pool.outstanding == 0


class TestPoolQuiescence:
    def test_clean_session_returns_every_loan(self, armed):
        _, _, session = armed
        report = session.run(VectorAdd(**APP))
        assert report.verified
        assert_quiescent(session)

    def test_transport_corruption_aborts_release_loans(self, armed):
        """Exhausted retries abort mid-transfer — the hot abort path."""
        vpim, injector, session = armed
        frontend = session.vm.devices[0].frontend
        for _ in range(frontend.max_transport_retries + 1):
            schedule(injector, 0.0, FaultKind.TRANSPORT_CORRUPTION,
                     "transport:*")
        with pytest.raises(TransportCorruptionError):
            session.run(VectorAdd(**APP))
        assert_quiescent(session)

    def test_dpu_fault_mid_session_releases_loans(self, armed):
        vpim, injector, session = armed
        schedule(injector, 0.0, FaultKind.DPU_KERNEL_FAULT, "rank:*")
        with pytest.raises(DpuFaultError):
            session.run(VectorAdd(**APP))
        assert_quiescent(session)

    def test_rank_offline_recovery_keeps_pool_balanced(self, armed):
        """The tentpole drill: rank dies mid-run, recovery reruns on the
        replacement.  Both the aborted and the successful attempt must
        balance their loans."""
        vpim, injector, session = armed
        schedule(injector, 1e-4, FaultKind.RANK_OFFLINE, "rank:*")
        recovery = run_with_recovery(session, VectorAdd(**APP))
        assert recovery.verified and recovery.recovered
        assert_quiescent(session)

    def test_pool_still_serves_after_repeated_drills(self, chaos_vpim):
        """No slow leak and no poisoned free list: after a storm of
        faulted sessions the pool still reuses buffers and every later
        clean run verifies.

        Plans are pinned off: a compiled plan replays without pooled
        gathers at all, and this drill targets the pooled plumbing."""
        from repro.virt.opts import OptimizationConfig
        vpim, injector, session = arm_stack(
            chaos_vpim, OptimizationConfig(plans=False))
        for _ in range(3):
            schedule(injector, 0.0, FaultKind.DPU_KERNEL_FAULT, "rank:*")
            with pytest.raises(DpuFaultError):
                session.run(VectorAdd(**APP))
            assert_quiescent(session)
        pools = backend_pools(session)
        reuse0 = sum(p.reuse_count for p in pools)
        report = session.run(VectorAdd(**APP))
        assert report.verified
        assert_quiescent(session)
        # The clean run was served from recycled scratch buffers.
        assert sum(p.reuse_count for p in pools) > reuse0
