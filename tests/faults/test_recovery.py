"""Recovery paths: session reruns, quarantine/repair, failover, retries."""

import pytest

from repro.apps.prim.va import VectorAdd
from repro.errors import (
    DpuFaultError,
    ManagerError,
    RankOfflineError,
    TransportCorruptionError,
)
from repro.faults import (
    CheckpointStore,
    FaultKind,
    RecoveryReport,
    failover_device,
    fault_kind_of,
    run_with_recovery,
)
from repro.hardware.rank import RankHealth
from repro.virt.manager import RankState

from tests.faults.conftest import schedule

APP = dict(nr_dpus=8, n_elements=1 << 12)


class TestRunWithRecovery:
    def test_rank_offline_mid_run_completes_on_replacement(self, armed):
        """The tentpole acceptance scenario: a rank dies mid-session and
        the rerun finishes on the surviving rank."""
        vpim, injector, session = armed
        schedule(injector, 1e-4, FaultKind.RANK_OFFLINE, "rank:*")
        recovery = run_with_recovery(session, VectorAdd(**APP))
        assert recovery.verified
        assert recovery.recovered
        assert recovery.attempts == 2
        assert recovery.faults == ["rank_offline"]
        dead = vpim.manager.failed_ranks()
        assert len(dead) == 1
        # The rerun's allocation skipped the FAIL rank.
        states = vpim.manager.states()
        survivors = [idx for idx in states if idx not in dead]
        assert any(states[idx] is not RankState.FAIL for idx in survivors)
        metrics = vpim.machine.metrics
        assert metrics.value("repro_fault_recovered_total",
                             kind="rank_offline", action="rerun") == 1
        assert metrics.get("repro_fault_recovery_seconds").value(
            kind="rank_offline") == 1

    def test_budget_exhaustion_raises_and_counts_the_loss(self, armed):
        vpim, injector, session = armed
        for _ in range(3):
            schedule(injector, 0.0, FaultKind.DPU_KERNEL_FAULT, "rank:*")
        with pytest.raises(DpuFaultError):
            run_with_recovery(session, VectorAdd(**APP), max_attempts=2)
        assert vpim.machine.metrics.value(
            "repro_fault_sessions_lost_total") == 1

    def test_unverified_report_is_retried_as_corruption(self, armed):
        """Silent bit flips surface only through verify; the rerun path
        must treat a failed verify like a fault."""
        vpim, injector, session = armed

        class Flaky:
            """First run returns garbage, second runs the real app."""

            def __init__(self):
                self.runs = 0
                self.app = VectorAdd(**APP)

            def run(self, app):
                self.runs += 1
                report = session.run(app)
                if self.runs == 1:
                    report.verified = False
                return report

            @property
            def transport(self):
                return session.transport

        flaky = Flaky()
        recovery = run_with_recovery(flaky, flaky.app)
        assert flaky.runs == 2
        assert recovery.verified
        assert recovery.faults == ["dpu_mram_bitflip"]
        assert vpim.machine.metrics.value(
            "repro_fault_detected_total",
            kind="dpu_mram_bitflip", layer="session") == 1

    def test_fault_kind_mapping(self):
        assert fault_kind_of(RankOfflineError("x")) == "rank_offline"
        assert fault_kind_of(DpuFaultError("x")) == "dpu_kernel_fault"
        assert (fault_kind_of(TransportCorruptionError("x"))
                == "transport_corruption")
        assert fault_kind_of(ValueError("x")) == "unknown"

    def test_report_dataclass_flags(self):
        class FakeReport:
            verified = True

        report = RecoveryReport(report=FakeReport(), attempts=1)
        assert report.verified and not report.recovered


class TestFrontendRetryExhaustion:
    def test_exhausted_transport_retries_invalidate_the_cache(self, armed):
        """Satellite: a failed flush/roundtrip must not leave stale
        prefetched lines behind — the next read re-fetches."""
        vpim, injector, session = armed
        frontend = session.vm.devices[0].frontend
        # One more corruption than the frontend's retry budget.
        for _ in range(frontend.max_transport_retries + 1):
            schedule(injector, 0.0, FaultKind.TRANSPORT_CORRUPTION,
                     "transport:*")
        with pytest.raises(TransportCorruptionError):
            session.run(VectorAdd(**APP))
        assert frontend.cache.nr_lines == 0
        # The whole-session rerun path still clears the incident.
        recovery = run_with_recovery(session, VectorAdd(**APP))
        assert recovery.verified

    def test_within_budget_retries_are_invisible(self, armed):
        vpim, injector, session = armed
        for _ in range(2):
            schedule(injector, 0.0, FaultKind.TRANSPORT_CORRUPTION,
                     "transport:*")
        report = session.run(VectorAdd(**APP))
        assert report.verified
        assert vpim.machine.metrics.value(
            "repro_fault_retries_total", layer="frontend") == 2


class TestManagerQuarantine:
    def test_mark_failed_then_repair_roundtrip(self, chaos_vpim):
        manager = chaos_vpim.manager
        manager.mark_failed(0)
        assert manager.failed_ranks() == [0]
        assert manager.stats.failures == 1
        chaos_vpim.machine.ranks[0].health = RankHealth.OFFLINE
        duration = manager.repair(0)
        assert duration > 0
        assert manager.failed_ranks() == []
        assert chaos_vpim.machine.ranks[0].health is RankHealth.OK
        assert manager.stats.repairs == 1

    def test_repair_refuses_healthy_ranks(self, chaos_vpim):
        with pytest.raises(ManagerError, match="NANA|NAAV|ALLO"):
            chaos_vpim.manager.repair(0)

    def test_blacklist_after_repeated_failures(self, chaos_vpim):
        manager = chaos_vpim.manager
        for _ in range(manager.blacklist_threshold):
            manager.mark_failed(0)
            if not manager.is_blacklisted(0):
                manager.repair(0)
        assert manager.is_blacklisted(0)
        with pytest.raises(ManagerError, match="blacklist"):
            manager.repair(0)

    def test_failed_ranks_never_allocated(self, chaos_vpim):
        manager = chaos_vpim.manager
        manager.mark_failed(0)
        allocated = manager.allocate("tenant-a")
        assert allocated != 0


class TestCheckpointFailover:
    def _linked_device(self, chaos_vpim):
        session = chaos_vpim.vm_session(nr_vupmem=1)
        device = session.vm.devices[0]
        session.vm.acquire_rank(device)
        return session, device

    def test_failover_without_checkpoint_relinks(self, chaos_vpim):
        session, device = self._linked_device(chaos_vpim)
        old = device.backend.mapping.rank.index
        replacement, action = failover_device(device, chaos_vpim.manager)
        assert action == "relink"
        assert replacement != old
        assert device.backend.mapping.rank.index == replacement
        assert chaos_vpim.manager.failed_ranks() == [old]

    def test_failover_with_checkpoint_restores_mram(self, chaos_vpim):
        session, device = self._linked_device(chaos_vpim)
        rank = device.backend.mapping.rank
        rank.dpus[0].mram.write(0, bytes([0xAB, 0xCD]))
        store = CheckpointStore(chaos_vpim.clock)
        store.save(device)
        replacement, action = failover_device(
            device, chaos_vpim.manager, store=store)
        assert action == "restore"
        new_rank = device.backend.mapping.rank
        assert new_rank.index == replacement
        assert bytes(new_rank.dpus[0].mram.read(0, 2)) == b"\xab\xcd"

    def test_failover_requires_a_linked_device(self, chaos_vpim):
        session = chaos_vpim.vm_session(nr_vupmem=1)
        device = session.vm.devices[0]
        with pytest.raises(ManagerError, match="not linked"):
            failover_device(device, chaos_vpim.manager)

    def test_checkpoint_store_requires_linkage(self, chaos_vpim):
        session = chaos_vpim.vm_session(nr_vupmem=1)
        store = CheckpointStore(chaos_vpim.clock)
        with pytest.raises(ManagerError, match="not linked"):
            store.save(session.vm.devices[0])
