"""FaultInjector: events fire at the right seam, with the right effect."""

import pytest

from repro.apps.prim.va import VectorAdd
from repro.config import small_machine
from repro.core import VPim
from repro.errors import DpuFaultError, RankOfflineError
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.hardware.rank import CiCommand, RankHealth
from repro.virt.manager import RankState

from tests.faults.conftest import schedule

APP = dict(nr_dpus=8, n_elements=1 << 12)


class TestRankSeam:
    def test_mram_bitflip_is_silent_corruption(self, armed):
        vpim, injector, _ = armed
        rank = vpim.machine.ranks[0]
        rank.dpus[0].mram.write(0, bytes([0x00]))
        schedule(injector, 0.0, FaultKind.DPU_MRAM_BITFLIP, "rank:0",
                 dpu=0, offset=0, bit=3)
        # Any guarded rank operation fires the due event — no exception.
        rank.ci.execute(CiCommand.STATUS)
        assert rank.dpus[0].mram.read(0, 1)[0] == 0x08
        assert injector.fired[0].kind is FaultKind.DPU_MRAM_BITFLIP
        assert ("bit", 3) in injector.fired[0].params

    def test_kernel_fault_waits_for_a_launch(self, armed):
        vpim, injector, session = armed
        schedule(injector, 0.0, FaultKind.DPU_KERNEL_FAULT, "rank:*")
        # Non-launch operations leave the event pending.
        vpim.machine.ranks[0].ci.execute(CiCommand.STATUS)
        assert injector.pending
        with pytest.raises(DpuFaultError, match="injected kernel fault"):
            session.run(VectorAdd(**APP))
        assert not injector.pending
        assert vpim.machine.metrics.value(
            "repro_fault_detected_total",
            kind="dpu_kernel_fault", layer="hardware") == 1

    def test_rank_offline_marks_manager_fail(self, armed):
        vpim, injector, session = armed
        schedule(injector, 0.0, FaultKind.RANK_OFFLINE, "rank:*")
        with pytest.raises(RankOfflineError, match="offline"):
            session.run(VectorAdd(**APP))
        failed = vpim.manager.failed_ranks()
        assert len(failed) == 1
        idx = failed[0]
        assert vpim.machine.ranks[idx].health is RankHealth.OFFLINE
        assert vpim.manager.rank_table[idx].state is RankState.FAIL
        assert injector.fired[0].target == f"rank:{idx}"

    def test_rank_degraded_slows_guarded_operations(self, armed):
        vpim, injector, _ = armed
        rank = vpim.machine.ranks[0]
        baseline = rank.ci.execute(CiCommand.STATUS)
        schedule(injector, 0.0, FaultKind.RANK_DEGRADED, "rank:0",
                 factor=8.0)
        degraded = rank.ci.execute(CiCommand.STATUS)
        assert rank.health is RankHealth.DEGRADED
        assert rank.degradation == 8.0
        assert degraded == pytest.approx(8.0 * baseline)


class TestTransportAndBackendSeams:
    def test_corruption_retried_transparently(self, armed):
        vpim, injector, session = armed
        schedule(injector, 0.0, FaultKind.TRANSPORT_CORRUPTION,
                 "transport:*")
        report = session.run(VectorAdd(**APP))
        assert report.verified
        metrics = vpim.machine.metrics
        assert metrics.value("repro_fault_injected_total",
                             kind="transport_corruption") == 1
        assert metrics.value("repro_fault_retries_total",
                             layer="frontend") >= 1
        assert metrics.value("repro_fault_recovered_total",
                             kind="transient", action="retry") == 1

    def test_stall_adds_its_delay_to_the_run(self, armed):
        vpim, injector, session = armed
        stall_s = 0.25
        schedule(injector, 0.0, FaultKind.TRANSPORT_STALL, "transport:*",
                 stall_s=stall_s)
        start = vpim.clock.now
        report = session.run(VectorAdd(**APP))
        assert report.verified
        # The stall dwarfs the app itself; the run must have paid it.
        assert (vpim.clock.now - start) >= stall_s
        assert injector.fired[0].kind is FaultKind.TRANSPORT_STALL

    def test_backend_hang_detected_and_retried(self, armed):
        vpim, injector, session = armed
        schedule(injector, 0.0, FaultKind.BACKEND_HANG, "backend:*")
        report = session.run(VectorAdd(**APP))
        assert report.verified
        assert vpim.machine.metrics.value(
            "repro_fault_detected_total",
            kind="backend_hang", layer="frontend") == 1


class TestArmingContract:
    def test_unarmed_run_is_bit_identical_to_baseline(self):
        def run(arm: bool):
            vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
            if arm:
                injector = FaultInjector(FaultPlan(seed=0), vpim.clock)
                injector.arm_machine(vpim.machine, vpim.manager)
            session = vpim.vm_session(nr_vupmem=1)
            if arm:
                injector.arm_vm(session.vm)
            report = session.run(VectorAdd(**APP))
            return report.segments, vpim.clock.now

        assert run(False) == run(True)

    def test_disarm_removes_every_hook(self, armed):
        vpim, injector, session = armed
        injector.disarm()
        for rank in vpim.machine.ranks:
            assert rank.fault_hook is None
        for device in session.vm.devices:
            assert device.frontend.fault_hook is None
            assert device.backend.fault_hook is None

    def test_future_events_do_not_fire_early(self, armed):
        vpim, injector, session = armed
        schedule(injector, 1e9, FaultKind.RANK_OFFLINE, "rank:*")
        report = session.run(VectorAdd(**APP))
        assert report.verified
        assert injector.fired == []
        assert len(injector.pending) == 1


class TestTimeline:
    def test_timeline_records_resolved_targets(self, armed):
        vpim, injector, session = armed
        schedule(injector, 0.0, FaultKind.TRANSPORT_STALL, "transport:*",
                 stall_s=0.1)
        session.run(VectorAdd(**APP))
        line = injector.timeline()
        assert "transport_stall transport:vm-0.vupmem0" in line
        assert "*" not in line
        assert len(injector.timeline_digest()) == 64

    def test_digest_covers_firing_order(self, armed):
        vpim, injector, session = armed
        schedule(injector, 0.0, FaultKind.TRANSPORT_STALL, "transport:*",
                 stall_s=0.1)
        empty_digest = injector.timeline_digest()
        session.run(VectorAdd(**APP))
        assert injector.timeline_digest() != empty_digest
