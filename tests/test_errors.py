"""Every exception in ``repro.errors`` is raised by its own layer.

One test per class: trigger the failure through the layer's real API and
check the message carries actionable context (what failed, where, and
what to do about it) — the error surface is part of the paper artifact's
usability.
"""

import numpy as np
import pytest

from repro import errors
from repro.cluster import Cluster, ClusterConfig, Scheduler, TenantRequest
from repro.cluster.loadgen import ScenarioConfig
from repro.config import small_machine
from repro.core import VPim
from repro.driver.driver import UpmemDriver
from repro.driver.ioctl import IoctlCode, IoctlRequest
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.hardware.machine import Machine
from repro.hardware.rank import CiCommand, RankHealth
from repro.observability.metrics import MetricsRegistry
from repro.virt.firecracker import VmConfig
from repro.virt.guest_memory import GuestMemory
from repro.virt.serialization import deserialize_request
from repro.virt.virtio import Virtqueue


@pytest.fixture
def machine() -> Machine:
    return Machine(small_machine(nr_ranks=2, dpus_per_rank=8))


def test_every_error_derives_from_repro_error():
    classes = [obj for name, obj in vars(errors).items()
               if isinstance(obj, type) and issubclass(obj, Exception)]
    assert len(classes) > 20
    for cls in classes:
        assert issubclass(cls, errors.ReproError)


# -- hardware layer ---------------------------------------------------------

def test_memory_access_error_on_out_of_bounds_read(machine):
    mram = machine.ranks[0].dpus[0].mram
    with pytest.raises(errors.MemoryAccessError, match="outside"):
        mram.read(mram.size, 1)


def test_dpu_fault_error_on_launch_without_program(machine):
    with pytest.raises(errors.DpuFaultError, match="without a loaded"):
        machine.ranks[0].dpus[0].begin_run()


def test_rank_offline_error_on_dead_rank_operation(machine):
    rank = machine.ranks[0]
    rank.health = RankHealth.OFFLINE
    with pytest.raises(errors.RankOfflineError, match="offline"):
        rank.ci.execute(CiCommand.STATUS)


def test_control_interface_error_on_negative_count(machine):
    with pytest.raises(errors.ControlInterfaceError, match="negative"):
        machine.ranks[0].ci.execute(CiCommand.STATUS, -1)


# -- SDK layer --------------------------------------------------------------

def test_allocation_error_when_machine_too_small():
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
    from repro.apps.prim.va import VectorAdd
    with pytest.raises(errors.AllocationError):
        vpim.native_session().run(VectorAdd(nr_dpus=64,
                                            n_elements=1 << 12))


def test_program_load_error_on_running_dpu(machine):
    dpu = machine.ranks[0].dpus[0]
    dpu.load_program(object(), binary_size=64, symbols={})
    dpu.begin_run()
    with pytest.raises(errors.ProgramLoadError, match="running"):
        dpu.load_program(object(), binary_size=64, symbols={})


def test_transfer_error_on_bad_entry_size():
    from repro.sdk.transfer import DpuEntry
    with pytest.raises(errors.TransferError, match="size"):
        DpuEntry(dpu_index=0, size=-1).validate()


def test_launch_error_before_load():
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
    from repro.sdk.dpu_set import DpuSet
    with DpuSet(vpim.native_session().transport, nr_dpus=8) as dpus:
        with pytest.raises(errors.LaunchError, match="dpu_load"):
            dpus.launch()


# -- driver layer -----------------------------------------------------------

def test_ioctl_error_for_non_owner(machine):
    driver = UpmemDriver(machine)
    driver.ioctl("p1", IoctlRequest(code=IoctlCode.ALLOC_RANK,
                                    rank_index=0))
    with pytest.raises(errors.IoctlError, match="does not own"):
        driver.ioctl("p2", IoctlRequest(code=IoctlCode.FREE_RANK,
                                        rank_index=0))


def test_mmap_error_on_claimed_rank(machine):
    driver = UpmemDriver(machine)
    driver.mmap_rank(0, "owner-a")
    with pytest.raises(errors.MmapError, match="owned by"):
        driver.mmap_rank(0, "owner-b")


# -- virtualization layer ---------------------------------------------------

def test_virtqueue_error_on_empty_chain():
    queue = Virtqueue("transferq", capacity=4)
    with pytest.raises(errors.VirtqueueError, match="empty"):
        queue.add_chain([])


def test_serialization_error_on_empty_request():
    with pytest.raises(errors.SerializationError, match="empty"):
        deserialize_request([], GuestMemory(1 << 20))


def test_translation_error_outside_guest_memory():
    memory = GuestMemory(1 << 20)
    with pytest.raises(errors.TranslationError, match="outside"):
        memory.translate_pages(np.array([1 << 30], dtype=np.uint64))


def test_device_not_linked_error_on_double_acquire():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    session = vpim.vm_session(nr_vupmem=1)
    device = session.vm.devices[0]
    session.vm.acquire_rank(device)
    with pytest.raises(errors.DeviceNotLinkedError, match="already linked"):
        session.vm.acquire_rank(device)


def test_manager_error_on_bad_repair():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    with pytest.raises(errors.ManagerError, match="not FAIL"):
        vpim.manager.repair(0)


def test_vm_config_error_on_zero_vcpus(machine):
    with pytest.raises(errors.VmConfigError, match="vcpus"):
        VmConfig(vcpus=0, mem_bytes=1 << 30,
                 nr_vupmem=1).validate(machine)


def test_transport_corruption_error_carries_penalty():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    plan = FaultPlan(seed=0)
    plan.add(0.0, FaultKind.TRANSPORT_CORRUPTION, "transport:*")
    injector = FaultInjector(plan, vpim.clock)
    session = vpim.vm_session(nr_vupmem=1)
    injector.arm_vm(session.vm)
    frontend = session.vm.devices[0].frontend
    with pytest.raises(errors.TransportCorruptionError,
                       match="integrity") as info:
        frontend.fault_hook(frontend)
    assert info.value.penalty_s > 0
    assert info.value.kind == "transport_corruption"


def test_backend_hung_error_carries_watchdog_penalty():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    plan = FaultPlan(seed=0)
    plan.add(0.0, FaultKind.BACKEND_HANG, "backend:*")
    injector = FaultInjector(plan, vpim.clock)
    session = vpim.vm_session(nr_vupmem=1)
    injector.arm_vm(session.vm)
    backend = session.vm.devices[0].backend
    with pytest.raises(errors.BackendHungError, match="watchdog") as info:
        backend.fault_hook(backend)
    assert info.value.penalty_s > 0
    assert info.value.kind == "backend_hang"


# -- cluster control plane --------------------------------------------------

def test_cluster_error_on_bad_scenario():
    with pytest.raises(errors.ClusterError, match="nr_tenants"):
        ScenarioConfig(nr_tenants=0).validate()


def test_admission_error_on_strict_submit():
    cluster = Cluster(ClusterConfig(nr_hosts=2, ranks_per_host=2,
                                    dpus_per_rank=4))
    scheduler = Scheduler(cluster, queue_limit=4)
    with pytest.raises(errors.AdmissionError, match="rejected_oversize"):
        scheduler.submit_or_raise(TenantRequest(tenant="t0", nr_ranks=64))


def test_host_crashed_error_on_migration_to_dead_host():
    cluster = Cluster(ClusterConfig(nr_hosts=2, ranks_per_host=2,
                                    dpus_per_rank=4))
    scheduler = Scheduler(cluster, queue_limit=4)
    scheduler.submit(TenantRequest(tenant="t0", nr_ranks=1))
    placement = scheduler.try_place_next()
    target = next(h for h in cluster.hosts if h is not placement.host)
    target.crash()
    with pytest.raises(errors.HostCrashedError, match="live target"):
        placement.move_to(target)


# -- fault injection --------------------------------------------------------

def test_fault_injection_error_on_bad_target():
    with pytest.raises(errors.FaultInjectionError, match="seam"):
        FaultEvent(at=0.0, kind=FaultKind.BACKEND_HANG, target="rank:0")


# -- observability ----------------------------------------------------------

def test_observability_error_on_invalid_metric_name():
    with pytest.raises(errors.ObservabilityError, match="invalid"):
        MetricsRegistry().counter("bad name!", "help")
