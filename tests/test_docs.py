"""Docs-check: the documentation stays consistent with the code.

Two invariants:

- every relative link in ``README.md`` and ``docs/*.md`` points at a file
  or directory that exists in the repository;
- the metric table in ``docs/observability.md`` and the catalog
  (:mod:`repro.observability.catalog`) list exactly the same metric names,
  so neither can drift without failing CI.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.observability.catalog import CATALOG

REPO_ROOT = Path(__file__).resolve().parent.parent

_LINK_RE = re.compile(r"\]\(([^)]+)\)")
_METRIC_RE = re.compile(r"\brepro_[a-z0-9_]+\b")


def _doc_files():
    docs = [REPO_ROOT / "README.md"]
    docs += sorted((REPO_ROOT / "docs").glob("*.md"))
    return docs


@pytest.mark.parametrize("doc", _doc_files(), ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    broken = []
    for target in _LINK_RE.findall(doc.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not (doc.parent / path).exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken links {broken}"


def test_docs_directory_complete():
    docs = REPO_ROOT / "docs"
    assert (docs / "architecture.md").exists()
    assert (docs / "observability.md").exists()


class TestMetricTableMatchesCatalog:
    """docs/observability.md's table is the catalog, rendered."""

    @pytest.fixture(scope="class")
    def documented(self) -> set:
        text = (REPO_ROOT / "docs" / "observability.md").read_text()
        # Series suffixes appear in prose examples; fold them back onto
        # their family name before comparing with the catalog.
        names = set()
        for name in _METRIC_RE.findall(text):
            if name.endswith("_"):
                continue  # a family-prefix mention such as ``repro_trace_*``
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[:-len(suffix)] in CATALOG:
                    name = name[:-len(suffix)]
                    break
            names.add(name)
        return names

    def test_every_documented_metric_is_cataloged(self, documented):
        unknown = documented - set(CATALOG)
        assert not unknown, (
            f"docs/observability.md mentions uncataloged metrics: "
            f"{sorted(unknown)}")

    def test_every_cataloged_metric_is_documented(self, documented):
        missing = set(CATALOG) - documented
        assert not missing, (
            f"catalog metrics missing from docs/observability.md: "
            f"{sorted(missing)}")

    @pytest.fixture(scope="class")
    def table_rows(self) -> list:
        text = (REPO_ROOT / "docs" / "observability.md").read_text()
        rows = re.findall(r"^\| `(repro_[a-z0-9_]+)` \|[^|]+\| ([^|]*) \|",
                          text, re.MULTILINE)
        assert rows, "metric table not found in docs/observability.md"
        return rows

    def test_every_cataloged_metric_has_a_table_row(self, table_rows):
        """Stronger than prose mentions: each family needs its own row."""
        missing = set(CATALOG) - {name for name, _ in table_rows}
        assert not missing, (
            f"catalog metrics with no docs/observability.md table row: "
            f"{sorted(missing)}")

    def test_every_table_row_is_cataloged(self, table_rows):
        unknown = {name for name, _ in table_rows} - set(CATALOG)
        assert not unknown, (
            f"docs/observability.md table rows for uncataloged metrics: "
            f"{sorted(unknown)}")

    def test_documented_labels_match_catalog(self, table_rows):
        """Each table row lists exactly the spec's label names."""
        rows = table_rows
        for name, label_cell in rows:
            spec = CATALOG[name]
            documented_labels = tuple(re.findall(r"`([^`]+)`", label_cell))
            assert documented_labels == spec.labels, (
                f"{name}: docs list labels {documented_labels}, "
                f"catalog declares {spec.labels}")


class TestQosDocMetricTable:
    """docs/qos.md carries its own copy of the qos families' rows;
    they must match the catalog exactly, like observability.md's."""

    @pytest.fixture(scope="class")
    def table_rows(self) -> list:
        text = (REPO_ROOT / "docs" / "qos.md").read_text()
        rows = re.findall(r"^\| `(repro_[a-z0-9_]+)` \|[^|]+\| ([^|]*) \|",
                          text, re.MULTILINE)
        assert rows, "metric table not found in docs/qos.md"
        return rows

    def test_every_qos_family_has_a_row(self, table_rows):
        qos_families = {name for name in CATALOG
                        if name.startswith("repro_qos_")}
        assert qos_families == {name for name, _ in table_rows}

    def test_documented_labels_match_catalog(self, table_rows):
        for name, label_cell in table_rows:
            spec = CATALOG[name]
            documented = tuple(re.findall(r"`([^`]+)`", label_cell))
            assert documented == spec.labels, (
                f"{name}: docs/qos.md lists labels {documented}, "
                f"catalog declares {spec.labels}")


class TestPagingDocMetricTable:
    """docs/paging.md carries its own copy of the paging families' rows;
    they must match the catalog exactly, like observability.md's."""

    @pytest.fixture(scope="class")
    def table_rows(self) -> list:
        text = (REPO_ROOT / "docs" / "paging.md").read_text()
        rows = re.findall(r"^\| `(repro_[a-z0-9_]+)` \|[^|]+\| ([^|]*) \|",
                          text, re.MULTILINE)
        assert rows, "metric table not found in docs/paging.md"
        return rows

    def test_every_paging_family_has_a_row(self, table_rows):
        paging_families = {name for name in CATALOG
                           if name.startswith("repro_paging_")}
        assert paging_families == {name for name, _ in table_rows}

    def test_documented_labels_match_catalog(self, table_rows):
        for name, label_cell in table_rows:
            spec = CATALOG[name]
            documented = tuple(re.findall(r"`([^`]+)`", label_cell))
            assert documented == spec.labels, (
                f"{name}: docs/paging.md lists labels {documented}, "
                f"catalog declares {spec.labels}")


class TestMonitoringDocMetricTable:
    """docs/monitoring.md carries the telemetry-pipeline families' rows;
    they must match the catalog exactly, like observability.md's."""

    @pytest.fixture(scope="class")
    def table_rows(self) -> list:
        text = (REPO_ROOT / "docs" / "monitoring.md").read_text()
        rows = re.findall(r"^\| `(repro_[a-z0-9_]+)` \|[^|]+\| ([^|]*) \|",
                          text, re.MULTILINE)
        assert rows, "metric table not found in docs/monitoring.md"
        return rows

    def test_every_pipeline_family_has_a_row(self, table_rows):
        pipeline_families = {
            name for name in CATALOG
            if name.startswith(("repro_tsdb_", "repro_alert_"))
        } | {"repro_span_retention_total"}
        assert pipeline_families == {name for name, _ in table_rows}

    def test_documented_labels_match_catalog(self, table_rows):
        for name, label_cell in table_rows:
            spec = CATALOG[name]
            documented = tuple(re.findall(r"`([^`]+)`", label_cell))
            assert documented == spec.labels, (
                f"{name}: docs/monitoring.md lists labels {documented}, "
                f"catalog declares {spec.labels}")


class TestPerformanceDocMetricTable:
    """docs/performance.md carries the plan-cache families' rows;
    they must match the catalog exactly, like observability.md's."""

    @pytest.fixture(scope="class")
    def table_rows(self) -> list:
        text = (REPO_ROOT / "docs" / "performance.md").read_text()
        rows = re.findall(r"^\| `(repro_[a-z0-9_]+)` \|[^|]+\| ([^|]*) \|",
                          text, re.MULTILINE)
        assert rows, "metric table not found in docs/performance.md"
        return rows

    def test_every_plan_cache_family_has_a_row(self, table_rows):
        plan_families = {name for name in CATALOG
                         if name.startswith("repro_plan_cache_")}
        assert plan_families == {name for name, _ in table_rows}

    def test_documented_labels_match_catalog(self, table_rows):
        for name, label_cell in table_rows:
            spec = CATALOG[name]
            documented = tuple(re.findall(r"`([^`]+)`", label_cell))
            assert documented == spec.labels, (
                f"{name}: docs/performance.md lists labels {documented}, "
                f"catalog declares {spec.labels}")


def test_readme_mentions_metrics_cli():
    text = (REPO_ROOT / "README.md").read_text()
    assert "metrics" in text
    assert "docs/observability.md" in text
    assert "docs/architecture.md" in text
