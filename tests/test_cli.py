"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_list(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "Vector Addition" in out
    assert "Needleman-Wunsch" in out
    assert out.count("\n") >= 18


def test_spec(capsys):
    code, out = run_cli(capsys, "spec")
    assert code == 0
    assert "device ID        : 42" in out
    assert "transferq (512 slots)" in out
    assert "130 buffers" in out


def test_run_native(capsys):
    code, out = run_cli(capsys, "run", "VA", "--dpus", "8",
                        "--mode", "native")
    assert code == 0
    assert "ok=True" in out


def test_run_vpim_with_preset(capsys):
    code, out = run_cli(capsys, "run", "RED", "--dpus", "8",
                        "--preset", "vPIM-C")
    assert code == 0
    assert "vPIM-C" in out
    assert "transitions" in out


def test_compare(capsys):
    code, out = run_cli(capsys, "compare", "VA", "--dpus", "8")
    assert code == 0
    assert "overhead:" in out
    assert "native" in out


def test_trace_prints_critical_path_and_saves_artifacts(capsys, tmp_path):
    import json

    trace_file = tmp_path / "trace.json"
    metrics_file = tmp_path / "metrics.prom"
    code, out = run_cli(capsys, "trace", "CHK", "--dpus", "8",
                        "--output", str(trace_file),
                        "--metrics-output", str(metrics_file))
    assert code == 0
    assert "Per-layer self time" in out
    assert "critical path: session.run" in out
    assert "Slowest" in out
    payload = json.loads(trace_file.read_text())
    assert payload["traceEvents"][0]["ph"] == "X"
    assert "repro_span_started_total" in metrics_file.read_text()


def test_trace_zero_sample_rate_retains_nothing(capsys):
    code, out = run_cli(capsys, "trace", "CHK", "--dpus", "8",
                        "--sample-rate", "0")
    assert code == 0
    assert "no trace retained" in out


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "NOPE"])


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])


def test_figure_fig16(capsys):
    code, out = run_cli(capsys, "figure", "fig16")
    assert code == 0
    assert "sequential" in out


def test_cluster_list_policies(capsys):
    code, out = run_cli(capsys, "cluster", "--list-policies")
    assert code == 0
    for name in ("round_robin", "best_fit", "least_loaded"):
        assert name in out


def test_cluster_scenario_runs_and_verifies(capsys):
    code, out = run_cli(capsys, "cluster", "--hosts", "3",
                        "--ranks-per-host", "2", "--dpus-per-rank", "4",
                        "--tenants", "4", "--requests", "6",
                        "--policy", "best_fit", "--seed", "1")
    assert code == 0
    assert "Fleet scenario" in out
    assert "app runs verified: " in out


def test_cluster_seed_is_reproducible(capsys):
    args = ("cluster", "--hosts", "3", "--ranks-per-host", "2",
            "--dpus-per-rank", "4", "--requests", "8", "--no-apps",
            "--seed", "6")
    _, out1 = run_cli(capsys, *args)
    _, out2 = run_cli(capsys, *args)
    assert out1 == out2


def test_cluster_metrics_output(capsys, tmp_path):
    target = tmp_path / "cluster.prom"
    code, out = run_cli(capsys, "cluster", "--hosts", "2",
                        "--ranks-per-host", "2", "--dpus-per-rank", "4",
                        "--requests", "4", "--no-apps", "--seed", "0",
                        "--metrics-output", str(target))
    assert code == 0
    text = target.read_text()
    assert "repro_cluster_requests_total" in text
    assert "repro_cluster_queue_wait_seconds" in text


def test_qos_isolation_demo(capsys):
    code, out = run_cli(capsys, "qos", "--sessions", "2",
                        "--dpus-per-rank", "8", "--no-slo")
    assert code == 0
    assert "Noisy neighbor" in out
    assert "victim p99 improvement" in out
    assert "SLO enforcement" not in out


def test_qos_demo_with_slo_walkthrough(capsys):
    code, out = run_cli(capsys, "qos", "--sessions", "2",
                        "--dpus-per-rank", "8")
    assert code == 0
    assert "SLO enforcement walkthrough" in out
    assert "burn rate before actuation" in out
    assert "burn rate after actuation" in out


def test_cluster_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["cluster", "--policy", "first_fit"])
