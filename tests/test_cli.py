"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_list(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "Vector Addition" in out
    assert "Needleman-Wunsch" in out
    assert out.count("\n") >= 18


def test_spec(capsys):
    code, out = run_cli(capsys, "spec")
    assert code == 0
    assert "device ID        : 42" in out
    assert "transferq (512 slots)" in out
    assert "130 buffers" in out


def test_run_native(capsys):
    code, out = run_cli(capsys, "run", "VA", "--dpus", "8",
                        "--mode", "native")
    assert code == 0
    assert "ok=True" in out


def test_run_vpim_with_preset(capsys):
    code, out = run_cli(capsys, "run", "RED", "--dpus", "8",
                        "--preset", "vPIM-C")
    assert code == 0
    assert "vPIM-C" in out
    assert "transitions" in out


def test_compare(capsys):
    code, out = run_cli(capsys, "compare", "VA", "--dpus", "8")
    assert code == 0
    assert "overhead:" in out
    assert "native" in out


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "NOPE"])


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])


def test_figure_fig16(capsys):
    code, out = run_cli(capsys, "figure", "fig16")
    assert code == 0
    assert "sequential" in out
