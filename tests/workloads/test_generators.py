"""Workload generators: determinism and structural validity."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.workloads.generators import (
    random_array,
    random_csr,
    random_graph_csr,
    random_image,
    random_matrix,
    sorted_array,
)
from repro.workloads.wikipedia import SyntheticCorpus


def test_random_array_deterministic():
    a = random_array(1000, seed=42)
    b = random_array(1000, seed=42)
    c = random_array(1000, seed=43)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_random_array_bounds():
    arr = random_array(10_000, lo=5, hi=9, seed=0)
    assert arr.min() >= 5 and arr.max() < 9


def test_sorted_array_strictly_increasing():
    arr = sorted_array(10_000, seed=1)
    assert (np.diff(arr) > 0).all()


def test_random_matrix_shape_and_dtype():
    m = random_matrix(13, 7, dtype=np.int32, seed=2)
    assert m.shape == (13, 7)
    assert m.dtype == np.int32


@given(rows=st.integers(1, 200), cols=st.integers(1, 100),
       nnz=st.integers(1, 16))
@settings(max_examples=30, deadline=None)
def test_random_csr_structurally_valid(rows, cols, nnz):
    csr = random_csr(rows, cols, nnz_per_row=nnz, seed=rows)
    assert csr.row_ptr.size == rows + 1
    assert csr.row_ptr[0] == 0
    assert int(csr.row_ptr[-1]) == csr.nnz == csr.col_idx.size
    assert (np.diff(csr.row_ptr) >= 1).all(), "every row has an entry"
    assert csr.col_idx.min() >= 0 and csr.col_idx.max() < cols
    # Columns are sorted and unique within each row.
    for r in range(rows):
        s, e = int(csr.row_ptr[r]), int(csr.row_ptr[r + 1])
        row_cols = csr.col_idx[s:e]
        assert (np.diff(row_cols) > 0).all()


@given(nv=st.integers(2, 500), degree=st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_random_graph_csr_valid(nv, degree):
    row_ptr, col_idx = random_graph_csr(nv, avg_degree=degree, seed=nv)
    assert row_ptr.size == nv + 1
    assert int(row_ptr[-1]) == col_idx.size
    if col_idx.size:
        assert col_idx.min() >= 0 and col_idx.max() < nv
    # The spine guarantees an edge v-1 -> v for every v.
    for v in range(1, min(nv, 20)):
        s, e = int(row_ptr[v - 1]), int(row_ptr[v])
        assert v in col_idx[s:e], f"spine edge {v - 1}->{v} missing"


def test_random_graph_no_self_loops():
    row_ptr, col_idx = random_graph_csr(200, avg_degree=4, seed=9)
    for v in range(200):
        s, e = int(row_ptr[v]), int(row_ptr[v + 1])
        assert v not in col_idx[s:e]


def test_random_image_distribution():
    img = random_image(100_000, depth=256, seed=4)
    assert img.min() >= 0 and img.max() <= 255
    hist = np.bincount(img, minlength=256)
    # Gaussian-ish: the middle bins are far denser than the edges.
    assert hist[118:138].mean() > 5 * max(1.0, hist[:10].mean())


def test_corpus_deterministic():
    a = SyntheticCorpus(nr_documents=50, vocabulary_size=200, seed=1)
    b = SyntheticCorpus(nr_documents=50, vocabulary_size=200, seed=1)
    assert all(np.array_equal(x, y)
               for x, y in zip(a.documents, b.documents))


def test_corpus_queries_in_vocabulary():
    corpus = SyntheticCorpus(nr_documents=50, vocabulary_size=200, seed=1)
    queries = corpus.queries(100, seed=2)
    assert queries.min() >= 0 and queries.max() < 200
