"""Stateful property tests: the manager FSM and the full transfer path."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.config import small_machine
from repro.core import VPim
from repro.driver.driver import UpmemDriver
from repro.errors import ManagerError
from repro.hardware.machine import Machine
from repro.sdk.dpu_set import DpuSet
from repro.virt.manager import Manager, RankState


class ManagerMachine(RuleBasedStateMachine):
    """Random allocate/release/advance sequences against the manager.

    Invariants checked after every step:

    - a rank is never assigned to two tenants at once;
    - a rank allocated to a *different* tenant than its previous owner is
      always fully zeroed (the isolation guarantee R2);
    - the rank table's states stay consistent with driver ownership.
    """

    TENANTS = ["t0", "t1", "t2"]

    def __init__(self):
        super().__init__()
        self.machine = Machine(small_machine(nr_ranks=3, dpus_per_rank=2))
        self.driver = UpmemDriver(self.machine)
        self.manager = Manager(self.machine, self.driver, max_attempts=1)
        self.holdings = {}          # rank_index -> tenant
        self.previous_owner = {}    # rank_index -> tenant of last release

    @rule(tenant=st.sampled_from(TENANTS))
    def allocate(self, tenant):
        try:
            rank_index = self.manager.allocate(tenant)
        except ManagerError:
            return
        assert rank_index not in self.holdings, "double allocation!"
        rank = self.machine.rank(rank_index)
        previous = self.previous_owner.get(rank_index)
        if previous is not None and previous != tenant:
            assert rank.is_clean(), (
                f"tenant {tenant} inherited data from {previous}!"
            )
        self.driver.claim_rank(rank_index, tenant)
        # The tenant scribbles a signature over its MRAM.
        rank.dpus[0].mram.write(0, np.frombuffer(
            tenant.encode() * 4, dtype=np.uint8).copy())
        self.holdings[rank_index] = tenant

    @rule(slot=st.integers(0, 2))
    def release(self, slot):
        held = sorted(self.holdings)
        if not held:
            return
        rank_index = held[slot % len(held)]
        tenant = self.holdings.pop(rank_index)
        self.previous_owner[rank_index] = tenant
        self.driver.release_rank(rank_index, tenant)

    @rule(ms=st.integers(1, 1000))
    def advance(self, ms):
        self.machine.clock.advance(ms / 1000.0)

    @invariant()
    def table_consistent(self):
        for idx, record in self.manager.rank_table.items():
            if idx in self.holdings:
                assert record.state is RankState.ALLO
            else:
                assert record.state in (RankState.NAAV, RankState.NANA,
                                        RankState.ALLO)

    @invariant()
    def no_orphan_ownership(self):
        for idx, tenant in self.holdings.items():
            assert self.driver.rank_owner(idx) == tenant


TestManagerStateMachine = ManagerMachine.TestCase
TestManagerStateMachine.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None)


# -- full transfer-path fuzz ---------------------------------------------------

@given(
    seed=st.integers(0, 1000),
    nr_dpus=st.integers(1, 8),
    offset=st.integers(0, 1 << 16).map(lambda v: v & ~7),
    sizes=st.lists(st.integers(1, 20_000), min_size=1, max_size=8),
)
@settings(max_examples=25, deadline=None)
def test_full_path_write_read_roundtrip(seed, nr_dpus, offset, sizes):
    """Arbitrary per-DPU payloads survive the complete virtualized path
    (serialize -> virtqueue -> backend -> rank -> read back) bit-exactly."""
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
    session = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    rng = np.random.default_rng(seed)
    sizes = (sizes * nr_dpus)[:nr_dpus]
    payloads = [rng.integers(0, 255, size, dtype=np.uint8).astype(np.uint8)
                for size in sizes]
    with DpuSet(session.transport, nr_dpus) as dpus:
        for i, payload in enumerate(payloads):
            dpus.copy_to_mram(i, offset, payload)
        for i, payload in enumerate(payloads):
            got = dpus.copy_from_mram(i, offset, payload.size)
            assert np.array_equal(got, payload)
