"""Algorithmic property tests: vectorized kernels vs brute-force oracles.

Several kernels use non-obvious vectorizations (NW's prefix-max trick
for the in-row gap dependency, BS's searchsorted, TS's stride tricks).
These tests pin them against straightforward O(n^2)/O(n*m) references on
small random instances.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.prim.nw import GAP, MATCH, MISMATCH, _dp_rows, nw_score
from repro.apps.prim.ts import _ssd_profile


def classic_nw(a: np.ndarray, b: np.ndarray) -> int:
    """Textbook O(n*m) Needleman-Wunsch, no vectorization."""
    n, m = len(a), len(b)
    H = np.zeros((n + 1, m + 1), dtype=np.int64)
    H[0, :] = -GAP * np.arange(m + 1)
    H[:, 0] = -GAP * np.arange(n + 1)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            sub = MATCH if a[i - 1] == b[j - 1] else MISMATCH
            H[i, j] = max(H[i - 1, j - 1] + sub,
                          H[i - 1, j] - GAP,
                          H[i, j - 1] - GAP)
    return int(H[n, m])


@given(
    a=st.lists(st.integers(0, 3), min_size=1, max_size=24),
    b=st.lists(st.integers(0, 3), min_size=1, max_size=24),
)
@settings(max_examples=60, deadline=None)
def test_nw_vectorized_matches_classic(a, b):
    a = np.array(a, dtype=np.int8)
    b = np.array(b, dtype=np.int8)
    assert nw_score(a, b) == classic_nw(a, b)


@given(
    a=st.lists(st.integers(0, 3), min_size=2, max_size=32).filter(
        lambda xs: len(xs) % 2 == 0),
)
@settings(max_examples=40, deadline=None)
def test_nw_blocked_equals_monolithic(a):
    """Splitting the DP into blocks along boundaries is exact."""
    seq = np.array(a, dtype=np.int8)
    half = seq.size // 2
    # Monolithic.
    top = -GAP * np.arange(seq.size + 1, dtype=np.int64)
    left = -GAP * np.arange(1, seq.size + 1, dtype=np.int64)
    mono_bottom, _ = _dp_rows(seq, seq, top, left)

    # Two block columns: compute [all rows] x [left half], then feed its
    # right column into [all rows] x [right half].
    top_l = -GAP * np.arange(half + 1, dtype=np.int64)
    bottom_l, right_l = _dp_rows(seq, seq[:half], top_l, left)
    top_r = np.concatenate([
        [-GAP * half],
        -GAP * (np.arange(1, half + 1, dtype=np.int64) + half),
    ])
    bottom_r, _ = _dp_rows(seq, seq[half:], top_r, right_l)
    assert int(bottom_r[-1]) == int(mono_bottom[-1])


@given(
    series=st.lists(st.integers(-20, 20), min_size=4, max_size=64),
    m=st.integers(2, 4),
)
@settings(max_examples=50, deadline=None)
def test_ts_ssd_matches_bruteforce(series, m):
    series = np.array(series, dtype=np.int32)
    if series.size < m:
        return
    query = series[:m].copy() + 1
    fast = _ssd_profile(series, query)
    for i in range(series.size - m + 1):
        window = series[i:i + m].astype(np.int64)
        brute = int(((window - query) ** 2).sum())
        assert int(fast[i]) == brute


@given(st.lists(st.integers(0, 1 << 30), min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_checksum_is_sum_mod_2_32(values):
    from repro.apps.micro.checksum import Checksum
    app = Checksum(nr_dpus=2, file_mb=0.01)
    data = np.array([v % 256 for v in values], dtype=np.uint8)
    app.file = data
    assert app.expected() == int(data.astype(np.uint64).sum()) % (1 << 32)


@given(
    n=st.integers(2, 200),
    queries=st.lists(st.integers(0, 10_000), min_size=1, max_size=32),
)
@settings(max_examples=40, deadline=None)
def test_bs_expected_matches_linear_scan(n, queries):
    from repro.apps.prim.bs import BinarySearch
    app = BinarySearch(nr_dpus=2, n_elements=n, n_queries=len(queries))
    app.queries = np.array(queries, dtype=np.int64)
    expected = app.expected()
    for qi, q in enumerate(queries):
        matches = np.nonzero(app.data == q)[0]
        if matches.size:
            assert expected[qi] == matches[0]
        else:
            assert expected[qi] == -1
