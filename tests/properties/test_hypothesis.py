"""Property-based tests (hypothesis) on core data structures and kernels."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import PAGE_SIZE
from repro.hardware.interleave import deinterleave, interleave
from repro.hardware.memory import MemoryRegion
from repro.hardware.timing import DEFAULT_COST_MODEL
from repro.virt.guest_memory import GuestMemory
from repro.virt.serialization import RequestHeader, RequestKind

u8_arrays = st.lists(st.integers(0, 255), min_size=1, max_size=512).map(
    lambda xs: np.array(xs, dtype=np.uint8))


# -- MemoryRegion --------------------------------------------------------------

@given(data=u8_arrays, offset=st.integers(0, 1 << 16))
@settings(max_examples=60, deadline=None)
def test_memory_write_read_roundtrip(data, offset):
    mem = MemoryRegion(1 << 20)
    mem.write(offset, data)
    assert np.array_equal(mem.read(offset, data.size), data)


@given(a=u8_arrays, b=u8_arrays, gap=st.integers(0, 256))
@settings(max_examples=60, deadline=None)
def test_memory_disjoint_writes_do_not_interfere(a, b, gap):
    mem = MemoryRegion(1 << 20)
    off_a = 1000
    off_b = off_a + a.size + gap
    mem.write(off_a, a)
    mem.write(off_b, b)
    assert np.array_equal(mem.read(off_a, a.size), a)
    assert np.array_equal(mem.read(off_b, b.size), b)


@given(data=u8_arrays, offset=st.integers(0, 1 << 14))
@settings(max_examples=40, deadline=None)
def test_memory_overwrite_is_last_writer_wins(data, offset):
    mem = MemoryRegion(1 << 20)
    mem.write(offset, np.zeros(data.size, dtype=np.uint8))
    mem.write(offset, data)
    assert np.array_equal(mem.read(offset, data.size), data)


# -- interleaving ---------------------------------------------------------------

@given(st.integers(1, 256))
@settings(max_examples=40, deadline=None)
def test_interleave_roundtrip_property(n_words):
    data = np.random.default_rng(n_words).integers(
        0, 255, n_words * 8, dtype=np.uint8).astype(np.uint8)
    assert np.array_equal(deinterleave(interleave(data)), data)


@given(st.integers(1, 128))
@settings(max_examples=40, deadline=None)
def test_interleave_is_a_permutation(n_words):
    data = np.random.default_rng(n_words).integers(
        0, 255, n_words * 8, dtype=np.uint8).astype(np.uint8)
    out = interleave(data)
    assert sorted(out.tolist()) == sorted(data.tolist())


# -- pipeline timing model ---------------------------------------------------------

@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=24))
@settings(max_examples=80, deadline=None)
def test_pipeline_time_bounds(counts):
    cm = DEFAULT_COST_MODEL
    t = cm.pipeline_time(counts)
    lower = cm.cycles_to_seconds(sum(counts))
    upper = cm.cycles_to_seconds(sum(counts) + 11 * max(counts))
    assert lower <= t <= upper


@given(st.lists(st.integers(1, 1000), min_size=1, max_size=24))
@settings(max_examples=60, deadline=None)
def test_pipeline_time_monotone_in_work(counts):
    cm = DEFAULT_COST_MODEL
    heavier = [c + 1 for c in counts]
    assert cm.pipeline_time(heavier) >= cm.pipeline_time(counts)


# -- request header -----------------------------------------------------------------

@given(
    kind=st.sampled_from(list(RequestKind)),
    offset=st.integers(0, 1 << 40),
    count=st.integers(0, 1 << 20),
    symbol=st.text(max_size=64).filter(lambda s: "\x00" not in s),
    program=st.text(max_size=32).filter(lambda s: "\x00" not in s),
)
@settings(max_examples=80, deadline=None)
def test_header_roundtrip_property(kind, offset, count, symbol, program):
    header = RequestHeader(kind=kind, offset=offset, count=count,
                           symbol=symbol, program_name=program)
    assert RequestHeader.unpack(header.pack()) == header


# -- guest memory runs ---------------------------------------------------------------

@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=64))
@settings(max_examples=60, deadline=None)
def test_contiguous_runs_cover_exactly(page_indices):
    gpas = np.array(sorted(set(page_indices)), dtype=np.uint64) * PAGE_SIZE
    runs = GuestMemory.contiguous_runs(gpas)
    reconstructed = []
    for start, nr in runs:
        reconstructed.extend(start + i * PAGE_SIZE for i in range(nr))
    assert reconstructed == gpas.tolist()


# -- end-to-end kernel invariants -------------------------------------------------------

@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200),
       st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_reduction_invariant(values, nr_dpus):
    """RED on any data and DPU count equals the numpy sum."""
    from repro.apps.prim.red import Reduction
    from repro.config import small_machine
    from repro.core import VPim

    data = np.array(values, dtype=np.int32)
    app = Reduction(nr_dpus=nr_dpus, n_elements=data.size)
    app.data = data
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
    report = vpim.native_session().run(app)
    assert report.verified


@given(st.lists(st.integers(0, 100), min_size=1, max_size=300),
       st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_scan_invariant(values, nr_dpus):
    """SCAN-SSA equals numpy cumsum for arbitrary inputs."""
    from repro.apps.prim.scan_ssa import ScanSsa
    from repro.config import small_machine
    from repro.core import VPim

    data = np.array(values, dtype=np.int32)
    app = ScanSsa(nr_dpus=nr_dpus, n_elements=data.size)
    app.data = data
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
    report = vpim.native_session().run(app)
    assert report.verified


@given(st.lists(st.integers(-50, 50), min_size=1, max_size=300))
@settings(max_examples=25, deadline=None)
def test_select_invariant(values):
    """SEL keeps exactly the even elements, in order."""
    from repro.apps.prim.sel import Select
    from repro.config import small_machine
    from repro.core import VPim

    data = np.array(values, dtype=np.int32)
    app = Select(nr_dpus=4, n_elements=data.size)
    app.data = data
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=4))
    report = vpim.native_session().run(app)
    assert report.verified
