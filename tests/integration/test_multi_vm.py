"""Multi-tenant scenarios: rank sharing, isolation, coexistence."""

import numpy as np
import pytest

from repro.config import small_machine
from repro.core import VPim
from repro.sdk.dpu_set import DpuSet
from repro.virt.manager import RankState


@pytest.fixture
def vpim():
    return VPim(small_machine(nr_ranks=2, dpus_per_rank=8))


def test_two_vms_share_the_machine(vpim):
    a = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    b = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    with DpuSet(a.transport, 8) as da, DpuSet(b.transport, 8) as db:
        ra = da.channels[0].rank_index
        rb = db.channels[0].rank_index
        assert ra != rb
        da.push_to_mram(0, [np.full(16, 1, np.uint8)] * 8)
        db.push_to_mram(0, [np.full(16, 2, np.uint8)] * 8)
        assert (da.push_from_mram(0, 16)[0] == 1).all()
        assert (db.push_from_mram(0, 16)[0] == 2).all()


def test_vm_cannot_overcommit_ranks(vpim):
    a = vpim.vm_session(nr_vupmem=2, mem_bytes=1 << 30)
    b = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    set_a = DpuSet(a.transport, 16)   # takes both ranks
    with pytest.raises(Exception):
        DpuSet(b.transport, 8)        # nothing left, manager gives up
    set_a.free()


def test_released_rank_is_wiped_before_reuse_by_other_vm(vpim):
    """The isolation requirement R2: no residual data across tenants."""
    a = vpim.vm_session(nr_vupmem=2, mem_bytes=1 << 30)
    b = vpim.vm_session(nr_vupmem=2, mem_bytes=1 << 30)
    secret = np.full(64, 0xAB, dtype=np.uint8)
    with DpuSet(a.transport, 16) as da:      # hold BOTH ranks
        da.push_to_mram(0, [secret] * 16)
    # Both ranks released -> NANA.  VM b must wait for the reset and
    # then read zeros.
    with DpuSet(b.transport, 8) as db:
        leaked = db.push_from_mram(0, 64)
        assert all(not buf.any() for buf in leaked), "cross-VM data leak!"


def test_same_vm_nana_reuse_preserves_own_data(vpim):
    session = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    with DpuSet(session.transport, 8) as dpus:
        dpus.push_to_mram(0, [np.full(16, 7, np.uint8)] * 8)
        first_rank = dpus.channels[0].rank_index
    # Immediate re-allocation by the same device: NANA fast path.
    with DpuSet(session.transport, 8) as dpus:
        assert dpus.channels[0].rank_index == first_rank
        # Data is the tenant's own, so the reset was skipped.
        assert (dpus.push_from_mram(0, 16)[0] == 7).all()
    assert session.vm.manager.stats.nana_reuses >= 1


def test_native_and_vm_coexist(vpim):
    native = vpim.native_session()
    vm = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    with DpuSet(native.transport, 8) as dn:
        with DpuSet(vm.transport, 8) as dv:
            assert dn.channels[0].rank_index != dv.channels[0].rank_index
    # After both release, the manager sees the native rank free again.
    vpim.machine.clock.advance(1.0)
    assert len(vpim.manager.available_ranks()) == 2


def test_rank_states_follow_lifecycle(vpim):
    session = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    manager = vpim.manager
    dpus = DpuSet(session.transport, 8)
    rank = dpus.channels[0].rank_index
    assert manager.rank_table[rank].state is RankState.ALLO
    dpus.free()
    assert manager.rank_table[rank].state is RankState.NANA
    vpim.machine.clock.advance(1.0)
    assert manager.states()[rank] is RankState.NAAV
