"""Failure injection: the stack must degrade loudly, then keep working."""

import numpy as np
import pytest

from repro.config import small_machine
from repro.core import VPim
from repro.errors import DpuFaultError, TransferError
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram


class FaultyProgram(DpuProgram):
    """A kernel that dies on one specific DPU."""

    name = "faulty"
    symbols = {"ok": 4}
    nr_tasklets = 2

    def kernel(self, ctx):
        if ctx.dpu_index == 1 and ctx.me() == 0:
            raise DpuFaultError("injected kernel fault")
        if ctx.me() == 0:
            ctx.set_host_u32("ok", 1)
            ctx.charge(1)
        yield ctx.barrier()


class GoodProgram(DpuProgram):
    name = "good"
    symbols = {"ok": 4}
    nr_tasklets = 2

    def kernel(self, ctx):
        if ctx.me() == 0:
            ctx.set_host_u32("ok", 7)
            ctx.charge(1)
        yield ctx.barrier()


@pytest.fixture
def vm_session():
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=4))
    return vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)


def test_kernel_fault_propagates_through_vm(vm_session):
    with DpuSet(vm_session.transport, 4) as dpus:
        dpus.load(FaultyProgram())
        with pytest.raises(DpuFaultError):
            dpus.launch()


def test_queue_survives_backend_failure(vm_session):
    """A failed request must not wedge the transferq (error status is
    posted and the next request flows normally)."""
    with DpuSet(vm_session.transport, 4) as dpus:
        dpus.load(FaultyProgram())
        with pytest.raises(DpuFaultError):
            dpus.launch()
        # The same device keeps serving requests.
        dpus.load(GoodProgram())
        dpus.launch()
        value = int(dpus.copy_from(0, "ok", 0, 4).view(np.uint32)[0])
        assert value == 7
        assert vm_session.vm.devices[0].queues.transferq.pending == 0


def test_unknown_symbol_write_fails_cleanly(vm_session):
    with DpuSet(vm_session.transport, 4) as dpus:
        dpus.load(GoodProgram())
        with pytest.raises(DpuFaultError):
            dpus.copy_to(0, "no_such_symbol", 0, np.zeros(4, np.uint8))
        dpus.launch()   # still functional afterwards


def test_mram_out_of_bounds_write(vm_session):
    """Bounds are validated when the request is built — even for writes
    the batch buffer would otherwise absorb silently."""
    with DpuSet(vm_session.transport, 4) as dpus:
        with pytest.raises(TransferError):
            dpus.copy_to_mram(0, (64 << 20) - 4, np.zeros(16, np.uint8))


def test_oversubscription_pool_exhaustion():
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=4),
                oversubscription=True)
    vpim.manager.emulated_pool.max_ranks = 1
    hold_phys = DpuSet(vpim.vm_session(nr_vupmem=1,
                                       mem_bytes=1 << 30).transport, 4)
    hold_emu = DpuSet(vpim.vm_session(nr_vupmem=1,
                                      mem_bytes=1 << 30).transport, 4)
    third = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    with pytest.raises(Exception):
        DpuSet(third.transport, 4)       # pool cap reached -> hard failure
    hold_phys.free()
    hold_emu.free()


def test_batched_writes_never_lost_on_fault(vm_session):
    """Buffered small writes flush before the launch that faults, so the
    data is already on the rank when the fault surfaces."""
    with DpuSet(vm_session.transport, 4) as dpus:
        dpus.load(FaultyProgram())
        dpus.copy_to_mram(0, 0, np.full(64, 3, np.uint8))   # batched
        with pytest.raises(DpuFaultError):
            dpus.launch()                                    # flush + fault
        got = dpus.copy_from_mram(0, 0, 64)
        assert (got == 3).all()


def test_double_sized_entry_rejected_before_hardware(vm_session):
    from repro.sdk.transfer import DpuEntry
    with pytest.raises(TransferError):
        DpuEntry(0, -5)
