"""End-to-end flows through the public API."""

import numpy as np
import pytest

from repro.apps.prim.va import VectorAdd
from repro.apps.micro.checksum import Checksum
from repro.config import small_machine
from repro.core import VPim


def test_quickstart_flow():
    """The README quickstart: native baseline, then vPIM, then overhead."""
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    app = VectorAdd(nr_dpus=8, n_elements=1 << 15)
    native = vpim.native_session().run(app)

    vpim2 = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    virt = vpim2.vm_session(nr_vupmem=1).run(
        VectorAdd(nr_dpus=8, n_elements=1 << 15))

    assert native.verified and virt.verified
    assert virt.overhead_vs(native) > 1.0
    assert virt.vmexits > 0
    assert native.vmexits == 0


def test_back_to_back_runs_on_one_session():
    """The profiler resets between runs; the VM persists."""
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    session = vpim.vm_session(nr_vupmem=2)
    first = session.run(Checksum(nr_dpus=8, file_mb=0.25))
    second = session.run(Checksum(nr_dpus=8, file_mb=0.25))
    assert first.verified and second.verified
    # Same workload, warm VM: identical simulated segment times except
    # the manager path (NANA reuse vs fresh NAAV allocation).
    assert second.segments_total == pytest.approx(first.segments_total,
                                                  rel=0.05)


def test_report_row_rendering():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    rep = vpim.native_session().run(VectorAdd(nr_dpus=4, n_elements=1 << 12))
    row = rep.row()
    assert "VA" in row and "native" in row and "ok=True" in row


def test_preset_session_modes_labelled():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    session = vpim.vm_session(nr_vupmem=1, preset_name="vPIM+PB")
    assert session.mode == "vPIM+PB"
    rep = session.run(VectorAdd(nr_dpus=4, n_elements=1 << 12))
    assert rep.mode == "vPIM+PB"


def test_report_overhead_metrics():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    app = VectorAdd(nr_dpus=8, n_elements=1 << 15)
    native = vpim.native_session().run(app)
    # Self-overhead is exactly 1 under both metrics; the wall metric
    # additionally includes allocation/load/free so it uses more time.
    assert native.overhead_vs(native) == pytest.approx(1.0)
    assert native.overhead_vs(native, metric="wall") == pytest.approx(1.0)
    assert native.total_time > native.segments_total
