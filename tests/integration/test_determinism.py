"""Simulation determinism and miscellaneous end-to-end coverage."""

import numpy as np

from repro.apps.prim.nw import NeedlemanWunsch
from repro.apps.prim.red import Reduction
from repro.config import small_machine
from repro.core import VPim
from repro.sdk.dpu_set import DpuSet
from repro.virt.opts import OptimizationConfig


def run_once(preset=None, app_cls=Reduction, **app_args):
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    session = (vpim.vm_session(nr_vupmem=2, preset_name=preset)
               if preset else vpim.native_session())
    return session.run(app_cls(nr_dpus=8, **app_args))


def test_simulated_times_are_deterministic():
    """Two identical runs produce bit-identical simulated timings."""
    a = run_once(preset="vPIM", n_elements=1 << 14)
    b = run_once(preset="vPIM", n_elements=1 << 14)
    assert a.segments == b.segments
    assert a.total_time == b.total_time
    assert a.vmexits == b.vmexits
    assert a.profile.messages.requests == b.profile.messages.requests


def test_nw_deterministic_across_presets():
    """Results are identical no matter which optimizations run."""
    outputs = set()
    for preset in (None, "vPIM-rust", "vPIM", "vPIM+PB"):
        app = NeedlemanWunsch(nr_dpus=8, seq_len=128, block_size=32)
        vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
        session = (vpim.vm_session(nr_vupmem=2, preset_name=preset)
                   if preset else vpim.native_session())
        outputs.add(session.run(app).verified)
        outputs.add(app.expected())
    assert True in outputs and len(outputs) == 2  # one score, all verified


def test_session_verify_false_skips_reference():
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
    rep = vpim.native_session().run(
        Reduction(nr_dpus=8, n_elements=1 << 12), verify=False)
    assert rep.verified  # reported as trusted, not checked


def test_partial_push_subset_of_dpus():
    """A FROM_DPU push touching only some set DPUs restitches correctly."""
    from repro.config import MRAM_HEAP_SYMBOL
    from repro.sdk.transfer import DpuEntry, XferKind
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    session = vpim.vm_session(nr_vupmem=2)
    with DpuSet(session.transport, 16) as dpus:
        dpus.push_to_mram(0, [np.full(32, i, np.uint8) for i in range(16)])
        entries = [DpuEntry(dpu_index=i, size=32) for i in (3, 9, 14)]
        bufs = dpus.push(entries, XferKind.FROM_DPU, MRAM_HEAP_SYMBOL, 0)
        assert [int(b[0]) for b in bufs] == [3, 9, 14]


def test_wram_symbol_read_path_in_vm():
    """copy_from of a WRAM symbol bypasses the prefetch cache but must
    return the exact bytes through the virtualized path."""
    from repro.sdk.kernel import DpuProgram

    class Writer(DpuProgram):
        name = "writer"
        symbols = {"value": 8}
        nr_tasklets = 2

        def kernel(self, ctx):
            if ctx.me() == 0:
                ctx.set_host_u64("value", 0xDEADBEEFCAFE)
                ctx.charge(2)
            yield ctx.barrier()

    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=4))
    session = vpim.vm_session(nr_vupmem=1)
    with DpuSet(session.transport, 4) as dpus:
        dpus.load(Writer())
        dpus.launch()
        raw = dpus.copy_from(2, "value", 0, 8)
        assert int(raw.view(np.uint64)[0]) == 0xDEADBEEFCAFE
        assert session.transport.profiler.messages.cache_refills == 0


def test_vhost_and_oversubscription_compose():
    """Extensions stack: a spilled tenant on an emulated rank with the
    vhost path still computes correctly."""
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8),
                oversubscription=True)
    hold = DpuSet(vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30).transport, 8)
    tenant = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30,
                             opts=OptimizationConfig(vhost_vsock=True))
    rep = tenant.run(Reduction(nr_dpus=8, n_elements=1 << 14))
    assert rep.verified
    assert vpim.manager.stats.emulated_allocations == 1
    hold.free()
