"""The monitor orchestration: pipeline wiring, the drill, snapshot
diffs, and the dashboard renderer."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.hardware.clock import SimClock
from repro.observability.catalog import instrument
from repro.observability.dashboard import render_dashboard
from repro.observability.metrics import MetricsRegistry
from repro.observability.snapshots import (
    diff_snapshots,
    format_deltas,
    load_snapshot,
    parse_snapshot,
)
from repro.observability.export import snapshot_dict
from repro.analysis.monitor import (
    MonitorConfig,
    TelemetryPipeline,
    default_rules,
    run_fault_drill,
    run_monitor,
)


class TestMonitorConfig:
    def test_default_is_valid(self):
        MonitorConfig().validate()

    def test_unknown_scenario_raises(self):
        with pytest.raises(ObservabilityError, match="unknown monitor scenario"):
            MonitorConfig(scenario="prod").validate()


class TestDefaultRules:
    @pytest.mark.parametrize(
        "scenario",
        ["quick", "prim", "noisy", "paging", "drill", "cluster", "chaos"])
    def test_rules_are_catalog_valid_for_every_scenario(self, scenario):
        rules = default_rules(scenario)
        assert rules  # construction validated each against the catalog
        names = [r.name for r in rules]
        assert len(set(names)) == len(names)


class TestTelemetryPipeline:
    def test_clock_ticks_drive_scrape_and_evaluate(self):
        registry = MetricsRegistry()
        instrument(registry, "repro_fault_injected_total").labels(
            kind="x").inc()
        clock = SimClock()
        pipeline = TelemetryPipeline(registry, clock, interval=0.001,
                                     rules=default_rules("drill"))
        for _ in range(10):
            clock.advance(0.001)
        assert pipeline.store.scrapes >= 10
        assert pipeline.engine.evaluations >= 10

    def test_detach_stops_scraping(self):
        registry = MetricsRegistry()
        clock = SimClock()
        pipeline = TelemetryPipeline(registry, clock, interval=0.001)
        clock.advance(0.005)
        scrapes = pipeline.store.scrapes
        pipeline.detach()
        clock.advance(0.005)
        assert pipeline.store.scrapes == scrapes

    def test_cooldown_advances_only_the_clock(self):
        registry = MetricsRegistry()
        clock = SimClock()
        pipeline = TelemetryPipeline(registry, clock, interval=0.001)
        pipeline.cooldown(ticks=7)
        assert clock.now == pytest.approx(7 * 0.001)


class TestFaultDrill:
    def test_drill_walks_the_full_lifecycle(self):
        drill, telemetry = run_fault_drill(MonitorConfig(scenario="drill"))
        assert drill["visited_pending"]
        assert drill["visited_firing"]
        assert drill["visited_resolved"]
        order = [t["to"] for t in drill["transitions"]]
        assert order.index("pending") < order.index("firing")
        assert order.index("firing") < order.index("resolved")
        assert telemetry.dropped == 0

    def test_drill_scenario_is_deterministic(self):
        first = run_monitor(MonitorConfig(scenario="drill"))
        second = run_monitor(MonitorConfig(scenario="drill"))
        assert first.digest() == second.digest()


class TestSnapshotDiff:
    def _snapshots(self):
        registry = MetricsRegistry()
        counter = instrument(registry, "repro_fault_injected_total").labels(
            kind="drill")
        counter.inc(2.0)
        old = parse_snapshot(snapshot_dict(registry, now=1.0))
        counter.inc(6.0)
        new = parse_snapshot(snapshot_dict(registry, now=3.0))
        return old, new

    def test_counter_increase_and_rate(self):
        old, new = self._snapshots()
        deltas = diff_snapshots(old, new)
        (family,) = [d for d in deltas
                     if d.name == "repro_fault_injected_total"]
        (row,) = family.rows
        assert row["increase"] == 6.0
        assert row["rate"] == pytest.approx(3.0)

    def test_no_rate_without_sim_time(self):
        registry = MetricsRegistry()
        counter = instrument(registry, "repro_fault_injected_total").labels(
            kind="drill")
        counter.inc()
        old = parse_snapshot(snapshot_dict(registry))
        counter.inc()
        new = parse_snapshot(snapshot_dict(registry))
        (family,) = diff_snapshots(old, new)
        assert "rate" not in family.rows[0]

    def test_load_snapshot_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        instrument(registry, "repro_fault_injected_total").labels(
            kind="drill").inc(4.0)
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(snapshot_dict(registry, now=2.0)))
        snap = load_snapshot(str(path))
        assert snap.sim_time == 2.0
        assert "repro_fault_injected_total" in snap.families

    def test_format_deltas_renders_text(self):
        old, new = self._snapshots()
        text = format_deltas(diff_snapshots(old, new))
        assert "repro_fault_injected_total" in text


class TestDashboard:
    def test_render_smoke_on_a_real_drill(self):
        result = run_monitor(MonitorConfig(scenario="drill"))
        html = render_dashboard(result.to_dict())
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "repro monitor" in html
        assert "fault_burst" in html
        # Sparkline SVGs and the alert timeline made it in.
        assert "<svg" in html
        assert "firing" in html
        # Self-contained: no external fetches.
        assert "http://" not in html and "https://" not in html
