"""Tracer backstop: bounded memory, export round-trip, per-rank tracks."""

from __future__ import annotations

import json

from repro.analysis.trace import TraceEvent, Tracer
from repro.observability.metrics import MetricsRegistry


class TestMaxEventsBackstop:
    def test_overflow_increments_dropped_and_the_counter(self):
        registry = MetricsRegistry()
        tracer = Tracer(max_events=3, registry=registry)
        for i in range(10):
            tracer.record(f"op{i}", "op", float(i), 1.0)
        assert len(tracer.events) == 3
        assert tracer.dropped == 7
        assert registry.value("repro_trace_dropped_events_total") == 7
        assert registry.value("repro_trace_events_total", category="op") == 3

    def test_dropped_events_survive_into_the_export(self):
        tracer = Tracer(max_events=1)
        tracer.record("a", "op", 0.0, 1.0)
        tracer.record("b", "op", 1.0, 1.0)
        payload = json.loads(tracer.to_chrome_trace())
        assert payload["otherData"]["dropped_events"] == 1


class TestChromeExportRoundTrip:
    def test_export_round_trips_through_json_loads(self):
        tracer = Tracer()
        tracer.record("CPU-DPU", "segment", 0.0, 1.0)
        tracer.record("W-rank", "op", 0.0, 0.5, count=2, rank=0)
        tracer.record("W-rank", "op", 0.0, 0.5, count=2, rank=3)
        tracer.record("note", "annotation", 1.0, 0.0)
        payload = json.loads(tracer.to_chrome_trace())
        events = payload["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 4
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)
        assert payload["displayTimeUnit"] == "ms"

    def test_per_rank_ops_get_their_own_tids(self):
        base = TraceEvent.RANK_TID_BASE
        assert TraceEvent("W-rank", "op", 0.0, 1.0,
                          args={"rank": 0}).tid == base
        assert TraceEvent("W-rank", "op", 0.0, 1.0,
                          args={"rank": 3}).tid == base + 3
        # Rank args only split op tracks, never segments.
        assert TraceEvent("seg", "segment", 0.0, 1.0,
                          args={"rank": 3}).tid == 1
        assert TraceEvent("W-rank", "op", 0.0, 1.0).tid == 2

    def test_thread_name_metadata_labels_every_used_track(self):
        tracer = Tracer()
        tracer.record("CPU-DPU", "segment", 0.0, 1.0)
        tracer.record("W-rank", "op", 0.0, 0.5, rank=1)
        tracer.record("note", "annotation", 1.0, 0.0)
        events = json.loads(tracer.to_chrome_trace())["traceEvents"]
        # The X events come first (viewers tolerate either, the tests
        # pin the layout), then process/thread metadata.
        assert events[0]["ph"] == "X"
        meta = [e for e in events if e["ph"] == "M"]
        assert {"name": "vPIM simulation"} in [
            e["args"] for e in meta if e["name"] == "process_name"]
        tid_names = {e["tid"]: e["args"]["name"]
                     for e in meta if e["name"] == "thread_name"}
        assert tid_names[1] == "segments"
        assert tid_names[TraceEvent.RANK_TID_BASE + 1] == "rank 1"
        assert tid_names[3] == "misc"
        used_tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert used_tids <= set(tid_names)
