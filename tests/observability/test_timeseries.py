"""The simulated-time time-series store: scraping, retention, queries."""

from __future__ import annotations

import pytest

from repro.hardware.clock import SimClock
from repro.observability.catalog import instrument
from repro.observability.metrics import MetricsRegistry
from repro.observability.timeseries import TimeSeriesStore


def _counter(registry):
    return instrument(registry, "repro_frontend_requests_total").labels(
        vm="vm-0", device="dev0", kind="launch")


def _histogram(registry):
    return instrument(registry, "repro_frontend_request_seconds").labels(
        vm="vm-0", device="dev0", kind="launch")


class TestScraping:
    def test_grid_stamps_not_now(self):
        registry = MetricsRegistry()
        _counter(registry).inc()
        store = TimeSeriesStore(registry, interval=0.01)
        store.maybe_scrape(0.0137)
        series = store.select("repro_frontend_requests_total")[0]
        # Stamped at the grid point below 0.0137, not at 0.0137 itself.
        assert series.points[0][0] == pytest.approx(0.01)

    def test_one_scrape_per_grid_crossing(self):
        registry = MetricsRegistry()
        _counter(registry).inc()
        store = TimeSeriesStore(registry, interval=0.01)
        assert store.maybe_scrape(0.011) is True
        assert store.maybe_scrape(0.015) is False   # same grid cell
        assert store.maybe_scrape(0.019) is False
        assert store.maybe_scrape(0.021) is True    # next cell
        assert store.scrapes == 2

    def test_large_jump_yields_one_scrape(self):
        """A 10-interval leap scrapes once, at the latest grid point."""
        registry = MetricsRegistry()
        _counter(registry).inc()
        store = TimeSeriesStore(registry, interval=0.01)
        store.maybe_scrape(0.105)
        assert store.scrapes == 1
        series = store.select("repro_frontend_requests_total")[0]
        assert series.points[-1][0] == pytest.approx(0.10)

    def test_clock_listener_drives_scrapes(self):
        registry = MetricsRegistry()
        counter = _counter(registry)
        clock = SimClock()
        store = TimeSeriesStore(registry, interval=0.001)
        store.attach(clock)
        for _ in range(5):
            counter.inc()
            clock.advance(0.001)
        store.detach()
        clock.advance(0.010)  # after detach: no more scrapes
        assert store.scrapes == 5

    def test_positive_interval_required(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(MetricsRegistry(), interval=0.0)


class TestRetention:
    def test_exact_drop_accounting(self):
        registry = MetricsRegistry()
        counter = _counter(registry)
        store = TimeSeriesStore(registry, interval=0.001, max_points=4)
        for i in range(7):
            counter.inc()
            store.scrape(ts=i * 0.001)
        series = store.select("repro_frontend_requests_total")[0]
        assert len(series.points) == 4
        assert series.dropped == 3
        assert store.dropped_total >= 3  # self-metrics may also wrap

    def test_drop_counter_exported_by_name(self):
        registry = MetricsRegistry()
        counter = _counter(registry)
        store = TimeSeriesStore(registry, interval=0.001, max_points=2)
        for i in range(4):
            counter.inc()
            store.scrape(ts=i * 0.001)
        family = registry.get("repro_tsdb_dropped_points_total")
        dropped = {labels["name"]: child.value
                   for labels, child in family.samples()}
        assert dropped["repro_frontend_requests_total"] >= 2

    def test_lossless_run_reports_zero(self):
        registry = MetricsRegistry()
        counter = _counter(registry)
        store = TimeSeriesStore(registry, interval=0.001)
        for i in range(10):
            counter.inc()
            store.scrape(ts=i * 0.001)
        assert store.dropped_total == 0


class TestQueries:
    def _store_with_traffic(self):
        registry = MetricsRegistry()
        counter = _counter(registry)
        histogram = _histogram(registry)
        store = TimeSeriesStore(registry, interval=0.001)
        for i in range(10):
            counter.inc(2.0)
            histogram.observe(0.002 * (i + 1))
            store.scrape(ts=i * 0.001)
        return store

    def test_latest(self):
        store = self._store_with_traffic()
        assert store.latest("repro_frontend_requests_total") == 20.0

    def test_delta_full_window(self):
        store = self._store_with_traffic()
        # First point holds 2.0, last holds 20.0.
        assert store.delta("repro_frontend_requests_total") == 18.0

    def test_delta_bounded_window(self):
        store = self._store_with_traffic()
        # Exclusive cutoff: points with ts > 0.009 - 0.003 are in-window
        # (0.007, 0.008, 0.009), so the increase is 20 - 16.
        value = store.delta("repro_frontend_requests_total", window=0.003)
        assert value == pytest.approx(4.0)

    def test_rate(self):
        store = self._store_with_traffic()
        value = store.rate("repro_frontend_requests_total")
        assert value == pytest.approx(18.0 / 0.009)

    def test_window_percentile_monotone(self):
        store = self._store_with_traffic()
        p50 = store.window_percentile("repro_frontend_request_seconds", 0.5)
        p99 = store.window_percentile("repro_frontend_request_seconds", 0.99)
        assert 0 < p50 <= p99

    def test_missing_metric_queries_are_zero_or_none(self):
        store = self._store_with_traffic()
        assert store.latest("repro_paging_swaps_total") is None
        assert store.delta("repro_paging_swaps_total") == 0.0
        assert store.rate("repro_paging_swaps_total") == 0.0
        assert store.window_percentile("repro_paging_swap_seconds",
                                       0.99) == 0.0

    def test_label_filtered_select(self):
        registry = MetricsRegistry()
        family = instrument(registry, "repro_frontend_requests_total")
        family.labels(vm="vm-0", device="dev0", kind="launch").inc()
        family.labels(vm="vm-1", device="dev0", kind="launch").inc(5.0)
        store = TimeSeriesStore(registry, interval=0.001)
        store.scrape(ts=0.0)
        assert store.latest("repro_frontend_requests_total",
                            {"vm": "vm-1"}) == 5.0
        assert store.latest("repro_frontend_requests_total") == 6.0

    def test_trajectory_sums_across_series(self):
        registry = MetricsRegistry()
        family = instrument(registry, "repro_frontend_requests_total")
        family.labels(vm="vm-0", device="dev0", kind="launch").inc()
        family.labels(vm="vm-1", device="dev0", kind="launch").inc(2.0)
        store = TimeSeriesStore(registry, interval=0.001)
        store.scrape(ts=0.0)
        store.scrape(ts=0.001)
        trajectory = store.trajectory("repro_frontend_requests_total")
        assert trajectory == [(0.0, 3.0), (0.001, 3.0)]

    def test_snapshot_round_trips_histogram_state(self):
        store = self._store_with_traffic()
        snap = store.snapshot()
        hist = [s for s in snap["series"]
                if s["name"] == "repro_frontend_request_seconds"][0]
        assert hist["kind"] == "histogram"
        assert hist["bounds"]
        last = hist["points"][-1]
        assert last["count"] == 10
        assert last["sum"] == pytest.approx(sum(
            0.002 * (i + 1) for i in range(10)))


class TestMultiRegistry:
    def test_extra_registries_are_scraped(self):
        main = MetricsRegistry()
        other = MetricsRegistry()
        _counter(main).inc()
        instrument(other, "repro_frontend_requests_total").labels(
            vm="vm-9", device="dev0", kind="launch").inc(3.0)
        store = TimeSeriesStore(main, interval=0.001,
                                extra_registries=[other])
        store.scrape(ts=0.0)
        assert store.latest("repro_frontend_requests_total") == 4.0

    def test_self_metrics_do_not_mutate_during_sweep(self):
        """The store's own families are written after collect, so a
        scrape terminates and the accounting lands one scrape late."""
        registry = MetricsRegistry()
        _counter(registry).inc()
        store = TimeSeriesStore(registry, interval=0.001)
        store.scrape(ts=0.0)
        store.scrape(ts=0.001)
        # The second scrape captured the first one's self-accounting.
        assert store.latest("repro_tsdb_scrapes_total") == 1.0
