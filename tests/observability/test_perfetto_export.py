"""Perfetto export: named per-layer tracks and retention metadata."""

from __future__ import annotations

from repro.hardware.clock import SimClock
from repro.observability.spans import LAYERS, SpanRecorder


def _run_trace(spans, clock, swap_s, session_s):
    root = spans.begin("session.run", "session")
    swap = spans.begin("paging.swap_out", "paging")
    swap.attributes["direction"] = "out"
    clock.advance(swap_s)
    spans.end(swap, end=clock.now)
    clock.advance(session_s - swap_s)
    spans.end(root, end=clock.now)


def _recorder_with_tail_trace():
    """Ten unremarkable traces, then one 10x slower: with head sampling
    off entirely, only the slow one survives — by the tail tier."""
    clock = SimClock()
    spans = SpanRecorder(clock, sample_rate=0.0, tail_sampling=True,
                         tail_factor=1.5)
    for _ in range(10):
        _run_trace(spans, clock, swap_s=0.002, session_s=0.01)
    _run_trace(spans, clock, swap_s=0.08, session_s=0.1)
    return spans


class TestTailRetentionMetadata:
    def test_only_the_slow_trace_is_retained(self):
        spans = _recorder_with_tail_trace()
        assert spans.traces_finished == 11
        assert len(spans.traces) == 1
        assert spans.traces[0].retention == "tail"

    def test_root_span_args_carry_retention(self):
        spans = _recorder_with_tail_trace()
        doc = spans.to_perfetto()
        roots = [e for e in doc["traceEvents"]
                 if e.get("ph") == "X" and e["name"] == "session.run"]
        assert len(roots) == 1
        assert roots[0]["args"]["retention"] == "tail"


class TestNamedTracks:
    def test_paging_layer_gets_its_own_named_track(self):
        spans = _recorder_with_tail_trace()
        doc = spans.to_perfetto()
        names = {e["tid"]: e["args"]["name"]
                 for e in doc["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "thread_name"}
        paging_tid = LAYERS.index("paging") + 1
        assert names[paging_tid] == "paging"

    def test_paging_spans_land_on_the_paging_track(self):
        spans = _recorder_with_tail_trace()
        doc = spans.to_perfetto()
        paging_tid = LAYERS.index("paging") + 1
        swaps = [e for e in doc["traceEvents"]
                 if e.get("ph") == "X" and e["cat"] == "paging"]
        assert swaps
        assert all(e["tid"] == paging_tid for e in swaps)
        assert swaps[0]["args"]["direction"] == "out"

    def test_track_sort_follows_layer_order(self):
        spans = _recorder_with_tail_trace()
        doc = spans.to_perfetto()
        sort_index = {e["tid"]: e["args"]["sort_index"]
                      for e in doc["traceEvents"]
                      if e.get("ph") == "M"
                      and e["name"] == "thread_sort_index"}
        session_tid = LAYERS.index("session") + 1
        paging_tid = LAYERS.index("paging") + 1
        assert sort_index[session_tid] < sort_index[paging_tid]

    def test_other_data_reports_retention_counts(self):
        spans = _recorder_with_tail_trace()
        doc = spans.to_perfetto()
        assert doc["otherData"]["traces_retained"] == 1
        assert doc["otherData"]["traces_finished"] == 11
