"""The alert-rule engine: validation, the state machine, rule kinds."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.observability.alerts import AlertRule, AlertRuleEngine
from repro.observability.catalog import instrument
from repro.observability.metrics import MetricsRegistry
from repro.observability.timeseries import TimeSeriesStore


def _store():
    registry = MetricsRegistry()
    counter = instrument(registry, "repro_fault_injected_total").labels(
        kind="drill")
    store = TimeSeriesStore(registry, interval=0.001)
    return registry, counter, store


class TestValidation:
    def test_unknown_metric_raises_at_construction(self):
        with pytest.raises(ObservabilityError, match="unknown metric"):
            AlertRule(name="bad", metric="repro_no_such_metric")

    def test_unknown_kind_raises(self):
        with pytest.raises(ObservabilityError, match="unknown kind"):
            AlertRule(name="bad", metric="repro_fault_injected_total",
                      kind="anomaly")

    def test_unknown_query_raises(self):
        with pytest.raises(ObservabilityError, match="unknown query"):
            AlertRule(name="bad", metric="repro_fault_injected_total",
                      query="stddev")

    def test_unknown_operator_raises(self):
        with pytest.raises(ObservabilityError, match="unknown operator"):
            AlertRule(name="bad", metric="repro_fault_injected_total",
                      op="!=")

    def test_burn_rate_needs_positive_target(self):
        with pytest.raises(ObservabilityError, match="positive target"):
            AlertRule(name="bad", metric="repro_frontend_request_seconds",
                      kind="burn_rate", target=0.0)

    def test_duplicate_rule_names_raise(self):
        _, _, store = _store()
        rule = AlertRule(name="dup", metric="repro_fault_injected_total")
        with pytest.raises(ObservabilityError, match="duplicate"):
            AlertRuleEngine(store, [rule, rule])


class TestStateMachine:
    def _engine(self, for_s):
        registry, counter, store = _store()
        rule = AlertRule(
            name="fault_burst", metric="repro_fault_injected_total",
            kind="threshold", query="delta", op=">", bound=0.0,
            window=0.005, for_s=for_s)
        engine = AlertRuleEngine(store, [rule], registry=registry)
        return counter, store, engine

    def test_zero_holddown_fires_immediately(self):
        counter, store, engine = self._engine(for_s=0.0)
        store.scrape(ts=0.0)
        counter.inc()
        store.scrape(ts=0.001)
        engine.evaluate(0.001)
        assert engine.state_of("fault_burst") == "firing"

    def test_holddown_goes_through_pending(self):
        counter, store, engine = self._engine(for_s=0.002)
        store.scrape(ts=0.0)
        counter.inc()
        store.scrape(ts=0.001)
        engine.evaluate(0.001)
        assert engine.state_of("fault_burst") == "pending"
        counter.inc()
        store.scrape(ts=0.002)
        engine.evaluate(0.002)
        assert engine.state_of("fault_burst") == "pending"
        counter.inc()
        store.scrape(ts=0.003)
        engine.evaluate(0.003)
        assert engine.state_of("fault_burst") == "firing"

    def test_pending_clears_without_firing(self):
        counter, store, engine = self._engine(for_s=0.01)
        store.scrape(ts=0.0)
        counter.inc()
        store.scrape(ts=0.001)
        engine.evaluate(0.001)
        assert engine.state_of("fault_burst") == "pending"
        # The burst ends; the delta window slides past it.
        for i in range(2, 10):
            store.scrape(ts=i * 0.001)
            engine.evaluate(i * 0.001)
        assert engine.state_of("fault_burst") == "inactive"
        assert "firing" not in {t.to_state for t in engine.transitions()}

    def test_resolved_is_one_evaluation_wide(self):
        counter, store, engine = self._engine(for_s=0.0)
        store.scrape(ts=0.0)
        counter.inc()
        store.scrape(ts=0.001)
        engine.evaluate(0.001)
        assert engine.state_of("fault_burst") == "firing"
        for i in range(2, 10):
            store.scrape(ts=i * 0.001)
            engine.evaluate(i * 0.001)
            if engine.state_of("fault_burst") != "firing":
                break
        assert engine.state_of("fault_burst") == "resolved"
        store.scrape(ts=0.011)
        engine.evaluate(0.011)
        assert engine.state_of("fault_burst") == "inactive"

    def test_full_lifecycle_transition_order(self):
        counter, store, engine = self._engine(for_s=0.002)
        for i in range(20):
            if 1 <= i <= 4:
                counter.inc()
            store.scrape(ts=i * 0.001)
            engine.evaluate(i * 0.001)
        visited = [t.to_state for t in engine.transitions()]
        assert visited == ["pending", "firing", "resolved", "inactive"]

    def test_state_exported_through_registry(self):
        counter, store, engine = self._engine(for_s=0.0)
        store.scrape(ts=0.0)
        counter.inc()
        store.scrape(ts=0.001)
        engine.evaluate(0.001)
        family = engine.obs.registry.get("repro_alert_state")
        occupied = {labels["state"]: child.value
                    for labels, child in family.samples()
                    if labels["rule"] == "fault_burst"}
        assert occupied["firing"] == 1.0
        assert occupied["inactive"] == 0.0


class TestRuleKinds:
    def test_burn_rate_uses_percentile_over_target(self):
        registry = MetricsRegistry()
        hist = instrument(registry, "repro_frontend_request_seconds").labels(
            vm="vm-0", device="dev0", kind="launch")
        store = TimeSeriesStore(registry, interval=0.001)
        rule = AlertRule(
            name="slow", metric="repro_frontend_request_seconds",
            kind="burn_rate", q=0.99, target=0.01, bound=1.0, op=">")
        engine = AlertRuleEngine(store, [rule])
        hist.observe(0.001)
        store.scrape(ts=0.0)
        engine.evaluate(0.0)
        assert engine.state_of("slow") == "inactive"
        for _ in range(50):
            hist.observe(0.1)  # 10x the 10ms target
        store.scrape(ts=0.001)
        engine.evaluate(0.001)
        assert engine.state_of("slow") == "firing"
        assert engine.states["slow"].last_value > 1.0

    def test_absence_fires_when_series_never_appears(self):
        _, _, store = _store()
        rule = AlertRule(
            name="liveness", metric="repro_paging_swaps_total",
            kind="absence", window=None, for_s=0.0)
        engine = AlertRuleEngine(store, [rule])
        store.scrape(ts=0.0)
        engine.evaluate(0.0)
        assert engine.state_of("liveness") == "firing"

    def test_absence_clears_when_samples_flow(self):
        registry, counter, store = _store()
        rule = AlertRule(
            name="liveness", metric="repro_fault_injected_total",
            kind="absence", window=None, for_s=0.0)
        engine = AlertRuleEngine(store, [rule])
        counter.inc()
        store.scrape(ts=0.0)
        engine.evaluate(0.0)
        assert engine.state_of("liveness") == "inactive"

    def test_snapshot_carries_transitions(self):
        registry, counter, store = _store()
        rule = AlertRule(
            name="burst", metric="repro_fault_injected_total",
            kind="threshold", query="latest", op=">", bound=0.5)
        engine = AlertRuleEngine(store, [rule])
        counter.inc()
        store.scrape(ts=0.0)
        engine.evaluate(0.0)
        snap = engine.snapshot()
        assert snap["evaluations"] == 1
        (entry,) = snap["rules"]
        assert entry["state"] == "firing"
        assert entry["transitions"][0]["to"] == "firing"
