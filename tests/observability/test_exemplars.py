"""OpenMetrics exemplar rendering and exposition-format escaping."""

from __future__ import annotations

import json
import math
import re

import pytest

from repro.observability.catalog import instrument
from repro.observability.export import (
    _escape_label_value,
    format_exemplar,
    format_value,
    render_json,
    render_prometheus,
    snapshot_dict,
)
from repro.observability.metrics import Exemplar, MetricsRegistry

TRICKY = [
    'back\\slash',
    'new\nline',
    'quo"te',
    'all\\three\n"at once"',
    'trailing backslash\\',
    '',
]


def _unescape(value: str) -> str:
    """Reverse of the exposition-format escaping, char by char."""
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", "n": "\n", '"': '"'}[nxt])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class TestEscaping:
    @pytest.mark.parametrize("raw", TRICKY)
    def test_round_trip(self, raw):
        assert _unescape(_escape_label_value(raw)) == raw

    def test_backslash_escaped_before_others(self):
        # If the order were wrong, \n would double-escape to \\n.
        assert _escape_label_value("a\nb") == "a\\nb"
        assert _escape_label_value("a\\nb") == "a\\\\nb"

    def test_quote(self):
        assert _escape_label_value('say "hi"') == 'say \\"hi\\"'


class TestFormatValue:
    def test_integers_render_bare(self):
        assert format_value(3.0) == "3"
        assert format_value(0.0) == "0"
        assert format_value(-7.0) == "-7"

    def test_infinities(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"

    def test_nan_parses_back(self):
        assert math.isnan(float(format_value(float("nan"))))

    @pytest.mark.parametrize("value", [
        0.0, 1.0, -1.0, 0.1, 1e-9, 12345.678, 1e20, -2.5e-3,
        float("inf"), float("-inf"),
    ])
    def test_parse_back_property(self, value):
        text = format_value(value)
        parsed = float("inf") if text == "+Inf" else (
            float("-inf") if text == "-Inf" else float(text))
        assert parsed == value


class TestFormatExemplar:
    def test_openmetrics_suffix_shape(self):
        suffix = format_exemplar(
            Exemplar(trace_id="trace-000011", value=0.0846, ts=0.25))
        assert suffix == ' # {trace_id="trace-000011"} 0.0846 0.25'

    def test_trace_id_is_escaped(self):
        suffix = format_exemplar(
            Exemplar(trace_id='odd"id\\', value=1.0, ts=0.0))
        assert 'trace_id="odd\\"id\\\\"' in suffix


class TestRenderedExposition:
    def _registry(self):
        registry = MetricsRegistry()
        hist = instrument(registry, "repro_frontend_request_seconds").labels(
            vm="vm-0", device="dev0", kind="launch")
        hist.observe(0.004, exemplar=("trace-000003", 0.1))
        return registry

    def test_bucket_line_carries_exemplar(self):
        text = render_prometheus(self._registry())
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_frontend_request_seconds_bucket")
                 and "# {" in l]
        assert len(lines) == 1
        assert 'trace_id="trace-000003"' in lines[0]
        assert lines[0].rstrip().endswith("0.004 0.1")

    def test_unexemplared_buckets_are_clean(self):
        registry = MetricsRegistry()
        hist = instrument(registry, "repro_frontend_request_seconds").labels(
            vm="vm-0", device="dev0", kind="launch")
        hist.observe(0.004)  # no exemplar kwarg: default path
        text = render_prometheus(registry)
        assert "# {" not in text.replace("# HELP", "").replace("# TYPE", "")

    def test_json_snapshot_carries_per_bucket_exemplar(self):
        snap = snapshot_dict(self._registry())
        family = [f for f in snap["metrics"]
                  if f["name"] == "repro_frontend_request_seconds"][0]
        buckets = family["samples"][0]["buckets"]
        exemplared = [b for b in buckets if "exemplar" in b]
        assert len(exemplared) == 1
        assert exemplared[0]["exemplar"] == {
            "trace_id": "trace-000003", "value": 0.004, "ts": 0.1}

    def test_render_json_is_valid_json(self):
        parsed = json.loads(render_json(self._registry()))
        assert parsed["metrics"]

    def test_label_values_parse_back_from_exposition(self):
        """Property: every tricky label value survives render + parse."""
        registry = MetricsRegistry()
        family = instrument(registry, "repro_fault_injected_total")
        for raw in TRICKY:
            family.labels(kind=raw).inc()
        text = render_prometheus(registry)
        pattern = re.compile(
            r'^repro_fault_injected_total\{kind="((?:[^"\\]|\\.)*)"\} ')
        recovered = set()
        for line in text.splitlines():
            match = pattern.match(line)
            if match:
                recovered.add(_unescape(match.group(1)))
        assert recovered == set(TRICKY)
