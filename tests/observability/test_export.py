"""Exporters: Prometheus text exposition validity and JSON snapshots."""

from __future__ import annotations

import json
import re

import pytest

from repro.observability.export import (
    format_value,
    render_json,
    render_prometheus,
    save_snapshot,
    snapshot_dict,
)
from repro.observability.metrics import MetricsRegistry

#: One sample line: name{labels} value  (labels optional).
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$")


@pytest.fixture
def registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_ops_total", "Operations", ("rank", "direction"))
    c.labels(rank="0", direction="write").inc(3)
    c.labels(rank="1", direction="read").inc()
    g = reg.gauge("repro_depth", "Queue depth", ("queue",))
    g.labels(queue="transferq").set(5)
    h = reg.histogram("repro_lat_seconds", "Latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


class TestPrometheusText:
    def test_every_line_is_comment_or_sample(self, registry):
        for line in render_prometheus(registry).strip().split("\n"):
            assert line.startswith("# ") or _SAMPLE_RE.match(line), line

    def test_help_and_type_precede_samples(self, registry):
        text = render_prometheus(registry)
        assert ("# HELP repro_ops_total Operations\n"
                "# TYPE repro_ops_total counter\n"
                'repro_ops_total{rank="0",direction="write"} 3') in text

    def test_gauge_rendered(self, registry):
        assert ('repro_depth{queue="transferq"} 5\n'
                in render_prometheus(registry))

    def test_histogram_series(self, registry):
        text = render_prometheus(registry)
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_sum 5.55" in text
        assert "repro_lat_seconds_count 3" in text

    def test_families_in_name_order(self, registry):
        text = render_prometheus(registry)
        positions = [text.index(f"# HELP {name} ")
                     for name in ("repro_depth", "repro_lat_seconds",
                                  "repro_ops_total")]
        assert positions == sorted(positions)

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_x_total", "h", ("app",))
        fam.labels(app='we"ird\\name\nline').inc()
        text = render_prometheus(reg)
        assert r'app="we\"ird\\name\nline"' in text

    def test_ends_with_newline(self, registry):
        assert render_prometheus(registry).endswith("\n")


class TestFormatValue:
    @pytest.mark.parametrize("value,expected", [
        (3.0, "3"),
        (0.25, "0.25"),
        (float("inf"), "+Inf"),
        (float("-inf"), "-Inf"),
    ])
    def test_rendering(self, value, expected):
        assert format_value(value) == expected


class TestJson:
    def test_roundtrips_through_json(self, registry):
        payload = json.loads(render_json(registry))
        assert payload == snapshot_dict(registry)

    def test_counter_samples(self, registry):
        payload = snapshot_dict(registry)
        by_name = {m["name"]: m for m in payload["metrics"]}
        ops = by_name["repro_ops_total"]
        assert ops["type"] == "counter"
        assert ops["label_names"] == ["rank", "direction"]
        assert {"labels": {"rank": "0", "direction": "write"},
                "value": 3.0} in ops["samples"]

    def test_histogram_sample_shape(self, registry):
        payload = snapshot_dict(registry)
        by_name = {m["name"]: m for m in payload["metrics"]}
        sample = by_name["repro_lat_seconds"]["samples"][0]
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(5.55)
        assert sample["buckets"][-1] == {"le": "+Inf", "count": 3}


class TestSaveSnapshot:
    def test_prom_format(self, registry, tmp_path):
        path = tmp_path / "metrics.prom"
        save_snapshot(registry, str(path), fmt="prom")
        assert path.read_text() == render_prometheus(registry)

    def test_json_format(self, registry, tmp_path):
        path = tmp_path / "metrics.json"
        save_snapshot(registry, str(path), fmt="json")
        assert json.loads(path.read_text()) == snapshot_dict(registry)

    def test_unknown_format_rejected(self, registry, tmp_path):
        with pytest.raises(ValueError):
            save_snapshot(registry, str(tmp_path / "x"), fmt="yaml")
