"""The shared statistics module and the call sites that migrated to it.

Two percentile conventions coexist in the codebase on purpose, and this
file pins both so the dedup cannot silently change either:

- ``percentile_linear`` (q in [0, 1], linear interpolation) — the SLO
  tracker's convention (`repro.qos.slo._percentile`);
- ``percentile_nearest_rank`` (q in [0, 100], nearest-rank) — the fleet
  analysis convention (`repro.analysis.fleet.percentile`).
"""

from __future__ import annotations

import math

import pytest

from repro.observability.stats import (
    DecayedMean,
    DecayedReservoir,
    histogram_quantile,
    percentile_linear,
    percentile_nearest_rank,
)


class TestPercentileLinear:
    def test_empty_is_zero(self):
        assert percentile_linear([], 0.99) == 0.0

    def test_single_sample(self):
        assert percentile_linear([42.0], 0.5) == 42.0

    def test_interpolates(self):
        # Between sorted ranks: p50 of [1, 2, 3, 4] sits at rank 1.5.
        assert percentile_linear([4.0, 1.0, 3.0, 2.0], 0.5) == 2.5

    def test_endpoints(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile_linear(samples, 0.0) == 1.0
        assert percentile_linear(samples, 1.0) == 5.0

    def test_matches_slo_convention(self):
        """`repro.qos.slo._percentile` is an alias of this function."""
        from repro.qos.slo import _percentile

        samples = [0.3, 0.1, 0.9, 0.5, 0.7]
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert _percentile(samples, q) == percentile_linear(samples, q)


class TestPercentileNearestRank:
    def test_empty_is_zero(self):
        assert percentile_nearest_rank([], 99) == 0.0

    def test_nearest_rank_p50(self):
        # Nearest rank: round(0.5 * (4 - 1)) = rank 2 -> an observed value.
        assert percentile_nearest_rank([4.0, 1.0, 3.0, 2.0], 50) == 3.0

    def test_p99_small_sample_is_max(self):
        assert percentile_nearest_rank([1.0, 2.0, 3.0], 99) == 3.0

    def test_matches_fleet_convention(self):
        """`repro.analysis.fleet.percentile` delegates to this function."""
        from repro.analysis.fleet import percentile

        values = [0.3, 0.1, 0.9, 0.5, 0.7]
        for q in (0, 25, 50, 90, 99, 100):
            assert percentile(values, q) == percentile_nearest_rank(values, q)

    def test_the_two_conventions_differ(self):
        """The reason both survive: they disagree on interior ranks."""
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile_linear(values, 0.5) == 2.5
        assert percentile_nearest_rank(values, 50) == 3.0


class TestHistogramQuantile:
    BOUNDS = (0.001, 0.01, 0.1)

    def test_empty_is_zero(self):
        assert histogram_quantile(0.99, self.BOUNDS, [0, 0, 0, 0]) == 0.0

    def test_interpolates_within_bucket(self):
        # All mass in the (0.001, 0.01] bucket: p50 is its midpoint-ish.
        value = histogram_quantile(0.5, self.BOUNDS, [0, 10, 0, 0])
        assert 0.001 < value <= 0.01

    def test_overflow_clamps_to_top_bound(self):
        value = histogram_quantile(0.99, self.BOUNDS, [0, 0, 0, 5])
        assert value == self.BOUNDS[-1]

    def test_monotone_in_q(self):
        deltas = [3, 5, 2, 1]
        quantiles = [histogram_quantile(q, self.BOUNDS, deltas)
                     for q in (0.1, 0.5, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)


class TestDecayedMean:
    def test_unbiased_first_update(self):
        mean = DecayedMean(alpha=0.3)
        mean.update(10.0)
        assert mean.mean == pytest.approx(10.0)

    def test_tracks_recent_values(self):
        mean = DecayedMean(alpha=0.5)
        for _ in range(20):
            mean.update(1.0)
        for _ in range(20):
            mean.update(9.0)
        assert mean.mean > 8.0  # the old regime has decayed away

    def test_counts_updates(self):
        mean = DecayedMean()
        for i in range(5):
            mean.update(float(i))
        assert mean.n == 5

    def test_constant_stream_is_exact(self):
        mean = DecayedMean(alpha=0.1)
        for _ in range(50):
            mean.update(3.5)
        assert mean.mean == pytest.approx(3.5)


class TestDecayedReservoir:
    def test_bounded_window(self):
        reservoir = DecayedReservoir(size=8)
        for i in range(100):
            reservoir.update(float(i))
        assert len(reservoir.samples) == 8
        assert reservoir.samples[0] == 92.0  # oldest evicted first
        assert reservoir.n == 100

    def test_percentile_of_window(self):
        reservoir = DecayedReservoir(size=64)
        for i in range(32):
            reservoir.update(float(i))
        assert math.isfinite(reservoir.mean)
        assert reservoir.percentile(1.0) == 31.0
        assert reservoir.percentile(0.0) == 0.0
