"""Request-scoped tracing: propagation, attribution, sampling, recovery."""

from __future__ import annotations

import json

import pytest

from repro.analysis.figures import run_app_traced
from repro.apps.prim.va import VectorAdd
from repro.config import small_machine
from repro.core import VPim
from repro.faults import FaultInjector, FaultKind, FaultPlan, run_with_recovery
from repro.hardware.clock import SimClock
from repro.observability import (
    SpanRecorder,
    critical_path,
    layer_self_times,
    slowest_spans,
)
from repro.observability.metrics import MetricsRegistry

from tests.faults.conftest import schedule

APP = dict(nr_dpus=8, n_elements=1 << 12)


@pytest.fixture(scope="module")
def nw_traced():
    """The acceptance workload: ``repro trace NW --dpus 16 --preset vPIM``."""
    report, registry, recorder = run_app_traced("NW", 16, preset="vPIM")
    assert report.verified
    return report, registry, recorder


def _armed_stack(sample_rate: float = 1.0):
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    vpim.spans.sample_rate = sample_rate
    plan = FaultPlan(seed=0)
    injector = FaultInjector(plan, vpim.clock,
                             registry=vpim.machine.metrics)
    injector.arm_machine(vpim.machine, vpim.manager)
    session = vpim.vm_session(nr_vupmem=1)
    injector.arm_vm(session.vm)
    return vpim, injector, session


class TestCrossLayerPropagation:
    def test_every_backend_request_has_a_frontend_parent(self, nw_traced):
        _, _, recorder = nw_traced
        trace = recorder.latest()
        backends = trace.by_name("backend.request")
        assert backends
        for span in backends:
            parent = trace.span(span.parent_id)
            assert parent is not None
            assert parent.layer == "frontend"

    def test_all_layers_of_the_stack_appear(self, nw_traced):
        _, _, recorder = nw_traced
        trace = recorder.latest()
        layers = {span.layer for span in trace.spans}
        assert {"session", "sdk", "frontend", "virtio", "backend",
                "rank"} <= layers

    def test_single_trace_id_spans_the_whole_session(self, nw_traced):
        _, _, recorder = nw_traced
        trace = recorder.latest()
        assert len({span.trace_id for span in trace.spans}) == 1
        assert trace.root.name == "session.run"
        assert trace.root.parent_id is None

    def test_rank_spans_carry_rank_attribute(self, nw_traced):
        _, _, recorder = nw_traced
        trace = recorder.latest()
        rank_spans = trace.by_layer("rank")
        assert rank_spans
        assert all(isinstance(s.attributes.get("rank"), int)
                   for s in rank_spans)


class TestCriticalPathAttribution:
    def test_layer_self_times_partition_the_session_total(self, nw_traced):
        _, _, recorder = nw_traced
        trace = recorder.latest()
        self_times = layer_self_times(trace)
        assert sum(self_times.values()) == pytest.approx(
            trace.root.duration, abs=1e-9)

    def test_span_derived_wrank_time_matches_profiler(self, nw_traced):
        report, _, recorder = nw_traced
        trace = recorder.latest()
        for kind in ("W-rank", "R-rank", "CI"):
            tagged = [s for s in trace.spans
                      if s.attributes.get("op") == kind]
            profiled = report.profile.driver.get(kind)
            if profiled is None:
                assert not tagged
                continue
            assert sum(s.duration for s in tagged) == profiled.time

    def test_critical_path_descends_from_the_root(self, nw_traced):
        _, _, recorder = nw_traced
        trace = recorder.latest()
        chain = critical_path(trace)
        assert chain[0] is trace.root
        for parent, child in zip(chain, chain[1:]):
            assert child.parent_id == parent.span_id
            assert child.duration <= parent.duration + 1e-12

    def test_slowest_spans_filters_and_sorts(self, nw_traced):
        _, _, recorder = nw_traced
        trace = recorder.latest()
        slow = slowest_spans(trace, name="frontend.request", top=3)
        assert len(slow) == 3
        assert all(s.name == "frontend.request" for s in slow)
        durations = [s.duration for s in slow]
        assert durations == sorted(durations, reverse=True)


class TestHeadSampling:
    CFG = dict(config=None)

    def test_zero_rate_retains_nothing_but_counts_exactly(self):
        report, registry, recorder = run_app_traced(
            "CHK", 8, sample_rate=0.0,
            config=small_machine(nr_ranks=2, dpus_per_rank=8))
        assert report.verified
        assert recorder.traces == []
        assert recorder.traces_retained == 0
        assert recorder.traces_finished == 1
        assert recorder.spans_started > 0
        assert (registry.get("repro_span_started_total").total()
                == recorder.spans_started)
        assert registry.value("repro_span_traces_total",
                              retained="false") == 1

    def test_sampling_never_perturbs_the_timeline(self):
        clocks = {}
        for rate in (1.0, 0.0):
            report, _, recorder = run_app_traced(
                "CHK", 8, sample_rate=rate,
                config=small_machine(nr_ranks=2, dpus_per_rank=8))
            clocks[rate] = (recorder.clock.now, report.segments_total)
        assert clocks[1.0] == clocks[0.0]

    def test_systematic_sampling_keeps_the_expected_share(self):
        recorder = SpanRecorder(SimClock(), sample_rate=0.25)
        kept = 0
        for _ in range(100):
            root = recorder.begin("session.run", "session")
            recorder.end(root, duration=1.0)
            kept += 1 if recorder.traces and \
                recorder.traces[-1].root is root else 0
        assert kept == 25

    def test_span_cap_drops_and_counts(self):
        registry = MetricsRegistry()
        recorder = SpanRecorder(SimClock(), max_spans_per_trace=2,
                                registry=registry)
        root = recorder.begin("session.run", "session")
        recorder.event("a", "sdk", 1.0)
        recorder.event("b", "sdk", 1.0)   # over the cap
        recorder.end(root)
        trace = recorder.latest()
        assert len(trace) == 2
        assert trace.dropped_spans == 1
        assert recorder.spans_dropped["span_cap"] == 1
        assert registry.value("repro_span_dropped_total",
                              reason="span_cap") == 1
        # Counters stay exact: started counts the dropped span too.
        assert recorder.spans_started == 3

    def test_trace_cap_bounds_retained_traces(self):
        recorder = SpanRecorder(SimClock(), max_traces=2)
        for _ in range(4):
            root = recorder.begin("session.run", "session")
            recorder.end(root, duration=1.0)
        assert len(recorder.traces) == 2
        assert recorder.spans_dropped["trace_cap"] == 2
        assert recorder.traces_finished == 4


class TestFaultedTraces:
    def test_faulted_trace_retained_at_zero_sample_rate(self):
        vpim, injector, session = _armed_stack(sample_rate=0.0)
        schedule(injector, 0.0, FaultKind.TRANSPORT_CORRUPTION,
                 "transport:*")
        report = session.run(VectorAdd(**APP))
        assert report.verified          # retried within budget
        trace = vpim.spans.latest()
        assert trace is not None
        assert trace.faulted
        assert trace.root.attributes["faults"]

    def test_recovery_rerun_shares_trace_id_with_retry_link(self):
        vpim, injector, session = _armed_stack()
        schedule(injector, 1e-4, FaultKind.RANK_OFFLINE, "rank:*")
        recovery = run_with_recovery(session, VectorAdd(**APP))
        assert recovery.recovered
        recorder = vpim.spans
        attempts = recorder.traces_for(recorder.last_root.trace_id)
        assert len(attempts) == 2
        failed, rerun = attempts
        assert failed.faulted
        assert failed.root.span_id != rerun.root.span_id
        assert {"kind": "retry_of", "span_id": failed.root.span_id} \
            in rerun.root.links
        # The failed attempt's abandoned spans were closed, not leaked.
        assert all(s.end is not None for s in failed.spans)

    def test_unverified_run_is_retroactively_retained(self):
        recorder = SpanRecorder(SimClock(), sample_rate=0.0)
        root = recorder.begin("session.run", "session")
        recorder.end(root, duration=1.0)
        assert recorder.traces == []
        recorder.mark_last_faulted("dpu_mram_bitflip")
        trace = recorder.latest()
        assert trace is not None and trace.faulted
        assert trace.root.attributes["faults"] == ["dpu_mram_bitflip"]


class TestTraceLogs:
    def test_transient_fault_log_is_trace_correlated(self):
        vpim, injector, session = _armed_stack()
        schedule(injector, 0.0, FaultKind.TRANSPORT_CORRUPTION,
                 "transport:*")
        session.run(VectorAdd(**APP))
        trace = vpim.spans.latest()
        records = vpim.spans.log.for_trace(trace.trace_id)
        assert records
        fault = next(r for r in records if r["event"] == "transient_fault")
        assert trace.span(fault["span_id"]) is not None
        lines = vpim.spans.log.to_jsonl().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_log_overflow_drops_newest_and_counts(self):
        recorder = SpanRecorder(SimClock())
        recorder.log.max_records = 1
        assert recorder.log.emit("first", "session") is not None
        assert recorder.log.emit("second", "session") is None
        assert recorder.log.dropped == 1
        assert [r["event"] for r in recorder.log.records] == ["first"]


class TestPerfettoExport:
    def test_export_shape_and_flow_events(self, nw_traced):
        _, _, recorder = nw_traced
        payload = json.loads(json.dumps(recorder.to_perfetto()))
        events = payload["traceEvents"]
        assert events[0]["ph"] == "X"
        phases = {e["ph"] for e in events}
        assert {"X", "M", "s", "f"} <= phases
        # Metadata events follow every X event.
        last_x = max(i for i, e in enumerate(events) if e["ph"] == "X")
        first_m = min(i for i, e in enumerate(events) if e["ph"] == "M")
        assert first_m > last_x
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"frontend", "backend", "virtio", "session"} <= names
        assert any(name.startswith("rank ") for name in names)
        flows = [e for e in events if e["ph"] in ("s", "f")]
        starts = {e["id"] for e in flows if e["ph"] == "s"}
        finishes = {e["id"] for e in flows if e["ph"] == "f"}
        assert starts and starts == finishes

    def test_save_round_trips_through_json(self, tmp_path, nw_traced):
        _, _, recorder = nw_traced
        path = tmp_path / "trace.json"
        recorder.save(str(path))
        payload = json.loads(path.read_text())
        assert payload["otherData"]["traces_retained"] == len(recorder.traces)


class TestRecorderMechanics:
    def test_event_outside_a_trace_is_a_silent_noop(self):
        registry = MetricsRegistry()
        recorder = SpanRecorder(SimClock(), registry=registry)
        assert recorder.event("rank.write", "rank", 1.0) is None
        assert recorder.spans_started == 0
        assert registry.get("repro_span_started_total").total() == 0

    def test_cursor_nesting_and_rewind(self):
        recorder = SpanRecorder(SimClock())
        root = recorder.begin("session.run", "session", start=0.0)
        op = recorder.begin("sdk.push", "sdk")
        recorder.event("rank.write", "rank", 0.25)
        recorder.rewind(op)
        recorder.event("rank.write", "rank", 0.5)   # parallel sibling
        recorder.end(op, duration=0.5)
        recorder.end(root, duration=0.5)
        trace = recorder.latest()
        writes = trace.by_name("rank.write")
        assert [w.start for w in writes] == [0.0, 0.0]
        assert writes[1].end == 0.5

    def test_exception_unwind_closes_abandoned_descendants(self):
        recorder = SpanRecorder(SimClock())
        root = recorder.begin("session.run", "session", start=0.0)
        outer = recorder.begin("sdk.push", "sdk")
        recorder.begin("frontend.request", "frontend")
        recorder.end(outer, duration=1.0)
        assert recorder.current is root
        abandoned = recorder._trace.spans[-1]
        assert abandoned.name == "frontend.request"
        assert abandoned.attributes.get("abandoned") is True
        recorder.end(root)
