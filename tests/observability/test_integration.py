"""End-to-end: a full run populates the machine registry coherently."""

from __future__ import annotations

import pytest

from repro.analysis.figures import run_app_instrumented
from repro.apps.micro.checksum import Checksum
from repro.config import small_machine
from repro.core import VPim
from repro.observability import render_prometheus
from repro.observability.catalog import CATALOG, instrument, register_all
from repro.observability.metrics import MetricsRegistry


def _vpim() -> VPim:
    return VPim(small_machine(nr_ranks=2, dpus_per_rank=8))


def _run_checksum(preset: str):
    vpim = _vpim()
    session = vpim.vm_session(nr_vupmem=2, preset_name=preset)
    report = session.run(Checksum(nr_dpus=8, verify_staging=True))
    assert report.verified
    return vpim, session


class TestCatalog:
    def test_instrument_rejects_uncataloged_names(self):
        reg = MetricsRegistry()
        with pytest.raises(Exception):
            instrument(reg, "repro_not_in_catalog_total")

    def test_register_all_covers_catalog(self):
        reg = MetricsRegistry()
        register_all(reg)
        assert set(reg.names()) == set(CATALOG)

    def test_every_spec_has_paper_pointer(self):
        for spec in CATALOG.values():
            assert spec.paper, f"{spec.name} lacks a paper pointer"


class TestFullVpimRun:
    def test_cache_and_batching_counters_nonzero_under_full_vpim(self):
        vpim, _ = _run_checksum("vPIM")
        reg = vpim.machine.metrics
        hits = sum(
            child.value
            for labels, child in
            reg.get("repro_frontend_prefetch_lookups_total").samples()
            if labels["result"] == "hit")
        assert hits > 0
        assert reg.get("repro_frontend_batch_flushes_total").total() > 0
        assert reg.get("repro_frontend_batched_writes_total").total() > 0

    def test_counters_zero_under_vpim_c(self):
        # vPIM-C is the paper's vPIM[C---]: every optimization except the
        # C data path disabled, so nothing is cached or batched.
        vpim, _ = _run_checksum("vPIM-C")
        reg = vpim.machine.metrics
        assert reg.get("repro_frontend_prefetch_lookups_total").total() == 0
        assert reg.get("repro_frontend_batch_flushes_total").total() == 0
        assert reg.get("repro_frontend_batched_writes_total").total() == 0

    def test_rank_labels_present_in_snapshot(self):
        vpim, session = _run_checksum("vPIM")
        text = render_prometheus(vpim.machine.metrics)
        assert 'repro_rank_xfer_ops_total{rank="0",direction="write"}' in text
        assert 'repro_backend_requests_total{' in text
        assert f'vm="{session.vm.vm_id}"' in text

    def test_manager_lifecycle_metrics(self):
        vpim, _ = _run_checksum("vPIM")
        reg = vpim.machine.metrics
        # One rank covers all 8 requested DPUs, so exactly one allocation.
        assert reg.value("repro_manager_allocations_total",
                         policy="round_robin", outcome="naav") == 1
        assert reg.value("repro_manager_state_transitions_total",
                         from_state="naav", to_state="allo") == 1
        # The device released its rank when the DpuSet closed.
        assert reg.value("repro_manager_state_transitions_total",
                         from_state="allo", to_state="nana") == 1
        assert reg.value("repro_manager_resets_total") == 1

    @pytest.mark.parametrize("policy", ["round_robin", "first_fit",
                                        "coldest"])
    def test_manager_metrics_labeled_by_policy(self, policy):
        from repro.sdk.dpu_set import DpuSet

        vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8),
                    manager_policy=policy)
        session = vpim.vm_session(nr_vupmem=1)
        with DpuSet(session.transport, 8):
            pass
        reg = vpim.machine.metrics
        assert reg.value("repro_manager_allocations_total",
                         policy=policy, outcome="naav") == 1
        assert reg.value("repro_manager_alloc_wait_seconds",
                         policy=policy) == 1

    def test_session_and_vm_metrics(self):
        vpim, session = _run_checksum("vPIM")
        reg = vpim.machine.metrics
        assert reg.value("repro_session_runs_total", app="CHK",
                         mode="vPIM", verified="true") == 1
        assert reg.value("repro_vm_boots_total") == 1
        assert reg.value("repro_vm_vupmem_devices",
                         vm=session.vm.vm_id) == 2

    def test_histograms_report_simulated_time(self):
        vpim, _ = _run_checksum("vPIM")
        reg = vpim.machine.metrics
        fam = reg.get("repro_session_run_seconds")
        ((_, child),) = fam.samples()
        # The histogram sum is the simulated run duration: far larger
        # than any plausible per-sample wall overhead and bounded by the
        # final simulated clock value.
        assert 0 < child.sum <= vpim.clock.now


class TestNativeRun:
    def test_native_run_populates_rank_metrics_only(self):
        vpim = _vpim()
        report = vpim.native_session().run(Checksum(nr_dpus=8))
        assert report.verified
        reg = vpim.machine.metrics
        assert reg.get("repro_rank_xfer_ops_total").total() > 0
        assert reg.value("repro_session_runs_total", app="CHK",
                         mode="native", verified="true") == 1
        # No VM was involved.
        assert "repro_frontend_requests_total" not in reg


class TestTracerBridge:
    def test_run_app_instrumented_mirrors_trace_events(self):
        report, registry, tracer = run_app_instrumented(
            "CHK", nr_dpus=8, mode="vm",
            config=small_machine(nr_ranks=2, dpus_per_rank=8))
        assert report.verified
        assert len(tracer.events) > 0
        assert (registry.get("repro_trace_events_total").total()
                == len(tracer.events))
        assert registry.value("repro_trace_dropped_events_total") == 0

    def test_dropped_events_counted(self):
        from repro.analysis.trace import Tracer
        reg = MetricsRegistry()
        tracer = Tracer(max_events=1, registry=reg)
        tracer.record("a", "op", 0.0, 1.0)
        tracer.record("b", "op", 1.0, 1.0)
        assert tracer.dropped == 1
        assert reg.value("repro_trace_dropped_events_total") == 1
        assert reg.value("repro_trace_events_total", category="op") == 1
