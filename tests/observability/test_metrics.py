"""Registry semantics: families, children, labels, histograms."""

from __future__ import annotations

import math

import pytest

from repro.errors import ObservabilityError
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    MAX_SERIES_PER_FAMILY,
    MetricsRegistry,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestRegistration:
    def test_counter_roundtrip(self, registry):
        fam = registry.counter("repro_test_total", "help text", ("label",))
        assert registry.get("repro_test_total") is fam
        assert "repro_test_total" in registry

    def test_registration_is_idempotent(self, registry):
        a = registry.counter("repro_x_total", "h", ("l",))
        b = registry.counter("repro_x_total", "h", ("l",))
        assert a is b

    def test_type_conflict_raises(self, registry):
        registry.counter("repro_x_total", "h")
        with pytest.raises(ObservabilityError):
            registry.gauge("repro_x_total", "h")

    def test_label_conflict_raises(self, registry):
        registry.counter("repro_x_total", "h", ("a",))
        with pytest.raises(ObservabilityError):
            registry.counter("repro_x_total", "h", ("b",))

    def test_bad_metric_name_rejected(self, registry):
        with pytest.raises(ObservabilityError):
            registry.counter("0bad-name", "h")

    def test_bad_label_name_rejected(self, registry):
        with pytest.raises(ObservabilityError):
            registry.counter("repro_x_total", "h", ("bad-label",))

    def test_get_unknown_raises(self, registry):
        with pytest.raises(ObservabilityError):
            registry.get("repro_missing_total")

    def test_names_sorted(self, registry):
        registry.counter("repro_b_total", "h")
        registry.counter("repro_a_total", "h")
        assert registry.names() == ["repro_a_total", "repro_b_total"]


class TestCounter:
    def test_inc_accumulates(self, registry):
        fam = registry.counter("repro_c_total", "h")
        fam.inc()
        fam.inc(4)
        assert fam.value() == 5.0

    def test_negative_inc_rejected(self, registry):
        fam = registry.counter("repro_c_total", "h")
        with pytest.raises(ObservabilityError):
            fam.inc(-1)

    def test_labeled_children_are_independent(self, registry):
        fam = registry.counter("repro_c_total", "h", ("rank",))
        fam.labels(rank="0").inc(2)
        fam.labels(rank="1").inc(3)
        assert fam.value(rank="0") == 2.0
        assert fam.value(rank="1") == 3.0
        assert fam.total() == 5.0

    def test_children_get_or_create(self, registry):
        fam = registry.counter("repro_c_total", "h", ("rank",))
        assert fam.labels(rank="0") is fam.labels(rank="0")

    def test_missing_label_raises(self, registry):
        fam = registry.counter("repro_c_total", "h", ("rank",))
        with pytest.raises(ObservabilityError):
            fam.labels()

    def test_unknown_label_raises(self, registry):
        fam = registry.counter("repro_c_total", "h", ("rank",))
        with pytest.raises(ObservabilityError):
            fam.labels(rank="0", extra="x")

    def test_untouched_series_reads_zero(self, registry):
        fam = registry.counter("repro_c_total", "h", ("rank",))
        assert fam.value(rank="99") == 0.0


class TestLabelCardinality:
    def test_cardinality_cap_enforced(self, registry):
        fam = registry.counter("repro_c_total", "h", ("i",))
        for i in range(MAX_SERIES_PER_FAMILY):
            fam.labels(i=str(i)).inc()
        with pytest.raises(ObservabilityError):
            fam.labels(i="overflow")

    def test_existing_child_still_usable_at_cap(self, registry):
        fam = registry.counter("repro_c_total", "h", ("i",))
        for i in range(MAX_SERIES_PER_FAMILY):
            fam.labels(i=str(i)).inc()
        fam.labels(i="0").inc()          # no new series: allowed
        assert fam.value(i="0") == 2.0


class TestGauge:
    def test_set_inc_dec(self, registry):
        fam = registry.gauge("repro_g", "h")
        fam.set(10)
        child = fam.labels()
        child.inc(5)
        child.dec(3)
        assert fam.value() == 12.0


class TestHistogram:
    def test_default_buckets_shape(self):
        assert len(DEFAULT_BUCKETS) == 22
        assert DEFAULT_BUCKETS[0] == 1e-6
        assert DEFAULT_BUCKETS[-1] == 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_observe_counts_and_sum(self, registry):
        fam = registry.histogram("repro_h_seconds", "h")
        fam.observe(0.5e-6)
        fam.observe(2.0)
        child = fam.labels()
        assert child.count == 2
        assert child.sum == pytest.approx(2.0000005)

    def test_bucketing_is_cumulative(self, registry):
        fam = registry.histogram("repro_h_seconds", "h",
                                 buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            fam.observe(v)
        cumulative = fam.labels().cumulative_buckets()
        assert [c for _, c in cumulative] == [1, 2, 3, 4]
        assert cumulative[-1][0] == math.inf

    def test_boundary_lands_in_le_bucket(self, registry):
        # Prometheus semantics: buckets are <= (le), not <.
        fam = registry.histogram("repro_h_seconds", "h", buckets=(1.0, 2.0))
        fam.observe(1.0)
        cumulative = fam.labels().cumulative_buckets()
        assert cumulative[0] == (1.0, 1)

    def test_nan_rejected(self, registry):
        fam = registry.histogram("repro_h_seconds", "h")
        with pytest.raises(ObservabilityError):
            fam.observe(float("nan"))

    def test_value_reports_count(self, registry):
        fam = registry.histogram("repro_h_seconds", "h")
        fam.observe(0.1)
        fam.observe(0.2)
        assert fam.value() == 2

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ObservabilityError):
            registry.histogram("repro_h_seconds", "h", buckets=(2.0, 1.0))


class TestReset:
    def test_reset_clears_children_keeps_schema(self, registry):
        fam = registry.counter("repro_c_total", "h", ("rank",))
        fam.labels(rank="0").inc(7)
        registry.reset()
        assert "repro_c_total" in registry
        assert registry.value("repro_c_total", rank="0") == 0.0

    def test_registry_value_of_absent_family_is_zero(self, registry):
        assert registry.value("repro_never_registered_total") == 0.0
