"""Execution tracing and the Chrome trace export."""

import json

import pytest

from repro.analysis.trace import Tracer
from repro.apps.prim.va import VectorAdd
from repro.config import small_machine
from repro.core import VPim


def test_tracer_records_and_queries():
    tracer = Tracer()
    tracer.record("W-rank", "op", 0.0, 0.5, count=1)
    tracer.record("CPU-DPU", "segment", 0.0, 1.0)
    assert len(tracer.events) == 2
    assert len(tracer.by_category("op")) == 1
    assert tracer.total_time("W-rank") == pytest.approx(0.5)
    assert tracer.total_time() == pytest.approx(1.5)


def test_tracer_event_cap():
    tracer = Tracer(max_events=2)
    for i in range(5):
        tracer.record(f"e{i}", "op", i, 0.1)
    assert len(tracer.events) == 2
    assert tracer.dropped == 3


def test_chrome_export_format():
    tracer = Tracer()
    tracer.record("DPU", "segment", 0.001, 0.002, app="VA")
    payload = json.loads(tracer.to_chrome_trace())
    assert payload["displayTimeUnit"] == "ms"
    event = payload["traceEvents"][0]
    assert event["ph"] == "X"
    assert event["ts"] == pytest.approx(1000.0)   # microseconds
    assert event["dur"] == pytest.approx(2000.0)
    assert event["args"]["app"] == "VA"


def test_save_to_file(tmp_path):
    tracer = Tracer()
    tracer.record("x", "op", 0, 1)
    path = tmp_path / "trace.json"
    tracer.save(str(path))
    assert json.loads(path.read_text())["traceEvents"]


def test_traced_application_run():
    """A full vPIM run produces a coherent timeline."""
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
    session = vpim.vm_session(nr_vupmem=1)
    tracer = Tracer()
    session.transport.profiler.tracer = tracer
    report = session.run(VectorAdd(nr_dpus=8, n_elements=1 << 14))
    assert report.verified

    segments = tracer.by_category("segment")
    ops = tracer.by_category("op")
    assert {e.name for e in segments} >= {"CPU-DPU", "DPU", "DPU-CPU"}
    assert any(e.name == "W-rank" for e in ops)
    # Events never run backwards and stay within the run's clock window.
    for event in tracer.events:
        assert event.duration >= 0
        assert event.start >= 0
    # Segment trace durations agree with the profiler's accounting.
    dpu_trace = sum(e.duration for e in segments if e.name == "DPU")
    assert dpu_trace == pytest.approx(report.segments["DPU"], rel=1e-9)
