"""SwapStore: content-addressed dedup, refcounting, replacement."""

import numpy as np
import pytest

from repro.hardware.dpu import DpuState
from repro.paging.store import SwapStore
from repro.virt.migration import DpuSnapshot, RankCheckpoint


def _seg(fill, size=1024):
    return np.full(size, fill, dtype=np.uint8)


def _checkpoint(segment_map, source_rank=0, symbols=None):
    """One-DPU checkpoint with the given ``{seg_idx: fill}`` layout."""
    snap = DpuSnapshot(
        mram_segments={idx: _seg(fill) for idx, fill in segment_map.items()},
        symbols=dict(symbols or {}), program=None, state=DpuState.IDLE)
    cp = RankCheckpoint(source_rank=source_rank)
    cp.dpus.append(snap)
    return cp


def test_put_get_roundtrip_is_bit_identical():
    store = SwapStore()
    cp = _checkpoint({0: 7, 3: 9}, symbols={"n": b"\x04\x00"})
    store.put(2000, cp)
    got = store.get(2000)
    assert got.source_rank == cp.source_rank
    assert set(got.dpus[0].mram_segments) == {0, 3}
    for idx in (0, 3):
        np.testing.assert_array_equal(got.dpus[0].mram_segments[idx],
                                      cp.dpus[0].mram_segments[idx])
    assert got.dpus[0].symbols == {"n": b"\x04\x00"}
    assert got.dpus[0].state is DpuState.IDLE


def test_identical_segments_across_vranks_are_stored_once():
    store = SwapStore()
    raw_a, dedup_a, hits_a = store.put(2000, _checkpoint({0: 5, 1: 6}))
    raw_b, dedup_b, hits_b = store.put(2001, _checkpoint({0: 5, 1: 6}))
    assert raw_a == raw_b == 2048
    assert (dedup_a, hits_a) == (0, 0)
    assert (dedup_b, hits_b) == (2048, 2)
    assert store.dedup_hits == 2
    # Logical footprint counts both tenants; host memory holds one copy.
    assert store.raw_bytes == 4096
    assert store.stored_bytes == 2048


def test_drop_releases_only_unshared_payloads():
    store = SwapStore()
    store.put(2000, _checkpoint({0: 5}))
    store.put(2001, _checkpoint({0: 5, 1: 8}))
    store.drop(2000)
    # Segment 5 is still referenced by vrank 2001.
    assert 2000 not in store
    assert 2001 in store
    np.testing.assert_array_equal(store.get(2001).dpus[0].mram_segments[0],
                                  _seg(5))
    store.drop(2001)
    assert store.stored_bytes == 0
    assert store.nr_checkpoints == 0


def test_put_replaces_prior_checkpoint_for_same_vrank():
    store = SwapStore()
    store.put(2000, _checkpoint({0: 1}))
    store.put(2000, _checkpoint({0: 2}))
    assert store.nr_checkpoints == 1
    np.testing.assert_array_equal(store.get(2000).dpus[0].mram_segments[0],
                                  _seg(2))
    # The replaced checkpoint's payload was released.
    assert store.stored_bytes == 1024


def test_drop_of_unknown_vrank_is_a_noop():
    store = SwapStore()
    store.drop(2999)
    assert store.nr_checkpoints == 0


def test_get_of_unknown_vrank_raises():
    with pytest.raises(KeyError):
        SwapStore().get(2999)
