"""Overcommit through the full stack: VMs, virtio, pager, cluster."""

import pytest

from repro.analysis.figures import machine_config
from repro.analysis.overcommit import run_overcommit
from repro.apps.prim.va import VectorAdd
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.core import VPim
from repro.errors import VmConfigError
from repro.paging.config import PagingConfig
from repro.paging.pager import PAGED_RANK_BASE


def test_vm_session_runs_verified_on_a_paged_rank():
    vpim = VPim(machine_config(2, dpus_per_rank=4),
                paging=PagingConfig(overcommit_ratio=2.0))
    session = vpim.vm_session(nr_vupmem=1)
    report = session.run(VectorAdd(nr_dpus=4, n_elements=1 << 10))
    assert report.verified
    assert vpim.manager.stats.paged_allocations == 1
    assert vpim.manager.pager.stats.first_touch_faults >= 1


def test_four_tenants_on_two_ranks_all_verified_with_swapping():
    result = run_overcommit(tenants=4, physical_ranks=2, dpus_per_rank=4,
                            rounds=2, n_elements=1 << 12)
    paging = result.arms["paging"]
    assert paging.admitted == 4
    assert paging.evictions > 0
    assert paging.swap_bytes > 0
    # The acceptance bar: every tenant's outputs bit-identical to the
    # non-overcommitted reference host.
    assert result.identical_to_reference("paging")
    assert result.identical_to_reference("emulation")


def test_vm_shapes_validate_against_virtual_capacity():
    vpim = VPim(machine_config(2, dpus_per_rank=4),
                paging=PagingConfig(overcommit_ratio=2.0))
    # 4 devices exceed the 2 physical ranks but fit the 4 virtual ones.
    session = vpim.vm_session(nr_vupmem=4)
    assert len(session.vm.devices) == 4
    with pytest.raises(VmConfigError, match="allocatable ranks"):
        vpim.vm_session(nr_vupmem=5)


def test_release_destroys_the_vrank_record():
    vpim = VPim(machine_config(2, dpus_per_rank=4),
                paging=PagingConfig(overcommit_ratio=2.0))
    session = vpim.vm_session(nr_vupmem=1)
    session.run(VectorAdd(nr_dpus=4, n_elements=1 << 10))
    # The session released its rank at app exit: no paged record stays.
    paged = [idx for idx in vpim.manager.rank_table
             if idx >= PAGED_RANK_BASE]
    assert paged == []
    # The frame stayed sticky with the pager for the next tenant.
    assert vpim.manager.pager.frames_held == 1


def test_cluster_hosts_advertise_virtual_capacity():
    cluster = Cluster(ClusterConfig(
        nr_hosts=2, ranks_per_host=2, dpus_per_rank=4,
        paging=PagingConfig(overcommit_ratio=2.0)))
    host = cluster.hosts[0]
    assert host.total_ranks == 2
    assert host.capacity_ranks == 4
    assert host.free_ranks() == 4
    assert host.fits(3)
    assert cluster.largest_host_ranks() == 4


def test_cluster_without_paging_is_physically_sized():
    cluster = Cluster(ClusterConfig(nr_hosts=1, ranks_per_host=2,
                                    dpus_per_rank=4))
    assert cluster.hosts[0].capacity_ranks == 2
    assert not cluster.hosts[0].fits(3)
