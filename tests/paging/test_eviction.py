"""Eviction policies: LRU, decayed working set, weight awareness."""

import pytest

from repro.paging.eviction import (
    DecayedWorkingSetPolicy,
    LruPolicy,
    make_policy,
)


def unit_weight(_vrank):
    return 1.0


class TestLru:
    def test_evicts_least_recently_touched(self):
        policy = LruPolicy()
        policy.touch(2000, 0.0)
        policy.touch(2001, 1.0)
        policy.touch(2002, 2.0)
        assert policy.victim([2000, 2001, 2002], 3.0, unit_weight) == 2000

    def test_weight_protects_recent_heavy_tenant(self):
        policy = LruPolicy()
        policy.touch(2000, 0.0)   # idle 10s, weight 10 -> score 1
        policy.touch(2001, 8.0)   # idle 2s,  weight 1  -> score 2
        weights = {2000: 10.0, 2001: 1.0}
        assert policy.victim([2000, 2001], 10.0,
                             weights.__getitem__) == 2001

    def test_never_touched_is_maximally_evictable(self):
        policy = LruPolicy()
        policy.touch(2001, 5.0)
        assert policy.victim([2000, 2001], 6.0, unit_weight) == 2000

    def test_ties_break_to_lowest_vrank(self):
        policy = LruPolicy()
        policy.touch(2001, 1.0)
        policy.touch(2000, 1.0)
        assert policy.victim([2001, 2000], 2.0, unit_weight) == 2000

    def test_forget_drops_state(self):
        policy = LruPolicy()
        policy.touch(2000, 9.0)
        policy.forget(2000)
        # Forgotten -> "never touched" -> evicted before the warm rank.
        policy.touch(2001, 1.0)
        assert policy.victim([2000, 2001], 10.0, unit_weight) == 2000

    def test_no_candidates_returns_none(self):
        assert LruPolicy().victim([], 0.0, unit_weight) is None


class TestDecayedWorkingSet:
    def test_hot_in_the_past_decays_below_warm_now(self):
        policy = DecayedWorkingSetPolicy(half_life_s=1.0)
        for t in range(5):                 # hot burst long ago
            policy.touch(2000, float(t))
        policy.touch(2001, 19.0)           # one recent touch
        # 15 half-lives decay the burst to ~2e-4 << 0.5.
        assert policy.victim([2000, 2001], 20.0, unit_weight) == 2000

    def test_single_stale_touch_does_not_protect_under_lru_it_would(self):
        lru = LruPolicy()
        wss = DecayedWorkingSetPolicy(half_life_s=1.0)
        for policy in (lru, wss):
            for t in range(10):
                policy.touch(2000, float(t))  # sustained activity
            policy.touch(2001, 9.5)           # single later touch
        # LRU protects the one stale touch; WSS keeps the busy rank.
        assert lru.victim([2000, 2001], 10.0, unit_weight) == 2000
        assert wss.victim([2000, 2001], 10.0, unit_weight) == 2001

    def test_weight_scales_eviction_score(self):
        policy = DecayedWorkingSetPolicy(half_life_s=100.0)
        policy.touch(2000, 0.0)
        policy.touch(2001, 0.0)
        weights = {2000: 0.5, 2001: 2.0}
        # Equal activity: the lighter tenant goes first.
        assert policy.victim([2000, 2001], 0.0,
                             weights.__getitem__) == 2000

    def test_rejects_nonpositive_half_life(self):
        with pytest.raises(ValueError):
            DecayedWorkingSetPolicy(half_life_s=0.0)


class TestMakePolicy:
    def test_builds_both_policies(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        wss = make_policy("wss", half_life_s=2.5)
        assert isinstance(wss, DecayedWorkingSetPolicy)
        assert wss.half_life_s == 2.5

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            make_policy("clock")

    def test_zero_weight_clamps_instead_of_dividing_by_zero(self):
        policy = LruPolicy()
        policy.touch(2000, 0.0)
        assert policy.victim([2000], 1.0, lambda _v: 0.0) == 2000
