"""RankPager unit behaviour: faults, eviction, stickiness, pinning."""

import numpy as np
import pytest

from repro.config import small_machine
from repro.driver.driver import UpmemDriver
from repro.errors import ManagerError
from repro.hardware.dpu import DpuState
from repro.hardware.machine import Machine
from repro.paging.config import PagingConfig
from repro.paging.pager import PAGED_RANK_BASE, RankPager
from repro.virt.manager import Manager, RankState


def build(ratio=2.0, **config_kw):
    machine = Machine(small_machine(nr_ranks=2, dpus_per_rank=2))
    driver = UpmemDriver(machine)
    manager = Manager(machine, driver,
                      paging=PagingConfig(overcommit_ratio=ratio,
                                          **config_kw))
    return machine, driver, manager


def scribble(rank, fill):
    """Materialize a recognizable pattern on every DPU of ``rank``."""
    for dpu in rank.dpus:
        dpu.mram.write(0, np.full(4096, fill, dtype=np.uint8))


def patterns(rank):
    return [bytes(dpu.mram.read(0, 4096)) for dpu in rank.dpus]


class TestAllocation:
    def test_manager_hands_out_virtual_ranks_first(self):
        _, _, manager = build()
        vrank = manager.allocate("dev-a")
        assert vrank >= PAGED_RANK_BASE
        assert manager.stats.paged_allocations == 1
        assert manager.rank_table[vrank].state is RankState.ALLO

    def test_virtual_capacity_scales_with_ratio(self):
        _, _, manager = build(ratio=3.0)
        assert manager.pager.virtual_capacity == 6
        assert manager.rank_capacity() == 6

    def test_no_frame_bound_until_first_touch(self):
        _, driver, manager = build()
        vrank = manager.allocate("dev-a")
        assert manager.pager.nr_resident == 0
        driver.resolve_rank(vrank)
        assert manager.pager.nr_resident == 1
        assert manager.pager.stats.first_touch_faults == 1


class TestSwapRoundTrip:
    def test_eviction_and_fault_back_preserve_state(self):
        machine, driver, manager = build(ratio=1.5)  # 3 vranks, 2 frames
        vranks = [manager.allocate(f"dev-{i}") for i in range(3)]
        fills = {vranks[0]: 0x11, vranks[1]: 0x22, vranks[2]: 0x33}
        saved = {}
        for vrank in vranks[:2]:
            rank = driver.resolve_rank(vrank)
            scribble(rank, fills[vrank])
            saved[vrank] = patterns(rank)

        # Third touch must evict the LRU resident (vranks[0]).
        rank = driver.resolve_rank(vranks[2])
        scribble(rank, fills[vranks[2]])
        pager = manager.pager
        assert pager.stats.evictions == 1
        assert pager.nr_swapped == 1
        assert pager.resident_rank(vranks[0]) is None
        assert vranks[0] in pager.store

        # Fault the evicted rank back in: bytes bit-identical, and the
        # frame it lands on was cleaned of the displaced tenant first.
        rank = driver.resolve_rank(vranks[0])
        assert patterns(rank) == saved[vranks[0]]
        assert pager.stats.swap_in_bytes > 0

    def test_swap_advances_the_machine_clock(self):
        machine, driver, manager = build(ratio=1.5)
        vranks = [manager.allocate(f"dev-{i}") for i in range(3)]
        for vrank in vranks[:2]:
            scribble(driver.resolve_rank(vrank), 0xAB)
        before = machine.clock.now
        driver.resolve_rank(vranks[2])     # eviction: checkpoint out
        assert machine.clock.now > before

    def test_store_is_dropped_after_fault_in(self):
        _, driver, manager = build(ratio=1.5)
        vranks = [manager.allocate(f"dev-{i}") for i in range(3)]
        for vrank in vranks:
            scribble(driver.resolve_rank(vrank), 0x44)
        evicted = next(v for v in vranks
                       if manager.pager.resident_rank(v) is None)
        driver.resolve_rank(evicted)
        # The frame holds the authoritative copy; no stale store entry.
        assert evicted not in manager.pager.store


def release(driver, vrank, owner):
    """Release like a real consumer: the driver's sysfs write reaches
    the Manager's observer, which routes vranks to the pager."""
    driver.release_rank(vrank, owner)


class TestStickyFrames:
    def test_release_keeps_frames_for_reuse(self):
        _, driver, manager = build()
        vrank = manager.allocate("dev-a")
        driver.claim_rank(vrank, "dev-a")
        pager = manager.pager
        assert pager.frames_held == 1
        release(driver, vrank, "dev-a")
        assert pager.frames_held == 1          # sticky
        # A new tenant reuses the frame with no manager allocation.
        acquired_before = pager.stats.frames_acquired
        vrank2 = manager.allocate("dev-b")
        driver.resolve_rank(vrank2)
        assert pager.stats.frames_acquired == acquired_before

    def test_first_touch_on_dirty_frame_wipes_predecessor(self):
        _, driver, manager = build()
        vrank = manager.allocate("dev-a")
        rank = driver.claim_rank(vrank, "dev-a")
        scribble(rank, 0x77)
        release(driver, vrank, "dev-a")
        vrank2 = manager.allocate("dev-b")
        rank2 = driver.resolve_rank(vrank2)
        for dpu in rank2.dpus:
            assert dpu.mram.is_zero()
            assert dpu.program is None

    def test_drain_returns_frames_through_manager(self):
        _, driver, manager = build()
        vrank = manager.allocate("dev-a")
        driver.claim_rank(vrank, "dev-a")
        release(driver, vrank, "dev-a")
        returned = manager.pager.drain()
        assert returned == 1
        assert manager.pager.frames_held == 0
        # The frame went back through a normal release: it is NANA
        # (isolation reset pending), owned by nobody.
        nana = [r for r in manager.rank_table.values()
                if r.state is RankState.NANA]
        assert len(nana) == 1
        assert driver.rank_owner(nana[0].rank_index) is None


class TestVictimSelection:
    def test_pinned_rank_is_never_evicted(self):
        _, driver, manager = build(ratio=1.5)
        vranks = [manager.allocate(f"dev-{i}") for i in range(3)]
        scribble(driver.resolve_rank(vranks[0]), 1)
        scribble(driver.resolve_rank(vranks[1]), 2)
        manager.pager.pin(vranks[0])           # LRU, but pinned
        driver.resolve_rank(vranks[2])
        assert manager.pager.resident_rank(vranks[0]) is not None
        assert manager.pager.resident_rank(vranks[1]) is None

    def test_weight_protects_heavier_tenant(self):
        _, driver, manager = build(ratio=1.5)
        vranks = [manager.allocate(f"dev-{i}") for i in range(3)]
        scribble(driver.resolve_rank(vranks[0]), 1)
        scribble(driver.resolve_rank(vranks[1]), 2)
        # vranks[0] is older (more idle) but 100x heavier.
        manager.pager.set_weight(vranks[0], 100.0)
        driver.resolve_rank(vranks[2])
        assert manager.pager.resident_rank(vranks[0]) is not None
        assert manager.pager.resident_rank(vranks[1]) is None

    def test_running_rank_is_not_checkpointable(self):
        _, driver, manager = build(ratio=1.5)
        vranks = [manager.allocate(f"dev-{i}") for i in range(3)]
        running = driver.resolve_rank(vranks[0])
        scribble(driver.resolve_rank(vranks[1]), 2)
        for dpu in running.dpus:
            dpu.state = DpuState.RUNNING
        driver.resolve_rank(vranks[2])
        # The running rank was skipped; the idle one was evicted.
        assert manager.pager.resident_rank(vranks[0]) is not None
        assert manager.pager.resident_rank(vranks[1]) is None
        for dpu in running.dpus:
            dpu.state = DpuState.IDLE

    def test_all_ranks_pinned_raises(self):
        _, driver, manager = build(ratio=1.5)
        vranks = [manager.allocate(f"dev-{i}") for i in range(3)]
        driver.resolve_rank(vranks[0])
        driver.resolve_rank(vranks[1])
        manager.pager.pin(vranks[0])
        manager.pager.pin(vranks[1])
        with pytest.raises(ManagerError, match="pinned or running"):
            driver.resolve_rank(vranks[2])


class TestPredictivePrefault:
    def test_overlap_credit_hides_swap_time(self):
        machine, driver, manager = build(ratio=1.5)
        vranks = [manager.allocate(f"dev-{i}") for i in range(3)]
        scribble(driver.resolve_rank(vranks[0]), 1)
        scribble(driver.resolve_rank(vranks[1]), 2)
        driver.claim_rank(vranks[2], "dev-2")  # evicts vranks[0]
        release(driver, vranks[2], "dev-2")    # frees a sticky frame
        before = machine.clock.now
        manager.pager.prefault(vranks[0], overlap=10.0)
        # The whole swap-in fits under the 10 s overlap window: only
        # metered as hidden time, nothing charged to the clock.
        assert machine.clock.now == before
        assert manager.pager.stats.prefault_overlap_s > 0
        assert manager.pager.stats.predictive_faults == 1
        assert manager.pager.resident_rank(vranks[0]) is not None

    def test_prefault_of_resident_rank_is_a_noop(self):
        _, driver, manager = build()
        vrank = manager.allocate("dev-a")
        driver.resolve_rank(vrank)
        faults = manager.pager.stats.faults
        manager.pager.prefault(vrank, overlap=1.0)
        assert manager.pager.stats.faults == faults

    def test_predictive_disabled_by_config(self):
        _, driver, manager = build(ratio=1.5, predictive=False)
        vranks = [manager.allocate(f"dev-{i}") for i in range(3)]
        scribble(driver.resolve_rank(vranks[0]), 1)
        scribble(driver.resolve_rank(vranks[1]), 2)
        driver.resolve_rank(vranks[2])
        faults = manager.pager.stats.faults
        manager.pager.prefault(vranks[0], overlap=1.0)
        assert manager.pager.stats.faults == faults


class TestObservability:
    def test_paging_metrics_are_registered_and_move(self):
        machine, driver, manager = build(ratio=1.5)
        vranks = [manager.allocate(f"dev-{i}") for i in range(3)]
        scribble(driver.resolve_rank(vranks[0]), 1)
        scribble(driver.resolve_rank(vranks[1]), 2)
        driver.resolve_rank(vranks[2])
        registry = machine.metrics
        assert registry.get("repro_paging_faults_total").total() >= 3
        assert registry.get("repro_paging_evictions_total").total() == 1
        assert registry.get("repro_paging_swap_bytes_total").total() > 0
        assert registry.get("repro_paging_ranks").labels(
            state="swapped").value == 1

    def test_swap_spans_are_recorded(self):
        machine, driver, manager = build(ratio=1.5)
        vranks = [manager.allocate(f"dev-{i}") for i in range(3)]
        scribble(driver.resolve_rank(vranks[0]), 1)
        scribble(driver.resolve_rank(vranks[1]), 2)
        driver.resolve_rank(vranks[2])
        names = {span.name for trace in machine.spans.traces
                 for span in trace.spans}
        assert "paging.swap_out" in names
        assert "paging.swap_in" in names


class TestOffPath:
    def test_manager_without_paging_has_no_pager(self):
        machine = Machine(small_machine(nr_ranks=2, dpus_per_rank=2))
        driver = UpmemDriver(machine)
        manager = Manager(machine, driver)
        assert manager.pager is None
        assert driver.pager is None
        assert manager.rank_capacity() == 2
        assert manager.allocate("dev-a") < 1000   # physical index

    def test_unknown_vrank_raises(self):
        _, _, manager = build()
        with pytest.raises(ManagerError, match="unknown virtual rank"):
            manager.pager.resolve(PAGED_RANK_BASE + 99)
