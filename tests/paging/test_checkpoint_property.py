"""Property: ``restore_rank(checkpoint_rank(r))`` is bit-identical.

Hypothesis drives random sparse rank states — scattered MRAM writes
(including segment-straddling ones), loaded programs, host-visible WRAM
symbol values — checkpoints them, and asserts the restored rank matches
bit for bit on everything the host can observe: MRAM contents (both the
materialized segments and zero reads in the untouched holes), the
loaded program, and every symbol's bytes.  The same property is checked
through the :class:`~repro.paging.store.SwapStore` round trip (what a
real swap-out/swap-in does), and across a *mid-fault abort*: a restore
that lands on a rank holding arbitrary partial garbage — as after an
interrupted earlier attempt — must still converge to the identical
state, because ``Dpu.reset`` + zero-fill-before-load make restore
idempotent.
"""

from typing import Dict, List, Tuple

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import small_machine
from repro.hardware.machine import Machine
from repro.hardware.memory import SEGMENT_SIZE
from repro.paging.store import SwapStore
from repro.sdk.kernel import DpuProgram
from repro.virt.migration import checkpoint_rank, restore_rank

NR_DPUS = 2
#: Writes land inside the first 4 segments; probes cover 6, so the
#: holes past the last write are checked to read back as zeros.
WRITE_SPAN = 4 * SEGMENT_SIZE
PROBE_SPAN = 6 * SEGMENT_SIZE


class _Prog(DpuProgram):
    name = "prop_checkpoint"
    symbols = {"alpha": 4, "beta": 8}
    binary_size = 1 << 10


mram_writes = st.lists(
    st.tuples(
        st.integers(0, NR_DPUS - 1),                  # dpu
        st.integers(0, WRITE_SPAN - 1),               # offset
        st.binary(min_size=1, max_size=300),          # data
    ),
    max_size=8,
)

symbol_writes = st.lists(
    st.tuples(
        st.integers(0, NR_DPUS - 1),
        st.sampled_from(sorted(_Prog.symbols)),
        st.binary(min_size=1, max_size=4),
    ),
    max_size=4,
)

#: Garbage a mid-fault abort could leave on the target before the
#: (re)restore: partial MRAM writes and clobbered symbols.
abort_garbage = st.lists(
    st.tuples(
        st.integers(0, NR_DPUS - 1),
        st.integers(0, WRITE_SPAN - 1),
        st.binary(min_size=1, max_size=64),
    ),
    max_size=4,
)


def _build() -> Machine:
    return Machine(small_machine(nr_ranks=2, dpus_per_rank=NR_DPUS))


def _populate(rank, writes: List[Tuple[int, int, bytes]],
              with_program: bool,
              sym_writes: List[Tuple[int, str, bytes]]) -> None:
    if with_program:
        prog = _Prog()
        for dpu in rank.dpus:
            dpu.load_program(prog, prog.binary_size, prog.symbols)
        for dpu_idx, name, data in sym_writes:
            dpu = rank.dpu(dpu_idx)
            dpu.write_symbol(name, 0, data[:len(dpu.symbols[name])])
    for dpu_idx, offset, data in writes:
        rank.dpu(dpu_idx).mram.write(offset, data)


def _observable(rank) -> Dict:
    """Everything the host can see of a rank's state."""
    state = {}
    for dpu in rank.dpus:
        state[dpu.dpu_index] = {
            "mram": bytes(dpu.mram.read(0, PROBE_SPAN)),
            "segments": {idx: seg.tobytes() for idx, seg
                         in dpu.mram.snapshot_segments().items()},
            "program": dpu.program,
            "symbols": {name: bytes(buf)
                        for name, buf in dpu.symbols.items()},
        }
    return state


@settings(max_examples=25, deadline=None)
@given(writes=mram_writes, with_program=st.booleans(),
       sym_writes=symbol_writes)
def test_checkpoint_restore_roundtrip_bit_identical(writes, with_program,
                                                    sym_writes):
    machine = _build()
    source, target = machine.rank(0), machine.rank(1)
    _populate(source, writes, with_program, sym_writes)
    expected = _observable(source)

    checkpoint, _ = checkpoint_rank(source)
    restore_rank(target, checkpoint)
    assert _observable(target) == expected
    # The source is untouched by checkpointing.
    assert _observable(source) == expected


@settings(max_examples=25, deadline=None)
@given(writes=mram_writes, with_program=st.booleans(),
       sym_writes=symbol_writes)
def test_swap_store_roundtrip_bit_identical(writes, with_program,
                                            sym_writes):
    machine = _build()
    source, target = machine.rank(0), machine.rank(1)
    _populate(source, writes, with_program, sym_writes)
    expected = _observable(source)

    checkpoint, _ = checkpoint_rank(source)
    store = SwapStore()
    store.put(2000, checkpoint)
    restore_rank(target, store.get(2000))
    assert _observable(target) == expected


@settings(max_examples=25, deadline=None)
@given(writes=mram_writes, with_program=st.booleans(),
       sym_writes=symbol_writes, garbage=abort_garbage,
       garbage_program=st.booleans())
def test_restore_after_mid_fault_abort_converges(writes, with_program,
                                                 sym_writes, garbage,
                                                 garbage_program):
    """Restore onto a rank dirtied by an aborted earlier attempt."""
    machine = _build()
    source, target = machine.rank(0), machine.rank(1)
    _populate(source, writes, with_program, sym_writes)
    expected = _observable(source)
    checkpoint, _ = checkpoint_rank(source)

    # The aborted attempt: partial state lands on the target, then the
    # fault path gives up partway through.
    if garbage_program:
        junk = _Prog()
        for dpu in target.dpus:
            dpu.load_program(junk, junk.binary_size, junk.symbols)
            dpu.write_symbol("alpha", 0, b"\xde\xad\xbe\xef")
    for dpu_idx, offset, data in garbage:
        target.dpu(dpu_idx).mram.write(offset, data)

    restore_rank(target, checkpoint)
    assert _observable(target) == expected
