"""UPMEM driver: ownership, safe mode, performance mode."""

import numpy as np
import pytest

from repro.config import MRAM_HEAP_SYMBOL, small_machine
from repro.driver.driver import UpmemDriver, launch_poll_count
from repro.driver.ioctl import IoctlCode, IoctlRequest
from repro.errors import IoctlError, MmapError
from repro.hardware.machine import Machine
from repro.sdk.kernel import DpuProgram
from repro.sdk.transfer import uniform_read, uniform_write


class Trivial(DpuProgram):
    name = "trivial"
    symbols = {"out": 4}
    nr_tasklets = 2

    def kernel(self, ctx):
        if ctx.me() == 0:
            ctx.set_host_u32("out", 77)
            ctx.charge(1)
        yield ctx.barrier()


@pytest.fixture
def driver():
    return UpmemDriver(Machine(small_machine(nr_ranks=2, dpus_per_rank=4)))


def test_initial_sysfs_all_free(driver):
    assert driver.free_ranks() == [0, 1]
    assert not driver.sysfs.rank_is_busy(0)


def test_claim_and_release(driver):
    driver.claim_rank(0, "app-a")
    assert driver.rank_owner(0) == "app-a"
    assert driver.sysfs.rank_is_busy(0)
    assert driver.free_ranks() == [1]
    driver.release_rank(0, "app-a")
    assert driver.free_ranks() == [0, 1]


def test_claim_conflict(driver):
    driver.claim_rank(0, "app-a")
    with pytest.raises(MmapError):
        driver.claim_rank(0, "app-b")


def test_release_by_non_owner_rejected(driver):
    driver.claim_rank(0, "app-a")
    with pytest.raises(MmapError):
        driver.release_rank(0, "app-b")


def test_perf_mode_mapping_lifecycle(driver):
    mapping = driver.mmap_rank(0, "app-a")
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 0,
                           [np.arange(16, dtype=np.uint8)] * 2)
    assert mapping.write(matrix) > 0
    bufs, _ = mapping.read(uniform_read(MRAM_HEAP_SYMBOL, 0, 16, 2))
    assert np.array_equal(bufs[0], np.arange(16, dtype=np.uint8))
    mapping.unmap()
    assert driver.free_ranks() == [0, 1]
    with pytest.raises(MmapError):
        mapping.write(matrix)


def test_perf_mode_load_and_launch(driver):
    mapping = driver.mmap_rank(1, "app-a")
    mapping.load(Trivial())
    mapping.launch()
    assert mapping.rank.dpu(0).read_symbol("out", 0, 4) == (77).to_bytes(4, "little")


def test_safe_mode_config(driver):
    config, duration = driver.ioctl("p1", IoctlRequest(IoctlCode.GET_CONFIG, 0))
    assert config.frequency_hz == 350_000_000
    assert duration > 0


def test_safe_mode_alloc_write_read_free(driver):
    rank_index, _ = driver.ioctl("p1", IoctlRequest(IoctlCode.ALLOC_RANK, 0))
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 0,
                           [np.full(8, 3, dtype=np.uint8)])
    driver.ioctl("p1", IoctlRequest(IoctlCode.WRITE_RANK, rank_index,
                                    matrix=matrix))
    bufs, _ = driver.ioctl("p1", IoctlRequest(
        IoctlCode.READ_RANK, rank_index,
        matrix=uniform_read(MRAM_HEAP_SYMBOL, 0, 8, 1)))
    assert (bufs[0] == 3).all()
    driver.ioctl("p1", IoctlRequest(IoctlCode.FREE_RANK, rank_index))
    assert rank_index in driver.free_ranks()


def test_safe_mode_isolation_between_processes(driver):
    rank_index, _ = driver.ioctl("p1", IoctlRequest(IoctlCode.ALLOC_RANK, 0))
    with pytest.raises(IoctlError):
        driver.ioctl("p2", IoctlRequest(IoctlCode.CI_OP, rank_index))


def test_safe_mode_alloc_exhaustion(driver):
    driver.ioctl("p1", IoctlRequest(IoctlCode.ALLOC_RANK, 0))
    driver.ioctl("p1", IoctlRequest(IoctlCode.ALLOC_RANK, 0))
    with pytest.raises(IoctlError):
        driver.ioctl("p1", IoctlRequest(IoctlCode.ALLOC_RANK, 0))


def test_launch_poll_count_backoff():
    # Short run: a handful of polls.  Long run: ~duration / max_period.
    assert launch_poll_count(0.0) == 1
    short = launch_poll_count(1e-3)
    long = launch_poll_count(1.0)
    assert short < 20
    assert 90 <= long <= 120
