"""Simulated sysfs: rank status files and listeners."""

from repro.driver.sysfs import STATUS_FREE, SysFs


def test_write_read():
    fs = SysFs()
    fs.write("/sys/foo", "bar")
    assert fs.read("/sys/foo") == "bar"
    assert fs.exists("/sys/foo")
    assert fs.read("/sys/missing") is None


def test_rank_status_roundtrip():
    fs = SysFs()
    fs.set_rank_status(3, busy=True, owner="vm-0.vupmem1")
    assert fs.rank_is_busy(3)
    assert fs.rank_owner(3) == "vm-0.vupmem1"
    fs.set_rank_status(3, busy=False)
    assert not fs.rank_is_busy(3)
    assert fs.read(fs.rank_status_path(3)) == STATUS_FREE


def test_unknown_rank_not_busy():
    fs = SysFs()
    assert not fs.rank_is_busy(42)
    assert fs.rank_owner(42) == ""


def test_listeners_fire_on_write():
    fs = SysFs()
    events = []
    fs.subscribe(lambda path, content: events.append((path, content)))
    fs.set_rank_status(0, busy=True, owner="x")
    fs.set_rank_status(0, busy=False)
    assert len(events) == 2
    assert events[0][1].startswith("busy")
    assert events[1][1] == STATUS_FREE
