"""Cost model: the 11-cycle pipeline rule and derived helpers."""

import pytest

from repro.hardware.timing import CostModel, DEFAULT_COST_MODEL


@pytest.fixture
def cm() -> CostModel:
    return DEFAULT_COST_MODEL


def test_pipeline_full_with_11_tasklets(cm):
    # With >= 11 busy tasklets, time is bounded by total instructions.
    counts = [100] * 11
    assert cm.pipeline_time(counts) == pytest.approx(
        cm.cycles_to_seconds(1100))


def test_pipeline_underutilized_below_11_tasklets(cm):
    # One tasklet: each instruction is 11 cycles apart.
    assert cm.pipeline_time([100]) == pytest.approx(
        cm.cycles_to_seconds(1100))


def test_pipeline_balanced_16_tasklets(cm):
    counts = [50] * 16
    # 800 total > 11 * 50 = 550 -> throughput-bound.
    assert cm.pipeline_time(counts) == pytest.approx(cm.cycles_to_seconds(800))


def test_pipeline_skewed_tasklets_bound_by_slowest(cm):
    counts = [1000] + [1] * 15
    # 11 * 1000 > 1015: hazard-bound by the heavy tasklet.
    assert cm.pipeline_time(counts) == pytest.approx(
        cm.cycles_to_seconds(11_000))


def test_pipeline_empty_is_zero(cm):
    assert cm.pipeline_time([]) == 0.0


def test_dma_time_components(cm):
    t = cm.dma_time(nr_ops=2, total_bytes=1000)
    expected = cm.cycles_to_seconds(2 * cm.dma_setup_cycles + 500)
    assert t == pytest.approx(expected)


def test_rank_transfer_has_fixed_floor(cm):
    assert cm.rank_transfer_time(0) == pytest.approx(cm.rank_op_fixed)
    assert cm.rank_transfer_time(1 << 30) > cm.rank_transfer_time(1 << 20)


def test_interleave_rust_slower_than_c(cm):
    c = cm.interleave_time(1 << 20, rust=False)
    rust = cm.interleave_time(1 << 20, rust=True)
    assert rust / c == pytest.approx(cm.rust_slowdown)
    # The paper's Section 4.2 floor: C is at least 3.43x faster.
    assert rust / c >= 3.43


def test_transition_roundtrip_is_sum_of_parts(cm):
    assert cm.transition_roundtrip() == pytest.approx(
        cm.vmexit_cost + cm.event_dispatch_cost + cm.irq_inject_cost)


def test_pages_of(cm):
    assert cm.pages_of(0) == 0
    assert cm.pages_of(1) == 1
    assert cm.pages_of(4096) == 1
    assert cm.pages_of(4097) == 2


def test_with_overrides_replaces_only_named(cm):
    other = cm.with_overrides(rust_slowdown=5.0)
    assert other.rust_slowdown == 5.0
    assert other.rank_xfer_bandwidth == cm.rank_xfer_bandwidth
    # Frozen dataclass: the original is untouched.
    assert cm.rust_slowdown != 5.0


def test_manager_costs_match_paper(cm):
    # Section 4.2: 36 ms allocation, 597 ms reset.
    assert cm.manager_alloc == pytest.approx(36e-3)
    assert cm.manager_reset == pytest.approx(597e-3)


def test_boot_cost_within_paper_bound(cm):
    # Section 3.2: a vUPMEM device adds up to 2 ms of boot time.
    assert cm.vupmem_boot_cost <= 2e-3
