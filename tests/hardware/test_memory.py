"""MemoryRegion: lazy materialization, bounds, fill semantics."""

import numpy as np
import pytest

from repro.errors import MemoryAccessError
from repro.hardware.memory import MemoryRegion, SEGMENT_SIZE


def test_read_untouched_returns_zeros():
    mem = MemoryRegion(1 << 20)
    assert not mem.read(0, 4096).any()


def test_write_then_read_roundtrip():
    mem = MemoryRegion(1 << 20)
    data = np.arange(256, dtype=np.uint8)
    mem.write(100, data)
    assert np.array_equal(mem.read(100, 256), data)


def test_write_crossing_segment_boundary():
    mem = MemoryRegion(4 * SEGMENT_SIZE)
    data = np.arange(1000, dtype=np.int32).view(np.uint8)
    offset = SEGMENT_SIZE - 17
    mem.write(offset, data)
    assert np.array_equal(mem.read(offset, data.size), data)


def test_read_crossing_multiple_segments():
    mem = MemoryRegion(8 * SEGMENT_SIZE)
    data = np.random.default_rng(0).integers(
        0, 255, 3 * SEGMENT_SIZE + 5, dtype=np.uint8).astype(np.uint8)
    mem.write(SEGMENT_SIZE // 2, data)
    assert np.array_equal(mem.read(SEGMENT_SIZE // 2, data.size), data)


def test_out_of_bounds_read_raises():
    mem = MemoryRegion(1024)
    with pytest.raises(MemoryAccessError):
        mem.read(1000, 100)


def test_out_of_bounds_write_raises():
    mem = MemoryRegion(1024)
    with pytest.raises(MemoryAccessError):
        mem.write(1020, np.zeros(8, dtype=np.uint8))


def test_negative_offset_raises():
    mem = MemoryRegion(1024)
    with pytest.raises(MemoryAccessError):
        mem.read(-4, 8)


def test_zero_size_region_rejected():
    with pytest.raises(ValueError):
        MemoryRegion(0)


def test_fill_zero_drops_segments():
    mem = MemoryRegion(1 << 20)
    mem.write(0, np.ones(SEGMENT_SIZE, dtype=np.uint8))
    assert mem.materialized_bytes > 0
    mem.fill(0)
    assert mem.materialized_bytes == 0
    assert not mem.read(0, SEGMENT_SIZE).any()


def test_fill_nonzero_small_region():
    mem = MemoryRegion(4096)
    mem.fill(7)
    assert (mem.read(0, 4096) == 7).all()


def test_fill_nonzero_huge_region_rejected():
    mem = MemoryRegion(2 << 30)
    with pytest.raises(MemoryAccessError):
        mem.fill(1)


def test_is_zero_tracks_content():
    mem = MemoryRegion(1 << 16)
    assert mem.is_zero()
    mem.write(100, np.array([1], dtype=np.uint8))
    assert not mem.is_zero()
    mem.write(100, np.array([0], dtype=np.uint8))
    assert mem.is_zero()  # all bytes back to zero


def test_materialization_is_lazy():
    # A 64 MB MRAM-sized region with one small write must not allocate 64 MB.
    mem = MemoryRegion(64 << 20)
    mem.write(12345, np.zeros(16, dtype=np.uint8))
    assert mem.materialized_bytes <= 2 * SEGMENT_SIZE


def test_accepts_bytes_and_ndarray():
    mem = MemoryRegion(1024)
    mem.write(0, b"\x01\x02\x03")
    mem.write(3, bytearray(b"\x04"))
    mem.write(4, np.array([5, 6], dtype=np.uint8))
    assert list(mem.read(0, 6)) == [1, 2, 3, 4, 5, 6]


def test_non_u8_array_viewed_as_bytes():
    mem = MemoryRegion(1024)
    mem.write(0, np.array([1], dtype=np.uint32))
    assert np.array_equal(mem.read(0, 4).view(np.uint32), [1])
