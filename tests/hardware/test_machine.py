"""Machine assembly: DIMMs, ranks, the paper testbed."""

import pytest

from repro.config import (
    MachineConfig,
    RankConfig,
    paper_testbed,
    small_machine,
)
from repro.errors import HardwareError
from repro.hardware.machine import Machine


def test_paper_testbed_geometry():
    machine = Machine(paper_testbed())
    # Section 5.1: 8 ranks, 480 functional DPUs (rank 0 has only 60).
    assert machine.nr_ranks == 8
    assert machine.total_dpus == 480
    assert machine.rank(0).nr_dpus == 60
    # 4 UPMEM DIMMs, 2 ranks each.
    assert len(machine.dimms) == 4
    assert all(len(d.ranks) == 2 for d in machine.dimms)


def test_small_machine():
    machine = Machine(small_machine(nr_ranks=3, dpus_per_rank=4))
    assert machine.nr_ranks == 3
    assert machine.total_dpus == 12


def test_rank_out_of_range():
    machine = Machine(small_machine())
    with pytest.raises(HardwareError):
        machine.rank(99)


def test_rank_config_validation():
    with pytest.raises(ValueError):
        RankConfig(0, 0)
    with pytest.raises(ValueError):
        RankConfig(0, 65)


def test_machine_clock_shared_with_ranks():
    machine = Machine(small_machine())
    assert machine.clock.now == 0.0
    machine.clock.advance(1.0)
    assert machine.clock.now == 1.0


def test_config_totals():
    cfg = MachineConfig(ranks=[RankConfig(0, 60), RankConfig(1, 64)])
    assert cfg.nr_ranks == 2
    assert cfg.total_functional_dpus == 124
