"""Rank: transfers, launch, reset, CI counters, hardware limits."""

import numpy as np
import pytest

from repro.config import RankConfig
from repro.errors import MemoryAccessError, TransferError
from repro.hardware.dpu import DpuRunStats
from repro.hardware.rank import (
    CiCommand,
    Rank,
    ReadSpec,
    WriteSpec,
)


@pytest.fixture
def rank() -> Rank:
    return Rank(RankConfig(0, 8))


def test_geometry(rank):
    assert rank.nr_dpus == 8
    assert len(rank.chips) == 1
    full = Rank(RankConfig(1, 64))
    assert len(full.chips) == 8
    assert all(len(chip) == 8 for chip in full.chips)


def test_defective_rank_population():
    rank = Rank(RankConfig(0, 60))
    assert rank.nr_dpus == 60
    assert len(rank.chips) == 8  # last chip is partially populated
    assert len(rank.chips[-1]) == 4


def test_write_then_read_mram(rank):
    data = np.arange(100, dtype=np.uint8)
    duration = rank.write_mram([WriteSpec(2, 64, data)])
    assert duration > 0
    bufs, rd = rank.read_mram([ReadSpec(2, 64, 100)])
    assert np.array_equal(bufs[0], data)
    assert rd > 0


def test_multi_dpu_write_is_one_operation(rank):
    specs = [WriteSpec(i, 0, np.full(10, i, dtype=np.uint8))
             for i in range(4)]
    rank.write_mram(specs)
    assert rank.write_ops == 1
    assert rank.bytes_written == 40
    for i in range(4):
        assert (rank.dpu(i).mram.read(0, 10) == i).all()


def test_invalid_dpu_index(rank):
    with pytest.raises(MemoryAccessError):
        rank.dpu(8)


def test_transfer_size_limit(rank):
    # A single entry over 4 GB must be rejected (Section 3.1).
    class FakeBig:
        size = (4 << 30) + 1
    spec = ReadSpec(0, 0, (4 << 30) + 1)
    with pytest.raises(TransferError):
        rank.read_mram([spec])


def test_write_duration_scales_with_bytes(rank):
    small = rank.write_mram([WriteSpec(0, 0, np.zeros(1 << 10, np.uint8))])
    large = rank.write_mram([WriteSpec(0, 0, np.zeros(1 << 20, np.uint8))])
    assert large > small


def test_rust_interleave_slower(rank):
    data = np.zeros(1 << 20, dtype=np.uint8)
    c = rank.write_mram([WriteSpec(0, 0, data)])
    rust = rank.write_mram([WriteSpec(0, 0, data)], rust_interleave=True)
    assert rust > c


def test_launch_runs_all_requested_dpus(rank):
    for dpu in rank.dpus:
        dpu.load_program("p", 64, {})

    ran = []

    def runner(dpu):
        ran.append(dpu.dpu_index)
        return DpuRunStats(tasklet_instructions=[100])

    duration = rank.launch(range(4), runner)
    assert sorted(ran) == [0, 1, 2, 3]
    assert duration > 0


def test_launch_duration_is_slowest_dpu(rank):
    for dpu in rank.dpus:
        dpu.load_program("p", 64, {})

    def runner(dpu):
        instr = 1000 if dpu.dpu_index == 0 else 10
        return DpuRunStats(tasklet_instructions=[instr])

    duration = rank.launch(range(2), runner)
    expected = rank.cost.pipeline_time([1000])
    assert duration == pytest.approx(expected)


def test_ci_counters(rank):
    rank.ci.execute(CiCommand.STATUS, 5)
    rank.ci.execute(CiCommand.BOOT, 2)
    assert rank.ci.counters.ops["status"] == 5
    assert rank.ci.counters.ops["boot"] == 2
    assert rank.ci.counters.total == 7


def test_ci_status_reports_states(rank):
    states = rank.ci.status()
    assert len(states) == 8


def test_reset_erases_and_costs(rank):
    rank.dpu(0).mram.write(0, np.ones(16, dtype=np.uint8))
    duration = rank.reset()
    assert duration == pytest.approx(rank.cost.manager_reset)
    assert rank.is_clean()
    assert rank.dpu(0).program is None
