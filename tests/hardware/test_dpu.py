"""DPU model: program load, symbols, state machine."""

import numpy as np
import pytest

from repro.config import IRAM_SIZE
from repro.errors import DpuFaultError, ProgramLoadError
from repro.hardware.dpu import Dpu, DpuRunStats, DpuState


@pytest.fixture
def dpu() -> Dpu:
    return Dpu(rank_index=0, dpu_index=3)


def test_initial_state(dpu):
    assert dpu.state is DpuState.IDLE
    assert dpu.program is None
    assert dpu.mram.size == 64 << 20
    assert dpu.wram.size == 64 << 10
    assert dpu.iram.size == 24 << 10


def test_load_program_sets_symbols(dpu):
    dpu.load_program("prog", binary_size=1024, symbols={"x": 4, "y": 8})
    assert dpu.program == "prog"
    assert len(dpu.symbols["x"]) == 4
    assert len(dpu.symbols["y"]) == 8


def test_load_too_large_binary_rejected(dpu):
    with pytest.raises(ProgramLoadError):
        dpu.load_program("prog", binary_size=IRAM_SIZE + 1, symbols={})


def test_load_while_running_rejected(dpu):
    dpu.load_program("prog", 64, {})
    dpu.begin_run()
    with pytest.raises(ProgramLoadError):
        dpu.load_program("prog2", 64, {})


def test_symbol_write_read(dpu):
    dpu.load_program("prog", 64, {"counter": 8})
    dpu.write_symbol("counter", 0, b"\x01\x00\x00\x00")
    assert dpu.read_symbol("counter", 0, 4) == b"\x01\x00\x00\x00"


def test_symbol_write_with_offset(dpu):
    dpu.load_program("prog", 64, {"buf": 8})
    dpu.write_symbol("buf", 4, b"\xff\xff")
    assert dpu.read_symbol("buf", 0, 8) == b"\x00\x00\x00\x00\xff\xff\x00\x00"


def test_unknown_symbol_rejected(dpu):
    dpu.load_program("prog", 64, {})
    with pytest.raises(DpuFaultError):
        dpu.write_symbol("nope", 0, b"\x00")
    with pytest.raises(DpuFaultError):
        dpu.read_symbol("nope", 0, 1)


def test_symbol_overflow_rejected(dpu):
    dpu.load_program("prog", 64, {"small": 4})
    with pytest.raises(DpuFaultError):
        dpu.write_symbol("small", 2, b"\x00\x00\x00")
    with pytest.raises(DpuFaultError):
        dpu.read_symbol("small", 0, 5)


def test_run_state_transitions(dpu):
    dpu.load_program("prog", 64, {})
    dpu.begin_run()
    assert dpu.state is DpuState.RUNNING
    stats = DpuRunStats(tasklet_instructions=[10, 20])
    dpu.finish_run(stats)
    assert dpu.state is DpuState.DONE
    assert dpu.last_run.total_instructions == 30


def test_launch_without_program_faults(dpu):
    with pytest.raises(DpuFaultError):
        dpu.begin_run()


def test_double_launch_faults(dpu):
    dpu.load_program("prog", 64, {})
    dpu.begin_run()
    with pytest.raises(DpuFaultError):
        dpu.begin_run()


def test_fault_state(dpu):
    dpu.load_program("prog", 64, {})
    dpu.begin_run()
    dpu.fault()
    assert dpu.state is DpuState.FAULT


def test_reset_clears_everything(dpu):
    dpu.load_program("prog", 64, {"v": 4})
    dpu.mram.write(0, np.array([1, 2, 3], dtype=np.uint8))
    dpu.reset()
    assert dpu.state is DpuState.IDLE
    assert dpu.program is None
    assert dpu.symbols == {}
    assert dpu.mram.is_zero()
