"""Byte-interleaving codec: correctness and isolation property."""

import numpy as np
import pytest

from repro.hardware.interleave import deinterleave, interleave, roundtrip_identity


def test_roundtrip_small():
    data = np.arange(64, dtype=np.uint8)
    assert roundtrip_identity(data)


def test_interleave_layout_one_word():
    # One 8-byte word: byte i goes to chip i, so the layout is unchanged.
    data = np.arange(8, dtype=np.uint8)
    assert np.array_equal(interleave(data), data)


def test_interleave_layout_two_words():
    # Two words: chip c holds bytes [c, c+8].
    data = np.arange(16, dtype=np.uint8)
    out = interleave(data)
    expected = np.array([0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13, 6, 14, 7, 15],
                        dtype=np.uint8)
    assert np.array_equal(out, expected)


def test_chip_streams_are_contiguous():
    data = np.arange(32, dtype=np.uint8)
    out = interleave(data)
    # Chip 0's stream: bytes 0, 8, 16, 24 of the host buffer.
    assert np.array_equal(out[:4], [0, 8, 16, 24])


def test_non_multiple_length_rejected():
    with pytest.raises(ValueError):
        interleave(np.zeros(13, dtype=np.uint8))
    with pytest.raises(ValueError):
        deinterleave(np.zeros(9, dtype=np.uint8))


def test_word_isolation_property():
    """No chip ever sees two bytes of the same 64-bit word.

    This is the hardware property Section 3.5 relies on: a DPU program
    reading its chip's bytes cannot reconstruct another tenant's words.
    """
    n_words = 16
    data = np.arange(n_words * 8, dtype=np.uint8)
    out = interleave(data)
    per_chip = out.reshape(8, n_words)
    for chip in range(8):
        words_seen = per_chip[chip] // 8
        assert len(set(words_seen.tolist())) == n_words


def test_interleave_int32_view():
    data = np.arange(100, dtype=np.int32)
    round_tripped = deinterleave(interleave(data))
    assert np.array_equal(round_tripped.view(np.int32), data)
