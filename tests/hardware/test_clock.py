"""SimClock and SpanRecorder."""

import pytest

from repro.hardware.clock import SimClock, SpanRecorder


def test_clock_starts_at_zero():
    assert SimClock().now == 0.0


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == pytest.approx(2.0)


def test_advance_negative_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_advance_to_future_only():
    clock = SimClock()
    clock.advance(5.0)
    clock.advance_to(3.0)   # in the past: no-op
    assert clock.now == pytest.approx(5.0)
    clock.advance_to(7.0)
    assert clock.now == pytest.approx(7.0)


def test_reset():
    clock = SimClock()
    clock.advance(9.0)
    clock.reset()
    assert clock.now == 0.0


def test_span_recorder_totals():
    clock = SimClock()
    rec = SpanRecorder(clock)
    rec.record("a", 0.0, 1.0)
    rec.record("b", 1.0, 1.5)
    rec.record("a", 2.0, 2.25)
    assert rec.total("a") == pytest.approx(1.25)
    assert rec.total("b") == pytest.approx(0.5)
    assert rec.total("missing") == 0.0


def test_span_recorder_rejects_negative_span():
    rec = SpanRecorder(SimClock())
    with pytest.raises(ValueError):
        rec.record("x", 2.0, 1.0)
