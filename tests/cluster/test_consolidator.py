"""Consolidation: draining hosts through the migration path."""

import numpy as np

from repro.cluster import Consolidator, Scheduler, TenantRequest


def _place(scheduler, tenant, nr_ranks=1, fill=None):
    scheduler.submit(TenantRequest(tenant=tenant, nr_ranks=nr_ranks))
    placement = scheduler.try_place_next()
    placement.acquire()
    if fill is not None:
        for device in placement.linked_devices():
            for dpu in device.backend.mapping.rank.dpus:
                dpu.mram.write(0, np.full(256, fill, np.uint8))
    return placement


def test_run_once_drains_the_emptiest_host(cluster, scheduler):
    # round_robin spreads the two tenants over host0 and host1.
    a = _place(scheduler, "a", fill=7)
    b = _place(scheduler, "b", fill=9)
    assert a.host is not b.host
    # Donor ties on allocated ranks break on host order: a's host0 drains.
    donor = a.host

    consolidator = Consolidator(cluster, scheduler)
    moved = consolidator.run_once()

    assert moved == 1
    assert consolidator.hosts_drained == 1
    assert donor.allocated_ranks() == 0
    assert a.host is b.host                  # placement re-homed
    # Tenant data survived the checkpoint/restore hop.
    for device in b.linked_devices():
        rank = device.backend.mapping.rank
        assert all((dpu.mram.read(0, 256) == 9).all() for dpu in rank.dpus)
    for device in a.linked_devices():
        rank = device.backend.mapping.rank
        assert all((dpu.mram.read(0, 256) == 7).all() for dpu in rank.dpus)


def test_drain_refused_when_nothing_fits(cluster, scheduler):
    # Every host full: no receiver has room, so nothing moves.
    placements = [_place(scheduler, f"t{i}", nr_ranks=2) for i in range(3)]
    consolidator = Consolidator(cluster, scheduler)
    assert consolidator.run_once() == 0
    assert consolidator.hosts_drained == 0
    assert all(p.host is placements[i].host for i, p in enumerate(placements))


def test_single_busy_host_is_left_alone(cluster, scheduler):
    _place(scheduler, "only")
    consolidator = Consolidator(cluster, scheduler)
    assert consolidator.run_once() == 0
    assert consolidator.migrations == 0


def test_running_dpus_block_the_drain(cluster, scheduler):
    from repro.sdk.kernel import DpuProgram

    class Spin(DpuProgram):
        name = "spin"
        nr_tasklets = 1

        def kernel(self, ctx):
            yield ctx.barrier()

    a = _place(scheduler, "a")
    _place(scheduler, "b")
    # host0 (a's host) is the tie-break donor; mark one of its DPUs
    # as mid-launch.
    program = Spin()
    dpu = a.linked_devices()[0].backend.mapping.rank.dpus[0]
    dpu.load_program(program, program.binary_size, program.symbols)
    dpu.begin_run()
    consolidator = Consolidator(cluster, scheduler)
    assert consolidator.run_once() == 0
    assert consolidator.migrations == 0


def test_migration_metrics_recorded(cluster, scheduler):
    a = _place(scheduler, "a", fill=1)
    b = _place(scheduler, "b", fill=2)
    donor = a.host
    consolidator = Consolidator(cluster, scheduler)
    consolidator.run_once()

    metrics = cluster.metrics
    assert metrics.value("repro_cluster_consolidation_runs_total") == 1
    assert metrics.value("repro_cluster_hosts_drained_total") == 1
    assert metrics.value("repro_cluster_migrations_total",
                         from_host=donor.host_id,
                         to_host=b.host.host_id) == 1
    assert metrics.value("repro_cluster_migrated_bytes_total") > 0


def test_migration_advances_shared_clock(cluster, scheduler):
    _place(scheduler, "a", fill=1)
    _place(scheduler, "b", fill=2)
    consolidator = Consolidator(cluster, scheduler)
    t0 = cluster.clock.now
    assert consolidator.run_once() == 1
    assert cluster.clock.now > t0
