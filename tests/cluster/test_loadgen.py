"""Load generation: reproducibility, backpressure, app integration."""

import dataclasses

import pytest

from repro.cluster import ClusterConfig, LoadGenerator, ScenarioConfig
from repro.cluster.loadgen import run_scenario
from repro.errors import ClusterError
from repro.observability.export import render_prometheus

SMALL_FLEET = ClusterConfig(nr_hosts=3, ranks_per_host=2, dpus_per_rank=4)


def test_same_seed_replays_identical_scenario():
    config = ScenarioConfig(cluster=SMALL_FLEET, policy="best_fit",
                            nr_requests=12, consolidate_every_s=1.0,
                            seed=3)
    r1, c1 = run_scenario(config)
    r2, c2 = run_scenario(config)
    assert render_prometheus(c1.metrics) == render_prometheus(c2.metrics)
    assert r1.waits == r2.waits
    assert r1.makespan_s == r2.makespan_s
    assert r1.rank_seconds == r2.rank_seconds
    # request_id is a process-global counter; everything else replays.
    assert [dataclasses.astuple(a)[1:] for a in r1.records] == \
           [dataclasses.astuple(b)[1:] for b in r2.records]


def test_different_seeds_differ():
    base = ScenarioConfig(cluster=SMALL_FLEET, nr_requests=12,
                          run_apps=False)
    r1, _ = run_scenario(dataclasses.replace(base, seed=1))
    r2, _ = run_scenario(dataclasses.replace(base, seed=2))
    assert r1.waits != r2.waits or r1.makespan_s != r2.makespan_s


def test_apps_run_and_verify():
    config = ScenarioConfig(cluster=SMALL_FLEET, nr_requests=6,
                            arrival_rate=1.0, mean_hold_s=0.5, seed=5)
    result, _ = run_scenario(config)
    verified = [r.verified for r in result.records
                if r.outcome == "completed" and r.app is not None]
    assert verified and all(verified)


def test_every_request_is_accounted_for():
    config = ScenarioConfig(cluster=SMALL_FLEET, nr_requests=20,
                            arrival_rate=8.0, mean_hold_s=3.0,
                            queue_limit=2, run_apps=False, seed=4)
    result, cluster = run_scenario(config)
    assert result.submitted == 20
    assert result.completions + result.rejected == 20
    assert result.completions == result.placements
    # Overload with a tiny queue must produce backpressure.
    assert result.rejections.get("rejected_queue_full", 0) > 0
    # Everything departed: the fleet ends empty.
    assert cluster.allocated_ranks() == 0


def test_quota_rejections_flow_through():
    config = ScenarioConfig(cluster=SMALL_FLEET, nr_tenants=1,
                            nr_requests=10, arrival_rate=8.0,
                            mean_hold_s=4.0, tenant_quota_ranks=2,
                            run_apps=False, seed=0)
    result, _ = run_scenario(config)
    assert result.rejections.get("rejected_quota", 0) > 0


def test_consolidation_in_the_loop():
    config = ScenarioConfig(cluster=SMALL_FLEET, policy="round_robin",
                            nr_requests=16, arrival_rate=2.0,
                            mean_hold_s=2.0, consolidate_every_s=0.5,
                            run_apps=False, seed=7)
    result, cluster = run_scenario(config)
    assert cluster.metrics.value(
        "repro_cluster_consolidation_runs_total") > 0
    assert result.migrations == sum(
        child.value
        for family in cluster.metrics.collect()
        if family.name == "repro_cluster_migrations_total"
        for _, child in family.samples())


def test_config_validation():
    with pytest.raises(ClusterError):
        LoadGenerator(ScenarioConfig(nr_requests=0))
    with pytest.raises(ClusterError):
        LoadGenerator(ScenarioConfig(arrival_rate=0.0))
    with pytest.raises(ClusterError):
        LoadGenerator(ScenarioConfig(interactive_fraction=1.5))
    with pytest.raises(ClusterError, match="no scenario parameters"):
        LoadGenerator(ScenarioConfig(apps=("NOPE",)))


def test_arrivals_are_poisson_and_seeded():
    config = ScenarioConfig(cluster=SMALL_FLEET, nr_requests=50,
                            arrival_rate=2.0, run_apps=False, seed=9)
    schedule = LoadGenerator(config).build_requests()
    times = [t for t, _ in schedule]
    assert times == sorted(times)
    assert LoadGenerator(config).build_requests()[0][0] == times[0]
    # Mean inter-arrival time roughly matches 1/rate.
    mean_gap = times[-1] / len(times)
    assert 0.25 < mean_gap < 1.0
