"""Placement policies: rotation, packing, spreading, tie-breaking."""

import pytest

from repro.cluster import (
    PLACEMENT_POLICIES,
    Placement,
    Scheduler,
    TenantRequest,
    make_policy,
)
from repro.cluster.policies import (
    BestFitPlacement,
    LeastLoadedPlacement,
    RoundRobinPlacement,
)
from repro.errors import ClusterError


def _occupy(cluster, host_index, nr_ranks):
    """Allocate ``nr_ranks`` on one host directly (test scaffolding)."""
    from repro.virt.firecracker import VmConfig

    host = cluster.hosts[host_index]
    vm = host.firecracker.launch_vm(
        VmConfig(vcpus=4, mem_bytes=1 << 30, nr_vupmem=nr_ranks))
    for device in vm.free_devices():
        vm.acquire_rank(device)
    return vm


def test_round_robin_rotates(cluster):
    policy = RoundRobinPlacement()
    picks = [policy.choose(cluster.hosts, 1).host_id for _ in range(4)]
    assert picks == ["host0", "host1", "host2", "host0"]


def test_round_robin_skips_full_hosts(cluster):
    _occupy(cluster, 1, 2)           # host1 is full
    policy = RoundRobinPlacement()
    picks = [policy.choose(cluster.hosts, 1).host_id for _ in range(3)]
    assert picks == ["host0", "host2", "host0"]


def test_best_fit_packs_tightest(cluster):
    _occupy(cluster, 1, 1)           # host1 now has 1 free rank
    policy = BestFitPlacement()
    assert policy.choose(cluster.hosts, 1).host_id == "host1"
    # A 2-rank request cannot use the packed host.
    assert policy.choose(cluster.hosts, 2).host_id == "host0"


def test_least_loaded_spreads(cluster):
    _occupy(cluster, 0, 1)
    policy = LeastLoadedPlacement()
    # host1 and host2 tie on 2 free ranks; first in host order wins.
    assert policy.choose(cluster.hosts, 1).host_id == "host1"


def test_policies_return_none_when_nothing_fits(cluster):
    for name in PLACEMENT_POLICIES:
        assert make_policy(name).choose(cluster.hosts, 99) is None


def test_make_policy_rejects_unknown():
    with pytest.raises(ClusterError, match="unknown placement policy"):
        make_policy("first_fit")


def test_scheduler_accepts_policy_instance(cluster):
    scheduler = Scheduler(cluster, policy=BestFitPlacement())
    assert scheduler.policy.name == "best_fit"
    assert scheduler.submit(TenantRequest(tenant="t0")) == "queued"
    placement = scheduler.try_place_next()
    assert isinstance(placement, Placement)
