"""Fleet construction: shared clock, host addressing, occupancy views."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import ClusterError


def test_hosts_share_one_clock(cluster):
    clocks = {id(host.machine.clock) for host in cluster.hosts}
    assert clocks == {id(cluster.clock)}
    cluster.clock.advance(1.5)
    assert all(host.machine.clock.now == 1.5 for host in cluster.hosts)


def test_host_lookup(cluster):
    assert cluster.host("host1") is cluster.hosts[1]
    with pytest.raises(ClusterError, match="unknown host"):
        cluster.host("host9")


def test_fleet_geometry(cluster):
    assert cluster.nr_hosts == 3
    assert cluster.total_ranks == 6
    assert cluster.largest_host_ranks() == 2
    assert cluster.allocated_ranks() == 0
    assert cluster.utilization() == 0.0


def test_config_validation():
    with pytest.raises(ClusterError):
        ClusterConfig(nr_hosts=0)
    with pytest.raises(ClusterError):
        ClusterConfig(ranks_per_host=0)


def test_host_occupancy_tracks_manager(cluster):
    from repro.virt.firecracker import VmConfig

    host = cluster.hosts[0]
    vm = host.firecracker.launch_vm(
        VmConfig(vcpus=4, mem_bytes=1 << 30, nr_vupmem=1))
    vm.acquire_rank(vm.devices[0])
    assert host.allocated_ranks() == 1
    assert host.free_ranks() == 1
    assert host.utilization() == 0.5
    assert host.fits(1) and not host.fits(2)
    vm.shutdown()
    assert host.allocated_ranks() == 0


def test_cluster_metrics_registry_is_fleet_wide(cluster):
    assert cluster.metrics is not cluster.hosts[0].metrics
    assert cluster.hosts[0].metrics is not cluster.hosts[1].metrics
