"""Shared fixtures: small fleets for fast control-plane tests."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig, Scheduler


@pytest.fixture
def cluster() -> Cluster:
    """A 3-host fleet, 2 ranks x 4 DPUs per host."""
    return Cluster(ClusterConfig(nr_hosts=3, ranks_per_host=2,
                                 dpus_per_rank=4))


@pytest.fixture
def scheduler(cluster) -> Scheduler:
    return Scheduler(cluster, policy="round_robin", queue_limit=4)
