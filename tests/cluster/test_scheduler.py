"""Admission control and placement: queueing, quotas, backpressure."""


from repro.cluster import Scheduler, TenantRequest


def test_submit_place_release_roundtrip(cluster, scheduler):
    assert scheduler.submit(TenantRequest(tenant="t0", nr_ranks=2)) == "queued"
    placement = scheduler.try_place_next()
    assert placement is not None
    assert placement.vm.config.nr_vupmem == 2
    placement.acquire()
    assert placement.host.allocated_ranks() == 2
    assert cluster.allocated_ranks() == 2

    scheduler.release(placement)
    assert cluster.allocated_ranks() == 0
    assert scheduler.active == []


def test_oversize_requests_bounce(scheduler):
    assert (scheduler.submit(TenantRequest(tenant="t0", nr_ranks=3))
            == "rejected_oversize")
    assert (scheduler.submit(TenantRequest(tenant="t0", nr_ranks=0))
            == "rejected_oversize")
    assert scheduler.queue == []


def test_bounded_queue_backpressure(scheduler):
    for i in range(4):
        assert (scheduler.submit(TenantRequest(tenant=f"t{i}"))
                == "queued")
    assert (scheduler.submit(TenantRequest(tenant="t9"))
            == "rejected_queue_full")
    assert len(scheduler.queue) == 4


def test_tenant_quota_counts_queued_and_placed(cluster):
    scheduler = Scheduler(cluster, queue_limit=8, tenant_quota_ranks=2)
    assert scheduler.submit(TenantRequest(tenant="t0")) == "queued"
    placement = scheduler.try_place_next()
    placement.acquire()
    # 1 placed + 1 queued = quota; a third rank is over.
    assert scheduler.submit(TenantRequest(tenant="t0")) == "queued"
    assert scheduler.submit(TenantRequest(tenant="t0")) == "rejected_quota"
    # Other tenants are unaffected.
    assert scheduler.submit(TenantRequest(tenant="t1")) == "queued"
    # Departure returns quota: one more rank fits, a second does not.
    scheduler.release(placement)
    assert scheduler.submit(TenantRequest(tenant="t0")) == "queued"
    assert scheduler.submit(TenantRequest(tenant="t0")) == "rejected_quota"


def test_interactive_dispatches_before_batch(scheduler):
    scheduler.submit(TenantRequest(tenant="b0", deadline_class="batch"))
    scheduler.submit(TenantRequest(tenant="b1", deadline_class="batch"))
    scheduler.submit(TenantRequest(tenant="i0",
                                   deadline_class="interactive"))
    scheduler.submit(TenantRequest(tenant="i1",
                                   deadline_class="interactive"))
    order = [scheduler.try_place_next().tenant for _ in range(4)]
    assert order == ["i0", "i1", "b0", "b1"]


def test_head_of_line_blocking(cluster, scheduler):
    # Fill the fleet so a 2-rank request cannot go anywhere.
    held = []
    for _ in range(3):
        scheduler.submit(TenantRequest(tenant="filler", nr_ranks=2))
        placement = scheduler.try_place_next()
        placement.acquire()
        held.append(placement)
    scheduler.submit(TenantRequest(tenant="big", nr_ranks=2))
    scheduler.submit(TenantRequest(tenant="small", nr_ranks=1))
    # The small request must NOT jump the blocked head of the queue.
    assert scheduler.try_place_next() is None
    assert [r.tenant for r in scheduler.queue] == ["big", "small"]
    # Freeing capacity unblocks the head first.
    scheduler.release(held[0])
    assert scheduler.try_place_next().tenant == "big"


def test_queue_wait_is_simulated_time(cluster, scheduler):
    request = TenantRequest(tenant="t0")
    scheduler.submit(request)
    cluster.clock.advance(2.5)
    placement = scheduler.try_place_next()
    # The wait covers the queue delay plus the (simulated) VM boot.
    wait = placement.placed_at - request.arrival_time
    assert 2.5 <= wait < 3.0


def test_admission_metrics_recorded(cluster, scheduler):
    scheduler.submit(TenantRequest(tenant="t0"))
    scheduler.submit(TenantRequest(tenant="t1", nr_ranks=9))
    placement = scheduler.try_place_next()
    metrics = cluster.metrics
    assert metrics.value("repro_cluster_requests_total",
                         policy="round_robin", outcome="queued") == 1
    assert metrics.value("repro_cluster_requests_total",
                         policy="round_robin",
                         outcome="rejected_oversize") == 1
    assert metrics.value("repro_cluster_placements_total",
                         policy="round_robin",
                         host=placement.host.host_id) == 1
    scheduler.release(placement)
    assert metrics.value("repro_cluster_sessions_completed_total",
                         host=placement.host.host_id) == 1
    assert metrics.value("repro_cluster_ranks_allocated",
                         host=placement.host.host_id) == 0
