"""Tasklet scheduler: barrier phases, errors, determinism."""

import numpy as np
import pytest

from repro.errors import DpuFaultError
from repro.hardware.dpu import Dpu
from repro.sdk.kernel import DpuProgram
from repro.sdk.runtime import make_runner, run_program


def make_dpu(program: DpuProgram) -> Dpu:
    dpu = Dpu(0, 0)
    dpu.load_program(program, program.binary_size, program.symbols)
    return dpu


class OrderProgram(DpuProgram):
    """Records execution order across two barrier phases."""

    name = "order"
    symbols = {}
    nr_tasklets = 4

    def kernel(self, ctx):
        ctx.shared.setdefault("log", []).append(("p1", ctx.me()))
        yield ctx.barrier()
        ctx.shared["log"].append(("p2", ctx.me()))


def test_barrier_separates_phases():
    program = OrderProgram()
    dpu = make_dpu(program)
    run_program(program, dpu)
    # Rebuild the log through a second run to inspect ordering.
    # (shared state is per-run, so capture through a fresh run)


class CaptureProgram(DpuProgram):
    name = "capture"
    symbols = {}
    nr_tasklets = 3
    log = None

    def kernel(self, ctx):
        if ctx.me() == 0:
            CaptureProgram.log = []
        yield ctx.barrier()
        CaptureProgram.log.append(("a", ctx.me()))
        yield ctx.barrier()
        CaptureProgram.log.append(("b", ctx.me()))


def test_all_tasklets_finish_phase_before_next():
    program = CaptureProgram()
    run_program(program, make_dpu(program))
    log = CaptureProgram.log
    phase_a = [e for e in log if e[0] == "a"]
    phase_b = [e for e in log if e[0] == "b"]
    assert len(phase_a) == 3 and len(phase_b) == 3
    # No "b" entry may precede any "a" entry.
    assert log.index(phase_b[0]) > log.index(phase_a[-1])


class UnevenProgram(DpuProgram):
    """Tasklets finish in different phases; scheduler must not hang."""

    name = "uneven"
    symbols = {"done": 4}
    nr_tasklets = 4

    def kernel(self, ctx):
        if ctx.me() < 2:
            yield ctx.barrier()
            yield ctx.barrier()
        ctx.add_host_u32("done", 1)


def test_uneven_phase_counts_complete():
    program = UnevenProgram()
    dpu = make_dpu(program)
    run_program(program, dpu)
    assert int.from_bytes(dpu.read_symbol("done", 0, 4), "little") == 4


class StatsProgram(DpuProgram):
    name = "stats"
    symbols = {}
    nr_tasklets = 2

    def kernel(self, ctx):
        ctx.charge(ctx.me() * 10 + 5)
        ctx.mram_read(0, 64)
        yield ctx.barrier()


def test_stats_collection():
    program = StatsProgram()
    stats = run_program(program, make_dpu(program))
    assert stats.tasklet_instructions == [5, 15]
    assert stats.dma_ops == 2
    assert stats.dma_bytes == 128


class NonGeneratorProgram(DpuProgram):
    name = "nongen"
    symbols = {}
    nr_tasklets = 1

    def kernel(self, ctx):
        return 42


def test_non_generator_kernel_rejected():
    program = NonGeneratorProgram()
    with pytest.raises(DpuFaultError):
        run_program(program, make_dpu(program))


class BadYieldProgram(DpuProgram):
    name = "badyield"
    symbols = {}
    nr_tasklets = 1

    def kernel(self, ctx):
        yield "not a barrier"


def test_bad_yield_value_rejected():
    program = BadYieldProgram()
    with pytest.raises(DpuFaultError):
        run_program(program, make_dpu(program))


class TooManyTaskletsProgram(DpuProgram):
    name = "toomany"
    symbols = {}
    nr_tasklets = 25

    def kernel(self, ctx):
        yield ctx.barrier()


def test_tasklet_limit_enforced():
    program = TooManyTaskletsProgram()
    with pytest.raises(DpuFaultError):
        run_program(program, make_dpu(program))


def test_runner_checks_loaded_program():
    program = StatsProgram()
    other = CaptureProgram()
    dpu = make_dpu(other)
    runner = make_runner(program)
    with pytest.raises(DpuFaultError):
        runner(dpu)


def test_deterministic_results():
    class SumProgram(DpuProgram):
        name = "sum"
        symbols = {"total": 8}
        nr_tasklets = 8

        def kernel(self, ctx):
            data = ctx.mram_read(ctx.me() * 8, 8).view(np.int64)
            ctx.add_host_u64("total", int(data[0]))
            yield ctx.barrier()

    program = SumProgram()
    results = []
    for _ in range(3):
        dpu = make_dpu(program)
        dpu.mram.write(0, np.arange(8, dtype=np.int64))
        run_program(program, dpu)
        results.append(dpu.read_symbol("total", 0, 8))
    assert results[0] == results[1] == results[2]
    assert int.from_bytes(results[0], "little") == sum(range(8))
