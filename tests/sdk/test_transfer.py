"""Transfer matrices: validation, page accounting, helpers."""

import numpy as np
import pytest

from repro.config import MRAM_HEAP_SYMBOL
from repro.errors import TransferError
from repro.sdk.transfer import (
    DpuEntry,
    Target,
    TransferMatrix,
    XferKind,
    uniform_read,
    uniform_write,
)


def test_entry_page_count():
    assert DpuEntry(0, 0).nr_pages == 0
    assert DpuEntry(0, 1, np.zeros(1, np.uint8)).nr_pages == 1
    assert DpuEntry(0, 4096, np.zeros(4096, np.uint8)).nr_pages == 1
    assert DpuEntry(0, 4097, np.zeros(4097, np.uint8)).nr_pages == 2


def test_entry_size_mismatch_rejected():
    with pytest.raises(TransferError):
        DpuEntry(0, 10, np.zeros(5, np.uint8))


def test_entry_negative_size_rejected():
    with pytest.raises(TransferError):
        DpuEntry(0, -1)


def test_to_dpu_requires_payload():
    with pytest.raises(TransferError):
        TransferMatrix(XferKind.TO_DPU, MRAM_HEAP_SYMBOL, 0,
                       [DpuEntry(0, 8)])


def test_duplicate_dpu_rejected():
    entries = [DpuEntry(1, 4, np.zeros(4, np.uint8)),
               DpuEntry(1, 4, np.zeros(4, np.uint8))]
    with pytest.raises(TransferError):
        TransferMatrix(XferKind.TO_DPU, MRAM_HEAP_SYMBOL, 0, entries)


def test_negative_offset_rejected():
    with pytest.raises(TransferError):
        TransferMatrix(XferKind.FROM_DPU, MRAM_HEAP_SYMBOL, -8,
                       [DpuEntry(0, 4)])


def test_target_classification():
    mram = TransferMatrix(XferKind.FROM_DPU, MRAM_HEAP_SYMBOL, 0,
                          [DpuEntry(0, 8)])
    assert mram.target is Target.MRAM
    wram = TransferMatrix(XferKind.FROM_DPU, "my_var", 0, [DpuEntry(0, 8)])
    assert wram.target is Target.WRAM_SYMBOL


def test_totals():
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 0, [
        np.zeros(100, np.uint8), np.zeros(5000, np.uint8)])
    assert matrix.total_bytes == 5100
    assert matrix.total_pages == 1 + 2
    assert matrix.max_entry_bytes == 5000


def test_uniform_read_builder():
    matrix = uniform_read(MRAM_HEAP_SYMBOL, 64, 256, nr_dpus=4)
    assert len(matrix.entries) == 4
    assert all(e.size == 256 and e.data is None for e in matrix.entries)
    assert [e.dpu_index for e in matrix.entries] == [0, 1, 2, 3]


def test_entry_data_flattened_to_u8():
    entry = DpuEntry(0, 8, np.array([1, 2], dtype=np.int32))
    assert entry.data.dtype == np.uint8
    assert entry.data.size == 8
