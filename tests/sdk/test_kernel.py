"""Kernel/TaskletContext: ids, WRAM heap, host vars, DMA accounting."""

import numpy as np
import pytest

from repro.config import MAX_TASKLETS, WRAM_SIZE
from repro.errors import DpuFaultError
from repro.hardware.dpu import Dpu
from repro.sdk.kernel import (
    BARRIER,
    DpuProgram,
    DpuSharedState,
    TaskletContext,
    tasklet_range,
)


@pytest.fixture
def shared() -> DpuSharedState:
    dpu = Dpu(0, 0)
    dpu.load_program("p", 64, {"v32": 4, "v64": 8, "arr": 16})
    return DpuSharedState(dpu, nr_tasklets=4)


def test_me_and_width(shared):
    ctx = TaskletContext(shared, 2)
    assert ctx.me() == 2
    assert ctx.nr_tasklets == 4


def test_tasklet_id_out_of_range(shared):
    with pytest.raises(DpuFaultError):
        TaskletContext(shared, MAX_TASKLETS)


def test_charge_accumulates(shared):
    ctx = TaskletContext(shared, 0)
    ctx.charge(10)
    ctx.charge_loop(5, 2.5)
    assert ctx.instructions == 10 + 12


def test_charge_negative_rejected(shared):
    ctx = TaskletContext(shared, 0)
    with pytest.raises(DpuFaultError):
        ctx.charge(-1)


def test_mem_alloc_bump_and_reset(shared):
    ctx = TaskletContext(shared, 0)
    a = ctx.mem_alloc(100)
    b = ctx.mem_alloc(100)
    assert a == 0
    assert b == 104  # 8-byte aligned
    ctx.mem_reset()
    assert ctx.mem_alloc(8) == 0


def test_mem_alloc_overflow(shared):
    ctx = TaskletContext(shared, 0)
    ctx.mem_alloc(WRAM_SIZE - 8)
    with pytest.raises(DpuFaultError):
        ctx.mem_alloc(64)


def test_mram_read_write_roundtrip(shared):
    ctx = TaskletContext(shared, 0)
    data = np.arange(32, dtype=np.uint8)
    ctx.mram_write(128, data)
    assert np.array_equal(ctx.mram_read(128, 32), data)
    assert shared.dma_ops == 2
    assert shared.dma_bytes == 64


def test_mram_blocked_accounting(shared):
    ctx = TaskletContext(shared, 0)
    ctx.mram_read_blocks(0, 10_000, block_bytes=2048)
    # ceil(10000 / 2048) = 5 DMA setups for one logical read.
    assert shared.dma_ops == 5
    assert shared.dma_bytes == 10_000


def test_mram_blocked_invalid_block(shared):
    ctx = TaskletContext(shared, 0)
    with pytest.raises(DpuFaultError):
        ctx.mram_read_blocks(0, 100, block_bytes=0)


def test_host_u32_roundtrip(shared):
    ctx = TaskletContext(shared, 0)
    ctx.set_host_u32("v32", 0xDEADBEEF)
    assert ctx.host_u32("v32") == 0xDEADBEEF


def test_host_u64_and_i64(shared):
    ctx = TaskletContext(shared, 0)
    ctx.set_host_u64("v64", 1 << 40)
    assert ctx.host_u64("v64") == 1 << 40
    ctx.set_host_i64("v64", -12345)
    assert ctx.host_i64("v64") == -12345


def test_host_indexed_access(shared):
    ctx = TaskletContext(shared, 0)
    ctx.set_host_u32("arr", 7, index=2)
    assert ctx.host_u32("arr", index=2) == 7
    assert ctx.host_u32("arr", index=0) == 0


def test_add_host_u32(shared):
    ctx = TaskletContext(shared, 0)
    ctx.set_host_u32("v32", 5)
    ctx.add_host_u32("v32", 3)
    assert ctx.host_u32("v32") == 8


def test_unknown_symbol_raises(shared):
    ctx = TaskletContext(shared, 0)
    with pytest.raises(DpuFaultError):
        ctx.host_u32("missing")


def test_shared_scratch_is_per_dpu(shared):
    a = TaskletContext(shared, 0)
    b = TaskletContext(shared, 1)
    a.shared["key"] = 42
    assert b.shared["key"] == 42


def test_barrier_returns_sentinel(shared):
    ctx = TaskletContext(shared, 0)
    assert ctx.barrier() is BARRIER


@pytest.mark.parametrize("total,parts", [(100, 4), (7, 4), (3, 8), (0, 4)])
def test_tasklet_range_partition(shared, total, parts):
    shared2 = DpuSharedState(shared.dpu, parts)
    ranges = [tasklet_range(TaskletContext(shared2, t), total)
              for t in range(parts)]
    covered = [i for rng in ranges for i in rng]
    assert covered == list(range(total))


def test_program_requires_kernel_override():
    with pytest.raises(NotImplementedError):
        prog = DpuProgram()
        list(prog.kernel(None))
