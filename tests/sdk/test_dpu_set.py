"""DpuSet: allocation, multi-rank splitting, transfers, lifecycle."""

import numpy as np
import pytest

from repro.config import MRAM_HEAP_SYMBOL, small_machine
from repro.driver.native import NativeTransport
from repro.errors import AllocationError, TransferError
from repro.hardware.machine import Machine
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, tasklet_range


class Echo(DpuProgram):
    """Copies its input region to its output region."""

    name = "echo"
    symbols = {"n_bytes": 4, "out_offset": 4}
    nr_tasklets = 4

    def kernel(self, ctx):
        if ctx.me() == 0:
            ctx.mem_reset()
        yield ctx.barrier()
        n = ctx.host_u32("n_bytes")
        out = ctx.host_u32("out_offset")
        rng = tasklet_range(ctx, n)
        if len(rng):
            data = ctx.mram_read(rng.start, len(rng))
            ctx.mram_write(out + rng.start, data)
            ctx.charge_loop(len(rng), 1)


@pytest.fixture
def transport():
    return NativeTransport(Machine(small_machine(nr_ranks=2, dpus_per_rank=8)))


def test_alloc_zero_rejected(transport):
    with pytest.raises(AllocationError):
        DpuSet(transport, 0)


def test_alloc_more_than_machine_rejected(transport):
    with pytest.raises(AllocationError):
        DpuSet(transport, 1000)


def test_single_rank_set(transport):
    with DpuSet(transport, 4) as dpus:
        assert len(dpus) == 4
        assert len(dpus.channels) == 1


def test_multi_rank_set_splits(transport):
    with DpuSet(transport, 12) as dpus:
        assert len(dpus.channels) == 2
        assert dpus.dpus_per_channel() == [8, 4]


def test_push_to_and_from_roundtrip(transport):
    with DpuSet(transport, 4) as dpus:
        bufs = [np.full(16, i, dtype=np.uint8) for i in range(4)]
        dpus.push_to_mram(0, bufs)
        got = dpus.push_from_mram(0, 16)
        for i in range(4):
            assert np.array_equal(got[i], bufs[i])


def test_push_spanning_ranks_preserves_order(transport):
    with DpuSet(transport, 12) as dpus:
        bufs = [np.full(8, i, dtype=np.uint8) for i in range(12)]
        dpus.push_to_mram(0, bufs)
        got = dpus.push_from_mram(0, 8)
        for i in range(12):
            assert (got[i] == i).all(), f"DPU {i} data scrambled"


def test_broadcast(transport):
    with DpuSet(transport, 6) as dpus:
        dpus.broadcast_to(MRAM_HEAP_SYMBOL, 0, np.arange(8, dtype=np.uint8))
        got = dpus.push_from_mram(0, 8)
        assert all(np.array_equal(g, np.arange(8, dtype=np.uint8))
                   for g in got)


def test_copy_to_single_dpu_only(transport):
    with DpuSet(transport, 4) as dpus:
        dpus.copy_to_mram(2, 0, np.full(8, 9, dtype=np.uint8))
        got = dpus.push_from_mram(0, 8)
        assert (got[2] == 9).all()
        assert not got[0].any() and not got[1].any() and not got[3].any()


def test_copy_from_out_of_set(transport):
    with DpuSet(transport, 4) as dpus:
        with pytest.raises(TransferError):
            dpus.copy_from_mram(7, 0, 8)


def test_too_many_buffers_rejected(transport):
    with DpuSet(transport, 2) as dpus:
        with pytest.raises(TransferError):
            dpus.push_to_mram(0, [np.zeros(4, np.uint8)] * 3)


def test_load_and_launch_roundtrip(transport):
    with DpuSet(transport, 8) as dpus:
        dpus.load(Echo())
        data = [np.arange(32, dtype=np.uint8) + i for i in range(8)]
        dpus.broadcast_to("n_bytes", 0, np.array([32], np.uint32))
        dpus.broadcast_to("out_offset", 0, np.array([64], np.uint32))
        dpus.push_to_mram(0, data)
        dpus.launch()
        got = dpus.push_from_mram(64, 32)
        for i in range(8):
            assert np.array_equal(got[i], data[i])


def test_operations_after_free_rejected(transport):
    dpus = DpuSet(transport, 2)
    dpus.free()
    with pytest.raises(AllocationError):
        dpus.push_from_mram(0, 8)
    with pytest.raises(AllocationError):
        dpus.launch()


def test_double_free_is_idempotent(transport):
    dpus = DpuSet(transport, 2)
    dpus.free()
    dpus.free()  # must not raise


def test_free_releases_ranks(transport):
    dpus = DpuSet(transport, 16)
    assert transport.driver.free_ranks() == []
    dpus.free()
    assert transport.driver.free_ranks() == [0, 1]


def test_operations_advance_clock(transport):
    start = transport.clock.now
    with DpuSet(transport, 4) as dpus:
        dpus.push_to_mram(0, [np.zeros(1024, np.uint8)] * 4)
    assert transport.clock.now > start


def test_multi_rank_parallel_advance_uses_max(transport):
    """Native multi-rank ops run in parallel: one op's clock advance must
    be far below the sum of per-rank durations."""
    with DpuSet(transport, 16) as dpus:
        t0 = transport.clock.now
        dpus.push_to_mram(0, [np.zeros(1 << 18, np.uint8)] * 16)
        elapsed = transport.clock.now - t0
        completions = [c for _, c in dpus.last_completions]
        assert elapsed == pytest.approx(max(completions))
        assert elapsed < sum(completions) * 0.75


def test_ci_ops_recorded(transport):
    with DpuSet(transport, 2) as dpus:
        dpus.ci_ops(50)
    assert transport.profiler.op_stats("CI").count >= 50
