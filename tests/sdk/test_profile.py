"""Profiler: segment attribution, nesting, driver stats, reset."""

import pytest

from repro.hardware.clock import SimClock
from repro.sdk.profile import (
    OP_CI,
    OP_READ,
    OP_WRITE,
    Profiler,
    SEGMENTS,
)


@pytest.fixture
def setup():
    clock = SimClock()
    return clock, Profiler(clock)


def test_segment_attribution(setup):
    clock, prof = setup
    with prof.segment("CPU-DPU"):
        clock.advance(1.0)
    with prof.segment("DPU"):
        clock.advance(2.0)
    assert prof.segment_time("CPU-DPU") == pytest.approx(1.0)
    assert prof.segment_time("DPU") == pytest.approx(2.0)
    assert prof.total_time == pytest.approx(3.0)


def test_time_outside_segments_not_attributed(setup):
    clock, prof = setup
    clock.advance(5.0)
    with prof.segment("DPU"):
        clock.advance(1.0)
    clock.advance(5.0)
    assert prof.total_time == pytest.approx(1.0)


def test_nested_segments_attribute_to_innermost(setup):
    clock, prof = setup
    with prof.segment("CPU-DPU"):
        clock.advance(1.0)
        with prof.segment("DPU"):
            clock.advance(2.0)
        clock.advance(0.5)
    assert prof.segment_time("CPU-DPU") == pytest.approx(1.5)
    assert prof.segment_time("DPU") == pytest.approx(2.0)


def test_reentrant_segment_accumulates(setup):
    clock, prof = setup
    for _ in range(3):
        with prof.segment("Inter-DPU"):
            clock.advance(0.25)
    assert prof.segment_time("Inter-DPU") == pytest.approx(0.75)


def test_breakdown_zero_fills(setup):
    _, prof = setup
    breakdown = prof.breakdown()
    assert set(breakdown) == set(SEGMENTS)
    assert all(v == 0.0 for v in breakdown.values())


def test_driver_op_stats(setup):
    _, prof = setup
    prof.record_op(OP_WRITE, 0.5)
    prof.record_op(OP_WRITE, 0.25)
    prof.record_op(OP_CI, 0.01, count=100)
    assert prof.op_stats(OP_WRITE).count == 2
    assert prof.op_stats(OP_WRITE).time == pytest.approx(0.75)
    assert prof.op_stats(OP_CI).count == 100
    assert prof.op_stats(OP_READ).count == 0


def test_wrank_steps_validation(setup):
    _, prof = setup
    prof.record_wrank_step("T-data", 1.0)
    prof.record_wrank_step("T-data", 0.5)
    assert prof.wrank_steps["T-data"] == pytest.approx(1.5)
    with pytest.raises(ValueError):
        prof.record_wrank_step("bogus", 1.0)


def test_snapshot_is_immutable_copy(setup):
    clock, prof = setup
    with prof.segment("DPU"):
        clock.advance(1.0)
    prof.record_op(OP_READ, 0.1)
    snap = prof.snapshot()
    with prof.segment("DPU"):
        clock.advance(1.0)
    prof.record_op(OP_READ, 0.1)
    assert snap.segments["DPU"] == pytest.approx(1.0)
    assert snap.driver[OP_READ].count == 1
    assert snap.total_time == pytest.approx(1.0)


def test_reset_clears_everything(setup):
    clock, prof = setup
    with prof.segment("DPU"):
        clock.advance(1.0)
    prof.record_op(OP_WRITE, 0.1)
    prof.messages.requests = 5
    prof.reset()
    assert prof.total_time == 0.0
    assert prof.op_stats(OP_WRITE).count == 0
    assert prof.messages.requests == 0


def test_reset_rebases_clock_mark(setup):
    clock, prof = setup
    clock.advance(10.0)
    prof.reset()
    with prof.segment("DPU"):
        clock.advance(1.0)
    assert prof.segment_time("DPU") == pytest.approx(1.0)
