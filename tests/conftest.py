"""Shared fixtures: small machines, transports, and VM sessions."""

from __future__ import annotations

import pytest

from repro.config import small_machine
from repro.core import VPim
from repro.driver.native import NativeTransport
from repro.hardware.machine import Machine
from repro.hardware.timing import DEFAULT_COST_MODEL


@pytest.fixture
def machine() -> Machine:
    """A 2-rank, 8-DPUs-per-rank machine for fast tests."""
    return Machine(small_machine(nr_ranks=2, dpus_per_rank=8))


@pytest.fixture
def native(machine) -> NativeTransport:
    return NativeTransport(machine)


@pytest.fixture
def vpim() -> VPim:
    return VPim(small_machine(nr_ranks=2, dpus_per_rank=8))


@pytest.fixture
def vm_session(vpim):
    return vpim.vm_session(nr_vupmem=2, mem_bytes=1 << 30)


@pytest.fixture
def cost():
    return DEFAULT_COST_MODEL
