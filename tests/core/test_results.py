"""ExecutionReport metrics and formatting."""

import pytest

from repro.core.results import ExecutionReport
from repro.sdk.profile import ProfileSnapshot


def report(segments, total=None, name="APP", mode="native"):
    snap = ProfileSnapshot(segments=dict(segments))
    return ExecutionReport(
        app_name=name, mode=mode, nr_dpus=8,
        total_time=total if total is not None else sum(segments.values()),
        profile=snap, verified=True,
    )


def test_segments_zero_filled():
    rep = report({"DPU": 1.0})
    assert rep.segments == {"CPU-DPU": 0.0, "DPU": 1.0,
                            "Inter-DPU": 0.0, "DPU-CPU": 0.0}
    assert rep.segments_total == pytest.approx(1.0)


def test_overhead_segments_metric():
    base = report({"DPU": 1.0, "CPU-DPU": 1.0})
    mine = report({"DPU": 1.5, "CPU-DPU": 1.5}, mode="vPIM")
    assert mine.overhead_vs(base) == pytest.approx(1.5)


def test_overhead_wall_metric():
    base = report({"DPU": 1.0}, total=2.0)
    mine = report({"DPU": 1.0}, total=4.0, mode="vPIM")
    assert mine.overhead_vs(base, metric="wall") == pytest.approx(2.0)
    assert mine.overhead_vs(base, metric="segments") == pytest.approx(1.0)


def test_overhead_zero_baseline_rejected():
    base = report({})
    mine = report({"DPU": 1.0})
    with pytest.raises(ValueError):
        mine.overhead_vs(base)


def test_segment_overhead_none_for_empty_baseline():
    base = report({"DPU": 1.0})
    mine = report({"DPU": 1.0, "Inter-DPU": 0.5})
    assert mine.segment_overhead_vs(base, "Inter-DPU") is None
    assert mine.segment_overhead_vs(base, "DPU") == pytest.approx(1.0)


def test_row_format():
    rep = report({"DPU": 0.001})
    row = rep.row()
    assert "APP" in row and "native" in row and "dpus=8" in row
    assert "ok=True" in row
