"""Virtqueues: capacity, chains, completion flow, config space."""

import numpy as np
import pytest

from repro.config import (
    MAX_SERIALIZED_BUFFERS,
    TRANSFERQ_SLOTS,
    VIRTIO_PIM_DEVICE_ID,
)
from repro.errors import VirtqueueError
from repro.virt.guest_memory import GuestMemory
from repro.virt.virtio import (
    Descriptor,
    UsedElement,
    Virtqueue,
    VirtioPimConfigSpace,
    VirtioPimQueues,
    write_buffer,
)


def desc(n: int = 1):
    return [Descriptor(gpa=i * 4096, length=64) for i in range(n)]


def test_device_id_is_42():
    assert VirtioPimConfigSpace().device_id == VIRTIO_PIM_DEVICE_ID == 42


def test_config_space_fields():
    fields = VirtioPimConfigSpace().as_fields()
    # Appendix A.1: clock division, memory size, #CIs, frequency, power.
    for key in ("clock_division", "mram_bytes", "nr_control_interfaces",
                "frequency_hz", "power_management"):
        assert key in fields


def test_queues_shape():
    queues = VirtioPimQueues()
    assert queues.transferq.capacity == TRANSFERQ_SLOTS == 512
    assert queues.controlq.capacity == 64


def test_chain_roundtrip():
    q = Virtqueue("q", 16)
    rid = q.add_chain(desc(3))
    q.kick()
    popped = q.pop_avail()
    assert popped == (rid, desc(3), None)
    q.push_used(UsedElement(request_id=rid))
    used = q.pop_used()
    assert used.request_id == rid and used.status == 0
    assert q.kicks == 1


def test_empty_chain_rejected():
    with pytest.raises(VirtqueueError):
        Virtqueue("q", 16).add_chain([])


def test_chain_over_serialization_bound_rejected():
    q = Virtqueue("q", TRANSFERQ_SLOTS)
    with pytest.raises(VirtqueueError):
        q.add_chain(desc(MAX_SERIALIZED_BUFFERS + 1))


def test_capacity_enforced_across_outstanding_chains():
    q = Virtqueue("q", 8)
    q.add_chain(desc(5))
    with pytest.raises(VirtqueueError):
        q.add_chain(desc(5))
    q.pop_avail()
    q.add_chain(desc(5))  # slots freed


def test_full_64_dpu_matrix_fits():
    # 2 + 2*64 = 130 buffers must fit the 512-slot transferq (Fig. 7).
    q = Virtqueue("transferq", TRANSFERQ_SLOTS)
    q.add_chain(desc(130))
    assert q.pending == 1


def test_pop_empty_returns_none():
    q = Virtqueue("q", 4)
    assert q.pop_avail() is None
    assert q.pop_used() is None


def test_write_buffer_places_data_in_guest_memory():
    mem = GuestMemory(64 << 20)
    data = np.arange(100, dtype=np.uint8)
    d = write_buffer(mem, data)
    assert d.length == 100
    assert np.array_equal(mem.read(d.gpa, 100), data)


def test_write_buffer_device_writable_flag():
    mem = GuestMemory(64 << 20)
    d = write_buffer(mem, np.zeros(8, dtype=np.uint8), device_writable=True)
    assert d.device_writable
