"""Manager: the Fig. 5 FSM, allocation policy, isolation by reset."""

import numpy as np
import pytest

from repro.config import small_machine
from repro.driver.driver import UpmemDriver
from repro.errors import ManagerError
from repro.hardware.machine import Machine
from repro.virt.manager import Manager, RankState


@pytest.fixture
def env():
    machine = Machine(small_machine(nr_ranks=3, dpus_per_rank=4))
    driver = UpmemDriver(machine)
    manager = Manager(machine, driver)
    return machine, driver, manager


def test_all_ranks_start_naav(env):
    _, _, manager = env
    assert all(s is RankState.NAAV for s in manager.states().values())


def test_allocation_round_robin(env):
    _, _, manager = env
    assert manager.allocate("dev-a") == 0
    assert manager.allocate("dev-b") == 1
    assert manager.allocate("dev-c") == 2


def test_allocation_cost_charged(env):
    machine, _, manager = env
    t0 = machine.clock.now
    manager.allocate("dev-a")
    # Section 4.2: ~36 ms per NAAV allocation.
    assert machine.clock.now - t0 == pytest.approx(36e-3)


def test_release_detected_via_sysfs(env):
    machine, driver, manager = env
    idx = manager.allocate("dev-a")
    driver.claim_rank(idx, "dev-a")
    driver.release_rank(idx, "dev-a")   # sysfs goes free -> observer fires
    assert manager.rank_table[idx].state is RankState.NANA


def test_nana_becomes_naav_after_reset(env):
    machine, driver, manager = env
    idx = manager.allocate("dev-a")
    driver.claim_rank(idx, "dev-a")
    machine.rank(idx).dpus[0].mram.write(0, np.ones(8, dtype=np.uint8))
    driver.release_rank(idx, "dev-a")
    assert manager.states()[idx] is RankState.NANA
    machine.clock.advance(1.0)          # past observer latency + reset
    assert manager.states()[idx] is RankState.NAAV
    assert machine.rank(idx).is_clean()  # isolation: memory wiped


def test_nana_reuse_by_previous_owner_skips_reset(env):
    machine, driver, manager = env
    idx = manager.allocate("dev-a")
    driver.claim_rank(idx, "dev-a")
    machine.rank(idx).dpus[0].mram.write(0, np.full(8, 5, dtype=np.uint8))
    driver.release_rank(idx, "dev-a")
    # Re-request immediately: same rank, data preserved (own data, no leak).
    again = manager.allocate("dev-a")
    assert again == idx
    assert manager.stats.nana_reuses == 1
    assert (machine.rank(idx).dpus[0].mram.read(0, 8) == 5).all()


def test_other_tenant_waits_for_reset_and_sees_zeros(env):
    machine, driver, manager = env
    for dev in ("a", "b", "c"):
        idx = manager.allocate(dev)
        driver.claim_rank(idx, dev)
    machine.rank(0).dpus[0].mram.write(0, np.full(8, 9, dtype=np.uint8))
    driver.release_rank(0, "a")
    t0 = machine.clock.now
    idx = manager.allocate("d")          # must wait for rank 0's reset
    assert idx == 0
    assert machine.clock.now - t0 >= 0.597
    assert machine.rank(0).is_clean()


def test_exhaustion_after_retries(env):
    machine, driver, manager = env
    for dev in ("a", "b", "c"):
        idx = manager.allocate(dev)
        driver.claim_rank(idx, dev)
    with pytest.raises(ManagerError):
        manager.allocate("d")
    assert manager.stats.abandoned == 1
    assert manager.stats.waits >= manager.max_attempts


def test_native_apps_visible_to_manager(env):
    """Native host applications claim ranks through the driver only; the
    manager must still see them as allocated (coexistence, Section 3.5)."""
    machine, driver, manager = env
    driver.claim_rank(1, "native-app")
    assert manager.rank_table[1].state is RankState.ALLO
    assert manager.allocate("dev-a") == 0
    assert manager.allocate("dev-b") == 2   # rank 1 skipped


def test_modeled_cpu_utilization(env):
    _, _, manager = env
    # Section 4.2: ~40% idle, up to 92% while resetting all ranks.
    assert manager.idle_cpu_utilization() == pytest.approx(0.40)
    assert manager.reset_cpu_utilization(0) == pytest.approx(0.40)
    assert manager.reset_cpu_utilization(1) == pytest.approx(0.92)


def test_pool_threads_default(env):
    _, _, manager = env
    assert manager.pool_threads == 8   # Section 3.5


def test_available_ranks_listing(env):
    _, driver, manager = env
    idx = manager.allocate("dev-a")
    driver.claim_rank(idx, "dev-a")
    assert idx not in manager.available_ranks()
    assert len(manager.available_ranks()) == 2
