"""Frontend driver: prefetch cache, request batching, invalidation rules.

These are the Section 4.1 behaviours the evaluation leans on.
"""

import numpy as np
import pytest

from repro.config import MRAM_HEAP_SYMBOL, PAGE_SIZE, small_machine
from repro.core import VPim
from repro.sdk.transfer import DpuEntry, TransferMatrix, XferKind
from repro.virt.frontend import BatchBuffer, PrefetchCache
from repro.virt.opts import OptimizationConfig


# -- unit level: the cache and batch structures ------------------------------

def test_prefetch_cache_hit_within_segment():
    cache = PrefetchCache(pages_per_dpu=16)
    cache.fill(0, 100, (np.arange(1000) % 256).astype(np.uint8))
    hit = cache.lookup(0, 150, 50)
    assert hit is not None
    assert np.array_equal(hit, (np.arange(50) + 50).astype(np.uint8))


def test_prefetch_cache_miss_outside_segment():
    cache = PrefetchCache(pages_per_dpu=16)
    cache.fill(0, 100, np.zeros(1000, dtype=np.uint8))
    assert cache.lookup(0, 50, 10) is None          # before the segment
    assert cache.lookup(0, 1090, 20) is None        # past the end
    assert cache.lookup(1, 100, 10) is None         # other DPU


def test_prefetch_cache_capacity():
    cache = PrefetchCache(pages_per_dpu=16)
    assert cache.capacity == 16 * PAGE_SIZE
    from repro.errors import TransferError
    with pytest.raises(TransferError):
        cache.fill(0, 0, np.zeros(cache.capacity + 1, dtype=np.uint8))


def test_prefetch_cache_invalidate():
    cache = PrefetchCache(pages_per_dpu=16)
    cache.fill(0, 0, np.ones(100, dtype=np.uint8))
    cache.invalidate()
    assert cache.lookup(0, 0, 10) is None
    assert cache.nr_lines == 0


def test_batch_buffer_accumulates_and_drains():
    batch = BatchBuffer(pages_per_dpu=64)
    matrix = TransferMatrix(XferKind.TO_DPU, MRAM_HEAP_SYMBOL, 128, [
        DpuEntry(0, 8, np.arange(8, dtype=np.uint8)),
        DpuEntry(1, 8, np.arange(8, dtype=np.uint8)),
    ])
    assert batch.fits(matrix)
    copied = batch.add(matrix)
    assert copied == 16
    assert batch.buffered_bytes == 16
    records = batch.drain()
    assert len(records) == 2
    assert records[0].offset == 128
    assert batch.empty


def test_batch_buffer_capacity_per_dpu():
    batch = BatchBuffer(pages_per_dpu=1)  # 4 KB per DPU
    big = TransferMatrix(XferKind.TO_DPU, MRAM_HEAP_SYMBOL, 0, [
        DpuEntry(0, 4000, np.zeros(4000, np.uint8))])
    batch.add(big)
    more = TransferMatrix(XferKind.TO_DPU, MRAM_HEAP_SYMBOL, 4000, [
        DpuEntry(0, 200, np.zeros(200, np.uint8))])
    assert not batch.fits(more)
    other_dpu = TransferMatrix(XferKind.TO_DPU, MRAM_HEAP_SYMBOL, 0, [
        DpuEntry(1, 200, np.zeros(200, np.uint8))])
    assert batch.fits(other_dpu)


# -- integration level: behaviour through a VM -------------------------------

def make_session(**opt_kwargs):
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=4))
    opts = OptimizationConfig(**opt_kwargs)
    return vpim.vm_session(nr_vupmem=1, opts=opts)


def write_small(dpus, dpu, offset, value, size=64):
    dpus.copy_to_mram(dpu, offset, np.full(size, value, dtype=np.uint8))


def test_batching_reduces_messages():
    from repro.sdk.dpu_set import DpuSet
    session = make_session(request_batching=True, prefetch_cache=False)
    with DpuSet(session.transport, 4) as dpus:
        base = session.transport.profiler.messages.requests
        for i in range(20):
            write_small(dpus, i % 4, i * 64, i)
        buffered = session.transport.profiler.messages.requests - base
        # All 20 small writes were absorbed, no messages sent yet.
        assert buffered == 0
        assert session.transport.profiler.messages.batched_writes == 20
        # A read flushes the batch in one message and sees the data.
        got = dpus.copy_from_mram(0, 0, 64)
        assert (got == 0).all()
        got = dpus.copy_from_mram(1, 64, 64)
        assert (got == 1).all()


def test_batch_flush_on_buffer_full():
    from repro.sdk.dpu_set import DpuSet
    session = make_session(request_batching=True, prefetch_cache=False,
                           batch_pages_per_dpu=1)  # 4 KB per DPU
    with DpuSet(session.transport, 4) as dpus:
        base = session.transport.profiler.messages.requests
        # 3 x 2 KB to DPU 0: the third cannot fit -> flush of first two.
        for i in range(3):
            write_small(dpus, 0, i * 2048, i, size=2048)
        assert session.transport.profiler.messages.requests == base + 1


def test_large_writes_bypass_batching():
    from repro.sdk.dpu_set import DpuSet
    session = make_session(request_batching=True, prefetch_cache=False)
    with DpuSet(session.transport, 4) as dpus:
        base = session.transport.profiler.messages.requests
        dpus.copy_to_mram(0, 0, np.zeros(PAGE_SIZE + 1, dtype=np.uint8))
        assert session.transport.profiler.messages.requests == base + 1


def test_prefetch_serves_repeated_small_reads():
    from repro.sdk.dpu_set import DpuSet
    session = make_session(prefetch_cache=True, request_batching=False)
    with DpuSet(session.transport, 4) as dpus:
        data = (np.arange(4096) % 256).astype(np.uint8)
        dpus.copy_to_mram(0, 0, data)
        msgs = session.transport.profiler.messages
        base = msgs.requests
        first = dpus.copy_from_mram(0, 0, 64)
        assert msgs.cache_refills >= 1
        after_first = msgs.requests
        # Subsequent reads in the prefetched segment: zero messages.
        for off in range(64, 1024, 64):
            chunk = dpus.copy_from_mram(0, off, 64)
            assert np.array_equal(chunk, data[off:off + 64])
        assert msgs.requests == after_first
        assert msgs.cache_hits >= 15
        assert np.array_equal(first, data[:64])


def test_prefetch_invalidated_by_write():
    from repro.sdk.dpu_set import DpuSet
    session = make_session(prefetch_cache=True, request_batching=False)
    with DpuSet(session.transport, 4) as dpus:
        dpus.copy_to_mram(0, 0, np.zeros(4096, dtype=np.uint8))
        dpus.copy_from_mram(0, 0, 64)               # populate cache
        dpus.copy_to_mram(0, 0, np.full(64, 9, dtype=np.uint8))
        got = dpus.copy_from_mram(0, 0, 64)          # must see new data
        assert (got == 9).all()


def test_prefetch_invalidated_by_launch():
    from repro.sdk.dpu_set import DpuSet
    from repro.sdk.kernel import DpuProgram, tasklet_range

    class Echo(DpuProgram):
        name = "echo"
        symbols = {"n_bytes": 4, "out_offset": 4}
        nr_tasklets = 4

        def kernel(self, ctx):
            if ctx.me() == 0:
                ctx.mem_reset()
            yield ctx.barrier()
            n = ctx.host_u32("n_bytes")
            out = ctx.host_u32("out_offset")
            rng = tasklet_range(ctx, n)
            if len(rng):
                data = ctx.mram_read(rng.start, len(rng))
                ctx.mram_write(out + rng.start, data)
                ctx.charge_loop(len(rng), 1)

    session = make_session(prefetch_cache=True, request_batching=False)
    with DpuSet(session.transport, 4) as dpus:
        dpus.load(Echo())
        dpus.broadcast_to("n_bytes", 0, np.array([64], np.uint32))
        dpus.broadcast_to("out_offset", 0, np.array([128], np.uint32))
        dpus.copy_to_mram(0, 0, np.full(64, 5, dtype=np.uint8))
        dpus.copy_from_mram(0, 128, 64)              # cache the (empty) output
        dpus.launch()                                 # writes the output
        got = dpus.copy_from_mram(0, 128, 64)
        assert (got == 5).all()


def test_large_reads_bypass_cache():
    from repro.sdk.dpu_set import DpuSet
    session = make_session(prefetch_cache=True, request_batching=False,
                           prefetch_pages_per_dpu=1)
    with DpuSet(session.transport, 4) as dpus:
        msgs = session.transport.profiler.messages
        dpus.copy_from_mram(0, 0, 2 * PAGE_SIZE)     # larger than the cache
        assert msgs.cache_refills == 0


def test_frontend_memory_overhead_bound():
    session = make_session()
    frontend = session.vm.devices[0].frontend
    overhead = frontend.max_memory_overhead_per_dpu()
    # Section 4.1: 1.37 MB per DPU.
    assert overhead == pytest.approx(1.37e6, rel=0.01)


def test_device_config_populated_after_init():
    session = make_session()
    frontend = session.vm.devices[0].frontend
    # Touch the device so it is acquired + initialized.
    from repro.sdk.dpu_set import DpuSet
    with DpuSet(session.transport, 1):
        pass
    assert frontend.device_config is not None
    assert frontend.device_config["frequency_hz"] == 350_000_000
