"""Guest memory: allocation, translation, contiguous runs."""

import numpy as np
import pytest

from repro.config import PAGE_SIZE
from repro.errors import TranslationError
from repro.virt.guest_memory import GuestMemory, HVA_BASE


@pytest.fixture
def mem() -> GuestMemory:
    return GuestMemory(256 << 20, arena_bytes=16 << 20)


def test_alloc_pages_are_page_aligned(mem):
    gpa = mem.alloc_pages(4)
    assert gpa % PAGE_SIZE == 0


def test_alloc_pages_contiguous_and_distinct(mem):
    a = mem.alloc_pages(2)
    b = mem.alloc_pages(2)
    assert b == a + 2 * PAGE_SIZE


def test_arena_wraps(mem):
    first = mem.alloc_pages(1)
    for _ in range(10_000):
        mem.alloc_pages(100)
    again = mem.alloc_pages(1)
    assert again >= first  # wrapped back into the arena, not past it


def test_alloc_larger_than_arena_rejected(mem):
    with pytest.raises(TranslationError):
        mem.alloc_pages((32 << 20) // PAGE_SIZE)


def test_data_roundtrip(mem):
    gpa = mem.alloc_pages(1)
    mem.write(gpa, np.arange(100, dtype=np.uint8))
    assert np.array_equal(mem.read(gpa, 100), np.arange(100, dtype=np.uint8))


def test_gpa_hva_translation(mem):
    assert mem.gpa_to_hva(0) == HVA_BASE
    assert mem.gpa_to_hva(4096) == HVA_BASE + 4096
    assert mem.hva_to_gpa(HVA_BASE + 4096) == 4096


def test_translation_bounds(mem):
    with pytest.raises(TranslationError):
        mem.gpa_to_hva(mem.size)
    with pytest.raises(TranslationError):
        mem.gpa_to_hva(-1)
    with pytest.raises(TranslationError):
        mem.hva_to_gpa(HVA_BASE - 1)


def test_vectorized_translation(mem):
    gpas = np.array([0, 4096, 8192], dtype=np.uint64)
    hvas = mem.translate_pages(gpas)
    assert np.array_equal(hvas, gpas + np.uint64(HVA_BASE))


def test_vectorized_translation_bounds(mem):
    with pytest.raises(TranslationError):
        mem.translate_pages(np.array([mem.size], dtype=np.uint64))


def test_contiguous_runs_single():
    gpas = np.arange(4, dtype=np.uint64) * PAGE_SIZE + 4096
    runs = GuestMemory.contiguous_runs(gpas)
    assert runs == [(4096, 4)]


def test_contiguous_runs_split():
    gpas = np.array([0, PAGE_SIZE, 10 * PAGE_SIZE], dtype=np.uint64)
    runs = GuestMemory.contiguous_runs(gpas)
    assert runs == [(0, 2), (10 * PAGE_SIZE, 1)]


def test_contiguous_runs_empty():
    assert GuestMemory.contiguous_runs(np.empty(0, dtype=np.uint64)) == []
