"""The virtio-mmio register window and device-status handshake."""

import pytest

from repro.config import small_machine
from repro.core import VPim
from repro.errors import VirtError
from repro.sdk.dpu_set import DpuSet
from repro.virt.mmio import (
    DeviceStatus,
    MAGIC_VALUE,
    MmioWindow,
    Reg,
    driver_init_sequence,
)


@pytest.fixture
def window():
    return MmioWindow(base_address=0xD0000000, irq=5,
                      config_fields={"frequency_hz": 350_000_000,
                                     "nr_dpus": 64})


def test_identity_registers(window):
    assert window.read(Reg.MAGIC) == MAGIC_VALUE
    assert window.read(Reg.VERSION) == 2
    assert window.read(Reg.DEVICE_ID) == 42


def test_no_feature_bits_offered(window):
    # Appendix A.1: "No feature bits are needed".
    assert window.read(Reg.DEVICE_FEATURES) == 0
    with pytest.raises(VirtError):
        window.write(Reg.DRIVER_FEATURES, 1)


def test_config_space_readable(window):
    assert window.read(Reg.CONFIG) == 350_000_000
    assert window.read(Reg.CONFIG + 4) == 64
    with pytest.raises(VirtError):
        window.read(Reg.CONFIG + 8)


def test_status_ordering_enforced(window):
    with pytest.raises(VirtError):
        window.write(Reg.STATUS, int(DeviceStatus.DRIVER))   # no ACK yet
    window.write(Reg.STATUS, int(DeviceStatus.ACKNOWLEDGE))
    with pytest.raises(VirtError):
        window.write(Reg.STATUS, int(DeviceStatus.ACKNOWLEDGE
                                     | DeviceStatus.DRIVER
                                     | DeviceStatus.DRIVER_OK))


def test_notify_before_driver_ok_rejected(window):
    """Appendix A.1: the driver must wait for initialization before
    sending any requests."""
    with pytest.raises(VirtError):
        window.write(Reg.QUEUE_NOTIFY, 0)


def test_full_init_sequence(window):
    driver_init_sequence(window)
    assert window.is_live
    assert window.queue_ready == {0: True, 1: True}
    window.write(Reg.QUEUE_NOTIFY, 0)
    assert window.notifies == 1


def test_interrupt_raise_and_ack(window):
    driver_init_sequence(window)
    window.raise_interrupt()
    assert window.read(Reg.INTERRUPT_STATUS) == 1
    window.write(Reg.INTERRUPT_ACK, 1)
    assert window.read(Reg.INTERRUPT_STATUS) == 0


def test_reset_clears_state(window):
    driver_init_sequence(window)
    window.write(Reg.STATUS, 0)
    assert not window.is_live
    assert window.queue_ready == {}


def test_unmapped_access_rejected(window):
    with pytest.raises(VirtError):
        window.read(0x0FC)
    with pytest.raises(VirtError):
        window.write(0x0FC, 1)


def test_command_line_entry(window):
    entry = window.command_line_entry()
    assert "virtio_mmio.device=" in entry
    assert ":5" in entry


# -- integration through the VM -----------------------------------------------

def test_vm_devices_get_distinct_windows():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    session = vpim.vm_session(nr_vupmem=2, mem_bytes=1 << 30)
    windows = [d.mmio for d in session.vm.devices]
    assert windows[0].base_address != windows[1].base_address
    assert windows[0].irq != windows[1].irq
    assert len(session.vm.kernel_cmdline) == 2


def test_requests_flow_only_after_handshake():
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
    session = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    device = session.vm.devices[0]
    assert not device.mmio.is_live
    with DpuSet(session.transport, 8) as dpus:
        assert device.mmio.is_live                 # initialize() ran the dance
        import numpy as np
        dpus.push_to_mram(0, [np.zeros(64, np.uint8)] * 8)
        assert device.mmio.notifies > 0
        # Interrupts were raised and acknowledged for every completion.
        assert device.mmio.read(Reg.INTERRUPT_STATUS) == 0
