"""The experimental vhost_vsock data path (Section 7 extension)."""

import numpy as np

from repro.apps.prim.nw import NeedlemanWunsch
from repro.config import small_machine
from repro.core import VPim
from repro.sdk.dpu_set import DpuSet
from repro.virt.opts import OptimizationConfig


def session_with(vhost: bool):
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
    opts = OptimizationConfig(vhost_vsock=vhost)
    return vpim.vm_session(nr_vupmem=1, opts=opts)


def test_vhost_off_by_default():
    assert not OptimizationConfig().vhost_vsock
    # And it is not part of any Table 2 preset.
    from repro.virt.opts import PRESETS
    assert all(not preset.vhost_vsock for preset in PRESETS.values())


def test_vhost_preserves_correctness():
    rep = session_with(True).run(
        NeedlemanWunsch(nr_dpus=8, seq_len=128, block_size=32))
    assert rep.verified


def test_vhost_reduces_message_cost():
    def app():
        return NeedlemanWunsch(nr_dpus=8, seq_len=256, block_size=32,
                               chunk_bytes=64)
    base = session_with(False).run(app())
    vhost = session_with(True).run(app())
    assert vhost.verified
    assert vhost.segments_total < base.segments_total
    # Same message count — only the per-message cost shrinks.
    assert (vhost.profile.messages.requests
            == base.profile.messages.requests)


def test_vhost_cheaper_per_request():
    data = np.zeros(64, dtype=np.uint8)

    def one_write(vhost):
        session = session_with(vhost)
        with DpuSet(session.transport, 8) as dpus:
            t0 = session.transport.clock.now
            dpus.copy_to_mram(0, 0, np.zeros(8192, np.uint8))  # unbatched
            return session.transport.clock.now - t0

    assert one_write(True) < one_write(False)
