"""The Firecracker API server control plane (Section 3.2/3.3)."""

import pytest

from repro.config import small_machine
from repro.hardware.machine import Machine
from repro.virt.api_server import ApiServer
from repro.virt.firecracker import Firecracker


@pytest.fixture
def server():
    machine = Machine(small_machine(nr_ranks=2, dpus_per_rank=8))
    return ApiServer(Firecracker(machine))


def boot(server, nr_vupmem=1, **extra):
    assert server.handle("PUT", "/machine-config",
                         {"vcpu_count": 4, "mem_size_mib": 1024}).ok
    assert server.handle("PUT", "/boot-source",
                         {"kernel_image_path": "vmlinux.bin"}).ok
    assert server.handle("PUT", "/drives/rootfs",
                         {"path_on_host": "rootfs.ext4"}).ok
    body = {"count": nr_vupmem}
    body.update(extra)
    assert server.handle("PUT", "/vupmem", body).ok
    return server.handle("PUT", "/actions", {"action_type": "InstanceStart"})


def test_full_boot_flow(server):
    response = boot(server, nr_vupmem=2)
    assert response.ok
    assert response.body["boot_time_ms"] > 0
    assert len(response.body["kernel_cmdline"]) == 2
    assert server.vm is not None
    assert len(server.vm.devices) == 2


def test_vupmem_preset_selection(server):
    response = boot(server, nr_vupmem=1, preset="vPIM-rust")
    assert response.ok
    assert server.vm.devices[0].backend.rust_data_path


def test_unknown_preset_rejected(server):
    assert server.handle("PUT", "/vupmem",
                         {"count": 1, "preset": "bogus"}).status == 400


def test_too_many_devices_rejected(server):
    response = boot(server, nr_vupmem=10)
    assert response.status == 400
    assert "ranks" in str(response.body["fault_message"])


def test_double_start_rejected(server):
    assert boot(server).ok
    again = server.handle("PUT", "/actions", {"action_type": "InstanceStart"})
    assert again.status == 409


def test_config_after_start_rejected(server):
    assert boot(server).ok
    late = server.handle("PUT", "/machine-config", {"vcpu_count": 8})
    assert late.status == 409


def test_unknown_route(server):
    assert server.handle("GET", "/nope").status == 404


def test_describe(server):
    state = server.handle("GET", "/")
    assert state.body["state"] == "Not started"
    boot(server)
    state = server.handle("GET", "/")
    assert state.body["state"] == "Running"
    assert state.body["vupmem_devices"] == 1


def test_boot_source_requires_kernel(server):
    assert server.handle("PUT", "/boot-source", {}).status == 400


def test_request_log(server):
    boot(server)
    methods = [entry[0] for entry in server.request_log]
    assert methods.count("PUT") == 5
