"""Manager allocation policies (round_robin / first_fit / coldest)."""

import pytest

from repro.config import small_machine
from repro.driver.driver import UpmemDriver
from repro.hardware.machine import Machine
from repro.virt.manager import Manager


def make_manager(policy):
    machine = Machine(small_machine(nr_ranks=4, dpus_per_rank=2))
    driver = UpmemDriver(machine)
    return machine, driver, Manager(machine, driver, policy=policy)


def test_unknown_policy_rejected():
    machine = Machine(small_machine())
    driver = UpmemDriver(machine)
    with pytest.raises(ValueError):
        Manager(machine, driver, policy="random")


def test_round_robin_spreads():
    _, driver, manager = make_manager("round_robin")
    picks = []
    for i in range(4):
        idx = manager.allocate(f"t{i}")
        driver.claim_rank(idx, f"t{i}")
        picks.append(idx)
    assert picks == [0, 1, 2, 3]


def test_round_robin_cursor_advances_after_release():
    machine, driver, manager = make_manager("round_robin")
    a = manager.allocate("a")
    driver.claim_rank(a, "a")
    driver.release_rank(a, "a")
    machine.clock.advance(1.0)       # reset completes, rank 0 NAAV again
    b = manager.allocate("b")
    assert b == 1                    # cursor moved past rank 0


def test_first_fit_packs_low_indices():
    machine, driver, manager = make_manager("first_fit")
    a = manager.allocate("a")
    driver.claim_rank(a, "a")
    driver.release_rank(a, "a")
    machine.clock.advance(1.0)
    b = manager.allocate("b")
    assert a == 0 and b == 0         # densest packing reuses rank 0


def test_coldest_picks_longest_free():
    machine, driver, manager = make_manager("coldest")
    # Allocate and release ranks 0 then 1 at different times.
    for tenant, _ in (("a", 0), ("b", 1)):
        idx = manager.allocate(tenant)
        driver.claim_rank(idx, tenant)
    driver.release_rank(0, "a")
    machine.clock.advance(2.0)
    driver.release_rank(1, "b")
    machine.clock.advance(2.0)       # both reset; rank 0 has been free longer
    # Ranks 2 and 3 were never used: freed_at defaults to 0 (coldest).
    first = manager.allocate("c")
    assert first in (2, 3)
    driver.claim_rank(first, "c")
    second = manager.allocate("d")
    driver.claim_rank(second, "d")
    third = manager.allocate("e")
    assert third == 0                # older release beats the newer one


@pytest.mark.parametrize("policy", ["round_robin", "first_fit", "coldest"])
def test_all_policies_respect_nana_reuse(policy):
    machine, driver, manager = make_manager(policy)
    idx = manager.allocate("tenant")
    driver.claim_rank(idx, "tenant")
    driver.release_rank(idx, "tenant")
    # Immediate re-request: the NANA fast path wins under every policy.
    again = manager.allocate("tenant")
    assert again == idx
    assert manager.stats.nana_reuses == 1
