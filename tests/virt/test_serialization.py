"""Wire format: header packing, matrix (de)serialization, gather/scatter."""

import numpy as np
import pytest

from repro.config import MRAM_HEAP_SYMBOL, PAGE_SIZE
from repro.errors import SerializationError
from repro.sdk.transfer import uniform_read, uniform_write
from repro.virt.guest_memory import GuestMemory
from repro.virt.serialization import (
    RequestHeader,
    RequestKind,
    deserialize_request,
    gather_entry_data,
    scatter_entry_data,
    serialize_matrix,
    xfer_kind_of,
)
from repro.sdk.transfer import XferKind


@pytest.fixture
def mem() -> GuestMemory:
    return GuestMemory(128 << 20)


def test_header_pack_unpack_roundtrip():
    header = RequestHeader(kind=RequestKind.WRITE_RANK, offset=12345,
                           count=7, symbol="my_symbol", program_name="prog")
    packed = header.pack()
    unpacked = RequestHeader.unpack(packed)
    assert unpacked == header


def test_header_unicode_symbol():
    header = RequestHeader(kind=RequestKind.LOAD, symbol="héap",
                           program_name="nw_dpu")
    assert RequestHeader.unpack(header.pack()) == header


def test_header_too_short_rejected():
    with pytest.raises(SerializationError):
        RequestHeader.unpack(np.zeros(10, dtype=np.uint8))


def test_header_bad_kind_rejected():
    raw = RequestHeader(kind=RequestKind.CI_OP).pack().copy()
    raw[:8] = np.frombuffer(np.uint64(99).tobytes(), dtype=np.uint8)
    with pytest.raises(SerializationError):
        RequestHeader.unpack(raw)


def test_serialize_write_matrix_layout(mem):
    bufs = [np.arange(100, dtype=np.uint8),
            (np.arange(5000) % 256).astype(np.uint8)]
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 64, bufs)
    header = RequestHeader(kind=RequestKind.WRITE_RANK, offset=64,
                           symbol=MRAM_HEAP_SYMBOL)
    sreq = serialize_matrix(header, matrix, mem)
    # Fig. 7: request info + matrix meta + per-DPU (meta, pages).
    assert len(sreq.chain) == 2 + 2 * 2
    assert sreq.total_pages == 1 + 2


def test_serialize_deserialize_roundtrip(mem):
    bufs = [np.random.default_rng(i).integers(0, 255, 3000, dtype=np.uint8)
            .astype(np.uint8) for i in range(3)]
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 0, bufs)
    header = RequestHeader(kind=RequestKind.WRITE_RANK,
                           symbol=MRAM_HEAP_SYMBOL)
    sreq = serialize_matrix(header, matrix, mem)
    got_header, entries, skips = deserialize_request(sreq.chain, mem)
    assert got_header.kind is RequestKind.WRITE_RANK
    assert skips == []
    assert len(entries) == 3
    for i, entry in enumerate(entries):
        assert entry.size == 3000
        data = gather_entry_data(entry, mem)
        assert np.array_equal(data, bufs[i])


def test_read_matrix_allocates_destination_pages(mem):
    matrix = uniform_read(MRAM_HEAP_SYMBOL, 0, 10_000, nr_dpus=2)
    header = RequestHeader(kind=RequestKind.READ_RANK,
                           symbol=MRAM_HEAP_SYMBOL)
    sreq = serialize_matrix(header, matrix, mem)
    _, entries, _ = deserialize_request(sreq.chain, mem)
    results = (np.arange(10_000) % 251).astype(np.uint8)
    for entry in entries:
        scatter_entry_data(entry, results, mem)
        assert np.array_equal(gather_entry_data(entry, mem), results)
    # And the frontend can find them through the data descriptors.
    for (dpu, size, gpa) in sreq.data_descriptors:
        assert np.array_equal(mem.read(gpa, size), results)


def test_scatter_wrong_size_rejected(mem):
    matrix = uniform_read(MRAM_HEAP_SYMBOL, 0, 100, nr_dpus=1)
    sreq = serialize_matrix(
        RequestHeader(kind=RequestKind.READ_RANK, symbol=MRAM_HEAP_SYMBOL),
        matrix, mem)
    _, entries, _ = deserialize_request(sreq.chain, mem)
    with pytest.raises(SerializationError):
        scatter_entry_data(entries[0], np.zeros(99, dtype=np.uint8), mem)


def test_deserialize_truncated_chain_rejected(mem):
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 0, [np.zeros(10, np.uint8)])
    sreq = serialize_matrix(
        RequestHeader(kind=RequestKind.WRITE_RANK, symbol=MRAM_HEAP_SYMBOL),
        matrix, mem)
    with pytest.raises(SerializationError):
        deserialize_request(sreq.chain[:-1], mem)


def test_deserialize_empty_chain_rejected(mem):
    with pytest.raises(SerializationError):
        deserialize_request([], mem)


def test_header_only_request(mem):
    # A header-only chain deserializes to zero entries.
    from repro.virt.virtio import write_buffer
    header = RequestHeader(kind=RequestKind.LAUNCH)
    chain = [write_buffer(mem, header.pack())]
    got, entries, skips = deserialize_request(chain, mem)
    assert got.kind is RequestKind.LAUNCH
    assert entries == []
    assert skips == []


def test_xfer_kind_mapping():
    assert xfer_kind_of(RequestKind.WRITE_RANK) is XferKind.TO_DPU
    assert xfer_kind_of(RequestKind.READ_RANK) is XferKind.FROM_DPU
    with pytest.raises(SerializationError):
        xfer_kind_of(RequestKind.LAUNCH)


def test_page_gpas_are_page_aligned(mem):
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 0,
                           [np.zeros(PAGE_SIZE * 3, np.uint8)])
    sreq = serialize_matrix(
        RequestHeader(kind=RequestKind.WRITE_RANK, symbol=MRAM_HEAP_SYMBOL),
        matrix, mem)
    _, entries, _ = deserialize_request(sreq.chain, mem)
    assert (entries[0].page_gpas % PAGE_SIZE == 0).all()
    assert entries[0].page_gpas.size == 3


# -- cache wire format (Optimization(cache=True) writes) ----------------------

def test_cache_format_roundtrips_digests_and_skips(mem):
    from repro.virt.serialization import SkipExtent
    bufs = [np.arange(200, dtype=np.uint8),
            (np.arange(5000) % 256).astype(np.uint8)]
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 64, bufs)
    header = RequestHeader(kind=RequestKind.WRITE_RANK, offset=64,
                           symbol=MRAM_HEAP_SYMBOL)
    digests = {0: 0x1111, 1: 0xFFFFFFFFFFFFFFFF}
    skips = [SkipExtent(dpu_index=2, size=4096, digest=0xABCDEF),
             SkipExtent(dpu_index=3, size=17, digest=0)]
    sreq = serialize_matrix(header, matrix, mem, digests=digests, skips=skips)
    _, entries, got_skips = deserialize_request(sreq.chain, mem)
    assert got_skips == skips
    assert [e.digest for e in entries] == [0x1111, 0xFFFFFFFFFFFFFFFF]
    for i, entry in enumerate(entries):
        assert np.array_equal(gather_entry_data(entry, mem), bufs[i])


def test_cache_format_without_skips(mem):
    # digests alone (no suppressed extents) still select the cache
    # format: entry metadata grows the digest word, skip count is zero.
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 0, [np.zeros(100, np.uint8)])
    header = RequestHeader(kind=RequestKind.WRITE_RANK,
                           symbol=MRAM_HEAP_SYMBOL)
    sreq = serialize_matrix(header, matrix, mem, digests={0: 42})
    meta = mem.read(sreq.chain[1].gpa, sreq.chain[1].length).view(np.uint64)
    assert meta.size == 4 and int(meta[3]) == 0
    _, entries, skips = deserialize_request(sreq.chain, mem)
    assert skips == []
    assert entries[0].digest == 42


def test_default_format_is_unchanged_by_the_cache_code(mem):
    # The cache-off wire format must stay bit-identical: 3 meta words,
    # no digest word on entries.
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 0, [np.zeros(100, np.uint8)])
    header = RequestHeader(kind=RequestKind.WRITE_RANK,
                           symbol=MRAM_HEAP_SYMBOL)
    sreq = serialize_matrix(header, matrix, mem)
    meta = mem.read(sreq.chain[1].gpa, sreq.chain[1].length).view(np.uint64)
    assert meta.size == 3
    emeta = mem.read(sreq.chain[2].gpa, sreq.chain[2].length).view(np.uint64)
    assert emeta.size == 3
    _, entries, skips = deserialize_request(sreq.chain, mem)
    assert skips == [] and entries[0].digest == 0


def test_malformed_cache_meta_rejected(mem):
    # A matrix-meta block whose size matches neither format is rejected.
    from repro.virt.virtio import write_buffer
    header = RequestHeader(kind=RequestKind.WRITE_RANK,
                           symbol=MRAM_HEAP_SYMBOL)
    for words in ([1, 0, 1, 2, 9, 9, 9],    # claims 2 skips, holds 1
                  [1, 0, 1, 1, 9, 9],       # claims 1 skip, 2 words short
                  [1, 0]):                   # shorter than default format
        chain = [write_buffer(mem, header.pack()),
                 write_buffer(mem, np.array(words, dtype=np.uint64))]
        with pytest.raises(SerializationError):
            deserialize_request(chain, mem)
