"""Backend: zero-copy handling, rank linking, rust path, errors."""

import numpy as np
import pytest

from repro.config import MRAM_HEAP_SYMBOL, small_machine
from repro.driver.driver import UpmemDriver
from repro.errors import DeviceNotLinkedError, SerializationError
from repro.hardware.machine import Machine
from repro.hardware.timing import DEFAULT_COST_MODEL
from repro.sdk.transfer import uniform_read, uniform_write
from repro.virt.backend import VUpmemBackend
from repro.virt.guest_memory import GuestMemory
from repro.virt.serialization import (
    RequestHeader,
    RequestKind,
    serialize_matrix,
)
from repro.virt.virtio import write_buffer


@pytest.fixture
def env():
    machine = Machine(small_machine(nr_ranks=2, dpus_per_rank=4))
    driver = UpmemDriver(machine)
    memory = GuestMemory(128 << 20)
    backend = VUpmemBackend("dev0", driver, memory, DEFAULT_COST_MODEL)
    return machine, driver, memory, backend


def chain_for(header, matrix, memory):
    return serialize_matrix(header, matrix, memory).chain


def test_unlinked_requests_rejected(env):
    _, _, memory, backend = env
    header = RequestHeader(kind=RequestKind.LAUNCH)
    with pytest.raises(DeviceNotLinkedError):
        backend.process([write_buffer(memory, header.pack())])


def test_link_unlink_lifecycle(env):
    machine, driver, _, backend = env
    backend.link_rank(0)
    assert backend.linked
    assert driver.rank_owner(0) == "dev0"
    with pytest.raises(DeviceNotLinkedError):
        backend.link_rank(1)   # already linked
    backend.unlink()
    assert not backend.linked
    assert driver.rank_owner(0) is None


def test_config_request_without_rank(env):
    _, _, memory, backend = env
    header = RequestHeader(kind=RequestKind.GET_CONFIG)
    result = backend.process([write_buffer(memory, header.pack())])
    assert result.payload.nr_dpus == 64


def test_write_lands_on_rank_zero_copy(env):
    machine, _, memory, backend = env
    backend.link_rank(0)
    data = (np.arange(3000) % 256).astype(np.uint8)
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 128, [data, data])
    header = RequestHeader(kind=RequestKind.WRITE_RANK, offset=128,
                           symbol=MRAM_HEAP_SYMBOL)
    result = backend.process(chain_for(header, matrix, memory))
    assert result.duration > 0
    assert "T-data" in result.steps and "Deser" in result.steps
    for d in (0, 1):
        assert np.array_equal(machine.rank(0).dpu(d).mram.read(128, 3000), data)


def test_read_deposits_into_guest_pages(env):
    machine, _, memory, backend = env
    backend.link_rank(0)
    payload = np.full(500, 7, dtype=np.uint8)
    machine.rank(0).dpu(1).mram.write(64, payload)
    matrix = uniform_read(MRAM_HEAP_SYMBOL, 64, 500, nr_dpus=2)
    header = RequestHeader(kind=RequestKind.READ_RANK, offset=64,
                           symbol=MRAM_HEAP_SYMBOL)
    sreq = serialize_matrix(header, matrix, memory)
    backend.process(sreq.chain)
    dpu1 = [d for d in sreq.data_descriptors if d[0] == 1][0]
    assert np.array_equal(memory.read(dpu1[2], 500), payload)


def test_rust_path_slower_on_writes(env):
    # Two entries: a rank-level transfer at full lane parallelism, where
    # the interleaving flavour dominates the data path.
    machine, driver, memory, _ = env
    data = np.zeros(1 << 20, dtype=np.uint8)
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 0, [data, data])
    header = RequestHeader(kind=RequestKind.WRITE_RANK,
                           symbol=MRAM_HEAP_SYMBOL)

    c_backend = VUpmemBackend("c", driver, memory, DEFAULT_COST_MODEL,
                              rust_data_path=False)
    c_backend.link_rank(0)
    c_time = c_backend.process(chain_for(header, matrix, memory)).steps["T-data"]
    c_backend.unlink()

    rust_backend = VUpmemBackend("rust", driver, memory, DEFAULT_COST_MODEL,
                                 rust_data_path=True)
    rust_backend.link_rank(0)
    rust_time = rust_backend.process(
        chain_for(header, matrix, memory)).steps["T-data"]
    assert rust_time > c_time * 3.43  # at least the paper's 343%


def test_translation_threads_speed_deser(env):
    machine, driver, memory, _ = env
    data = np.zeros(1 << 20, dtype=np.uint8)
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 0, [data])
    header = RequestHeader(kind=RequestKind.WRITE_RANK,
                           symbol=MRAM_HEAP_SYMBOL)

    fast = VUpmemBackend("f", driver, memory, DEFAULT_COST_MODEL,
                         translation_threads=8)
    fast.link_rank(0)
    fast_t = fast.process(chain_for(header, matrix, memory)).steps["Deser"]
    fast.unlink()

    slow = VUpmemBackend("s", driver, memory, DEFAULT_COST_MODEL,
                         translation_threads=1)
    slow.link_rank(0)
    slow_t = slow.process(chain_for(header, matrix, memory)).steps["Deser"]
    assert slow_t > fast_t


def test_load_requires_program_image(env):
    _, _, memory, backend = env
    backend.link_rank(0)
    header = RequestHeader(kind=RequestKind.LOAD, program_name="missing")
    with pytest.raises(SerializationError):
        backend.process([write_buffer(memory, header.pack())])


def test_release_request_unlinks(env):
    _, driver, memory, backend = env
    backend.link_rank(0)
    header = RequestHeader(kind=RequestKind.RELEASE)
    backend.process([write_buffer(memory, header.pack())])
    assert not backend.linked
    assert 0 in driver.free_ranks()


def test_worker_thread_default_matches_paper(env):
    *_, backend = env
    # Section 4.2: 8 threads, aligned with 8 DPUs per chip.
    assert backend.worker_threads == 8
    assert backend.translation_threads == 8
