"""Checkpoint/restore and device migration (Section 7 extension)."""

import numpy as np
import pytest

from repro.config import small_machine
from repro.core import VPim
from repro.errors import DpuFaultError, ManagerError
from repro.hardware.machine import Machine
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram
from repro.virt.emulation import EMULATED_RANK_BASE
from repro.virt.migration import (
    checkpoint_rank,
    consolidate,
    migrate_device,
    restore_rank,
)


class Marker(DpuProgram):
    name = "marker"
    symbols = {"mark": 4}
    nr_tasklets = 2

    def kernel(self, ctx):
        if ctx.me() == 0:
            ctx.set_host_u32("mark", 0xC0FFEE)
            ctx.charge(2)
        yield ctx.barrier()


@pytest.fixture
def machine():
    return Machine(small_machine(nr_ranks=2, dpus_per_rank=4))


def test_checkpoint_restore_roundtrip(machine):
    src, dst = machine.rank(0), machine.rank(1)
    program = Marker()
    for dpu in src.dpus:
        dpu.load_program(program, program.binary_size, program.symbols)
        dpu.write_symbol("mark", 0, b"\x01\x02\x03\x04")
    src.dpu(2).mram.write(1000, np.arange(64, dtype=np.uint8))

    checkpoint, save_time = checkpoint_rank(src)
    assert save_time > 0
    restore_time = restore_rank(dst, checkpoint)
    assert restore_time > 0

    assert dst.dpu(2).mram.read(1000, 64).tolist() == list(range(64))
    assert dst.dpu(0).read_symbol("mark", 0, 4) == b"\x01\x02\x03\x04"
    assert dst.dpu(0).program is program


def test_checkpoint_is_sparse(machine):
    src = machine.rank(0)
    src.dpu(0).mram.write(0, np.ones(100, dtype=np.uint8))
    checkpoint, _ = checkpoint_rank(src)
    # Only one 64 KB segment of one DPU was touched.
    assert checkpoint.nr_bytes <= 64 * 1024


def test_checkpoint_refused_while_running(machine):
    src = machine.rank(0)
    program = Marker()
    dpu = src.dpu(0)
    dpu.load_program(program, program.binary_size, program.symbols)
    dpu.begin_run()
    with pytest.raises(DpuFaultError):
        checkpoint_rank(src)


def test_restore_needs_enough_dpus(machine):
    from repro.config import RankConfig
    from repro.hardware.rank import Rank
    small = Rank(RankConfig(5, 2))
    checkpoint, _ = checkpoint_rank(machine.rank(0))  # 4 DPUs
    with pytest.raises(ManagerError):
        restore_rank(small, checkpoint)


def test_migrate_device_moves_data():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=4))
    session = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    with DpuSet(session.transport, 4) as dpus:
        dpus.push_to_mram(0, [np.full(256, 9, np.uint8)] * 4)
        device = session.vm.devices[0]
        old = device.backend.mapping.rank.index
        new = migrate_device(device, vpim.manager)
        assert new != old
        # Reads now hit the new rank with identical content.
        got = dpus.push_from_mram(0, 256)
        assert all((buf == 9).all() for buf in got)
        # The old rank was released back to the manager.
        assert vpim.manager.rank_table[old].state.value in ("NANA", "NAAV")


def test_migrate_unlinked_device_rejected():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=4))
    session = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    with pytest.raises(ManagerError):
        migrate_device(session.vm.devices[0], vpim.manager)


def test_migration_advances_clock():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=4))
    session = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    with DpuSet(session.transport, 4) as dpus:
        dpus.push_to_mram(0, [np.ones(1 << 16, np.uint8)] * 4)
        t0 = vpim.machine.clock.now
        migrate_device(session.vm.devices[0], vpim.manager)
        assert vpim.machine.clock.now > t0


def test_consolidate_upgrades_emulated_tenant():
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8),
                oversubscription=True)
    holder = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    tenant = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    hold = DpuSet(holder.transport, 8)
    spilled = DpuSet(tenant.transport, 8)
    spilled.push_to_mram(0, [np.full(128, 5, np.uint8)] * 8)
    assert spilled.channels[0].rank_index >= EMULATED_RANK_BASE

    hold.free()                          # the physical rank frees up
    vpim.machine.clock.advance(1.0)      # its reset completes
    migrated = consolidate(vpim.manager, tenant.vm.devices)
    assert migrated == 1
    new_rank = tenant.vm.devices[0].backend.mapping.rank.index
    assert new_rank < EMULATED_RANK_BASE
    got = spilled.push_from_mram(0, 128)
    assert all((buf == 5).all() for buf in got)
    spilled.free()


def test_consolidate_noop_without_pool():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=4))
    session = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    assert consolidate(vpim.manager, session.vm.devices) == 0
