"""Batched scatter-gather correctness (the zero-copy data plane).

``gather_entry_data``/``scatter_entry_data`` moved from a per-page Python
loop to one bulk copy per contiguous page run.  These tests pin the wire
behavior the rest of the stack relies on: non-page-aligned tails, empty
slices, pooled destination buffers, and — via hypothesis — byte-for-byte
agreement with the original per-page reference loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PAGE_SIZE
from repro.errors import SerializationError
from repro.virt.guest_memory import GuestMemory
from repro.virt.serialization import (
    SerializedEntry,
    gather_entry_data,
    scatter_entry_data,
)


def make_entry(memory: GuestMemory, payload: np.ndarray,
               dpu_index: int = 0) -> SerializedEntry:
    """Allocate pages for ``payload``, write it, and describe it."""
    nr_pages = max(1, -(-payload.size // PAGE_SIZE))
    gpa = memory.alloc_pages(nr_pages)
    memory.write(gpa, payload)
    page_gpas = (np.arange(nr_pages, dtype=np.uint64) * PAGE_SIZE
                 + np.uint64(gpa))
    return SerializedEntry(dpu_index=dpu_index, size=payload.size,
                           page_gpas=page_gpas)


def reference_gather(entry: SerializedEntry,
                     memory: GuestMemory) -> np.ndarray:
    """The original per-page gather loop, kept as the oracle."""
    out = np.empty(entry.page_gpas.size * PAGE_SIZE, dtype=np.uint8)
    pos = 0
    for start, nr in GuestMemory.contiguous_runs(entry.page_gpas):
        span = nr * PAGE_SIZE
        out[pos:pos + span] = memory.read(start, span)
        pos += span
    return out[:entry.size]


@pytest.fixture
def memory() -> GuestMemory:
    return GuestMemory(64 << 20)


class TestGatherTails:
    def test_non_page_aligned_tail(self, memory):
        payload = np.arange(PAGE_SIZE + 137, dtype=np.uint8) % 251
        entry = make_entry(memory, payload.astype(np.uint8))
        assert np.array_equal(gather_entry_data(entry, memory), payload)

    def test_single_byte_entry(self, memory):
        payload = np.array([42], dtype=np.uint8)
        entry = make_entry(memory, payload)
        out = gather_entry_data(entry, memory)
        assert out.size == 1 and out[0] == 42

    def test_exact_page_multiple(self, memory):
        payload = (np.arange(3 * PAGE_SIZE) % 256).astype(np.uint8)
        entry = make_entry(memory, payload)
        assert np.array_equal(gather_entry_data(entry, memory), payload)

    def test_tail_page_bytes_beyond_size_not_included(self, memory):
        # Fill the tail page's slack with a sentinel; the gather must
        # return exactly `size` bytes, never the slack.
        payload = np.full(PAGE_SIZE // 2, 7, dtype=np.uint8)
        entry = make_entry(memory, payload)
        memory.write(int(entry.page_gpas[0]) + payload.size,
                     np.full(PAGE_SIZE - payload.size, 0xEE, dtype=np.uint8))
        out = gather_entry_data(entry, memory)
        assert out.size == payload.size
        assert (out == 7).all()


class TestZeroLengthSlices:
    def test_zero_length_entry_gathers_empty(self, memory):
        # A DPU with no slice still occupies one page in the wire format.
        gpa = memory.alloc_pages(1)
        entry = SerializedEntry(dpu_index=0, size=0,
                                page_gpas=np.array([gpa], dtype=np.uint64))
        out = gather_entry_data(entry, memory)
        assert out.size == 0

    def test_zero_length_scatter_roundtrip(self, memory):
        gpa = memory.alloc_pages(1)
        entry = SerializedEntry(dpu_index=0, size=0,
                                page_gpas=np.array([gpa], dtype=np.uint64))
        scatter_entry_data(entry, np.empty(0, dtype=np.uint8), memory)
        assert gather_entry_data(entry, memory).size == 0


class TestPooledOut:
    def test_gather_into_oversized_scratch(self, memory):
        payload = (np.arange(2 * PAGE_SIZE + 99) % 256).astype(np.uint8)
        entry = make_entry(memory, payload)
        scratch = np.full(8 * PAGE_SIZE, 0xAB, dtype=np.uint8)
        out = gather_entry_data(entry, memory, out=scratch)
        assert out.base is scratch or out is scratch  # a view, no copy
        assert np.array_equal(out, payload)
        # Bytes past the payload in the scratch buffer are untouched.
        assert (scratch[payload.size:] == 0xAB).all()

    def test_gather_rejects_undersized_scratch(self, memory):
        payload = np.ones(PAGE_SIZE, dtype=np.uint8)
        entry = make_entry(memory, payload)
        with pytest.raises(SerializationError):
            gather_entry_data(entry, memory,
                              out=np.empty(PAGE_SIZE - 1, dtype=np.uint8))

    def test_scatter_rejects_size_mismatch(self, memory):
        payload = np.ones(PAGE_SIZE, dtype=np.uint8)
        entry = make_entry(memory, payload)
        with pytest.raises(SerializationError):
            scatter_entry_data(entry, np.ones(PAGE_SIZE + 1, dtype=np.uint8),
                               memory)


payload_sizes = st.one_of(
    st.integers(0, 3 * PAGE_SIZE),
    st.sampled_from([PAGE_SIZE - 1, PAGE_SIZE, PAGE_SIZE + 1,
                     2 * PAGE_SIZE, 2 * PAGE_SIZE + 1]),
)


class TestAgainstReferenceLoop:
    @settings(max_examples=40, deadline=None)
    @given(size=payload_sizes, seed=st.integers(0, 2**31 - 1))
    def test_batched_gather_matches_per_page_loop(self, size, seed):
        memory = GuestMemory(64 << 20)
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 256, size, dtype=np.uint8)
        entry = make_entry(memory, payload)
        batched = gather_entry_data(entry, memory)
        assert np.array_equal(batched, reference_gather(entry, memory))
        assert np.array_equal(batched, payload)

    @settings(max_examples=25, deadline=None)
    @given(size=st.integers(1, 2 * PAGE_SIZE + 17),
           seed=st.integers(0, 2**31 - 1))
    def test_scatter_then_gather_roundtrip(self, size, seed):
        memory = GuestMemory(64 << 20)
        rng = np.random.default_rng(seed)
        nr_pages = -(-size // PAGE_SIZE)
        gpa = memory.alloc_pages(nr_pages)
        entry = SerializedEntry(
            dpu_index=3, size=size,
            page_gpas=(np.arange(nr_pages, dtype=np.uint64) * PAGE_SIZE
                       + np.uint64(gpa)))
        payload = rng.integers(0, 256, size, dtype=np.uint8)
        scatter_entry_data(entry, payload, memory)
        assert np.array_equal(gather_entry_data(entry, memory), payload)
