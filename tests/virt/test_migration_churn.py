"""Migration under churn: checkpoint/restore/migrate amid live tenants.

Stresses the §7 mechanisms the consolidator leans on: devices are
migrated while *other* VMs keep running applications, repeatedly, and
tenant state (MRAM bytes, WRAM symbols, loaded program) must survive
every hop.  A device whose rank is mid-launch must refuse to move.
"""

import numpy as np
import pytest

from repro.apps.prim.va import VectorAdd
from repro.cluster import Cluster, ClusterConfig, Scheduler, TenantRequest
from repro.config import small_machine
from repro.core import VPim
from repro.errors import DpuFaultError
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram
from repro.virt.migration import migrate_device


class Marker(DpuProgram):
    name = "marker"
    symbols = {"mark": 4}
    nr_tasklets = 2

    def kernel(self, ctx):
        if ctx.me() == 0:
            ctx.set_host_u32("mark", 0xC0FFEE)
            ctx.charge(2)
        yield ctx.barrier()


@pytest.fixture
def vpim():
    return VPim(small_machine(nr_ranks=4, dpus_per_rank=4))


def _seed_victim(session):
    """Give the victim VM distinctive MRAM and WRAM state."""
    device = session.vm.devices[0]
    session.vm.acquire_rank(device)
    rank = device.backend.mapping.rank
    program = Marker()
    for dpu in rank.dpus:
        dpu.load_program(program, program.binary_size, program.symbols)
        dpu.write_symbol("mark", 0, b"\xAA\xBB\xCC\xDD")
        dpu.mram.write(512, np.full(128, 0x5A, np.uint8))
    return device


def _assert_victim_intact(device):
    rank = device.backend.mapping.rank
    for dpu in rank.dpus:
        assert dpu.read_symbol("mark", 0, 4) == b"\xAA\xBB\xCC\xDD"
        assert (dpu.mram.read(512, 128) == 0x5A).all()
        assert dpu.program is not None and dpu.program.name == "marker"


def test_migrate_while_other_tenants_run(vpim):
    victim = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    worker = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    device = _seed_victim(victim)
    source = device.backend.mapping.rank.index

    # A busy neighbor runs a full app between the victim's launches...
    report = worker.run(VectorAdd(nr_dpus=4, n_elements=1 << 12, seed=1))
    assert report.verified
    # ...and the victim still migrates with its state intact.
    target = migrate_device(device, vpim.manager)
    assert target != source
    _assert_victim_intact(device)

    # The neighbor keeps working after the move.
    report = worker.run(VectorAdd(nr_dpus=4, n_elements=1 << 12, seed=2))
    assert report.verified


def test_repeated_migration_churn(vpim):
    victim = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    worker = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    device = _seed_victim(victim)

    hops = []
    for cycle in range(4):
        report = worker.run(
            VectorAdd(nr_dpus=4, n_elements=1 << 12, seed=cycle))
        assert report.verified
        hops.append(migrate_device(device, vpim.manager))
        _assert_victim_intact(device)
    # The device really moved each cycle (NANA reuse would stay put,
    # but the worker churns the rank pool between hops).
    assert len(hops) == 4


def test_migration_refused_while_running(vpim):
    victim = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    device = _seed_victim(victim)
    rank = device.backend.mapping.rank
    rank.dpus[0].begin_run()
    with pytest.raises(DpuFaultError):
        migrate_device(device, vpim.manager)
    # The device stayed linked to its original rank.
    assert device.backend.mapping.rank is rank
    from repro.hardware.dpu import DpuRunStats
    rank.dpus[0].finish_run(DpuRunStats())
    _assert_victim_intact(device)


def test_cross_host_migration_under_load():
    """Fleet-level churn: move a tenant between hosts while both hosts
    serve other VMs, through the scheduler's placement objects."""
    cluster = Cluster(ClusterConfig(nr_hosts=2, ranks_per_host=2,
                                    dpus_per_rank=4))
    scheduler = Scheduler(cluster, policy="round_robin")

    def place(tenant):
        scheduler.submit(TenantRequest(tenant=tenant, nr_ranks=1))
        placement = scheduler.try_place_next()
        placement.acquire()
        return placement

    moving = place("mover")          # lands on host0
    staying = place("stayer")        # lands on host1
    source_host, dest_host = moving.host, staying.host
    assert source_host is not dest_host

    device = moving.linked_devices()[0]
    for dpu in device.backend.mapping.rank.dpus:
        dpu.mram.write(0, np.full(64, 0x77, np.uint8))

    migrate_device(device, source_host.manager,
                   target_manager=dest_host.manager)
    moving.move_to(dest_host)

    # The device now answers through the destination host's driver.
    assert device.backend.driver is dest_host.driver
    assert source_host.allocated_ranks() == 0
    assert dest_host.allocated_ranks() == 2
    rank = device.backend.mapping.rank
    assert all((dpu.mram.read(0, 64) == 0x77).all() for dpu in rank.dpus)

    # Both tenants depart cleanly on their (new) hosts.
    scheduler.release(moving)
    scheduler.release(staying)
    assert cluster.allocated_ranks() == 0


def test_worker_dpuset_survives_neighbor_migration(vpim):
    """A DpuSet mid-conversation is unaffected by a neighbor's move."""
    victim = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    worker = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    device = _seed_victim(victim)

    with DpuSet(worker.transport, 4) as dpus:
        dpus.push_to_mram(0, [np.full(256, 3, np.uint8)] * 4)
        migrate_device(device, vpim.manager)
        got = dpus.push_from_mram(0, 256)
        assert all((buf == 3).all() for buf in got)
    _assert_victim_intact(device)
