"""KVM transition accounting."""

import pytest

from repro.hardware.timing import DEFAULT_COST_MODEL
from repro.virt.kvm import Kvm


def test_trap_counts_and_costs():
    kvm = Kvm(DEFAULT_COST_MODEL)
    assert kvm.trap() == pytest.approx(DEFAULT_COST_MODEL.vmexit_cost)
    assert kvm.stats.vmexits == 1
    assert kvm.stats.irq_injections == 0


def test_irq_counts_and_costs():
    kvm = Kvm(DEFAULT_COST_MODEL)
    assert kvm.inject_irq() == pytest.approx(
        DEFAULT_COST_MODEL.irq_inject_cost)
    assert kvm.stats.irq_injections == 1


def test_roundtrip_is_trap_plus_irq():
    kvm = Kvm(DEFAULT_COST_MODEL)
    total = kvm.roundtrip()
    assert total == pytest.approx(DEFAULT_COST_MODEL.vmexit_cost
                                  + DEFAULT_COST_MODEL.irq_inject_cost)
    assert kvm.stats.vmexits == 1
    assert kvm.stats.irq_injections == 1


def test_stats_accumulate():
    kvm = Kvm(DEFAULT_COST_MODEL)
    for _ in range(10):
        kvm.roundtrip()
    assert kvm.stats.vmexits == 10
    assert kvm.stats.irq_injections == 10
