"""Firecracker VMM: API validation, boot costs, device wiring."""

import pytest

from repro.config import small_machine
from repro.errors import VmConfigError
from repro.hardware.machine import Machine
from repro.virt.firecracker import BASE_BOOT_TIME, Firecracker, VmConfig


@pytest.fixture
def fc():
    return Firecracker(Machine(small_machine(nr_ranks=2, dpus_per_rank=4)))


def test_vm_config_validation(fc):
    machine = fc.machine
    with pytest.raises(VmConfigError):
        VmConfig(vcpus=0).validate(machine)
    with pytest.raises(VmConfigError):
        VmConfig(mem_bytes=0).validate(machine)
    with pytest.raises(VmConfigError):
        VmConfig(nr_vupmem=-1).validate(machine)
    with pytest.raises(VmConfigError):
        VmConfig(kernel_path="").validate(machine)


def test_cannot_request_more_devices_than_ranks(fc):
    # Section 3.3: up to the number of physical UPMEMs.
    with pytest.raises(VmConfigError):
        VmConfig(nr_vupmem=3).validate(fc.machine)


def test_boot_time_includes_device_cost(fc):
    t0 = fc.machine.clock.now
    vm = fc.launch_vm(VmConfig(nr_vupmem=2, mem_bytes=1 << 30))
    boot = fc.machine.clock.now - t0
    assert boot == pytest.approx(vm.boot_time)
    # Section 3.2: each vUPMEM device adds at most 2 ms.
    per_device = (boot - BASE_BOOT_TIME) / 2
    assert per_device <= 2e-3 + 1e-9


def test_vm_has_devices_and_queues(fc):
    vm = fc.launch_vm(VmConfig(nr_vupmem=2, mem_bytes=1 << 30))
    assert len(vm.devices) == 2
    for device in vm.devices:
        assert not device.linked
        assert device.queues.transferq.capacity == 512
    assert {d.device_id for d in vm.devices} == {
        f"{vm.vm_id}.vupmem0", f"{vm.vm_id}.vupmem1"}


def test_acquire_rank_links_and_initializes(fc):
    vm = fc.launch_vm(VmConfig(nr_vupmem=1, mem_bytes=1 << 30))
    device = vm.devices[0]
    rank_index = vm.acquire_rank(device)
    assert device.linked
    assert device.backend.mapping.rank.index == rank_index
    assert device.initialized
    assert device.frontend.device_config is not None


def test_shutdown_releases_ranks(fc):
    vm = fc.launch_vm(VmConfig(nr_vupmem=1, mem_bytes=1 << 30))
    vm.acquire_rank(vm.devices[0])
    assert fc.driver.free_ranks() == [1]
    vm.shutdown()
    assert fc.driver.free_ranks() == [0, 1]


def test_vm_ids_are_unique(fc):
    a = fc.launch_vm(VmConfig(nr_vupmem=0, mem_bytes=1 << 30))
    b = fc.launch_vm(VmConfig(nr_vupmem=0, mem_bytes=1 << 30))
    assert a.vm_id != b.vm_id


def test_rust_path_selected_by_opts(fc):
    from repro.virt.opts import preset
    vm = fc.launch_vm(VmConfig(nr_vupmem=1, mem_bytes=1 << 30,
                               opts=preset("vPIM-rust")))
    assert vm.devices[0].backend.rust_data_path
    vm2 = fc.launch_vm(VmConfig(nr_vupmem=1, mem_bytes=1 << 30))
    assert not vm2.devices[0].backend.rust_data_path
