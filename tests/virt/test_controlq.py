"""Controlq: manager synchronization notifications (Appendix A.1)."""

from repro.config import small_machine
from repro.core import VPim
from repro.sdk.dpu_set import DpuSet


def test_controlq_carries_link_and_release_notifications():
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
    session = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    device = session.vm.devices[0]
    assert device.queues.controlq.kicks == 0
    with DpuSet(session.transport, 8):
        # Device initialization posted the "linked" boolean.
        assert device.queues.controlq.kicks == 1
    # Release posted the "unlinked" boolean.
    assert device.queues.controlq.kicks == 2


def test_controlq_reuse_on_relink():
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
    session = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    device = session.vm.devices[0]
    with DpuSet(session.transport, 8):
        pass
    with DpuSet(session.transport, 8):
        pass
    # init happens once; each release notifies: 1 (init) + 2 (releases).
    assert device.queues.controlq.kicks == 3
