"""Content-aware transfer cache: suppression, invalidation, bit-exactness.

Covers the ``docs/transfer_cache.md`` contract at three levels: the
``ExtentDigestIndex`` structure, the frontend/backend suppression
protocol through a full VM, and the byte-exactness property (cache-on
results must equal cache-off exactly) for random write/read sequences
and for every PrIM application.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.transfer_cache import output_digest
from repro.apps.registry import PRIM_APPS, app_by_short_name
from repro.analysis.figures import SIZE_PROFILES
from repro.config import MRAM_HEAP_SYMBOL, PAGE_SIZE, small_machine
from repro.core import VPim
from repro.errors import SerializationError, TransientFaultError
from repro.faults import failover_device
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram
from repro.virt.opts import OptimizationConfig
from repro.virt.transfer_cache import ExtentDigestIndex, content_digest

#: Label identity of the first vUPMEM device of the first VM.
IDS = dict(vm="vm-0", device="vm-0.vupmem0")


def make_session(nr_ranks=1, dpus_per_rank=4, **opt_kwargs):
    vpim = VPim(small_machine(nr_ranks=nr_ranks, dpus_per_rank=dpus_per_rank))
    session = vpim.vm_session(nr_vupmem=1,
                              opts=OptimizationConfig(**opt_kwargs))
    return vpim, session


def cache_metric(vpim, name, **labels):
    return vpim.machine.metrics.value(name, **IDS, **labels)


# -- unit level: the extent digest index -------------------------------------

class TestExtentDigestIndex:
    def test_hit_requires_exact_extent_triple(self):
        index = ExtentDigestIndex()
        index.insert(0, MRAM_HEAP_SYMBOL, 100, 64, 0xABCD)
        assert index.lookup(0, MRAM_HEAP_SYMBOL, 100, 64, 0xABCD)
        assert not index.lookup(0, MRAM_HEAP_SYMBOL, 100, 64, 0xABCE)
        assert not index.lookup(0, MRAM_HEAP_SYMBOL, 100, 65, 0xABCD)
        assert not index.lookup(0, MRAM_HEAP_SYMBOL, 101, 64, 0xABCD)
        assert not index.lookup(1, MRAM_HEAP_SYMBOL, 100, 64, 0xABCD)
        assert not index.lookup(0, "other_symbol", 100, 64, 0xABCD)

    def test_first_touch_collision_cannot_suppress(self):
        """A digest recorded at one extent never matches another extent,
        so a colliding payload at a first-touch offset is always sent."""
        index = ExtentDigestIndex()
        digest = content_digest(np.arange(64, dtype=np.uint8))
        index.insert(0, MRAM_HEAP_SYMBOL, 0, 64, digest)
        # Same payload digest, never-written offset: miss by design.
        assert not index.lookup(0, MRAM_HEAP_SYMBOL, 4096, 64, digest)

    def test_insert_drops_overlapping_records(self):
        index = ExtentDigestIndex()
        index.insert(0, MRAM_HEAP_SYMBOL, 0, 64, 1)
        index.insert(0, MRAM_HEAP_SYMBOL, 64, 64, 2)
        index.insert(0, MRAM_HEAP_SYMBOL, 200, 64, 3)
        # [32, 96) overlaps both of the first two records.
        index.insert(0, MRAM_HEAP_SYMBOL, 32, 64, 4)
        assert not index.lookup(0, MRAM_HEAP_SYMBOL, 0, 64, 1)
        assert not index.lookup(0, MRAM_HEAP_SYMBOL, 64, 64, 2)
        assert index.lookup(0, MRAM_HEAP_SYMBOL, 32, 64, 4)
        assert index.lookup(0, MRAM_HEAP_SYMBOL, 200, 64, 3)

    def test_reinsert_same_offset_replaces_record(self):
        index = ExtentDigestIndex()
        index.insert(0, MRAM_HEAP_SYMBOL, 0, 64, 1)
        index.insert(0, MRAM_HEAP_SYMBOL, 0, 64, 2)
        assert not index.lookup(0, MRAM_HEAP_SYMBOL, 0, 64, 1)
        assert index.lookup(0, MRAM_HEAP_SYMBOL, 0, 64, 2)
        assert index.nr_records == 1

    def test_lru_bound_evicts_oldest(self):
        index = ExtentDigestIndex(max_records_per_region=2)
        index.insert(0, MRAM_HEAP_SYMBOL, 0, 8, 1)
        index.insert(0, MRAM_HEAP_SYMBOL, 100, 8, 2)
        # Re-touching offset 0 moves it to the back of the LRU order.
        index.insert(0, MRAM_HEAP_SYMBOL, 0, 8, 1)
        index.insert(0, MRAM_HEAP_SYMBOL, 200, 8, 3)
        assert index.lookup(0, MRAM_HEAP_SYMBOL, 0, 8, 1)
        assert not index.lookup(0, MRAM_HEAP_SYMBOL, 100, 8, 2)
        assert index.lookup(0, MRAM_HEAP_SYMBOL, 200, 8, 3)

    def test_prune_counts_and_drops_overlaps(self):
        index = ExtentDigestIndex()
        index.insert(0, MRAM_HEAP_SYMBOL, 0, 64, 1)
        index.insert(0, MRAM_HEAP_SYMBOL, 64, 64, 2)
        index.insert(1, MRAM_HEAP_SYMBOL, 0, 64, 3)
        assert index.prune(0, MRAM_HEAP_SYMBOL, 60, 8) == 2
        assert index.prune(0, MRAM_HEAP_SYMBOL, 60, 8) == 0
        assert index.prune(0, MRAM_HEAP_SYMBOL, 0, 0) == 0
        # Other DPUs' regions are untouched.
        assert index.lookup(1, MRAM_HEAP_SYMBOL, 0, 64, 3)

    def test_invalidate_all_returns_count(self):
        index = ExtentDigestIndex()
        index.insert(0, MRAM_HEAP_SYMBOL, 0, 8, 1)
        index.insert(1, "sym", 0, 8, 2)
        assert index.invalidate_all() == 2
        assert index.nr_records == 0
        assert index.invalidate_all() == 0

    def test_content_digest_is_a_pure_function_of_bytes(self):
        a = np.arange(16, dtype=np.uint8)
        assert content_digest(a) == content_digest(a.copy())
        assert content_digest(a) == content_digest(a.view(np.uint32))
        assert content_digest(a) != content_digest(a[::-1].copy())
        # Empty payloads digest fine (zero-length write edge case).
        assert content_digest(np.zeros(0, np.uint8)) == \
            content_digest(np.zeros(0, np.uint64))


# -- VM level: suppression through the data plane ----------------------------

class TestSuppressionThroughVm:
    def test_repeated_large_write_sends_no_message(self):
        vpim, session = make_session(cache=True)
        buf = (np.arange(2 * PAGE_SIZE) % 251).astype(np.uint8)
        with DpuSet(session.transport, 4) as dpus:
            msgs = session.transport.profiler.messages
            dpus.copy_to_mram(0, 0, buf)
            sent = msgs.requests
            dpus.copy_to_mram(0, 0, buf)
            assert msgs.requests == sent  # fully suppressed: no message
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") == 1
            assert cache_metric(
                vpim, "repro_xfer_cache_suppressed_bytes_total") == buf.size
            got = dpus.copy_from_mram(0, 0, buf.size)
            assert np.array_equal(got, buf)

    def test_partially_changed_push_sends_only_changed_entries(self):
        vpim, session = make_session(cache=True)
        bufs = [(np.arange(2 * PAGE_SIZE) % (13 + i)).astype(np.uint8)
                for i in range(4)]
        with DpuSet(session.transport, 4) as dpus:
            dpus.push_to_mram(0, bufs)
            bufs[2] = bufs[2][::-1].copy()
            dpus.push_to_mram(0, bufs)
            # 3 unchanged extents suppressed, 1 changed extent re-sent.
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") == 3
            for i in range(4):
                assert np.array_equal(
                    dpus.copy_from_mram(i, 0, bufs[i].size), bufs[i])

    def test_batched_small_write_suppression(self):
        vpim, session = make_session(cache=True, request_batching=True)
        buf = np.full(64, 7, dtype=np.uint8)
        with DpuSet(session.transport, 4) as dpus:
            batched = session.transport.profiler.messages.batched_writes
            dpus.copy_to_mram(0, 0, buf)
            dpus.copy_to_mram(0, 0, buf)
            # The duplicate never entered the batch buffer.
            assert (session.transport.profiler.messages.batched_writes
                    == batched + 1)
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") == 1
            assert np.array_equal(dpus.copy_from_mram(0, 0, 64), buf)

    def test_zero_length_write_is_harmless(self):
        _, session = make_session(cache=True)
        data = np.arange(100, dtype=np.uint8)
        with DpuSet(session.transport, 4) as dpus:
            dpus.copy_to_mram(0, 0, np.zeros(0, dtype=np.uint8))
            dpus.copy_to_mram(0, 64, data)
            dpus.copy_to_mram(0, 0, np.zeros(0, dtype=np.uint8))
            # A zero-length record must not shadow the data beneath it.
            assert np.array_equal(dpus.copy_from_mram(0, 64, 100), data)

    def test_sub_page_tail_write_roundtrips(self):
        """Non-page-aligned tails digest and suppress correctly."""
        vpim, session = make_session(cache=True)
        buf = (np.arange(PAGE_SIZE + 37) % 241).astype(np.uint8)
        with DpuSet(session.transport, 4) as dpus:
            dpus.copy_to_mram(1, 128, buf)
            dpus.copy_to_mram(1, 128, buf)
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") == 1
            # Flip one byte in the tail: the digest must change and the
            # write must land.
            buf[-1] ^= 0xFF
            dpus.copy_to_mram(1, 128, buf)
            assert np.array_equal(dpus.copy_from_mram(1, 128, buf.size), buf)

    def test_overlapping_write_invalidates_stale_extent(self):
        _, session = make_session(cache=True)
        base = (np.arange(2 * PAGE_SIZE) % 199).astype(np.uint8)
        with DpuSet(session.transport, 4) as dpus:
            dpus.copy_to_mram(0, 0, base)
            patch = np.full(64, 0xEE, dtype=np.uint8)
            dpus.copy_to_mram(0, 4096, patch)
            # Re-pushing the original must NOT be suppressed: the extent
            # record was dropped by the overlapping patch.
            dpus.copy_to_mram(0, 0, base)
            assert np.array_equal(dpus.copy_from_mram(0, 0, base.size), base)

    def test_skip_extent_must_be_resident_on_the_backend(self):
        """A SKIP the backend cannot validate is a protocol violation."""
        _, session = make_session(cache=True)
        buf = (np.arange(2 * PAGE_SIZE) % 97).astype(np.uint8)
        other = buf[::-1].copy()
        with DpuSet(session.transport, 4) as dpus:
            frontend = session.vm.devices[0].frontend
            # Poison the frontend index: claim DPU 0's extent is resident.
            # (A fully-suppressed matrix sends no message at all, so a
            # second, unpoisoned entry keeps the request on the wire.)
            frontend.digests.insert(0, MRAM_HEAP_SYMBOL, 0, buf.size,
                                    content_digest(buf))
            with pytest.raises(SerializationError, match="not resident"):
                dpus.push_to_mram(0, [buf, other, other, other])


# -- VM level: invalidation seams --------------------------------------------

class KernelWriter(DpuProgram):
    """Writes a marker into MRAM so launches dirty guest-pushed data."""

    name = "cache_test_writer"
    nr_tasklets = 2

    def kernel(self, ctx):
        if ctx.me() == 0:
            ctx.mram_write(0, np.full(64, 0x5A, dtype=np.uint8))
            ctx.charge(8)
        yield ctx.barrier()


class TestInvalidation:
    def test_launch_dirty_pages_are_not_suppressed(self):
        vpim, session = make_session(cache=True)
        buf = (np.arange(2 * PAGE_SIZE) % 113).astype(np.uint8)
        with DpuSet(session.transport, 4) as dpus:
            dpus.load(KernelWriter())
            dpus.copy_to_mram(0, 0, buf)
            dpus.launch()  # kernel overwrites [0, 64)
            assert cache_metric(vpim, "repro_xfer_cache_invalidations_total",
                                reason="launch_dirty") >= 1
            # The re-push must transfer again and win over the kernel's
            # marker.
            dpus.copy_to_mram(0, 0, buf)
            assert np.array_equal(dpus.copy_from_mram(0, 0, buf.size), buf)

    def test_untouched_extents_survive_a_launch(self):
        vpim, session = make_session(cache=True)
        buf = (np.arange(2 * PAGE_SIZE) % 151).astype(np.uint8)
        far = 1 << 20  # far from the kernel's [0, 64) stores
        with DpuSet(session.transport, 4) as dpus:
            dpus.load(KernelWriter())
            dpus.copy_to_mram(0, far, buf)
            dpus.launch()
            dpus.copy_to_mram(0, far, buf)
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") == 1

    def test_load_invalidates_the_index(self):
        vpim, session = make_session(cache=True)
        buf = (np.arange(2 * PAGE_SIZE) % 173).astype(np.uint8)
        with DpuSet(session.transport, 4) as dpus:
            dpus.copy_to_mram(0, 0, buf)
            dpus.load(KernelWriter())
            assert cache_metric(vpim, "repro_xfer_cache_invalidations_total",
                                reason="load") >= 1
            dpus.copy_to_mram(0, 0, buf)  # miss: index was dropped
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") == 0
            assert np.array_equal(dpus.copy_from_mram(0, 0, buf.size), buf)

    def test_retry_exhaustion_drops_the_index(self):
        vpim, session = make_session(cache=True)
        buf = (np.arange(2 * PAGE_SIZE) % 227).astype(np.uint8)
        with DpuSet(session.transport, 4) as dpus:
            frontend = session.vm.devices[0].frontend
            dpus.copy_to_mram(0, 0, buf)
            assert frontend.digests.nr_records > 0

            def always_fault(_frontend):
                raise TransientFaultError("injected", penalty_s=1e-6)

            frontend.fault_hook = always_fault
            with pytest.raises(TransientFaultError):
                dpus.copy_to_mram(0, PAGE_SIZE * 4, buf)
            frontend.fault_hook = None
            assert frontend.digests.nr_records == 0
            assert cache_metric(vpim, "repro_xfer_cache_invalidations_total",
                                reason="retry_exhausted") >= 1
            # Recovery: the repair write transfers in full and lands.
            dpus.copy_to_mram(0, 0, buf)
            assert np.array_equal(dpus.copy_from_mram(0, 0, buf.size), buf)

    def test_failover_drops_both_sides_of_the_index(self):
        vpim, session = make_session(nr_ranks=2, dpus_per_rank=4, cache=True)
        buf = (np.arange(2 * PAGE_SIZE) % 83).astype(np.uint8)
        with DpuSet(session.transport, 4) as dpus:
            device = session.vm.devices[0]
            dpus.copy_to_mram(0, 0, buf)
            dpus.copy_to_mram(0, 0, buf)
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") == 1
            failover_device(device, vpim.manager)
            assert device.frontend.digests.nr_records == 0
            assert device.backend.resident.nr_records == 0
            assert cache_metric(vpim, "repro_xfer_cache_invalidations_total",
                                reason="failover") >= 1
            # The replacement rank is blank: the same payload must be a
            # miss, transfer again, and read back intact.
            dpus.copy_to_mram(0, 0, buf)
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") == 1
            assert np.array_equal(dpus.copy_from_mram(0, 0, buf.size), buf)


# -- VM level: adaptive digest bypass ----------------------------------------

class TestAdaptiveBypass:
    def test_churn_write_stream_stops_digesting(self):
        vpim, session = make_session(cache=True, cache_bypass_min_probes=8)
        with DpuSet(session.transport, 4) as dpus:
            for i in range(10):
                buf = np.full(256, i + 1, dtype=np.uint8)
                dpus.copy_to_mram(0, 0, buf)
            # Ten rewrites of one extent, every one with fresh content:
            # nine *revisit* probes, zero hits — past the 8-probe window
            # the frontend gives up digesting this workload (the metric
            # counts the records dropped by the invalidation).
            dropped = cache_metric(vpim,
                                   "repro_xfer_cache_invalidations_total",
                                   reason="adaptive_bypass")
            assert dropped >= 1
            # From here on, a duplicate write is no longer suppressed,
            # and the bypass does not re-fire.
            buf = np.full(256, 10, dtype=np.uint8)
            dpus.copy_to_mram(0, 0, buf)
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") == 0
            assert cache_metric(vpim,
                                "repro_xfer_cache_invalidations_total",
                                reason="adaptive_bypass") == dropped
            # Correctness is untouched.
            got = dpus.copy_from_mram(0, 0, 256)
            assert np.array_equal(got, buf)

    def test_first_touch_writes_never_trip_the_bypass(self):
        # A cold sweep over many distinct extents (a big first push of
        # input data) carries no signal: those probes could never have
        # hit, so they must not count toward the bypass window.
        vpim, session = make_session(cache=True, cache_bypass_min_probes=8)
        buf = (np.arange(256) % 97).astype(np.uint8)
        with DpuSet(session.transport, 4) as dpus:
            for i in range(32):
                dpus.copy_to_mram(0, i * 256,
                                  np.full(256, (i % 250) + 1, dtype=np.uint8))
            assert cache_metric(vpim, "repro_xfer_cache_invalidations_total",
                                reason="adaptive_bypass") == 0
            # The cache is still engaged: a repeat suppresses.
            dpus.copy_to_mram(0, 32 * 256, buf)
            dpus.copy_to_mram(0, 32 * 256, buf)
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") == 1

    def test_hit_stream_keeps_the_cache_engaged(self):
        vpim, session = make_session(cache=True, cache_bypass_min_probes=8)
        buf = (np.arange(256) % 97).astype(np.uint8)
        with DpuSet(session.transport, 4) as dpus:
            for _ in range(12):
                dpus.copy_to_mram(0, 0, buf)
            assert cache_metric(vpim, "repro_xfer_cache_invalidations_total",
                                reason="adaptive_bypass") == 0
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") == 11

    def test_load_resets_the_bypass(self):
        vpim, session = make_session(cache=True, cache_bypass_min_probes=8)
        buf = (np.arange(256) % 89).astype(np.uint8)
        with DpuSet(session.transport, 4) as dpus:
            for i in range(10):
                dpus.copy_to_mram(0, 0,
                                  np.full(256, i + 1, dtype=np.uint8))
            assert cache_metric(vpim, "repro_xfer_cache_invalidations_total",
                                reason="adaptive_bypass") >= 1
            # A program load starts a new phase: digesting resumes and a
            # repeated write suppresses again.
            dpus.load(KernelWriter())
            dpus.copy_to_mram(0, 0, buf)
            dpus.copy_to_mram(0, 0, buf)
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") == 1

    def test_min_probes_zero_disables_the_bypass(self):
        vpim, session = make_session(cache=True, cache_bypass_min_probes=0)
        with DpuSet(session.transport, 4) as dpus:
            for i in range(80):
                dpus.copy_to_mram(0, (i % 20) * 256,
                                  np.full(256, (i * 7 + 1) % 251,
                                          dtype=np.uint8))
            assert cache_metric(vpim, "repro_xfer_cache_invalidations_total",
                                reason="adaptive_bypass") == 0
            buf = np.full(256, 42, dtype=np.uint8)
            dpus.copy_to_mram(0, 0, buf)
            dpus.copy_to_mram(0, 0, buf)
            assert cache_metric(vpim, "repro_xfer_cache_hits_total") >= 1


# -- property level: cache-on is byte-identical to cache-off -----------------

#: One operation: (dpu, slot, size index, payload seed, is_read).
_ops = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 5), st.integers(0, 3),
              st.integers(0, 2), st.booleans()),
    min_size=1, max_size=24)

_SIZES = (0, 37, 512, PAGE_SIZE + 101)
_SLOT = 1024  # slots overlap for the larger sizes, on purpose


def _payload(size, seed):
    return ((np.arange(size) * 31 + seed) % 256).astype(np.uint8)


def _replay(ops, cache):
    """Run one op sequence through a VM; returns every read result."""
    _, session = make_session(cache=cache)
    reads = []
    with DpuSet(session.transport, 4) as dpus:
        for dpu, slot, size_idx, seed, is_read in ops:
            size = _SIZES[size_idx]
            if is_read:
                reads.append(dpus.copy_from_mram(dpu, slot * _SLOT,
                                                 max(size, 1)))
            else:
                dpus.copy_to_mram(dpu, slot * _SLOT, _payload(size, seed))
        # Final sweep: the full written region of every DPU.
        for dpu in range(4):
            reads.append(dpus.copy_from_mram(dpu, 0, 6 * _SLOT + _SIZES[-1]))
    return reads


@given(ops=_ops)
@settings(max_examples=20, deadline=None)
def test_random_sequences_cache_on_equals_cache_off(ops):
    off = _replay(ops, cache=False)
    on = _replay(ops, cache=True)
    assert len(off) == len(on)
    for a, b in zip(off, on):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("app_name",
                         [info.short_name for info in PRIM_APPS])
def test_prim_app_outputs_identical_with_cache(app_name):
    """Every PrIM app computes bit-identical output with the cache on."""
    digests = {}
    for cache in (False, True):
        params = dict(SIZE_PROFILES["test"][app_name])
        app = app_by_short_name(app_name).cls(nr_dpus=16, **params)
        _, session = make_session(dpus_per_rank=16, cache=cache)
        output = app.run(session.transport)
        assert app.verify(output)
        digests[cache] = output_digest(output)
    assert digests[True] == digests[False]
