"""Virtualized transport: combining, contention, poll penalty, kvm stats."""

import numpy as np
import pytest

from repro.config import small_machine
from repro.core import VPim
from repro.sdk.dpu_set import DpuSet


@pytest.fixture
def session():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    return vpim.vm_session(nr_vupmem=2, mem_bytes=1 << 30)


@pytest.fixture
def seq_session():
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    return vpim.vm_session(nr_vupmem=2, mem_bytes=1 << 30,
                           preset_name="vPIM-Seq")


def test_parallel_flag_follows_opts(session, seq_session):
    assert session.transport.parallel_ranks
    assert not seq_session.transport.parallel_ranks


def test_sequential_combine_is_staircase(seq_session):
    with DpuSet(seq_session.transport, 16) as dpus:
        dpus.push_to_mram(0, [np.zeros(1 << 16, np.uint8)] * 16)
        comps = [c for _, c in dpus.last_completions]
    assert len(comps) == 2
    assert comps[1] > comps[0] * 1.9     # second waits for the first


def test_parallel_combine_is_uniform_with_contention(seq_session, session):
    data = [np.zeros(1 << 16, np.uint8)] * 16
    with DpuSet(seq_session.transport, 16) as dpus:
        t0 = seq_session.transport.clock.now
        dpus.push_to_mram(0, data)
        seq_elapsed = seq_session.transport.clock.now - t0
    with DpuSet(session.transport, 16) as dpus:
        t0 = session.transport.clock.now
        dpus.push_to_mram(0, data)
        par_elapsed = session.transport.clock.now - t0
        comps = [c for _, c in dpus.last_completions]
    # Parallel is faster than sequential, but not a full 2x: the backend
    # threads contend (Fig. 16's near-uniform completion times).
    assert par_elapsed < seq_elapsed
    assert par_elapsed > seq_elapsed / 2
    assert comps[0] == pytest.approx(comps[1])


def test_kvm_counts_requests(session):
    vm = session.vm
    before = vm.kvm.stats.vmexits
    with DpuSet(session.transport, 4) as dpus:
        dpus.push_to_mram(0, [np.zeros(64, np.uint8)] * 4)
    assert vm.kvm.stats.vmexits > before
    assert vm.kvm.stats.irq_injections == vm.kvm.stats.vmexits


def test_poll_penalty_charged_in_vm(session):
    t = session.transport
    penalty = t.launch_poll_penalty(run_duration=0.01, cadence=50e-6)
    assert penalty == pytest.approx(200 * t.cost.ci_virt_roundtrip)


def test_poll_penalty_zero_native():
    from repro.driver.native import NativeTransport
    from repro.hardware.machine import Machine
    native = NativeTransport(Machine(small_machine()))
    assert native.launch_poll_penalty(0.01, 50e-6) == 0.0


def test_poll_penalty_invalid_cadence(session):
    with pytest.raises(ValueError):
        session.transport.launch_poll_penalty(0.01, 0.0)


def test_alloc_failure_when_not_enough_devices():
    from repro.errors import AllocationError
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    session = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    with pytest.raises(AllocationError):
        DpuSet(session.transport, 16)   # needs 2 ranks, VM has 1 device


def test_dynamic_rank_relinking(session):
    """A device can be linked to different ranks over the VM's life
    (Section 3.3 dynamic rank allocation)."""
    with DpuSet(session.transport, 8) as dpus:
        first = dpus.channels[0].rank_index
    with DpuSet(session.transport, 8) as dpus:
        second = dpus.channels[0].rank_index
    # Rank 0 is NANA after release; the manager either reuses it for the
    # same device (previous user) or hands out rank 1.
    assert second in (0, 1)
