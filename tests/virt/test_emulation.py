"""Oversubscription via emulated ranks (Section 7 extension)."""

import numpy as np
import pytest

from repro.apps.prim.va import VectorAdd
from repro.config import small_machine
from repro.core import VPim
from repro.errors import HardwareError, ManagerError
from repro.hardware.machine import Machine
from repro.sdk.dpu_set import DpuSet
from repro.virt.emulation import (
    DEFAULT_SLOWDOWN,
    EMULATED_RANK_BASE,
    EmulatedRankPool,
    emulated_cost_model,
)


def make_vpim(oversub=True, nr_ranks=1):
    return VPim(small_machine(nr_ranks=nr_ranks, dpus_per_rank=8),
                oversubscription=oversub)


def test_emulated_cost_model_derates():
    from repro.hardware.timing import DEFAULT_COST_MODEL
    derated = emulated_cost_model(DEFAULT_COST_MODEL, slowdown=10)
    assert derated.dpu_frequency_hz == pytest.approx(
        DEFAULT_COST_MODEL.dpu_frequency_hz / 10)
    with pytest.raises(ValueError):
        emulated_cost_model(DEFAULT_COST_MODEL, slowdown=0.5)


def test_pool_creates_machine_shaped_ranks():
    machine = Machine(small_machine(nr_ranks=1, dpus_per_rank=8))
    pool = EmulatedRankPool(machine)
    rank = pool.create()
    assert rank.index == EMULATED_RANK_BASE
    assert rank.nr_dpus == 8
    assert pool.is_emulated(rank.index)
    assert not pool.is_emulated(0)


def test_pool_capacity():
    machine = Machine(small_machine())
    pool = EmulatedRankPool(machine, max_ranks=2)
    pool.create()
    pool.create()
    with pytest.raises(HardwareError):
        pool.create()
    pool.destroy(EMULATED_RANK_BASE)
    pool.create()  # slot freed


def test_spill_to_emulated_rank_when_exhausted():
    vpim = make_vpim()
    a = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    b = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    hold = DpuSet(a.transport, 8)          # the only physical rank
    rep = b.run(VectorAdd(nr_dpus=8, n_elements=1 << 14))
    assert rep.verified
    assert vpim.manager.stats.emulated_allocations == 1
    hold.free()


def test_emulated_rank_is_slower():
    app_args = dict(nr_dpus=8, n_elements=1 << 16)

    vpim = make_vpim()
    hold = DpuSet(vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30).transport, 8)
    spilled = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30).run(
        VectorAdd(**app_args))
    hold.free()

    vpim2 = make_vpim(oversub=False)
    physical = vpim2.vm_session(nr_vupmem=1).run(VectorAdd(**app_args))

    assert spilled.verified and physical.verified
    assert spilled.segments_total > 1.5 * physical.segments_total


def test_emulated_rank_destroyed_on_release():
    vpim = make_vpim()
    hold = DpuSet(vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30).transport, 8)
    b = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    with DpuSet(b.transport, 8) as dpus:
        emu_index = dpus.channels[0].rank_index
        assert emu_index >= EMULATED_RANK_BASE
    assert vpim.manager.emulated_pool.active == 0
    assert emu_index not in vpim.manager.rank_table
    hold.free()


def test_without_oversubscription_request_fails():
    vpim = make_vpim(oversub=False)
    hold = DpuSet(vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30).transport, 8)
    b = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
    with pytest.raises(Exception):
        DpuSet(b.transport, 8)
    hold.free()


def test_physical_preferred_over_emulated():
    vpim = make_vpim(nr_ranks=2)
    session = vpim.vm_session(nr_vupmem=2, mem_bytes=1 << 30)
    with DpuSet(session.transport, 16) as dpus:
        indices = [c.rank_index for c in dpus.channels]
        assert all(i < EMULATED_RANK_BASE for i in indices)
    assert vpim.manager.stats.emulated_allocations == 0
