"""State-machine property tests for Manager's first_fit/coldest policies.

Hypothesis drives interleaved allocate / release / clock-advance
sequences against a real :class:`~repro.virt.manager.Manager` and a
shadow model, asserting after every step:

- the NAAV/ALLO/NANA partition invariants (an ALLO rank has an owner,
  a non-ALLO rank does not, the ALLO set matches the model exactly);
- NANA ranks settle to NAAV exactly when the clock passes their
  ``reset_done_at``, recording that instant as the rank's freed time;
- the policy-specific pick order: NANA reuse by the same owner always
  wins (lowest index, no reset), otherwise ``first_fit`` takes the
  lowest NAAV index and ``coldest`` the NAAV rank reset longest ago.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import small_machine
from repro.driver.driver import UpmemDriver
from repro.hardware.machine import Machine
from repro.virt.manager import Manager, RankState

NR_RANKS = 3
DEVICES = ("dev-a", "dev-b", "dev-c", "dev-d")

#: Advances chosen to straddle the observe+reset window (~a few ms):
#: too short to settle, long enough to settle one, long enough for all.
ADVANCES = (1e-4, 5e-3, 1.0)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(0, len(DEVICES) - 1)),
        st.tuples(st.just("release"), st.integers(0, 7)),
        st.tuples(st.just("advance"), st.sampled_from(ADVANCES)),
    ),
    min_size=1, max_size=40,
)


def build(policy):
    machine = Machine(small_machine(nr_ranks=NR_RANKS, dpus_per_rank=4))
    driver = UpmemDriver(machine)
    return machine, driver, Manager(machine, driver, policy=policy)


def check_invariants(manager, allocated):
    """The cross-policy state invariants, against the shadow model."""
    states = manager.states()          # settles due NANA->NAAV edges
    for idx, record in manager.rank_table.items():
        if record.state is RankState.ALLO:
            assert record.assigned_device is not None
        else:
            assert record.assigned_device is None
        if record.state is RankState.NANA:
            # Not yet settled: the reset completion must still be ahead.
            assert record.reset_done_at > manager.clock.now
    allo = {idx for idx, state in states.items()
            if state is RankState.ALLO}
    assert allo == set(allocated)
    for idx, dev in allocated.items():
        assert manager.rank_table[idx].assigned_device == dev


def expected_pick(manager, requester):
    """Reproduce the documented pick order, or None when the manager
    would have to wait for a reset first (then we only check
    invariants, not the exact index)."""
    for idx, record in sorted(manager.rank_table.items()):
        if (record.state is RankState.NANA
                and record.last_owner == requester):
            return idx, True
    free = [idx for idx, rec in sorted(manager.rank_table.items())
            if rec.state is RankState.NAAV]
    if not free:
        return None, False
    if manager.policy == "first_fit":
        return free[0], False
    return min(free, key=lambda idx: manager._freed_at.get(idx, 0.0)), False


@pytest.mark.parametrize("policy", ["first_fit", "coldest"])
@settings(max_examples=40, deadline=None)
@given(ops=ops)
def test_policy_state_machine(policy, ops):
    machine, driver, manager = build(policy)
    allocated = {}                     # rank index -> owning device

    for op, arg in ops:
        if op == "alloc":
            if len(allocated) == NR_RANKS:
                continue               # would backoff until ManagerError
            requester = DEVICES[arg]
            manager.states()           # settle, then predict the pick
            want, is_reuse = expected_pick(manager, requester)
            reuses_before = manager.stats.nana_reuses
            resets_before = manager.stats.resets
            idx = manager.allocate(requester)
            assert idx not in allocated
            if want is not None:
                assert idx == want
            if is_reuse:
                # Same-owner NANA reuse skips the isolation reset.
                assert manager.stats.nana_reuses == reuses_before + 1
                assert manager.stats.resets == resets_before
            driver.claim_rank(idx, requester)
            allocated[idx] = requester
        elif op == "release":
            if not allocated:
                continue
            idx = sorted(allocated)[arg % len(allocated)]
            dev = allocated.pop(idx)
            driver.release_rank(idx, dev)
            record = manager.rank_table[idx]
            assert record.state is RankState.NANA
            assert record.last_owner == dev
            assert record.reset_done_at > machine.clock.now
        else:
            before = {idx: rec.reset_done_at
                      for idx, rec in manager.rank_table.items()
                      if rec.state is RankState.NANA}
            machine.clock.advance(arg)
            states = manager.states()
            for idx, done_at in before.items():
                if machine.clock.now >= done_at:
                    assert states[idx] is RankState.NAAV
                    # The freed timestamp is the reset completion, not
                    # the (later) moment the observer settled it.
                    assert manager._freed_at[idx] == done_at
                else:
                    assert states[idx] is RankState.NANA
        check_invariants(manager, allocated)


def test_coldest_prefers_longest_reset_rank():
    """Deterministic divergence: first_fit takes the lowest free index,
    coldest the rank whose reset completed earliest."""
    picks = {}
    for policy in ("first_fit", "coldest"):
        machine, driver, manager = build(policy)
        devs = ["dev-a", "dev-b", "dev-c"]
        for i, dev in enumerate(devs):
            idx = manager.allocate(dev)
            assert idx == i
            driver.claim_rank(idx, dev)
        # Release in reverse index order with time between releases:
        # freed_at[2] < freed_at[1] < freed_at[0].
        for idx in (2, 1, 0):
            driver.release_rank(idx, devs[idx])
            machine.clock.advance(1.0)
        assert manager.available_ranks() == [0, 1, 2]
        picks[policy] = manager.allocate("dev-new")
    assert picks == {"first_fit": 0, "coldest": 2}


def test_nana_reuse_beats_policy_pick():
    """A same-owner NANA rank is reused without reset even when a NAAV
    rank is available — for both policies."""
    for policy in ("first_fit", "coldest"):
        machine, driver, manager = build(policy)
        idx = manager.allocate("dev-a")
        driver.claim_rank(idx, "dev-a")
        driver.release_rank(idx, "dev-a")     # NANA, reset pending
        reuses = manager.stats.nana_reuses
        again = manager.allocate("dev-a")
        assert again == idx
        assert manager.stats.nana_reuses == reuses + 1
