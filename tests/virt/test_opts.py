"""Table 2: the optimization configuration matrix."""

import pytest

from repro.virt.opts import OptimizationConfig, PRESETS, preset


def test_all_table2_rows_exist():
    for name in ("vPIM-rust", "vPIM-C", "vPIM+P", "vPIM+B", "vPIM+PB",
                 "vPIM-Seq", "vPIM"):
        assert name in PRESETS


def test_vpim_rust_all_off():
    p = preset("vPIM-rust")
    assert not p.c_enhancement
    assert not p.prefetch_cache
    assert not p.request_batching
    assert not p.parallel_handling


def test_vpim_c_only_c():
    p = preset("vPIM-C")
    assert p.c_enhancement
    assert not (p.prefetch_cache or p.request_batching or p.parallel_handling)


def test_incremental_presets():
    assert preset("vPIM+P").prefetch_cache and not preset("vPIM+P").request_batching
    assert preset("vPIM+B").request_batching and not preset("vPIM+B").prefetch_cache
    pb = preset("vPIM+PB")
    assert pb.prefetch_cache and pb.request_batching and not pb.parallel_handling


def test_vpim_seq_differs_from_vpim_only_by_parallel():
    seq, full = preset("vPIM-Seq"), preset("vPIM")
    assert not seq.parallel_handling and full.parallel_handling
    assert (seq.c_enhancement, seq.prefetch_cache, seq.request_batching) == \
           (full.c_enhancement, full.prefetch_cache, full.request_batching)


def test_default_is_fully_optimized():
    p = OptimizationConfig()
    assert p == preset("vPIM")


def test_labels():
    assert preset("vPIM+PB").label in ("vPIM+PB", "vPIM-Seq")  # identical rows
    assert OptimizationConfig(c_enhancement=False,
                              parallel_handling=True).label == "vPIM[rPBM]"


def test_capacity_defaults_match_paper():
    p = OptimizationConfig()
    assert p.prefetch_pages_per_dpu == 16   # Section 4.1
    assert p.batch_pages_per_dpu == 64      # Section 4.1


def test_unknown_preset():
    with pytest.raises(KeyError):
        preset("vPIM-nope")
