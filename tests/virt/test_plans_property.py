"""Property-based equivalence of the shape-specialized plan cache.

The contract of ``repro.virt.plans`` (``docs/performance.md``) is that a
compiled plan is *indistinguishable on the wire* from the naive
serializer: same buffer lengths, same writable flags, same metadata and
payload bytes — only the GPAs differ (reservation arena vs the rolling
bump allocator).  These tests drive random shapes through both paths and
compare the chains buffer-for-buffer, then exercise the invalidation
rules (eviction, migration, failover) end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MRAM_HEAP_SYMBOL, PAGE_SIZE, small_machine
from repro.core import VPim
from repro.sdk.dpu_set import DpuSet
from repro.sdk.transfer import XferKind, uniform_read, uniform_write
from repro.virt.guest_memory import GuestMemory
from repro.virt.migration import migrate_device
from repro.virt.opts import OptimizationConfig
from repro.virt.plans import PlanCache, compile_plan, plan_key
from repro.virt.serialization import (
    RequestHeader,
    RequestKind,
    SkipExtent,
    serialize_matrix,
)


# -- strategies --------------------------------------------------------------

#: Entry sizes hitting the layout edges: sub-word, page-aligned tails
#: (a size that is an exact multiple of PAGE_SIZE leaves a zero-length
#: tail in its last page), one-past/one-short of a page, multi-page.
entry_sizes = st.one_of(
    st.sampled_from([1, 7, 8, PAGE_SIZE - 1, PAGE_SIZE,
                     PAGE_SIZE + 1, 2 * PAGE_SIZE, 3 * PAGE_SIZE - 9]),
    st.integers(min_value=1, max_value=2 * PAGE_SIZE),
)

shapes = st.lists(entry_sizes, min_size=1, max_size=6)
offsets = st.sampled_from([0, 8, 64, PAGE_SIZE, 3 * PAGE_SIZE + 8])
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _payloads(sizes, seed):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=n, dtype=np.uint8).astype(np.uint8)
            for n in sizes]


def _digests_for(sizes, seed, cache_format):
    if not cache_format:
        return None
    rng = np.random.default_rng(seed ^ 0xD16E57)
    return {i: int(rng.integers(1, 2**63)) for i in range(len(sizes))}


def _wire(memory, sreq, kind):
    """Everything observable about a chain except the GPA values: buffer
    (length, writable, bytes) for header/metas, (length, writable) for
    the page-GPA buffers, and the gathered payload each entry's pages
    hold (writes only — read pages are destinations)."""
    chain = sreq.chain
    metas = [(d.length, d.device_writable, memory.read(d.gpa, d.length).tobytes())
             for d in [chain[0], chain[1]] + chain[2::2]]
    page_bufs = [(d.length, d.device_writable) for d in chain[3::2]]
    payloads = [
        (dpu, size,
         memory.read(gpa, size).tobytes() if kind is XferKind.TO_DPU else b"")
        for dpu, size, gpa in sreq.data_descriptors
    ]
    return metas, page_bufs, payloads, sreq.total_pages


def _compile(memory, header, matrix, digests, skips=None):
    key = plan_key(header, matrix, digests, skips, batched=False)
    assert key is not None, "data request must be plannable"
    return compile_plan(key, header, matrix, memory, digests, skips,
                        batched=False)


# -- wire-level equivalence --------------------------------------------------

class TestWireEquivalence:
    @given(sizes=shapes, offset=offsets, seed=seeds,
           cache_format=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_planned_write_matches_naive(self, sizes, offset, seed,
                                         cache_format):
        """compile → chain equals serialize_matrix byte-for-byte."""
        memory = GuestMemory(64 << 20)
        matrix = uniform_write(MRAM_HEAP_SYMBOL, offset,
                               _payloads(sizes, seed))
        header = RequestHeader(RequestKind.WRITE_RANK, offset=offset,
                               symbol=MRAM_HEAP_SYMBOL)
        digests = _digests_for(sizes, seed, cache_format)

        naive = serialize_matrix(header, matrix, memory, digests, None)
        plan = _compile(memory, header, matrix, digests)
        assert (_wire(memory, plan.sreq, XferKind.TO_DPU)
                == _wire(memory, naive, XferKind.TO_DPU))
        plan.release(memory)

    @given(sizes=shapes, offset=offsets, seed=seeds,
           cache_format=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_replay_matches_naive_with_fresh_data(self, sizes, offset, seed,
                                                  cache_format):
        """Replays refresh payloads + digests; the wire stays identical
        to what a from-scratch serialization of the new data emits."""
        memory = GuestMemory(64 << 20)
        header = RequestHeader(RequestKind.WRITE_RANK, offset=offset,
                               symbol=MRAM_HEAP_SYMBOL)
        plan = _compile(
            memory, header,
            uniform_write(MRAM_HEAP_SYMBOL, offset, _payloads(sizes, seed)),
            _digests_for(sizes, seed, cache_format))

        for rep in (1, 2, 3):
            fresh = uniform_write(MRAM_HEAP_SYMBOL, offset,
                                  _payloads(sizes, seed + rep))
            digests = _digests_for(sizes, seed + rep, cache_format)
            naive = serialize_matrix(header, fresh, memory, digests, None)
            replayed = plan.replay(fresh, digests, None)
            assert (_wire(memory, replayed, XferKind.TO_DPU)
                    == _wire(memory, naive, XferKind.TO_DPU))
        assert plan.replays == 3
        plan.release(memory)

    @given(sizes=shapes, offset=offsets, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_planned_read_matches_naive(self, sizes, offset, seed):
        memory = GuestMemory(64 << 20)
        size = max(sizes)
        matrix = uniform_read(MRAM_HEAP_SYMBOL, offset, size,
                              nr_dpus=len(sizes))
        header = RequestHeader(RequestKind.READ_RANK, offset=offset,
                               symbol=MRAM_HEAP_SYMBOL)

        naive = serialize_matrix(header, matrix, memory, None, None)
        plan = _compile(memory, header, matrix, None)
        assert (_wire(memory, plan.sreq, XferKind.FROM_DPU)
                == _wire(memory, naive, XferKind.FROM_DPU))
        assert len(plan.read_views) == len(matrix.entries)
        assert all(v.size == size for v in plan.read_views)
        plan.release(memory)

    @given(sizes=shapes, offset=offsets, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_replay_repatches_skip_digests(self, sizes, offset, seed):
        """Cache-format replays swap in fresh SKIP extents: the replayed
        chain must equal a naive serialization carrying the same skips."""
        memory = GuestMemory(64 << 20)
        header = RequestHeader(RequestKind.WRITE_RANK, offset=offset,
                               symbol=MRAM_HEAP_SYMBOL)
        rng = np.random.default_rng(seed ^ 0x5C1B)
        # Skips share the key with the kept entries, so both arms carry
        # the same (dpu, size) skip tuple; only the digests vary per rep.
        skip_shape = [(len(sizes) + i, int(rng.integers(1, PAGE_SIZE)))
                      for i in range(2)]

        def skips_at(rep):
            return [SkipExtent(dpu, size, digest=rep * 1000 + dpu)
                    for dpu, size in skip_shape]

        plan = _compile(
            memory, header,
            uniform_write(MRAM_HEAP_SYMBOL, offset, _payloads(sizes, seed)),
            _digests_for(sizes, seed, True), skips=skips_at(0))

        for rep in (1, 2):
            fresh = uniform_write(MRAM_HEAP_SYMBOL, offset,
                                  _payloads(sizes, seed + rep))
            digests = _digests_for(sizes, seed + rep, True)
            naive = serialize_matrix(header, fresh, memory, digests,
                                     skips_at(rep))
            replayed = plan.replay(fresh, digests, skips_at(rep))
            assert (_wire(memory, replayed, XferKind.TO_DPU)
                    == _wire(memory, naive, XferKind.TO_DPU))
        plan.release(memory)


# -- cache behaviour ---------------------------------------------------------

class TestPlanCacheEviction:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_eviction_mid_sequence_stays_correct(self, seed):
        """Cycling more shapes than the LRU holds keeps evicting, and
        every replayed-or-recompiled chain still matches the naive one."""
        memory = GuestMemory(64 << 20)
        cache = PlanCache(memory, capacity=2)
        sizes_by_shape = [[64], [128, 32], [PAGE_SIZE + 1]]

        for rep in range(3):
            for shape_id, sizes in enumerate(sizes_by_shape):
                offset = shape_id * (8 << 10)
                matrix = uniform_write(
                    MRAM_HEAP_SYMBOL, offset,
                    _payloads(sizes, seed + 31 * rep + shape_id))
                header = RequestHeader(RequestKind.WRITE_RANK, offset=offset,
                                       symbol=MRAM_HEAP_SYMBOL)
                key = plan_key(header, matrix, None, None, batched=False)
                plan = cache.get(key)
                if plan is None:
                    plan = compile_plan(key, header, matrix, memory,
                                        None, None, batched=False)
                    cache.insert(key, plan)
                    sreq = plan.sreq
                else:
                    sreq = plan.replay(matrix, None, None)
                naive = serialize_matrix(header, matrix, memory, None, None)
                assert (_wire(memory, sreq, XferKind.TO_DPU)
                        == _wire(memory, naive, XferKind.TO_DPU))

        # 3 shapes through a 2-slot LRU in cyclic order: every visit
        # after the warm-up evicts, and nothing ever replays.
        assert cache.evictions > 0
        assert cache.nr_plans <= 2
        cache.invalidate_all()
        assert cache.nr_plans == 0


# -- end-to-end: planned VM == unplanned VM ----------------------------------

def _session(nr_ranks=1, **opt_kwargs):
    vpim = VPim(small_machine(nr_ranks=nr_ranks, dpus_per_rank=4))
    session = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30,
                              opts=OptimizationConfig(**opt_kwargs))
    return vpim, session


class TestEndToEndEquivalence:
    @given(sizes=st.lists(entry_sizes, min_size=4, max_size=4), seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_plans_do_not_change_data_or_modeled_time(self, sizes, seed):
        """Same workload through plans-on and plans-off VMs: identical
        read-backs and identical modeled clock advance."""
        outcomes = {}
        for plans in (True, False):
            vpim, session = _session(plans=plans)
            with DpuSet(session.transport, 4) as dpus:
                t0 = vpim.machine.clock.now
                reads = []
                for rep in range(3):
                    bufs = _payloads(sizes, seed + rep)
                    for dpu, buf in enumerate(bufs):
                        dpus.copy_to_mram(dpu, 0, buf)
                    reads.append([
                        dpus.copy_from_mram(dpu, 0, len(buf)).tobytes()
                        for dpu, buf in enumerate(bufs)])
                    for dpu, buf in enumerate(bufs):
                        assert reads[-1][dpu] == buf.tobytes()
                frontend = session.vm.devices[0].frontend
                outcomes[plans] = (reads, float(vpim.machine.clock.now - t0).hex())
            if plans:
                assert frontend.plans is not None
                assert frontend.plans.hits > 0, \
                    "repeated shapes must replay a compiled plan"
            else:
                assert frontend.plans is None
        assert outcomes[True] == outcomes[False]


# -- invalidation: migration and failover ------------------------------------

class TestPlanInvalidation:
    def _warm(self, session):
        dpus = DpuSet(session.transport, 4)
        dpus.__enter__()
        # Large writes bypass the batch buffer, so each repetition is a
        # real WRITE_RANK request (the first compiles, the second replays).
        for rep in range(2):
            dpus.push_to_mram(0, [np.full(2 * PAGE_SIZE, rep + 1,
                                          np.uint8)] * 4)
            dpus.push_from_mram(0, 2 * PAGE_SIZE)
        return dpus

    def test_migration_drops_plans_and_recompiles(self):
        vpim, session = _session(nr_ranks=2, plans=True)
        dpus = self._warm(session)
        device = session.vm.devices[0]
        plans = device.frontend.plans
        assert plans.nr_plans > 0 and plans.hits > 0

        invalidated_before = plans.invalidations
        migrate_device(device, vpim.manager)
        assert plans.nr_plans == 0, "migration must drop every plan"
        assert plans.invalidations > invalidated_before

        # The same shape recompiles against the new rank and the data
        # plane still round-trips correctly.
        misses_before = plans.misses
        dpus.push_to_mram(0, [np.full(512, 7, np.uint8)] * 4)
        got = dpus.push_from_mram(0, 512)
        assert all((buf == 7).all() for buf in got)
        assert plans.misses > misses_before
        dpus.__exit__(None, None, None)

    def test_failover_reason_drops_plans_but_release_does_not(self):
        """Digest-invalidation reasons that imply lost device state drop
        plans; ``release``/``load`` (plan-safe reasons) must not — plan
        validity is re-checked against guest generation and the XLB on
        every hit, which is what makes cross-run replay possible."""
        _, session = _session(plans=True)
        dpus = self._warm(session)
        frontend = session.vm.devices[0].frontend
        assert frontend.plans.nr_plans > 0

        kept = frontend.plans.nr_plans
        frontend._invalidate_digests("release")
        assert frontend.plans.nr_plans == kept, \
            "release must not drop compiled plans"
        frontend._invalidate_digests("load")
        assert frontend.plans.nr_plans == kept

        frontend._invalidate_digests("failover")
        assert frontend.plans.nr_plans == 0, "failover must drop plans"
        assert frontend.plans.invalidations >= kept
        dpus.__exit__(None, None, None)

    def test_failover_recovery_path_replays_correctly(self):
        """After a failover-style invalidation the next transfer
        recompiles and the data plane stays correct."""
        _, session = _session(plans=True)
        dpus = self._warm(session)
        frontend = session.vm.devices[0].frontend
        frontend._invalidate_digests("failover")

        dpus.push_to_mram(0, [np.full(512, 3, np.uint8)] * 4)
        got = dpus.push_from_mram(0, 512)
        assert all((buf == 3).all() for buf in got)
        assert frontend.plans.nr_plans > 0
        dpus.__exit__(None, None, None)


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
