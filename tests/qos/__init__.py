"""Tests for the performance-isolation subsystem (``repro.qos``)."""
