"""Token buckets: modeled waits, debt bounding, SLO rate scaling."""

import pytest

from repro.qos.tokens import TokenBucket


def test_burst_is_free():
    bucket = TokenBucket(rate=10.0, burst=5.0)
    assert bucket.consume(5.0, now=0.0) == 0.0


def test_over_rate_consume_returns_the_payback_wait():
    bucket = TokenBucket(rate=10.0, burst=5.0)
    bucket.consume(5.0, now=0.0)
    # 5 tokens in the red at 10/s: half a second to pay back.
    assert bucket.consume(5.0, now=0.0) == pytest.approx(0.5)


def test_refill_caps_at_burst():
    bucket = TokenBucket(rate=10.0, burst=5.0)
    bucket.consume(5.0, now=0.0)
    # After 10 s of idle refill the bucket holds burst, not 100 tokens.
    assert bucket.consume(5.0, now=10.0) == 0.0
    assert bucket.consume(0.5, now=10.0) > 0.0


def test_debt_is_bounded():
    bucket = TokenBucket(rate=10.0, burst=5.0, max_debt_s=0.1)
    # One huge request pays its own full wait...
    assert bucket.consume(1000.0, now=0.0) == pytest.approx(99.5)
    # ...but the *carried* debt is capped: the next small consume waits
    # at most max_debt_s plus its own share, not 99 seconds.
    assert bucket.consume(1.0, now=0.0) == pytest.approx(0.2)


def test_sustained_producer_is_paced_to_rate():
    bucket = TokenBucket(rate=100.0, burst=1.0)
    total_wait = sum(bucket.consume(1.0, now=0.0) for _ in range(10))
    # 10 tokens minus the 1-token burst at 100/s, with debt snapping
    # each consume back to at most max_debt_s in the red.
    assert total_wait > 0.0


def test_scale_rate_applies_floor():
    bucket = TokenBucket(rate=10.0, burst=5.0)
    assert bucket.scale_rate(0.5) == 5.0
    assert bucket.scale_rate(0.01, floor=2.0) == 2.0


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.0)
    bucket = TokenBucket(rate=1.0, burst=1.0)
    with pytest.raises(ValueError):
        bucket.consume(-1.0, now=0.0)
    with pytest.raises(ValueError):
        bucket.scale_rate(0.0)
