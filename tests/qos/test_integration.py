"""QoS through the data plane: flows, telemetry, default-path identity."""

import pytest

from repro.apps.prim.va import VectorAdd
from repro.config import small_machine
from repro.core import VPim
from repro.qos.config import QosConfig
from repro.virt.opts import Optimization

APP = dict(nr_dpus=8, n_elements=1 << 10, seed=0)


def make_vpim():
    return VPim(small_machine(nr_ranks=2, dpus_per_rank=8))


def counter_total(registry, name):
    return sum(child.value for child in registry.get(name).children)


def qos_session(vpim, **kwargs):
    kwargs.setdefault("demand", 1.0)
    kwargs.setdefault("mean_op_s", 1e-3)
    config = QosConfig(**kwargs)
    return vpim.vm_session(nr_vupmem=1, opts=Optimization(qos=config))


def test_enforced_flows_record_qos_telemetry():
    vpim = make_vpim()
    a = qos_session(vpim, enforce=True, tenant="a", weight=2.0)
    b = qos_session(vpim, enforce=True, tenant="b")
    for session in (a, b):
        report = session.run(VectorAdd(**APP))
        assert report.verified
    metrics = vpim.machine.metrics
    assert counter_total(metrics, "repro_qos_arbitrations_total") > 0
    assert vpim.firecracker.event_loop.dispatches["wfq"] > 0
    assert vpim.firecracker.event_loop.dispatches["fifo"] == 0
    assert metrics.value("repro_qos_flow_weight",
                         vm=a.vm.qos_flow.flow_id) == 2.0


def test_unenforced_flows_dispatch_fifo_and_never_throttle():
    vpim = make_vpim()
    # Absurdly tight buckets that would always wait — but enforce=False
    # means contention is modeled while throttles stay dormant.
    session = qos_session(vpim, enforce=False, tenant="a",
                          kick_rate_per_s=1e-3, kick_burst=1.0)
    assert session.run(VectorAdd(**APP)).verified
    assert vpim.firecracker.event_loop.dispatches["fifo"] > 0
    assert vpim.firecracker.event_loop.dispatches["wfq"] == 0
    assert counter_total(vpim.machine.metrics,
                         "repro_qos_throttled_total") == 0


def test_throttles_fire_when_enforced():
    vpim = make_vpim()
    session = qos_session(vpim, enforce=True, tenant="a",
                          kick_rate_per_s=1e-3, kick_burst=1.0)
    assert session.run(VectorAdd(**APP)).verified
    metrics = vpim.machine.metrics
    assert counter_total(metrics, "repro_qos_throttled_total") > 0
    assert metrics.value("repro_qos_throttled_total",
                         vm=session.vm.qos_flow.flow_id,
                         resource="kicks") > 0


def test_vm_without_qos_touches_nothing():
    vpim = make_vpim()
    session = vpim.vm_session(nr_vupmem=1)
    assert session.run(VectorAdd(**APP)).verified
    assert session.vm.qos_flow is None
    assert vpim.machine.bus_arbiter.flows == []
    assert vpim.firecracker.event_loop.dispatches == {"fifo": 0, "wfq": 0}
    # The qos families are registered lazily, on the first flow.
    assert "repro_qos_arbitrations_total" not in vpim.machine.metrics


def test_qos_none_is_the_exact_default_path():
    plain = VPim(small_machine(nr_ranks=2, dpus_per_rank=8)) \
        .vm_session(nr_vupmem=1).run(VectorAdd(**APP))
    explicit = VPim(small_machine(nr_ranks=2, dpus_per_rank=8)) \
        .vm_session(nr_vupmem=1, opts=Optimization()).run(VectorAdd(**APP))
    assert plain.verified and explicit.verified
    assert plain.segments == explicit.segments
    assert plain.total_time == explicit.total_time


def test_flow_close_unregisters_from_the_arbiter():
    vpim = make_vpim()
    session = qos_session(vpim, enforce=True, tenant="a")
    flow = session.vm.qos_flow
    assert [f.flow_id for f in vpim.machine.bus_arbiter.flows] == \
        [flow.flow_id]
    flow.close()
    flow.close()                                 # idempotent
    assert vpim.machine.bus_arbiter.flows == []


def test_enforcement_shrinks_the_queue_wait():
    """The headline property at the unit scale: with a noisy declared
    neighbor, the enforced arm's modeled kick wait is no larger."""
    results = {}
    for enforce in (False, True):
        vpim = make_vpim()
        victim = qos_session(vpim, enforce=enforce, tenant="victim")
        noisy = qos_session(vpim, enforce=enforce, tenant="noisy",
                            mean_op_s=5e-3)
        assert noisy.run(VectorAdd(**APP)).verified
        report = victim.run(VectorAdd(**APP))
        assert report.verified
        results[enforce] = report.segments_total
    assert results[True] <= results[False]
