"""BandwidthArbiter: demand accounting, FIFO vs WFQ costs, makespan."""

import math

import pytest

from repro.hardware.timing import BandwidthArbiter, DEFAULT_COST_MODEL
from repro.virt.firecracker import VirtioEventLoop

COST = DEFAULT_COST_MODEL


def make():
    return BandwidthArbiter(COST)


class TestRegistration:
    def test_duplicate_flow_rejected(self):
        arbiter = make()
        arbiter.register("a")
        with pytest.raises(ValueError):
            arbiter.register("a")

    def test_nonpositive_weight_rejected(self):
        arbiter = make()
        with pytest.raises(ValueError):
            arbiter.register("a", weight=0.0)
        arbiter.register("b", weight=2.0)
        with pytest.raises(ValueError):
            arbiter.set_weight("b", -1.0)

    def test_unregister_is_idempotent(self):
        arbiter = make()
        arbiter.register("a")
        arbiter.unregister("a")
        arbiter.unregister("a")
        assert arbiter.flows == []


class TestDemand:
    def test_declared_demand_wins_and_clamps(self):
        arbiter = make()
        hot = arbiter.register("hot", demand=3.0)
        cold = arbiter.register("cold", demand=-1.0)
        assert arbiter.demand(hot, now=0.0) == 1.0
        assert arbiter.demand(cold, now=0.0) == 0.0

    def test_measured_demand_decays(self):
        arbiter = make()
        flow = arbiter.register("a")
        window = COST.qos_activity_window
        arbiter.record("a", 0.5 * window, now=0.0)
        assert arbiter.demand(flow, now=0.0) == pytest.approx(0.5)
        # Five windows later the load has decayed by e^-5.
        assert arbiter.demand(flow, now=5 * window) == pytest.approx(
            0.5 * math.exp(-5), rel=1e-9)

    def test_measured_mean_op_is_an_ema(self):
        arbiter = make()
        flow = arbiter.register("a")
        arbiter.record("a", 1e-3, now=0.0)
        assert arbiter.mean_op_s(flow) == pytest.approx(1e-3)
        arbiter.record("a", 2e-3, now=0.0)
        expected = 1e-3 + BandwidthArbiter.MEAN_ALPHA * (2e-3 - 1e-3)
        assert arbiter.mean_op_s(flow) == pytest.approx(expected)

    def test_declared_mean_op_wins(self):
        arbiter = make()
        flow = arbiter.register("a", mean_op_s=5e-3)
        arbiter.record("a", 1e-6, now=0.0)
        assert arbiter.mean_op_s(flow) == 5e-3


class TestQueueDelay:
    def test_fifo_pays_the_full_residual(self):
        arbiter = make()
        arbiter.register("me")
        arbiter.register("noisy", demand=1.0, mean_op_s=4e-3)
        # At now=0 the neighbor's op is at phase 0: full residual.
        assert arbiter.queue_delay("me", now=0.0, fair=False) == \
            pytest.approx(4e-3)
        # At 3/4 through the period only a quarter remains.
        assert arbiter.queue_delay("me", now=3e-3, fair=False) == \
            pytest.approx(1e-3)

    def test_wfq_caps_the_residual_at_one_quantum(self):
        arbiter = make()
        arbiter.register("me")
        arbiter.register("noisy", demand=1.0, mean_op_s=4e-3)
        assert arbiter.queue_delay("me", now=0.0, fair=True) == \
            pytest.approx(COST.qos_wfq_quantum)
        assert COST.qos_wfq_quantum < 4e-3

    def test_idle_neighbor_is_ignored(self):
        arbiter = make()
        arbiter.register("me")
        arbiter.register("idle",
                         demand=COST.qos_min_active_demand / 2,
                         mean_op_s=4e-3)
        assert arbiter.queue_delay("me", now=0.0, fair=False) == 0.0
        assert arbiter.bus_share("me", 1e-3, now=0.0, fair=False) == 0.0


class TestBusShare:
    def test_solo_flow_pays_nothing(self):
        arbiter = make()
        arbiter.register("me")
        assert arbiter.bus_share("me", 1e-3, now=0.0, fair=True) == 0.0
        assert arbiter.bus_share("me", 0.0, now=0.0, fair=False) == 0.0

    def test_fifo_steal_is_unweighted(self):
        arbiter = make()
        arbiter.register("me", weight=8.0)
        arbiter.register("noisy", demand=1.0, mean_op_s=1e-3)
        # Weight does not matter without enforcement: steal saturates.
        assert arbiter.bus_share("me", 1e-3, now=0.0, fair=False) == \
            pytest.approx(1e-3 * COST.parallel_contention)

    def test_wfq_steal_is_weight_proportional(self):
        arbiter = make()
        arbiter.register("me", weight=1.0)
        arbiter.register("noisy", weight=1.0, demand=1.0, mean_op_s=1e-3)
        equal = arbiter.bus_share("me", 1e-3, now=0.0, fair=True)
        assert equal == pytest.approx(1e-3 * COST.parallel_contention * 0.5)
        arbiter.set_weight("me", 3.0)
        boosted = arbiter.bus_share("me", 1e-3, now=0.0, fair=True)
        assert boosted == pytest.approx(
            1e-3 * COST.parallel_contention * 0.25)
        assert boosted < equal

    def test_contention_factor_rises_with_neighbor_load(self):
        arbiter = make()
        arbiter.register("me")
        base = 0.6
        assert arbiter.contention_factor("me", base, now=0.0,
                                         fair=True) == base
        arbiter.register("noisy", demand=1.0, mean_op_s=1e-3)
        # Unweighted full steal saturates the factor at 1.
        assert arbiter.contention_factor("me", base, now=0.0,
                                         fair=False) == 1.0
        fair = arbiter.contention_factor("me", base, now=0.0, fair=True)
        assert base < fair < 1.0

    def test_arbitrate_bundles_both_components(self):
        arbiter = make()
        arbiter.register("me")
        arbiter.register("noisy", demand=1.0, mean_op_s=1e-3)
        fifo = arbiter.arbitrate("me", 1e-3, now=0.0, fair=False)
        wfq = arbiter.arbitrate("me", 1e-3, now=0.0, fair=True)
        assert (fifo.mode, wfq.mode) == ("fifo", "wfq")
        assert fifo.contenders == wfq.contenders == 1
        assert fifo.queue_s > wfq.queue_s
        assert fifo.share_s > wfq.share_s > 0


class TestContendedMakespan:
    def test_empty_and_single_job(self):
        arbiter = make()
        assert arbiter.contended_makespan([]) == 0.0
        # A single job never contends: makespan is its own total.
        assert arbiter.contended_makespan([(1e-3, 5e-3)]) == 5e-3

    def test_invalid_jobs_rejected(self):
        arbiter = make()
        with pytest.raises(ValueError):
            arbiter.contended_makespan([(2e-3, 1e-3)])   # bus > total
        with pytest.raises(ValueError):
            arbiter.contended_makespan([(-1e-3, 1e-3)])

    def test_two_job_formula_and_bounds(self):
        arbiter = make()
        jobs = [(2e-3, 10e-3), (3e-3, 8e-3)]
        contended = arbiter.contended_makespan(jobs)
        # Longest job runs in full; the other job's bus seconds add at
        # the native contention factor.
        expected = 10e-3 + COST.native_parallel_contention * 3e-3
        assert contended == pytest.approx(expected)
        assert max(t for _, t in jobs) <= contended < sum(
            t for _, t in jobs)

    def test_explicit_contention_override(self):
        arbiter = make()
        jobs = [(2e-3, 4e-3), (2e-3, 4e-3)]
        assert arbiter.contended_makespan(jobs, contention=0.0) == 4e-3
        assert arbiter.contended_makespan(jobs, contention=1.0) == 6e-3


class TestVirtioEventLoop:
    def test_dispatch_counts_modes_and_advances_virtual_time(self):
        arbiter = make()
        flow = arbiter.register("a", weight=2.0, mean_op_s=1e-3)
        loop = VirtioEventLoop(arbiter)
        delay, mode = loop.dispatch("a", now=0.0, fair=True)
        assert (delay, mode) == (0.0, "wfq")        # no neighbors
        assert flow.virtual_finish == pytest.approx(1e-3 / 2.0)
        loop.dispatch("a", now=0.0, fair=False)
        assert flow.virtual_finish == pytest.approx(2 * 1e-3 / 2.0)
        assert loop.dispatches == {"fifo": 1, "wfq": 1}
