"""SLO layer: objectives, burn rates, the enforcer's escalation ladder."""

import pytest

from repro.qos.slo import (SloEnforcer, SloObjective, SloTracker,
                           _percentile)


class StubFlow:
    """Just enough of :class:`~repro.qos.flow.QosFlow` for the enforcer."""

    def __init__(self, weight=1.0, byte_rate=100.0):
        self.weight = weight
        self.byte_rate = byte_rate

    def set_weight(self, weight):
        self.weight = weight

    def scale_byte_rate(self, factor, min_scale=0.25):
        self.byte_rate = max(self.byte_rate * factor, 100.0 * min_scale)
        return self.byte_rate


def hot_tracker(tenant="victim", latency=2e-3, sessions=8):
    tracker = SloTracker()
    for i in range(sessions):
        tracker.observe_session(tenant, latency, now=float(i))
    return tracker


def test_objective_requires_a_target():
    with pytest.raises(ValueError):
        SloObjective(tenant="t")
    SloObjective(tenant="t", latency_p99_s=1e-3)
    SloObjective(tenant="t", min_sessions_per_s=1.0)


def test_percentile_interpolates():
    assert _percentile([], 0.5) == 0.0
    assert _percentile([7.0], 0.99) == 7.0
    assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
    assert _percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0


class TestBurnRate:
    def test_absent_tenant_does_not_burn(self):
        tracker = SloTracker()
        objective = SloObjective(tenant="ghost", latency_p99_s=1e-3)
        assert tracker.burn_rate(objective, now=0.0) == 0.0

    def test_latency_burn_is_observed_over_target(self):
        tracker = hot_tracker(latency=2e-3)
        objective = SloObjective(tenant="victim", latency_p99_s=1e-3,
                                 window=8)
        assert tracker.burn_rate(objective, now=8.0) == pytest.approx(2.0)

    def test_throughput_burn_is_target_over_observed(self):
        tracker = SloTracker()
        for i in range(8):
            tracker.observe_session("t", 1e-3, now=float(i))
        objective = SloObjective(tenant="t", min_sessions_per_s=2.0,
                                 window=8)
        # 8 sessions over 8 seconds = 1/s against a 2/s floor.
        assert tracker.burn_rate(objective, now=8.0) == pytest.approx(2.0)

    def test_burn_takes_the_hotter_target(self):
        tracker = hot_tracker(latency=0.5e-3)   # latency fine
        objective = SloObjective(tenant="victim", latency_p99_s=1e-3,
                                 min_sessions_per_s=10.0, window=8)
        burn = tracker.burn_rate(objective, now=8.0)
        assert burn > 1.0                        # throughput is burning


class TestEnforcerLadder:
    def setup_method(self):
        self.tracker = hot_tracker()
        self.objective = SloObjective(tenant="victim", latency_p99_s=1e-3,
                                      window=8)
        self.enforcer = SloEnforcer(self.tracker, (self.objective,))
        self.victim = StubFlow()
        self.noisy = StubFlow()
        self.enforcer.bind("victim", self.victim, host_id="h0")
        self.enforcer.bind("noisy", self.noisy, host_id="h0")

    def test_escalation_boost_throttle_migrate(self):
        first = self.enforcer.evaluate(now=8.0)
        assert [a.action for a in first] == ["boost_weight"]
        assert self.victim.weight == 2.0

        second = self.enforcer.evaluate(now=9.0)
        assert [a.action for a in second] == ["throttle"]
        assert second[0].tenant == "noisy"
        assert self.noisy.byte_rate == pytest.approx(75.0)
        assert self.victim.weight == 2.0         # not boosted again

        third = self.enforcer.evaluate(now=10.0)
        assert [a.action for a in third] == ["migrate_hint"]
        assert self.enforcer.take_migration_hints() == ["victim"]
        assert self.enforcer.take_migration_hints() == []
        # Still hot next pass: the hint is re-issued after the drain.
        fourth = self.enforcer.evaluate(now=11.0)
        assert [a.action for a in fourth] == ["migrate_hint"]

    def test_cool_burn_resets_the_streak(self):
        self.enforcer.evaluate(now=8.0)          # streak 1: boost
        for i in range(8):                       # objective now met
            self.tracker.observe_session("victim", 1e-5, now=9.0 + i)
        assert self.enforcer.evaluate(now=17.0) == []
        for i in range(8):                       # hot again
            self.tracker.observe_session("victim", 2e-3, now=18.0 + i)
        again = self.enforcer.evaluate(now=26.0)
        # The ladder restarted: boost (2 -> 4), not throttle.
        assert [a.action for a in again] == ["boost_weight"]
        assert self.victim.weight == 4.0

    def test_weight_cap_stops_boosting(self):
        self.victim.weight = 16.0
        assert self.enforcer.evaluate(now=8.0) == []

    def test_offender_on_another_host_is_spared(self):
        enforcer = SloEnforcer(self.tracker, (self.objective,))
        victim, remote = StubFlow(), StubFlow()
        enforcer.bind("victim", victim, host_id="h0")
        enforcer.bind("noisy", remote, host_id="h1")
        enforcer.evaluate(now=8.0)               # boost
        assert enforcer.evaluate(now=9.0) == []  # nobody to throttle
        assert remote.byte_rate == 100.0

    def test_unbind_removes_the_flow(self):
        self.enforcer.unbind("victim", self.victim)
        assert self.enforcer.evaluate(now=8.0) == []
        assert self.victim.weight == 1.0
