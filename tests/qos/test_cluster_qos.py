"""Fleet-level QoS: scheduler stamping, SLO loop, migration relief."""

from repro.cluster import (Cluster, ClusterConfig, Consolidator, Scheduler,
                           ScenarioConfig, TenantRequest)
from repro.cluster.loadgen import run_scenario
from repro.qos.config import FleetQosPolicy, QosConfig
from repro.qos.slo import SloObjective

SMALL_FLEET = ClusterConfig(nr_hosts=3, ranks_per_host=2, dpus_per_rank=4)


def test_scheduler_stamps_the_class_config():
    cluster = Cluster(SMALL_FLEET)
    policy = FleetQosPolicy(interactive=QosConfig(weight=8.0),
                            batch=QosConfig(weight=1.0))
    scheduler = Scheduler(cluster, policy="best_fit", qos=policy)
    scheduler.submit(TenantRequest(tenant="t-hot",
                                   deadline_class="interactive"))
    hot = scheduler.try_place_next()
    hot.acquire()
    assert hot.vm.qos_flow is not None
    assert hot.vm.qos_flow.weight == 8.0
    assert hot.vm.qos_flow.tenant == "t-hot"

    scheduler.submit(TenantRequest(tenant="t-bulk",
                                   deadline_class="batch"))
    bulk = scheduler.try_place_next()
    bulk.acquire()
    assert bulk.vm.qos_flow.weight == 1.0
    assert bulk.vm.qos_flow.tenant == "t-bulk"


def test_scheduler_without_policy_leaves_vms_unflowed():
    cluster = Cluster(SMALL_FLEET)
    scheduler = Scheduler(cluster, policy="best_fit")
    scheduler.submit(TenantRequest(tenant="t"))
    placement = scheduler.try_place_next()
    placement.acquire()
    assert placement.vm.qos_flow is None


def test_scenario_with_slo_objectives_actuates():
    objective = SloObjective(tenant="t0", latency_p99_s=1e-6, window=2)
    config = ScenarioConfig(cluster=SMALL_FLEET, nr_requests=8,
                            arrival_rate=2.0, mean_hold_s=1.0, seed=3,
                            qos=FleetQosPolicy(objectives=(objective,)))
    result, cluster = run_scenario(config)
    # The impossible objective burns hot on every evaluation: the
    # enforcer escalates and its actions are visible in the result and
    # the cluster-level metric families.
    assert any(tenant == "t0" for tenant, _ in result.slo_actions)
    actions = {action for _, action in result.slo_actions}
    assert "boost_weight" in actions
    assert cluster.metrics.value("repro_qos_slo_burn_rate",
                                 tenant="t0", objective="latency") > 1.0
    assert cluster.metrics.value("repro_qos_slo_violations_total",
                                 tenant="t0", objective="latency") > 0


def test_scenario_without_qos_takes_no_actions():
    config = ScenarioConfig(cluster=SMALL_FLEET, nr_requests=8,
                            arrival_rate=2.0, mean_hold_s=1.0, seed=3)
    result, cluster = run_scenario(config)
    assert result.slo_actions == []
    assert "repro_qos_slo_burn_rate" not in cluster.metrics


def test_relieve_rehomes_the_hinted_tenant():
    cluster = Cluster(SMALL_FLEET)
    # best_fit packs both tenants onto the same (fullest) host.
    scheduler = Scheduler(cluster, policy="best_fit")
    placements = {}
    for tenant in ("victim", "noisy"):
        scheduler.submit(TenantRequest(tenant=tenant))
        placement = scheduler.try_place_next()
        placement.acquire()
        placements[tenant] = placement
    assert placements["victim"].host is placements["noisy"].host

    consolidator = Consolidator(cluster, scheduler)
    assert consolidator.relieve(["victim"]) == 1
    assert placements["victim"].host is not placements["noisy"].host


def test_relieve_drops_hints_with_no_quieter_home():
    # One host only: there is nowhere quieter to go.
    cluster = Cluster(ClusterConfig(nr_hosts=1, ranks_per_host=2,
                                    dpus_per_rank=4))
    scheduler = Scheduler(cluster, policy="best_fit")
    for tenant in ("victim", "noisy"):
        scheduler.submit(TenantRequest(tenant=tenant))
        scheduler.try_place_next().acquire()
    consolidator = Consolidator(cluster, scheduler)
    assert consolidator.relieve(["victim"]) == 0
