"""Per-app edge cases: Checksum and Index Search microbenchmarks."""

import numpy as np
import pytest

from repro.apps.micro.checksum import Checksum, ChecksumProgram, ci_ops_for_size
from repro.apps.micro.index_search import IndexSearch
from repro.config import small_machine
from repro.core import VPim
from repro.workloads.wikipedia import SyntheticCorpus


def native(app, dpus_per_rank=8):
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=dpus_per_rank))
    return vpim.native_session().run(app)


# -- Checksum -------------------------------------------------------------------

def test_checksum_all_dpus_agree():
    rep = native(Checksum(nr_dpus=8, file_mb=0.25))
    assert rep.verified


def test_checksum_scale_shrinks_data_and_ci():
    full = Checksum(nr_dpus=2, file_mb=8, scale=1)
    scaled = Checksum(nr_dpus=2, file_mb=8, scale=8)
    assert scaled.file.size == pytest.approx(full.file.size / 8, rel=0.01)


def test_checksum_scale_validation():
    with pytest.raises(ValueError):
        Checksum(nr_dpus=2, file_mb=8, scale=0)


def test_checksum_wraps_32_bits():
    app = Checksum(nr_dpus=2, file_mb=0.25)
    app.file = np.full(app.file.size, 255, dtype=np.uint8)
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=2))
    rep = vpim.native_session().run(app)
    assert rep.verified
    assert app.expected() == (app.file.size * 255) & 0xFFFFFFFF


def test_checksum_ci_formula_monotone():
    values = [ci_ops_for_size(mb) for mb in (8, 20, 40, 60)]
    assert values == sorted(values)


def test_checksum_disagreement_detected():
    """A corrupted DPU result must raise, not silently pass."""
    app = Checksum(nr_dpus=4, file_mb=0.25)
    original_kernel = ChecksumProgram.kernel

    def corrupted(self, ctx):
        yield from original_kernel(self, ctx)
        if ctx.me() == 0 and ctx.dpu_index == 2:
            ctx.set_host_u32("checksum", 12345)

    ChecksumProgram.kernel = corrupted
    try:
        vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=4))
        with pytest.raises(AssertionError):
            vpim.native_session().run(app)
    finally:
        ChecksumProgram.kernel = original_kernel


# -- Index Search ----------------------------------------------------------------

@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(nr_documents=200, vocabulary_size=500, seed=3)


def test_upis_445_queries_4_batches(corpus):
    app = IndexSearch(nr_dpus=8, corpus=corpus)
    assert app.query_words.size == 445
    rep = native(app)
    assert rep.verified


def test_upis_single_dpu(corpus):
    rep = native(IndexSearch(nr_dpus=1, corpus=corpus), dpus_per_rank=1)
    assert rep.verified


def test_upis_more_dpus_than_batch(corpus):
    # 8 queries over 8 DPUs: one query each; padding must not corrupt.
    rep = native(IndexSearch(nr_dpus=8, corpus=corpus, nr_queries=8))
    assert rep.verified


def test_upis_rare_word_zero_hits(corpus):
    app = IndexSearch(nr_dpus=4, corpus=corpus, nr_queries=4)
    missing = corpus.vocabulary_size - 1
    while corpus.search(missing):
        missing -= 1
    app.query_words = np.full(4, missing, dtype=np.int32)
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert (app.expected() == 0).all()


def test_corpus_index_consistency(corpus):
    offsets, postings = corpus.postings_array()
    total_pairs = int(offsets[-1])
    assert postings.size == total_pairs * 2
    # Every document's words appear in the index.
    total_words = sum(doc.size for doc in corpus.documents)
    assert total_pairs == total_words


def test_corpus_zipf_shape(corpus):
    """Common words must have far longer posting lists than rare ones."""
    offsets, _ = corpus.postings_array()
    lengths = np.diff(offsets)
    head = lengths[:10].mean()
    tail = lengths[-100:].mean() if lengths[-100:].size else 0
    assert head > 10 * max(tail, 0.1)
