"""Transfer-pattern fidelity: the op-count behaviours Section 5 hinges on."""

import numpy as np

from repro.apps.micro.checksum import Checksum, ci_ops_for_size
from repro.apps.prim.nw import NeedlemanWunsch
from repro.apps.prim.sel import Select
from repro.apps.prim.spmv import SpMV
from repro.apps.prim.trns import Transpose
from repro.apps.prim.va import VectorAdd
from repro.config import small_machine
from repro.core import VPim
from repro.sdk.profile import OP_CI, OP_READ, OP_WRITE


def native_run(app, nr_ranks=1, dpus_per_rank=8):
    vpim = VPim(small_machine(nr_ranks=nr_ranks, dpus_per_rank=dpus_per_rank))
    session = vpim.native_session()
    report = session.run(app)
    return report


def test_checksum_op_mix():
    """§5.3.1: one write-to-rank, one read per DPU, thousands of CI ops."""
    report = native_run(Checksum(nr_dpus=8, file_mb=8, scale=64))
    # Two writes: the n_bytes argument push and the file push itself.
    assert report.profile.driver[OP_WRITE].count == 2
    assert report.profile.driver[OP_READ].count == 8
    ci = report.profile.driver[OP_CI].count
    assert ci >= ci_ops_for_size(8) // 64


def test_checksum_ci_count_band():
    """The paper reports 8,000-28,000 CI ops between 8 and 60 MB."""
    assert 8000 <= ci_ops_for_size(8) <= 28000
    assert 8000 <= ci_ops_for_size(60) <= 28000
    assert ci_ops_for_size(60) > ci_ops_for_size(8)


def test_nw_small_transfer_storm():
    """NW must produce many small operations (the paper's >15000 at full
    scale; proportionally fewer at our scale) with small average size."""
    app = NeedlemanWunsch(nr_dpus=8, seq_len=256, block_size=32)
    report = native_run(app)
    writes = report.profile.driver[OP_WRITE]
    reads = report.profile.driver[OP_READ]
    total_ops = writes.count + reads.count
    assert total_ops > 500, "NW lost its small-transfer storm"


def test_trns_tile_op_count():
    """TRNS performs one write and one read per tile (§5.2)."""
    app = Transpose(nr_dpus=8, n_rows=128, n_cols=128, tile_dim=16)
    n_tiles = (128 // 16) ** 2
    report = native_run(app)
    writes = report.profile.driver[OP_WRITE].count
    reads = report.profile.driver[OP_READ].count
    assert writes >= n_tiles
    assert reads >= n_tiles


def test_sel_serial_retrieval_scales_with_dpus():
    """SEL's DPU-CPU step is serial per DPU: op count tracks nr_dpus."""
    a = native_run(Select(nr_dpus=4, n_elements=1 << 14))
    b = native_run(Select(nr_dpus=8, n_elements=1 << 14))
    # Two read ops per DPU (count + data).
    assert b.profile.driver[OP_READ].count > a.profile.driver[OP_READ].count


def test_spmv_serial_distribution_scales_with_dpus():
    a = native_run(SpMV(nr_dpus=4, n_rows=256, n_cols=128))
    b = native_run(SpMV(nr_dpus=8, n_rows=256, n_cols=128))
    assert b.profile.driver[OP_WRITE].count > a.profile.driver[OP_WRITE].count


def test_va_uses_parallel_transfers_only():
    """VA is the clean case: a handful of rank-level operations."""
    report = native_run(VectorAdd(nr_dpus=8, n_elements=1 << 14))
    assert report.profile.driver[OP_WRITE].count <= 8
    assert report.profile.driver[OP_READ].count <= 4


def test_nw_vs_va_op_size():
    """NW ops are tiny, VA ops are bulky: the contrast behind Takeaway 2."""
    nw = native_run(NeedlemanWunsch(nr_dpus=8, seq_len=256, block_size=32))
    va = native_run(VectorAdd(nr_dpus=8, n_elements=1 << 18))
    nw_writes = nw.profile.driver[OP_WRITE]
    va_writes = va.profile.driver[OP_WRITE]
    nw_avg = nw_writes.time / nw_writes.count
    va_avg = va_writes.time / va_writes.count
    assert nw_avg < va_avg / 10
