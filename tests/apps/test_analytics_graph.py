"""Per-app edge cases: TS, BFS, NW (analytics / graph / bioinformatics)."""

import numpy as np
import pytest

from repro.apps.prim.bfs import BreadthFirstSearch, cpu_bfs
from repro.apps.prim.nw import GAP, MATCH, NeedlemanWunsch, nw_score
from repro.apps.prim.ts import TimeSeries, _ssd_profile
from repro.config import small_machine
from repro.core import VPim


def native(app, dpus_per_rank=8):
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=dpus_per_rank))
    return vpim.native_session().run(app)


# -- TS -----------------------------------------------------------------------

def test_ts_exact_match_found():
    app = TimeSeries(nr_dpus=4, n_points=2048, query_len=32)
    # Plant the query inside the series: distance 0 at that index.
    app.series[500:532] = app.query
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    dists = _ssd_profile(app.series, app.query)
    assert int(dists.min()) == 0


def test_ts_window_at_boundary():
    app = TimeSeries(nr_dpus=4, n_points=512, query_len=64)
    app.series[-64:] = app.query          # best window is the last one
    rep = native(app, dpus_per_rank=4)
    assert rep.verified


def test_ts_query_as_long_as_chunk():
    rep = native(TimeSeries(nr_dpus=4, n_points=256, query_len=64),
                 dpus_per_rank=4)
    assert rep.verified


def test_ts_ssd_profile_reference():
    series = np.array([1, 2, 3, 4], dtype=np.int32)
    query = np.array([2, 3], dtype=np.int32)
    dists = _ssd_profile(series, query)
    assert dists.tolist() == [2, 0, 2]


# -- BFS -----------------------------------------------------------------------

def test_bfs_line_graph_levels():
    app = BreadthFirstSearch(nr_dpus=4, n_vertices=64, avg_degree=1)
    # avg_degree=1 keeps only the spine: level == vertex id.
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert app.expected().tolist() == list(range(64))


def test_bfs_unreachable_vertices():
    app = BreadthFirstSearch(nr_dpus=4, n_vertices=64, avg_degree=1,
                             source=32)
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    levels = app.expected()
    assert (levels[:32] == -1).all()       # the spine only goes forward


def test_bfs_source_level_zero():
    app = BreadthFirstSearch(nr_dpus=8, n_vertices=512)
    assert app.expected()[0] == 0
    rep = native(app)
    assert rep.verified


def test_bfs_cpu_reference_small():
    row_ptr = np.array([0, 2, 3, 3], dtype=np.int32)   # 0->1, 0->2, 1->2
    col_idx = np.array([1, 2, 2], dtype=np.int32)
    assert cpu_bfs(row_ptr, col_idx, 0).tolist() == [0, 1, 1]


# -- NW ------------------------------------------------------------------------

def test_nw_identical_sequences():
    app = NeedlemanWunsch(nr_dpus=4, seq_len=64, block_size=32)
    app.b = app.a.copy()
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert app.expected() == MATCH * 64    # all matches


def test_nw_completely_different():
    app = NeedlemanWunsch(nr_dpus=4, seq_len=64, block_size=32)
    app.a = np.zeros(64, dtype=np.int8)
    app.b = np.ones(64, dtype=np.int8)
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    # Mismatching everything (-1 each) beats gapping everything (-2 each).
    assert app.expected() == -64


def test_nw_score_matches_classic_dp():
    a = np.array([0, 1, 2, 3], dtype=np.int8)
    b = np.array([0, 9, 2, 3], dtype=np.int8)
    # 3 matches + 1 mismatch = 3*1 - 1 = 2.
    assert nw_score(a, b) == 2


def test_nw_single_block():
    rep = native(NeedlemanWunsch(nr_dpus=4, seq_len=32, block_size=32),
                 dpus_per_rank=4)
    assert rep.verified


def test_nw_more_blocks_than_dpus():
    rep = native(NeedlemanWunsch(nr_dpus=2, seq_len=256, block_size=32),
                 dpus_per_rank=2)
    assert rep.verified


def test_nw_rejects_bad_geometry():
    with pytest.raises(ValueError):
        NeedlemanWunsch(nr_dpus=4, seq_len=100, block_size=32)
    with pytest.raises(ValueError):
        NeedlemanWunsch(nr_dpus=4, seq_len=128, block_size=32, chunk_bytes=9)


def test_nw_gap_constant_sanity():
    # One gap must cost more than one mismatch (GAP=2 > |MISMATCH|=1).
    assert GAP > 1
