"""Per-app edge cases: VA, GEMV, SpMV, MLP (dense/sparse linear algebra)."""

import numpy as np

from repro.apps.prim.gemv import Gemv
from repro.apps.prim.mlp import MultilayerPerceptron
from repro.apps.prim.spmv import SpMV
from repro.apps.prim.va import VectorAdd
from repro.config import small_machine
from repro.core import VPim


def native(app, dpus_per_rank=8, nr_ranks=1):
    vpim = VPim(small_machine(nr_ranks=nr_ranks, dpus_per_rank=dpus_per_rank))
    return vpim.native_session().run(app)


# -- VA ------------------------------------------------------------------------

def test_va_uneven_split():
    # 1000 elements over 7 DPUs: remainders must not be lost.
    rep = native(VectorAdd(nr_dpus=7, n_elements=1000), dpus_per_rank=7)
    assert rep.verified


def test_va_single_dpu():
    rep = native(VectorAdd(nr_dpus=1, n_elements=4096), dpus_per_rank=1)
    assert rep.verified


def test_va_more_dpus_than_elements_per_tasklet():
    rep = native(VectorAdd(nr_dpus=8, n_elements=40))
    assert rep.verified


def test_va_negative_values():
    app = VectorAdd(nr_dpus=4, n_elements=512)
    app.a = np.full(512, -(2 ** 30), dtype=np.int32)
    app.b = np.full(512, -(2 ** 30), dtype=np.int32)
    out = None
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=4))
    rep = vpim.native_session().run(app)
    assert rep.verified  # int32 wraparound must match numpy exactly


# -- GEMV ----------------------------------------------------------------------

def test_gemv_uneven_rows():
    rep = native(Gemv(nr_dpus=8, n_rows=130, n_cols=64))
    assert rep.verified


def test_gemv_single_row_per_dpu():
    rep = native(Gemv(nr_dpus=8, n_rows=8, n_cols=32))
    assert rep.verified


def test_gemv_fewer_rows_than_dpus():
    rep = native(Gemv(nr_dpus=8, n_rows=3, n_cols=16))
    assert rep.verified


def test_gemv_wide_matrix():
    rep = native(Gemv(nr_dpus=4, n_rows=16, n_cols=2048), dpus_per_rank=4)
    assert rep.verified


# -- SpMV ----------------------------------------------------------------------

def test_spmv_uneven_rows():
    rep = native(SpMV(nr_dpus=8, n_rows=100, n_cols=64))
    assert rep.verified


def test_spmv_dense_rows():
    rep = native(SpMV(nr_dpus=4, n_rows=64, n_cols=64, nnz_per_row=32),
                 dpus_per_rank=4)
    assert rep.verified


def test_spmv_very_sparse():
    rep = native(SpMV(nr_dpus=8, n_rows=256, n_cols=1024, nnz_per_row=1))
    assert rep.verified


def test_spmv_matches_dense_product():
    app = SpMV(nr_dpus=4, n_rows=64, n_cols=32, nnz_per_row=4)
    dense = app.csr.to_dense()
    expected = dense @ app.x.astype(np.int64)
    assert np.array_equal(app.expected(), expected)


# -- MLP -----------------------------------------------------------------------

def test_mlp_small_layers():
    rep = native(MultilayerPerceptron(nr_dpus=8,
                                      layer_sizes=(64, 32, 32, 16)))
    assert rep.verified


def test_mlp_two_layers():
    rep = native(MultilayerPerceptron(nr_dpus=4, layer_sizes=(32, 32, 8)),
                 dpus_per_rank=4)
    assert rep.verified


def test_mlp_relu_clamps_negatives():
    app = MultilayerPerceptron(nr_dpus=4, layer_sizes=(16, 16, 8))
    # Force all-negative weights: the output must be ReLU-zeroed.
    app.weights = [np.full_like(w, -1) for w in app.weights]
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=4))
    rep = vpim.native_session().run(app)
    assert rep.verified
    assert (app.expected() == 0).all()


def test_mlp_layer_count_flexible():
    rep = native(MultilayerPerceptron(nr_dpus=4,
                                      layer_sizes=(32, 32, 32, 32, 8)),
                 dpus_per_rank=4)
    assert rep.verified
