"""Per-app edge cases: RED, SCAN-SSA/RSS, TRNS, HST-S/L (primitives/image)."""

import numpy as np
import pytest

from repro.apps.prim.hst_l import HistogramLong
from repro.apps.prim.hst_s import HistogramShort
from repro.apps.prim.red import Reduction
from repro.apps.prim.scan_rss import ScanRss
from repro.apps.prim.scan_ssa import ScanSsa
from repro.apps.prim.trns import Transpose
from repro.config import small_machine
from repro.core import VPim


def native(app, dpus_per_rank=8):
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=dpus_per_rank))
    return vpim.native_session().run(app)


# -- RED -----------------------------------------------------------------------

def test_red_negative_values():
    app = Reduction(nr_dpus=4, n_elements=1024)
    app.data = np.full(1024, -3, dtype=np.int32)
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert app.expected() == -3072


def test_red_int64_accumulation():
    """Partial sums larger than int32 must not overflow."""
    app = Reduction(nr_dpus=4, n_elements=4096)
    app.data = np.full(4096, 2 ** 30, dtype=np.int32)
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert app.expected() == 4096 * 2 ** 30


def test_red_uneven_split():
    rep = native(Reduction(nr_dpus=7, n_elements=1000), dpus_per_rank=7)
    assert rep.verified


# -- SCAN ----------------------------------------------------------------------

@pytest.mark.parametrize("cls", [ScanSsa, ScanRss])
def test_scan_single_element(cls):
    rep = native(cls(nr_dpus=1, n_elements=1), dpus_per_rank=1)
    assert rep.verified


@pytest.mark.parametrize("cls", [ScanSsa, ScanRss])
def test_scan_uneven_split(cls):
    rep = native(cls(nr_dpus=7, n_elements=999), dpus_per_rank=7)
    assert rep.verified


@pytest.mark.parametrize("cls", [ScanSsa, ScanRss])
def test_scan_constant_input(cls):
    app = cls(nr_dpus=4, n_elements=512)
    app.data = np.ones(512, dtype=np.int32)
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert np.array_equal(app.expected(), np.arange(1, 513))


def test_scan_variants_agree():
    a = ScanSsa(nr_dpus=4, n_elements=2048, seed=3)
    b = ScanRss(nr_dpus=4, n_elements=2048, seed=3)
    assert np.array_equal(a.expected(), b.expected())


# -- TRNS ----------------------------------------------------------------------

def test_trns_square():
    rep = native(Transpose(nr_dpus=4, n_rows=64, n_cols=64, tile_dim=16),
                 dpus_per_rank=4)
    assert rep.verified


def test_trns_rectangular():
    rep = native(Transpose(nr_dpus=4, n_rows=32, n_cols=128, tile_dim=16),
                 dpus_per_rank=4)
    assert rep.verified


def test_trns_tile_equals_matrix():
    rep = native(Transpose(nr_dpus=1, n_rows=16, n_cols=16, tile_dim=16),
                 dpus_per_rank=1)
    assert rep.verified


def test_trns_rejects_non_divisible():
    with pytest.raises(ValueError):
        Transpose(nr_dpus=4, n_rows=100, n_cols=64, tile_dim=16)


def test_trns_involution():
    app = Transpose(nr_dpus=4, n_rows=32, n_cols=32, tile_dim=16)
    assert np.array_equal(app.expected().T, app.matrix)


# -- HST -----------------------------------------------------------------------

def test_hst_s_counts_sum_to_pixels():
    app = HistogramShort(nr_dpus=8, n_pixels=1 << 14)
    assert int(app.expected().sum()) == 1 << 14
    rep = native(app)
    assert rep.verified


def test_hst_l_counts_sum_to_pixels():
    app = HistogramLong(nr_dpus=8, n_pixels=1 << 14, n_bins=512)
    assert int(app.expected().sum()) == 1 << 14
    rep = native(app)
    assert rep.verified


def test_hst_l_large_bins_multi_pass():
    """Bin counts too large for per-tasklet WRAM trigger the multi-pass
    path but must stay correct."""
    rep = native(HistogramLong(nr_dpus=4, n_pixels=1 << 13, n_bins=4096),
                 dpus_per_rank=4)
    assert rep.verified


def test_hst_variants_agree_on_256_bins():
    s = HistogramShort(nr_dpus=4, n_pixels=1 << 13, seed=5)
    l = HistogramLong(nr_dpus=4, n_pixels=1 << 13, n_bins=256, seed=5)
    assert np.array_equal(s.expected(), l.expected())


def test_hst_single_intensity():
    app = HistogramShort(nr_dpus=4, n_pixels=1024)
    app.pixels = np.full(1024, 42, dtype=np.uint16)
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert app.expected()[42] == 1024
