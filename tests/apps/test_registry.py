"""Table 1: the application inventory."""

import pytest

from repro.apps.base import HostApplication
from repro.apps.registry import ALL_APPS, PRIM_APPS, app_by_short_name


def test_sixteen_prim_apps():
    assert len(PRIM_APPS) == 16


def test_table1_short_names():
    expected = {"VA", "GEMV", "SpMV", "SEL", "UNI", "BS", "TS", "BFS",
                "MLP", "NW", "HST-S", "HST-L", "RED", "SCAN-SSA",
                "SCAN-RSS", "TRNS"}
    assert {info.short_name for info in PRIM_APPS} == expected


def test_table1_domains():
    domains = {info.domain for info in PRIM_APPS}
    assert domains == {
        "Dense linear algebra", "Sparse linear algebra", "Databases",
        "Data analytics", "Graph processing", "Neural networks",
        "Bioinformatics", "Image processing", "Parallel primitives",
    }


def test_microbenchmarks_registered():
    assert app_by_short_name("CHK").benchmark == "Checksum"
    assert app_by_short_name("UPIS").benchmark == "Wikipedia Index Search"
    assert len(ALL_APPS) == 18


def test_classes_are_host_applications():
    for info in ALL_APPS:
        assert issubclass(info.cls, HostApplication)
        assert info.cls.short_name == info.short_name


def test_unknown_app():
    with pytest.raises(KeyError):
        app_by_short_name("NOPE")


def test_nr_dpus_validation():
    for info in ALL_APPS[:3]:
        with pytest.raises(ValueError):
            info.cls(nr_dpus=0)
