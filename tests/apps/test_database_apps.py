"""Per-app edge cases: SEL, UNI, BS (databases)."""

import numpy as np

from repro.apps.prim.bs import BinarySearch
from repro.apps.prim.sel import Select, predicate
from repro.apps.prim.uni import Unique, unique_consecutive
from repro.config import small_machine
from repro.core import VPim


def native(app, dpus_per_rank=8):
    vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=dpus_per_rank))
    return vpim.native_session().run(app)


# -- SEL ----------------------------------------------------------------------

def test_sel_nothing_selected():
    app = Select(nr_dpus=4, n_elements=256)
    app.data = np.arange(1, 513, 2, dtype=np.int32)   # all odd
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert app.expected().size == 0


def test_sel_everything_selected():
    app = Select(nr_dpus=4, n_elements=256)
    app.data = np.arange(0, 512, 2, dtype=np.int32)   # all even
    rep = native(app, dpus_per_rank=4)
    assert rep.verified


def test_sel_preserves_order():
    app = Select(nr_dpus=8, n_elements=1 << 12)
    expected = app.data[predicate(app.data)]
    assert np.array_equal(app.expected(), expected)
    rep = native(app)
    assert rep.verified


def test_sel_uneven_split():
    rep = native(Select(nr_dpus=7, n_elements=1001), dpus_per_rank=7)
    assert rep.verified


# -- UNI ----------------------------------------------------------------------

def test_uni_all_duplicates():
    app = Unique(nr_dpus=4, n_elements=256)
    app.data = np.zeros(256, dtype=np.int32)
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert app.expected().size == 1


def test_uni_no_duplicates():
    app = Unique(nr_dpus=4, n_elements=256)
    app.data = np.arange(256, dtype=np.int32)
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert app.expected().size == 256


def test_uni_boundary_duplicates_across_dpus():
    """A run of equal values straddling a DPU boundary must collapse."""
    app = Unique(nr_dpus=4, n_elements=400)
    data = np.repeat(np.arange(8, dtype=np.int32), 50)   # 8 runs of 50
    app.data = data
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert app.expected().size == 8


def test_uni_reference_helper():
    assert unique_consecutive(np.array([], dtype=np.int32)).size == 0
    assert unique_consecutive(np.array([1, 1, 2, 1], dtype=np.int32)).tolist() \
        == [1, 2, 1]


# -- BS -----------------------------------------------------------------------

def test_bs_all_hits():
    app = BinarySearch(nr_dpus=4, n_elements=1 << 10, n_queries=64)
    app.queries = app.data[np.arange(0, 1 << 10, 16)].copy()
    rep = native(app, dpus_per_rank=4)
    assert rep.verified


def test_bs_all_misses():
    app = BinarySearch(nr_dpus=4, n_elements=1 << 10, n_queries=64)
    app.queries = np.full(64, -1, dtype=np.int64)   # below every element
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert (app.expected() == -1).all()


def test_bs_boundary_queries():
    app = BinarySearch(nr_dpus=4, n_elements=1 << 10, n_queries=2)
    app.queries = np.array([app.data[0], app.data[-1]], dtype=np.int64)
    rep = native(app, dpus_per_rank=4)
    assert rep.verified
    assert app.expected().tolist() == [0, (1 << 10) - 1]


def test_bs_uneven_split():
    rep = native(BinarySearch(nr_dpus=7, n_elements=1000, n_queries=100),
                 dpus_per_rank=7)
    assert rep.verified
