"""Every application produces CPU-identical results on both transports.

This is the paper's first evaluation claim: "All applications run
seamlessly in the vPIM system, where the DPU computed results match
accurately with those computed on CPUs."
"""

import pytest

from repro.analysis.figures import SIZE_PROFILES
from repro.apps.registry import ALL_APPS, app_by_short_name
from repro.config import small_machine
from repro.core import VPim

APP_NAMES = [info.short_name for info in ALL_APPS]

MICRO_PARAMS = {
    "CHK": dict(file_mb=0.25),
    "UPIS": dict(),
}


def build_app(short_name: str, nr_dpus: int):
    params = dict(SIZE_PROFILES["test"].get(short_name,
                                            MICRO_PARAMS.get(short_name, {})))
    return app_by_short_name(short_name).cls(nr_dpus=nr_dpus, **params)


@pytest.mark.parametrize("short_name", APP_NAMES)
def test_native_results_match_cpu(short_name):
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    report = vpim.native_session().run(build_app(short_name, 8))
    assert report.verified, f"{short_name} native result diverged from CPU"


@pytest.mark.parametrize("short_name", APP_NAMES)
def test_vpim_results_match_cpu(short_name):
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    report = vpim.vm_session(nr_vupmem=2).run(build_app(short_name, 8))
    assert report.verified, f"{short_name} vPIM result diverged from CPU"


@pytest.mark.parametrize("short_name", APP_NAMES)
def test_multi_rank_results_match_cpu(short_name):
    """Spanning two ranks must not scramble data placement."""
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    report = vpim.vm_session(nr_vupmem=2).run(build_app(short_name, 12))
    assert report.verified, f"{short_name} multi-rank result diverged"


@pytest.mark.parametrize("preset", ["vPIM-rust", "vPIM-C", "vPIM+P",
                                    "vPIM+B", "vPIM+PB", "vPIM-Seq"])
@pytest.mark.parametrize("short_name", ["NW", "RED", "SEL", "CHK"])
def test_all_presets_preserve_correctness(short_name, preset):
    """Optimizations change timing, never results (Table 2 matrix)."""
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    session = vpim.vm_session(nr_vupmem=2, preset_name=preset)
    report = session.run(build_app(short_name, 8))
    assert report.verified, f"{short_name} under {preset} diverged"


@pytest.mark.parametrize("short_name", APP_NAMES)
def test_segments_recorded(short_name):
    vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
    report = vpim.native_session().run(build_app(short_name, 8))
    # Every app records at least data-in and compute segments.
    assert report.segments["CPU-DPU"] > 0
    assert report.segments["DPU"] > 0
    assert report.segments_total > 0


def test_vpim_slower_than_native_overall():
    """Virtualization never comes for free."""
    for short_name in ("VA", "NW", "CHK"):
        vpim = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
        nat = vpim.native_session().run(build_app(short_name, 8))
        vpim2 = VPim(small_machine(nr_ranks=2, dpus_per_rank=8))
        vr = vpim2.vm_session(nr_vupmem=2).run(build_app(short_name, 8))
        assert vr.overhead_vs(nat) > 1.0
