"""Fig. 13 — write-to-rank step breakdown.

Steps: page management (Page), matrix serialization (Ser), virtio
interrupt handling (Int), matrix deserialization (Deser), and the data
transfer to UPMEM (T-data).  Paper: T-data is 98.3% of the write path in
Rust and 69.3% in C; the other steps are implementation-independent.
"""

import pytest

from repro.analysis.figures import fig13_wrank_steps
from repro.analysis.report import PAPER_CLAIMS, format_table
from repro.sdk.profile import WRANK_STEPS


def bench_fig13_wrank_steps(once):
    rust, c = once(fig13_wrank_steps, scale=16)

    rows = []
    for row in (rust, c):
        total = sum(row.wrank_steps.values())
        cells = [row.mode]
        for step in WRANK_STEPS:
            value = row.wrank_steps.get(step, 0.0)
            cells.append(f"{value * 1e3:.3f} ({value / total:.1%})")
        rows.append(tuple(cells))
    print()
    print(format_table(["mode"] + [f"{s} ms" for s in WRANK_STEPS], rows,
                       title="Fig. 13 - write-to-rank steps (checksum 8 MB)"))

    claims = PAPER_CLAIMS["fig13"]
    rust_share = rust.wrank_steps["T-data"] / sum(rust.wrank_steps.values())
    c_share = c.wrank_steps["T-data"] / sum(c.wrank_steps.values())
    print(f"\npaper:    T-data share rust {claims['tdata_share_rust']:.1%}, "
          f"C {claims['tdata_share_c']:.1%}")
    print(f"measured: T-data share rust {rust_share:.1%}, C {c_share:.1%}")

    assert rust_share > 0.93
    assert c_share < rust_share
    # Non-data steps are the same in both implementations.
    for step in ("Page", "Ser", "Int"):
        assert rust.wrank_steps[step] == pytest.approx(
            c.wrank_steps[step], rel=0.05)
