"""Weak scaling: constant work per DPU while the DPU count grows.

The paper evaluates PrIM's *strong*-scaling configuration (fixed total
workload); PrIM also defines weak scaling, which isolates the per-DPU
virtualization costs: with the per-DPU slice fixed, a perfectly scaling
system keeps execution time flat as ranks are added, and any growth is
pure coordination overhead (more rank operations, more messages, bus
contention).
"""

from repro.analysis.figures import machine_for_dpus
from repro.analysis.report import format_table
from repro.apps.prim.va import VectorAdd
from repro.core import VPim

ELEMENTS_PER_DPU = 1 << 15


def bench_weak_scaling_va(once):
    def experiment():
        rows = []
        for nr_dpus in (60, 120, 240, 480):
            cfg = machine_for_dpus(nr_dpus)
            total = ELEMENTS_PER_DPU * nr_dpus
            native = VPim(cfg).native_session().run(
                VectorAdd(nr_dpus=nr_dpus, n_elements=total))
            virt = VPim(cfg).vm_session(nr_vupmem=cfg.nr_ranks).run(
                VectorAdd(nr_dpus=nr_dpus, n_elements=total))
            assert native.verified and virt.verified
            rows.append((nr_dpus, native.segments_total,
                         virt.segments_total))
        return rows

    results = once(experiment)
    table = [(n, f"{nat * 1e3:.1f}", f"{vr * 1e3:.1f}", f"{vr / nat:.2f}x")
             for n, nat, vr in results]
    print()
    print(format_table(["#DPUs", "native ms", "vPIM ms", "overhead"], table,
                       title=f"Weak scaling - VA, {ELEMENTS_PER_DPU} "
                             "elements per DPU"))

    natives = [nat for _, nat, _ in results]
    overheads = [vr / nat for _, nat, vr in results]
    # DPU compute is constant per DPU; total time may grow with rank
    # count (transfers share the host bus) but must stay within the
    # contention envelope, far from linear scaling.
    assert natives[-1] < natives[0] * 8 / 2, \
        "weak scaling degenerated to serial behaviour"
    # Virtualization overhead grows with the rank count (more devices,
    # more per-request costs, VMM contention) — the Fig. 8 trend.
    assert overheads[-1] >= overheads[0] * 0.9
    print(f"\noverhead trend 60->480 DPUs: "
          f"{overheads[0]:.2f}x -> {overheads[-1]:.2f}x")
