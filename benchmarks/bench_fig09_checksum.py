"""Fig. 9 — checksum sensitivity analysis.

(a) varying #vCPUs {2,4,8,16}: execution time is vCPU-independent;
(b) varying #DPUs {1,8,16,60} at 60 MB/DPU: time grows with DPUs;
(c) varying file size {8,20,40,60} MB at 60 DPUs: overhead falls from
    2.33x to 1.29x as the fixed message-passing cost amortizes.

Sizes are nominal paper MB scaled by 1/16 (both data and CI-op count,
preserving the ratios — see Checksum's scale parameter).
"""

from repro.analysis.figures import fig9_checksum_sensitivity
from repro.analysis.report import PAPER_CLAIMS, format_table


def bench_fig09_checksum_sensitivity(once):
    sweeps = once(fig9_checksum_sensitivity, scale=16)

    print()
    for name, xlabel in (("vcpus", "#vCPUs"), ("dpus", "#DPUs"),
                         ("size", "MB/DPU")):
        rows = [(p.x, f"{p.native_s:.4f}", f"{p.vpim_s:.4f}",
                 f"{p.overhead:.2f}x") for p in sweeps[name]]
        print(format_table([xlabel, "native s", "vPIM s", "overhead"], rows,
                           title=f"Fig. 9 ({name}) - checksum"))
        print()

    claims = PAPER_CLAIMS["fig9"]
    # (a) vCPU independence.
    vt = [p.vpim_s for p in sweeps["vcpus"]]
    assert max(vt) / min(vt) < 1.02

    # (b) execution time grows with #DPUs.
    natives = [p.native_s for p in sweeps["dpus"]]
    vpims = [p.vpim_s for p in sweeps["dpus"]]
    assert natives == sorted(natives)
    assert vpims == sorted(vpims)

    # (c) overhead decreases with size: paper 2.33x -> 1.29x.
    overheads = [p.overhead for p in sweeps["size"]]
    print(f"paper:    overhead {claims['overhead_8mb']}x at 8 MB -> "
          f"{claims['overhead_60mb']}x at 60 MB")
    print(f"measured: overhead {overheads[0]:.2f}x at 8 MB -> "
          f"{overheads[-1]:.2f}x at 60 MB")
    assert overheads == sorted(overheads, reverse=True)
    assert 1.8 <= overheads[0] <= 3.2
    assert 1.1 <= overheads[-1] <= 1.7
