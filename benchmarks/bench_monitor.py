#!/usr/bin/env python
"""Telemetry-pipeline benchmark: the monitored quick suite, pinned.

Runs the ``repro monitor`` quick composite (PrIM + noisy-neighbor +
paging + fault drill) under the full telemetry pipeline — time-series
store, tail-based trace retention with exemplars, alert engine — twice
at a fixed seed, and asserts the four properties the subsystem exists
to provide:

- **determinism**: both runs produce the same sha256 digest over the
  canonical result JSON (everything is simulated time, so they must);
- **exemplar coverage**: every instrumented latency histogram (frontend
  request, backend dispatch, QoS arbitration wait, paging swap) carries
  at least one exemplar after the suite;
- **tail retention**: the slowest-decile trace of the seeded
  noisy-neighbor run is retained by tail sampling and provably dropped
  by head sampling at the same retention budget;
- **alert lifecycle**: the injected fault drill drives the
  ``fault_burst`` rule through pending -> firing -> resolved;

plus the loss-free floor: zero dropped store points across the suite.

The committed artifact is ``BENCH_MONITOR.json`` at the repository
root.  ``--check`` additionally compares the measured digest against
the committed one, so any behavior change in the pipeline is a visible
diff.

Usage::

    python benchmarks/bench_monitor.py --quick             # print only
    python benchmarks/bench_monitor.py --update            # rewrite JSON
    python benchmarks/bench_monitor.py --quick --check     # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.monitor import (  # noqa: E402
    EXEMPLAR_FAMILIES,
    MonitorConfig,
    run_monitor,
)

DEFAULT_ARTIFACT = REPO_ROOT / "BENCH_MONITOR.json"
SCHEMA = "repro.bench_monitor/1"
SEED = 0


def measure() -> dict:
    first = run_monitor(MonitorConfig(scenario="quick", seed=SEED))
    second = run_monitor(MonitorConfig(scenario="quick", seed=SEED))
    data = first.to_dict()
    scenarios = {}
    for telemetry in data["scenarios"]:
        scenarios[telemetry["name"]] = {
            "makespan_s": telemetry["makespan_s"],
            "scrapes": telemetry["scrapes"],
            "samples": telemetry["samples"],
            "dropped": telemetry["dropped"],
            "series": telemetry["series"],
            "retention_counts": telemetry["retention_counts"],
        }
    demo = data["tail_demo"]
    drill = data["drill"]
    return {
        "schema": SCHEMA,
        "mode": "quick",
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "seed": SEED,
        "digest": first.digest(),
        "digest_second_run": second.digest(),
        "deterministic": first.digest() == second.digest(),
        "dropped_points": data["dropped_points"],
        "exemplar_families": data["exemplar_families"],
        "tail_demo": {
            "sessions": demo["sessions"],
            "slow_index": demo["slow_index"],
            "sample_rate": demo["sample_rate"],
            "slowest_decile": demo["slowest_decile"],
            "head_retained": demo["head_retained"],
            "tail_tiers": demo["tail_tiers"],
            "slowest_kept_by_tail": demo["slowest_kept_by_tail"],
            "slowest_dropped_by_head": demo["slowest_dropped_by_head"],
        },
        "drill": drill,
        "scenarios": scenarios,
    }


def print_report(report: dict) -> None:
    print(f"telemetry pipeline (seed {report['seed']})")
    print(f"  digest           : {report['digest']}")
    print(f"  deterministic    : {report['deterministic']}")
    print(f"  dropped points   : {report['dropped_points']}")
    for name, count in sorted(report["exemplar_families"].items()):
        print(f"  exemplars        : {name} = {count}")
    demo = report["tail_demo"]
    print(f"  tail demo        : slowest decile {demo['slowest_decile']} "
          f"kept by tail: {demo['slowest_kept_by_tail']}, dropped by "
          f"head: {demo['slowest_dropped_by_head']}")
    drill = report["drill"]
    print(f"  fault drill      : pending={drill['visited_pending']} "
          f"firing={drill['visited_firing']} "
          f"resolved={drill['visited_resolved']}")
    for name, s in sorted(report["scenarios"].items()):
        print(f"  {name:<16} : {s['scrapes']} scrapes, {s['series']} "
              f"series, {s['dropped']} dropped, "
              f"retention {s['retention_counts']}")


def check(report: dict, artifact: Path) -> int:
    failures = []
    if not report["deterministic"]:
        failures.append(
            f"two runs at seed {report['seed']} produced different "
            f"digests: {report['digest']} vs {report['digest_second_run']}")
    if report["dropped_points"] != 0:
        failures.append(
            f"the store dropped {report['dropped_points']} points — "
            "quick-suite retention must be lossless")
    for family in EXEMPLAR_FAMILIES:
        if report["exemplar_families"].get(family, 0) < 1:
            failures.append(
                f"latency histogram {family} carries no exemplar after "
                "the quick suite")
    demo = report["tail_demo"]
    if not demo["slowest_kept_by_tail"]:
        failures.append(
            "tail sampling failed to retain the slowest-decile trace "
            f"({demo['slowest_decile']})")
    if not demo["slowest_dropped_by_head"]:
        failures.append(
            "head sampling retained the slowest-decile trace — the "
            "comparison no longer demonstrates anything")
    drill = report["drill"]
    for phase in ("pending", "firing", "resolved"):
        if not drill[f"visited_{phase}"]:
            failures.append(
                f"the fault drill never reached the {phase!r} state")
    if artifact.exists():
        committed = json.loads(artifact.read_text())
        if committed.get("digest") != report["digest"]:
            failures.append(
                f"digest drifted from the committed artifact: "
                f"{committed.get('digest')} -> {report['digest']} "
                "(intentional changes need --update)")
    if failures:
        print("\nMONITOR CHECK FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nmonitor ok: deterministic digest, lossless store, exemplars "
          "on every latency histogram, tail retention beats head, drill "
          "walked the full alert lifecycle")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="accepted for CI symmetry (the suite is "
                             "already quick-sized)")
    parser.add_argument("--check", action="store_true",
                        help="fail on any acceptance violation or "
                             "digest drift")
    parser.add_argument("--update", action="store_true",
                        help=f"rewrite {DEFAULT_ARTIFACT.name}")
    parser.add_argument("--artifact", type=Path, default=DEFAULT_ARTIFACT,
                        help="artifact path for --check/--update")
    args = parser.parse_args(argv)

    report = measure()
    print_report(report)

    rc = 0
    if args.check:
        rc = check(report, args.artifact)
    if args.update and rc == 0:
        args.artifact.write_text(json.dumps(report, indent=2,
                                            sort_keys=True) + "\n")
        print(f"\nwrote {args.artifact}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
