"""Fig. 8 — execution time of the 16 PrIM applications, native vs vPIM,
with 1 rank (60 DPUs) and 8 ranks (480 DPUs), strong scaling.

Paper results being reproduced (shape, not absolute time):

- 60 DPUs: overhead between 1.01x (BS) and 2.07x (NW), average 1.24x;
- 480 DPUs: overhead between 1.02x and 2.89x (TRNS), average 1.54x —
  overhead *grows* with DPU count because per-DPU transfers shrink;
- SEL/UNI/SpMV/BFS get *slower* with more DPUs (serial transfer steps);
- RED's Inter-DPU step explodes (prefetch pathology, 33x-145x);
- BFS Inter-DPU carries ~3x from per-level handshakes.
"""

from repro.analysis.figures import fig8_prim_applications
from repro.analysis.report import PAPER_CLAIMS, format_table

SERIAL_APPS = ("SEL", "UNI", "SpMV", "BFS")


def bench_fig08_prim_strong_scaling(once):
    runs = once(fig8_prim_applications, profile="bench",
                dpu_counts=(60, 480))
    by_key = {(r.app, r.nr_dpus): r for r in runs}

    rows = []
    for run in runs:
        seg = run.vpim.segments
        rows.append((run.app, run.nr_dpus,
                     f"{run.native.segments_total * 1e3:.1f}",
                     f"{run.vpim.segments_total * 1e3:.1f}",
                     f"{run.overhead:.2f}x",
                     f"{seg['CPU-DPU'] * 1e3:.1f}",
                     f"{seg['DPU'] * 1e3:.1f}",
                     f"{seg['Inter-DPU'] * 1e3:.1f}",
                     f"{seg['DPU-CPU'] * 1e3:.1f}",
                     "OK" if (run.native.verified and run.vpim.verified)
                     else "MISMATCH"))
    print()
    print(format_table(
        ["App", "DPUs", "native ms", "vPIM ms", "overhead",
         "CPU-DPU", "DPU", "Inter-DPU", "DPU-CPU", "verify"],
        rows, title="Fig. 8 - PrIM strong scaling (measured)"))

    claims = PAPER_CLAIMS["fig8"]
    ov60 = [by_key[(a, 60)].overhead for a, n in by_key if n == 60]
    ov480 = [by_key[(a, 480)].overhead for a, n in by_key if n == 480]
    avg60 = sum(ov60) / len(ov60)
    avg480 = sum(ov480) / len(ov480)
    print(f"\npaper:    60 DPUs overhead {claims['overhead_min_60']}-"
          f"{claims['overhead_max_60']} (avg {claims['overhead_avg_60']}); "
          f"480 DPUs {claims['overhead_min_480']}-"
          f"{claims['overhead_max_480']} (avg {claims['overhead_avg_480']})")
    print(f"measured: 60 DPUs overhead {min(ov60):.2f}-{max(ov60):.2f} "
          f"(avg {avg60:.2f}); 480 DPUs {min(ov480):.2f}-{max(ov480):.2f} "
          f"(avg {avg480:.2f})")

    # Shape assertions.
    assert all(r.native.verified and r.vpim.verified for r in runs)
    assert min(ov60) < 1.25, "some app must virtualize almost for free"
    assert avg480 > avg60, "overhead must grow with DPU count"
    assert max(ov480) > max(ov60) or max(ov480) > 2.0

    # Serial-transfer apps scale badly (their serial step is immune to
    # rank parallelism and pays more per-op setups), in sharp contrast
    # with the parallel-transfer apps.
    for app in SERIAL_APPS:
        t60 = by_key[(app, 60)].native.segments_total
        t480 = by_key[(app, 480)].native.segments_total
        assert t480 > 0.75 * t60, f"{app} should not speed up much at 480"
    va_gain = (by_key[("VA", 60)].native.segments_total
               / by_key[("VA", 480)].native.segments_total)
    sel_gain = (by_key[("SEL", 60)].native.segments_total
                / by_key[("SEL", 480)].native.segments_total)
    assert va_gain > 1.5 * sel_gain, "VA must scale far better than SEL"

    # RED Inter-DPU pathology grows with DPU count (33x -> 145x in paper).
    red60 = by_key[("RED", 60)].segment_overhead("Inter-DPU")
    red480 = by_key[("RED", 480)].segment_overhead("Inter-DPU")
    assert red60 and red60 > 10
    assert red480 and red480 > red60
    print(f"RED Inter-DPU overhead: paper 33.3x/145.5x, "
          f"measured {red60:.1f}x/{red480:.1f}x")

    bfs = by_key[("BFS", 60)].segment_overhead("Inter-DPU")
    print(f"BFS Inter-DPU overhead: paper ~3.0x, measured {bfs:.2f}x")
    assert bfs and 1.5 < bfs < 8.0
