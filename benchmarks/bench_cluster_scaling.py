"""Fleet scaling: placement policies and consolidation under load.

The paper stops at one host; its §7 consolidation argument and the
ROADMAP's production north star need fleet-level evidence.  Two
experiments:

- **Policy sweep** — the same seeded Poisson workloads (bimodal rank
  demand: mostly 1-rank tenants plus whole-host tenants) replayed under
  ``round_robin`` / ``best_fit`` / ``least_loaded``.  Round-robin
  sprinkles small tenants everywhere, so no host keeps room for a
  whole-host request: the head-of-line request blocks, the bounded
  queue fills, and admissions bounce.  Best-fit packs instead, and
  should win on rejection rate or p99 queue-wait.
- **Consolidation drain** — a moderate workload with the consolidator
  enabled must actually empty at least one host via the
  checkpoint/restore ``migrate_device`` path, with ``cluster_*``
  metrics recording the moves.
"""

from repro.analysis.fleet import (
    SUMMARY_HEADERS,
    summary_rows,
    sweep_policies,
)
from repro.analysis.report import format_table
from repro.cluster import ClusterConfig, ScenarioConfig
from repro.cluster.loadgen import run_scenario

#: Moderate load where fragmentation, not raw capacity, binds: offered
#: load ~2/3 of fleet capacity, queue bounded at one host's worth.
SWEEP_CONFIG = ScenarioConfig(
    cluster=ClusterConfig(nr_hosts=4, ranks_per_host=4, dpus_per_rank=8),
    nr_tenants=12,
    nr_requests=80,
    arrival_rate=2.0,
    mean_hold_s=3.0,
    queue_limit=4,
    rank_choices=(1, 1, 1, 4),
    run_apps=False,          # pure control-plane: app runtime is not measured
)

SWEEP_SEEDS = tuple(range(8))


def bench_policy_sweep(once):
    """best_fit must beat round_robin on rejections or p99 queue wait."""

    def experiment():
        return sweep_policies(SWEEP_CONFIG, seeds=SWEEP_SEEDS)

    summaries = once(experiment)
    print()
    print(format_table(
        SUMMARY_HEADERS, summary_rows(summaries),
        title=f"Fleet policy sweep ({len(SWEEP_SEEDS)} seeds, "
              f"{SWEEP_CONFIG.nr_requests} requests each)"))

    rr = summaries["round_robin"]
    bf = summaries["best_fit"]
    ll = summaries["least_loaded"]
    assert rr.submitted == bf.submitted == ll.submitted
    # The fragmentation claim: a packing policy beats round-robin on at
    # least one headline latency/loss metric over the pooled seeds.
    assert (bf.rejection_rate < rr.rejection_rate
            or bf.p99_wait_s < rr.p99_wait_s), (
        f"best_fit (rej={bf.rejection_rate:.3f}, p99={bf.p99_wait_s:.3f}) "
        f"should beat round_robin (rej={rr.rejection_rate:.3f}, "
        f"p99={rr.p99_wait_s:.3f}) on one of the two")


def bench_consolidation_drain(once):
    """The consolidator must drain hosts through migrate_device."""

    config = ScenarioConfig(
        cluster=ClusterConfig(nr_hosts=4, ranks_per_host=4, dpus_per_rank=8),
        policy="round_robin",     # the fragmenting policy: most to clean up
        nr_tenants=8,
        nr_requests=24,
        arrival_rate=2.0,
        mean_hold_s=2.0,
        run_apps=True,            # real MRAM data makes checkpoints non-empty
        consolidate_every_s=1.0,
        seed=7,
    )

    def experiment():
        return run_scenario(config)

    result, cluster = once(experiment)
    print()
    print(f"migrations={result.migrations} "
          f"hosts_drained={result.hosts_drained} "
          f"completions={result.completions}/{result.submitted}")

    assert result.migrations > 0, "consolidator never migrated a device"
    assert result.hosts_drained > 0, "consolidator never drained a host"
    # The control-plane metrics must have recorded the moves.
    assert _family_total(cluster.metrics,
                         "repro_cluster_migrations_total") == result.migrations
    assert (cluster.metrics.value("repro_cluster_hosts_drained_total")
            == result.hosts_drained)
    assert _family_total(cluster.metrics,
                         "repro_cluster_migrated_bytes_total") > 0


def _family_total(registry, name):
    """Sum a counter family over all of its label sets."""
    for family in registry.collect():
        if family.name == name:
            return sum(child.value for _, child in family.samples())
    return 0.0
