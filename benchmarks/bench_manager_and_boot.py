"""Section 3.2 / 4.2 — vUPMEM boot cost and Manager overheads.

Paper numbers: adding a vUPMEM device costs <= 2 ms of boot time; a
dpu_alloc-triggered NAAV allocation averages 36 ms; a rank reset takes
~597 ms; the idle manager consumes ~40% of a core and up to 92% while
resetting ranks.
"""

import pytest

from repro.analysis.figures import machine_config
from repro.analysis.report import PAPER_CLAIMS, format_table
from repro.core import VPim
from repro.virt.firecracker import VmConfig


def bench_boot_and_manager_overheads(once):
    def experiment():
        vpim = VPim(machine_config(4))
        clock = vpim.machine.clock

        # Boot cost per vUPMEM device.
        t0 = clock.now
        vm0 = vpim.firecracker.launch_vm(VmConfig(nr_vupmem=0,
                                                  mem_bytes=1 << 30))
        boot_plain = clock.now - t0
        t0 = clock.now
        vm4 = vpim.firecracker.launch_vm(VmConfig(nr_vupmem=4,
                                                  mem_bytes=1 << 30))
        boot_devices = clock.now - t0
        per_device = (boot_devices - boot_plain) / 4

        # Allocation cost (NAAV path).
        t0 = clock.now
        rank = vpim.manager.allocate(vm4.devices[0].device_id)
        alloc_cost = clock.now - t0

        # Release -> reset cycle.
        vm4.devices[0].backend.link_rank(rank)
        vm4.devices[0].backend.unlink()
        record = vpim.manager.rank_table[rank]
        reset_cost = record.reset_done_at - clock.now

        return {
            "per_device_boot": per_device,
            "alloc": alloc_cost,
            "reset": reset_cost,
            "idle_cpu": vpim.manager.idle_cpu_utilization(),
            "reset_cpu": vpim.manager.reset_cpu_utilization(1),
        }

    m = once(experiment)
    claims_mgr = PAPER_CLAIMS["manager"]
    claims_boot = PAPER_CLAIMS["boot"]
    rows = [
        ("vUPMEM boot / device", f"<= {claims_boot['vupmem_boot_ms_max']} ms",
         f"{m['per_device_boot'] * 1e3:.2f} ms"),
        ("rank allocation", f"{claims_mgr['alloc_ms']} ms",
         f"{m['alloc'] * 1e3:.1f} ms"),
        ("rank reset", f"{claims_mgr['reset_ms']} ms",
         f"{m['reset'] * 1e3:.1f} ms"),
        ("idle manager CPU", f"{claims_mgr['idle_cpu']:.0%}",
         f"{m['idle_cpu']:.0%}"),
        ("resetting manager CPU", f"{claims_mgr['reset_cpu']:.0%}",
         f"{m['reset_cpu']:.0%}"),
    ]
    print()
    print(format_table(["quantity", "paper", "measured"], rows,
                       title="Manager and boot overheads"))

    assert m["per_device_boot"] <= 2e-3 + 1e-9
    assert m["alloc"] == pytest.approx(36e-3, rel=0.05)
    assert m["reset"] == pytest.approx(0.597, rel=0.2)
