"""Requirement R2 — multiplexing raises UPMEM utilization.

The paper's motivation: "users looking to leverage PIM devices must
reserve an entire server with a fixed number of devices [...] leading to
underutilization."  This bench quantifies that story on the 8-rank
testbed: eight tenants each need one rank's worth of work.

- **Exclusive reservation** (status quo): tenants take turns owning the
  whole server; seven ranks idle while one works.
- **vPIM multiplexing**: each tenant gets one vUPMEM device; jobs run
  side by side.  Per-tenant virtualization overhead applies, and shared
  host-bus contention is bounded between a perfectly-parallel lower
  bound and a contended upper bound (the cost model's native contention
  factor applied across tenants).
"""

from repro.analysis.figures import machine_config
from repro.analysis.report import format_table
from repro.apps.prim.va import VectorAdd
from repro.core import VPim
from repro.hardware.timing import DEFAULT_COST_MODEL

NR_TENANTS = 8
JOB = dict(n_elements=1 << 22)


def bench_multiplexing_utilization(once):
    def experiment():
        # One tenant's job natively owning a rank (the exclusive case
        # runs these back to back).
        native_times = []
        for seed in range(NR_TENANTS):
            vpim = VPim(machine_config(1, dpus_per_rank=60))
            rep = vpim.native_session().run(
                VectorAdd(nr_dpus=60, seed=seed, **JOB))
            assert rep.verified
            native_times.append(rep.segments_total)

        # The same jobs through vPIM, one rank each.
        vpim_times = []
        for seed in range(NR_TENANTS):
            vpim = VPim(machine_config(1, dpus_per_rank=60))
            rep = vpim.vm_session(nr_vupmem=1).run(
                VectorAdd(nr_dpus=60, seed=seed, **JOB))
            assert rep.verified
            vpim_times.append(rep.segments_total)
        return native_times, vpim_times

    native_times, vpim_times = once(experiment)

    exclusive_makespan = sum(native_times)
    peak = max(vpim_times)
    lower = peak                                       # perfect overlap
    contention = DEFAULT_COST_MODEL.native_parallel_contention
    upper = peak + (sum(vpim_times) - peak) * contention

    rows = [
        ("exclusive server reservation", f"{exclusive_makespan * 1e3:.1f}",
         f"{100 / NR_TENANTS:.0f}%"),
        ("vPIM multiplexing (no contention)", f"{lower * 1e3:.1f}", "100%"),
        ("vPIM multiplexing (bus contention)", f"{upper * 1e3:.1f}", "100%"),
    ]
    print()
    print(format_table(["scheme", "makespan ms", "rank utilization"], rows,
                       title=f"R2 - {NR_TENANTS} tenants, one rank each"))
    speedup_low = exclusive_makespan / upper
    speedup_high = exclusive_makespan / lower
    print(f"\nmultiplexing speedup over exclusive reservation: "
          f"{speedup_low:.1f}x - {speedup_high:.1f}x "
          f"(despite per-tenant virtualization overhead of "
          f"{max(vpim_times) / max(native_times):.2f}x)")

    # Multiplexing must win by a wide margin even under contention.
    assert upper < exclusive_makespan / 2
    assert lower < exclusive_makespan / 4
