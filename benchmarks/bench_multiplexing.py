"""Requirement R2 — multiplexing raises UPMEM utilization.

The paper's motivation: "users looking to leverage PIM devices must
reserve an entire server with a fixed number of devices [...] leading to
underutilization."  This bench quantifies that story on the 8-rank
testbed: eight tenants each need one rank's worth of work.

- **Exclusive reservation** (status quo): tenants take turns owning the
  whole server; seven ranks idle while one works.
- **vPIM multiplexing**: each tenant gets one vUPMEM device; jobs run
  side by side.  Per-tenant virtualization overhead applies, and shared
  host-bus contention is modeled by the
  :class:`~repro.hardware.timing.BandwidthArbiter`'s contended-makespan
  estimate: only each job's bus-occupying transfer time contends (at the
  cost model's native contention factor), its on-DPU compute overlaps
  freely.
"""

from repro.analysis.figures import machine_config
from repro.analysis.report import format_table
from repro.apps.prim.va import VectorAdd
from repro.core import VPim
from repro.hardware.timing import BandwidthArbiter, DEFAULT_COST_MODEL

NR_TENANTS = 8
JOB = dict(n_elements=1 << 22)


def bench_multiplexing_utilization(once):
    def experiment():
        # One tenant's job natively owning a rank (the exclusive case
        # runs these back to back).
        native_times = []
        for seed in range(NR_TENANTS):
            vpim = VPim(machine_config(1, dpus_per_rank=60))
            rep = vpim.native_session().run(
                VectorAdd(nr_dpus=60, seed=seed, **JOB))
            assert rep.verified
            native_times.append(rep.segments_total)

        # The same jobs through vPIM, one rank each.  Keep each job's
        # bus-occupying portion (CPU<->DPU transfer segments) separate
        # from its total: only the former contends on the shared bus.
        vpim_jobs = []
        for seed in range(NR_TENANTS):
            vpim = VPim(machine_config(1, dpus_per_rank=60))
            rep = vpim.vm_session(nr_vupmem=1).run(
                VectorAdd(nr_dpus=60, seed=seed, **JOB))
            assert rep.verified
            seg = rep.segments
            bus_s = seg["CPU-DPU"] + seg["DPU-CPU"]
            vpim_jobs.append((bus_s, rep.segments_total))
        return native_times, vpim_jobs

    native_times, vpim_jobs = once(experiment)

    exclusive_makespan = sum(native_times)
    vpim_times = [total for _, total in vpim_jobs]
    peak = max(vpim_times)
    contended = BandwidthArbiter(DEFAULT_COST_MODEL).contended_makespan(
        vpim_jobs)

    rows = [
        ("exclusive server reservation", f"{exclusive_makespan * 1e3:.1f}",
         f"{100 / NR_TENANTS:.0f}%"),
        ("vPIM multiplexing (modeled contention)",
         f"{contended * 1e3:.1f}", "100%"),
    ]
    print()
    print(format_table(["scheme", "makespan ms", "rank utilization"], rows,
                       title=f"R2 - {NR_TENANTS} tenants, one rank each"))
    speedup = exclusive_makespan / contended
    print(f"\nmultiplexing speedup over exclusive reservation: "
          f"{speedup:.1f}x "
          f"(despite per-tenant virtualization overhead of "
          f"{max(vpim_times) / max(native_times):.2f}x)")

    # The modeled makespan sits between perfect overlap and full
    # contention, and multiplexing must still win by a wide margin.
    assert peak <= contended < sum(vpim_times)
    assert contended < exclusive_makespan / 2
