"""Fig. 15 — Parallel Operation Handling on multiple ranks.

Paper (checksum on 2/4/8 ranks): parallel handling yields a 1.13x
average whole-application speedup that grows with the rank count, and a
~1.4x average speedup on the write-to-rank operation.
"""

from repro.analysis.figures import fig15_parallel_ranks
from repro.analysis.report import PAPER_CLAIMS, format_table


def bench_fig15_parallel_ranks(once):
    points = once(fig15_parallel_ranks, rank_counts=(2, 4, 8),
                  file_mb=60, scale=64)

    rows = [(p.nr_ranks, f"{p.seq_total:.4f}", f"{p.par_total:.4f}",
             f"{p.app_speedup:.2f}x", f"{p.seq_write:.4f}",
             f"{p.par_write:.4f}", f"{p.write_speedup:.2f}x")
            for p in points]
    print()
    print(format_table(
        ["ranks", "app seq s", "app par s", "app speedup",
         "write seq s", "write par s", "write speedup"],
        rows, title="Fig. 15 - parallel operation handling (checksum)"))

    claims = PAPER_CLAIMS["fig15"]
    app_avg = sum(p.app_speedup for p in points) / len(points)
    write_avg = sum(p.write_speedup for p in points) / len(points)
    print(f"\npaper:    app speedup avg {claims['whole_app_speedup_avg']}x, "
          f"write speedup avg {claims['write_speedup_avg']}x")
    print(f"measured: app speedup avg {app_avg:.2f}x, "
          f"write speedup avg {write_avg:.2f}x")

    speedups = [p.app_speedup for p in points]
    assert all(s > 1.0 for s in speedups)
    assert speedups == sorted(speedups), "speedup grows with rank count"
    for p in points:
        assert 1.0 < p.write_speedup < p.nr_ranks  # contention caps the win
