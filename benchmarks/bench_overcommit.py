#!/usr/bin/env python
"""Rank-overcommit benchmark: hard denial vs emulation vs demand paging.

Four tenants share a host with two physical ranks (``docs/paging.md``),
each holding its rank allocation while rounds of a verified Vector
Addition interleave across them — the access pattern that forces the
pager to swap rank state at operation boundaries.  The same schedule
runs under four arms (see ``repro.analysis.overcommit``):

- **reference**: four physical ranks — the bit-identity ground truth;
- **denial**: two ranks, no oversubscription — overflow tenants refused;
- **emulation**: the Section 7 software fallback at ~20x derating;
- **paging**: virtual ranks demand-paged over the two frames.

Scored quantities per arm: admitted tenants, completed rounds, round
latency (p50/p99), schedule goodput, swap traffic, and whether every
tenant's outputs are bit-identical to the reference.

The committed artifact is ``BENCH_OVERCOMMIT.json`` at the repository
root (full mode).  ``--check`` fails when paging does not beat the
emulation fallback on goodput (``--min-paging-vs-emulation``, default
1.05) or any arm's outputs diverge from the reference.

Usage::

    python benchmarks/bench_overcommit.py --quick             # print only
    python benchmarks/bench_overcommit.py --update            # rewrite JSON
    python benchmarks/bench_overcommit.py --quick --check     # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from typing import List

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.overcommit import (  # noqa: E402
    ARMS,
    overcommit_table,
    run_overcommit,
)

DEFAULT_ARTIFACT = REPO_ROOT / "BENCH_OVERCOMMIT.json"
SCHEMA = "repro.bench_overcommit/1"

QUICK = dict(rounds=6, n_elements=1 << 16)
FULL = dict(rounds=12, n_elements=1 << 16)


def measure(quick: bool) -> dict:
    params = QUICK if quick else FULL
    result = run_overcommit(**params)
    arms = {}
    for name in ARMS:
        arm = result.arms[name]
        arms[name] = {
            "admitted": arm.admitted,
            "tenants": arm.tenants,
            "rounds_completed": arm.rounds_completed,
            "p50_s": arm.p50_s,
            "p99_s": arm.p99_s,
            "mean_s": arm.mean_s,
            "setup_s": arm.setup_s,
            "makespan_s": arm.makespan_s,
            "throughput_per_s": arm.throughput_per_s,
            "steady_throughput_per_s": arm.steady_throughput_per_s,
            "swap_in_bytes": arm.swap_in_bytes,
            "swap_out_bytes": arm.swap_out_bytes,
            "demand_faults": arm.demand_faults,
            "predictive_faults": arm.predictive_faults,
            "evictions": arm.evictions,
            "bit_identical": result.identical_to_reference(name),
            "digests": {name_: f"{digest:016x}"
                        for name_, digest in sorted(arm.digests.items())},
        }
    return {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "tenants": result.tenants,
        "physical_ranks": result.physical_ranks,
        "overcommit_ratio": result.overcommit_ratio,
        "rounds_per_tenant": params["rounds"],
        "n_elements": params["n_elements"],
        "arms": arms,
        "paging_vs_emulation": result.paging_vs_emulation,
        "paging_vs_denial": result.paging_vs_denial,
        "_result": result,
    }


def print_report(report: dict) -> None:
    print(f"rank overcommit (mode={report['mode']}, "
          f"{report['rounds_per_tenant']} rounds per tenant)")
    print(overcommit_table(report["_result"]))


def check(report: dict, min_paging_vs_emulation: float) -> int:
    failures = []
    for name in ARMS:
        if not report["arms"][name]["bit_identical"]:
            failures.append(
                f"arm {name!r} outputs diverge from the reference host")
    ratio = report["paging_vs_emulation"]
    if ratio < min_paging_vs_emulation:
        failures.append(
            f"paging goodput only {ratio:.2f}x of emulation, below the "
            f"{min_paging_vs_emulation:.2f}x floor")
    paging = report["arms"]["paging"]
    if paging["admitted"] != paging["tenants"]:
        failures.append(
            f"paging admitted {paging['admitted']}/{paging['tenants']} "
            "tenants; overcommit must admit everyone")
    if paging["evictions"] == 0:
        failures.append(
            "paging arm recorded zero evictions — the schedule no longer "
            "exercises swapping")
    if failures:
        print("\nOVERCOMMIT CHECK FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\novercommit ok: all arms bit-identical, paging "
          f">= {min_paging_vs_emulation:.2f}x emulation goodput "
          f"({ratio:.2f}x measured)")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized schedule (fewer, smaller rounds)")
    parser.add_argument("--check", action="store_true",
                        help="fail below the overcommit floors")
    parser.add_argument("--update", action="store_true",
                        help=f"rewrite {DEFAULT_ARTIFACT.name}")
    parser.add_argument("--artifact", type=Path, default=DEFAULT_ARTIFACT,
                        help="artifact path for --update")
    parser.add_argument("--min-paging-vs-emulation", type=float,
                        default=1.05,
                        help="required paging/emulation goodput ratio "
                             "(default 1.05)")
    args = parser.parse_args(argv)

    report = measure(quick=args.quick)
    print_report(report)
    report.pop("_result")

    rc = 0
    if args.check:
        rc = check(report, args.min_paging_vs_emulation)
    if args.update and rc == 0:
        args.artifact.write_text(json.dumps(report, indent=2,
                                            sort_keys=True) + "\n")
        print(f"\nwrote {args.artifact}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
