#!/usr/bin/env python
"""Transfer-cache ablation: NW/BFS/MLP with the content-aware cache off/on.

The cache (``Optimization(cache=True)``, ``docs/transfer_cache.md``)
suppresses unchanged write extents and deduplicates broadcast-identical
payloads.  This harness measures what that buys on the iterative PrIM
apps whose write streams are the most redundant, and what it costs:

- **modeled T-data** per app, off vs on (the Fig. 13 step the cache
  attacks), with the cache's own digest cost charged against the win;
- **wall-clock** per app (the simulator pays real digest work too);
- a canonical sha256 over each app's *output*, asserting the
  bit-exactness contract: cache-on results must equal cache-off exactly.

The committed artifact is ``BENCH_TRANSFER_CACHE.json`` at the
repository root (full mode).  ``--check`` fails when any output pair
diverges or when the T-data reduction on NW or MLP falls below
``--min-reduction``.

Usage::

    python benchmarks/bench_transfer_cache.py --quick             # print only
    python benchmarks/bench_transfer_cache.py --update            # rewrite JSON
    python benchmarks/bench_transfer_cache.py --quick --check     # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from typing import List

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.transfer_cache import run_cache_ablation  # noqa: E402

DEFAULT_ARTIFACT = REPO_ROOT / "BENCH_TRANSFER_CACHE.json"
SCHEMA = "repro.bench_transfer_cache/1"

#: Apps the acceptance gate holds to the reduction floor.  BFS is
#: reported but not gated: its frontier writes genuinely change every
#: iteration, so its reduction is structural information, not a target.
GATED_APPS = ("NW", "MLP")


def measure(quick: bool) -> dict:
    ablation = run_cache_ablation(quick=quick)
    return {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "apps": ablation,
    }


def print_report(report: dict) -> None:
    print(f"transfer-cache ablation (mode={report['mode']})")
    print(f"{'app':6s} {'T-data off':>12s} {'T-data on':>12s} "
          f"{'cache cost':>12s} {'reduction':>10s}  outputs")
    for name, row in report["apps"].items():
        off, on = row["off"], row["on"]
        same = "identical" if row["outputs_identical"] else "DIVERGED"
        print(f"{name:6s} {off['tdata_s'] * 1e3:10.3f} ms "
              f"{on['tdata_s'] * 1e3:10.3f} ms "
              f"{on['cache_s'] * 1e3:10.3f} ms "
              f"{row['tdata_reduction']:9.2f}x  {same}")
        print(f"{'':6s} wall {off['wall_s'] * 1e3:8.1f} ms off / "
              f"{on['wall_s'] * 1e3:8.1f} ms on; modeled total "
              f"{off['modeled_total_s'] * 1e3:.2f} -> "
              f"{on['modeled_total_s'] * 1e3:.2f} ms")


def check(report: dict, min_reduction: float) -> int:
    failures = []
    for name, row in report["apps"].items():
        if not row["outputs_identical"]:
            failures.append(f"{name}: cache-on output diverged from cache-off")
        if not (row["off"]["verified"] and row["on"]["verified"]):
            failures.append(f"{name}: result failed CPU-reference verify")
    for name in GATED_APPS:
        row = report["apps"].get(name)
        if row and row["tdata_reduction"] < min_reduction:
            failures.append(
                f"{name}: T-data reduction {row['tdata_reduction']:.2f}x "
                f"below the {min_reduction:.2f}x floor")
    if failures:
        print("\nCACHE ABLATION CHECK FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\ncache ablation ok: outputs byte-identical, gated reductions "
          f">= {min_reduction:.2f}x")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads (test profile)")
    parser.add_argument("--check", action="store_true",
                        help="fail on divergence or insufficient reduction")
    parser.add_argument("--update", action="store_true",
                        help=f"rewrite {DEFAULT_ARTIFACT.name}")
    parser.add_argument("--artifact", type=Path, default=DEFAULT_ARTIFACT,
                        help="artifact path for --update")
    parser.add_argument("--min-reduction", type=float, default=1.3,
                        help="required T-data reduction on "
                             f"{'/'.join(GATED_APPS)} (default 1.3)")
    args = parser.parse_args(argv)

    report = measure(quick=args.quick)
    print_report(report)

    rc = 0
    if args.check:
        rc = check(report, args.min_reduction)
    if args.update and rc == 0:
        args.artifact.write_text(json.dumps(report, indent=2,
                                            sort_keys=True) + "\n")
        print(f"\nwrote {args.artifact}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
