"""Fig. 10 — Wikipedia Index Search, varying the DPU count.

Paper: 445 requests in 4 batches of 128 over a 63 MB index; execution
time grows with the DPU count (index distribution), while virtualization
overhead falls from 2.1x at 1 DPU (compute-dominated, userspace status
polling pays per-poll round trips) to 1.3x at 128 DPUs.
"""

from repro.analysis.figures import fig10_index_search
from repro.analysis.report import PAPER_CLAIMS, format_table
from repro.workloads.wikipedia import SyntheticCorpus


def bench_fig10_index_search(once):
    corpus = SyntheticCorpus(nr_documents=3000, vocabulary_size=12000, seed=7)
    points = once(fig10_index_search,
                  dpu_counts=(1, 8, 16, 60, 128), corpus=corpus)

    rows = [(p.x, f"{p.native_s * 1e3:.1f}", f"{p.vpim_s * 1e3:.1f}",
             f"{p.overhead:.2f}x") for p in points]
    print()
    print(format_table(["#DPUs", "native ms", "vPIM ms", "overhead"], rows,
                       title="Fig. 10 - Index Search"))

    claims = PAPER_CLAIMS["fig10"]
    overheads = [p.overhead for p in points]
    print(f"\npaper:    overhead {claims['overhead_1_dpu']}x at 1 DPU -> "
          f"{claims['overhead_128_dpus']}x at 128 DPUs")
    print(f"measured: overhead {overheads[0]:.2f}x -> {overheads[-1]:.2f}x")

    # Time grows with DPU count in both systems.
    assert points[-1].native_s > points[0].native_s
    assert points[-1].vpim_s > points[0].vpim_s
    # Overhead decreases with DPU count, from ~2x to ~1.3x.
    assert overheads[0] > overheads[-1]
    assert 1.6 <= overheads[0] <= 2.6
    assert 1.1 <= overheads[-1] <= 1.6
