"""Table 1 — the 16 PrIM applications run end-to-end and verify.

"First, all the applications run on vPIM without errors and with no
modifications required" — this bench is that claim: every Table 1 row
executes under full vPIM and matches its CPU reference.
"""

from repro.analysis.figures import run_app
from repro.analysis.report import format_table
from repro.apps.registry import PRIM_APPS


def bench_table1_all_apps_run_on_vpim(once):
    def experiment():
        rows = []
        for info in PRIM_APPS:
            rep = run_app(info.short_name, 16, mode="vm", profile="test")
            rows.append((info.domain, info.benchmark, info.short_name,
                         f"{rep.segments_total * 1e3:.2f} ms",
                         "OK" if rep.verified else "MISMATCH"))
        return rows

    rows = once(experiment)
    print()
    print(format_table(
        ["Domain", "Benchmark", "Short", "vPIM time", "Result"],
        rows, title="Table 1 - PrIM applications under vPIM"))
    assert all(row[4] == "OK" for row in rows)
