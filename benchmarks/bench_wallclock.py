#!/usr/bin/env python
"""Wall-clock performance harness: how fast is the *simulator* itself?

Every other benchmark in this directory reports **simulated** time — the
paper's metric.  This harness times the **wall clock**: how long the
simulator takes to push real bytes through the virtualized data plane
(interleave, serialize, translate, copy).  The paper's own optimization
story (Section 5.4.1, the AVX-512 "C code enhancement") is exactly this
distinction applied to the real backend, so the repo tracks it as a
first-class artifact: ``BENCH_WALLCLOCK.json`` at the repository root.

Three measurement groups:

- **micro** — the hot data-plane paths in isolation: the byte
  interleaving codec, wire-format serialize/deserialize/gather, the
  backend small-request dispatch storm, and raw ``MemoryRegion`` block
  traffic (the substrate every layer copies through);
- **suite** — the 16 PrIM applications end-to-end through a vPIM VM
  session (allocate, load, transfer, launch, verify, release);
- **modeled** — a digest over every *simulated* output the suite
  produced (segment breakdowns, W-rank steps, total times).  Data-plane
  work must change wall-clock only: a digest mismatch means an
  "optimization" silently changed the model and must be rejected.

Wall-clock numbers are machine-dependent, so the JSON embeds a memcpy
calibration (GB/s of a large ``numpy`` copy) and ``--check`` compares
calibration-normalized costs against the committed artifact.

Usage::

    python benchmarks/bench_wallclock.py --quick            # print only
    python benchmarks/bench_wallclock.py --update           # rewrite JSON
    python benchmarks/bench_wallclock.py --quick --check    # CI gate

``--check`` fails (exit 1) when the modeled digest differs from the
committed one, or when any group regresses by more than ``--threshold``
(default 20%) after calibration normalization.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.figures import SIZE_PROFILES, machine_for_dpus  # noqa: E402
from repro.apps.registry import PRIM_APPS, app_by_short_name  # noqa: E402
from repro.config import MRAM_HEAP_SYMBOL, PAGE_SIZE  # noqa: E402
from repro.core import VPim  # noqa: E402
from repro.hardware.bufpool import BufferPool  # noqa: E402
from repro.hardware.interleave import (  # noqa: E402
    deinterleave_into,
    interleave_into,
)
from repro.hardware.memory import MemoryRegion  # noqa: E402
from repro.sdk.transfer import uniform_write  # noqa: E402
from repro.virt.guest_memory import GuestMemory  # noqa: E402
from repro.virt.opts import OptimizationConfig  # noqa: E402
from repro.virt.serialization import (  # noqa: E402
    RequestHeader,
    RequestKind,
    deserialize_request,
    gather_entry_data,
    serialize_matrix,
)

DEFAULT_ARTIFACT = REPO_ROOT / "BENCH_WALLCLOCK.json"
SCHEMA = "repro.bench_wallclock/1"

#: Suite apps ordered as in Table 1.
SUITE_APPS = [info.short_name for info in PRIM_APPS]


# -- timing helpers -----------------------------------------------------------

def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall time of ``fn`` (min is the standard noise filter)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate_memcpy() -> float:
    """GB/s of a bulk numpy copy — the machine-speed normalizer."""
    src = np.ones(64 << 20, dtype=np.uint8)
    dst = np.empty_like(src)

    def copy():
        dst[:] = src

    secs = _best_of(copy, 5)
    return (src.size / secs) / 1e9


# -- micro paths --------------------------------------------------------------

def micro_interleave(quick: bool) -> Dict[str, float]:
    nbytes = (4 << 20) if quick else (16 << 20)
    data = (np.arange(nbytes, dtype=np.int64) % 251).astype(np.uint8)
    repeats = 5
    pool = BufferPool()

    def roundtrip():
        with pool.lease(nbytes) as fwd, pool.lease(nbytes) as back:
            interleave_into(data, fwd)
            deinterleave_into(fwd, back)

    secs = _best_of(roundtrip, repeats)
    assert pool.outstanding == 0, "interleave scratch leaked out of lease"
    return {"seconds": secs, "bytes": 2 * nbytes,
            "ns_per_byte": secs / (2 * nbytes) * 1e9}


def micro_serialize(quick: bool) -> Dict[str, float]:
    per_dpu = (16 << 10) if quick else (64 << 10)
    nr_dpus = 64
    rng = np.random.default_rng(7)
    bufs = [rng.integers(0, 255, per_dpu, dtype=np.uint8).astype(np.uint8)
            for _ in range(nr_dpus)]
    matrix = uniform_write(MRAM_HEAP_SYMBOL, 0, bufs)
    header = RequestHeader(kind=RequestKind.WRITE_RANK,
                           symbol=MRAM_HEAP_SYMBOL)
    memory = GuestMemory(512 << 20)

    def roundtrip():
        sreq = serialize_matrix(header, matrix, memory)
        _, entries, _ = deserialize_request(sreq.chain, memory)
        for entry in entries:
            gather_entry_data(entry, memory)

    secs = _best_of(roundtrip, 5)
    total = per_dpu * nr_dpus
    return {"seconds": secs, "bytes": total,
            "ns_per_byte": secs / total * 1e9}


def micro_backend_dispatch(quick: bool) -> Dict[str, float]:
    """Small-request storm: per-message metadata cost through the whole
    frontend -> virtio -> backend -> rank path (the Fig. 13 fixed steps)."""
    nr_requests = 64 if quick else 256
    vpim = VPim(machine_for_dpus(16))
    session = vpim.vm_session(nr_vupmem=1)
    from repro.sdk.dpu_set import DpuSet

    payload = (np.arange(2 * PAGE_SIZE, dtype=np.int64) % 253).astype(np.uint8)
    dpus = DpuSet(session.transport, 16)
    try:
        t0 = time.perf_counter()
        for i in range(nr_requests):
            # > SMALL_WRITE_BYTES so each write is one full round trip.
            dpus.copy_to_mram(i % 16, 0, payload)
        secs = time.perf_counter() - t0
    finally:
        dpus.free()
    return {"seconds": secs, "requests": nr_requests,
            "us_per_request": secs / nr_requests * 1e6}


def micro_memory_region(quick: bool) -> Dict[str, float]:
    """Blocked MRAM-style traffic: 2 KB DMA blocks, the kernel-runtime
    access pattern that dominates functional execution."""
    nr_blocks = 2048 if quick else 8192
    block = (np.arange(2048, dtype=np.int64) % 255).astype(np.uint8)
    region = MemoryRegion(64 << 20, name="bench")

    def traffic():
        for i in range(nr_blocks):
            off = (i * 2048) % (32 << 20)
            region.write(off, block)
            region.read(off, 2048)

    secs = _best_of(traffic, 3)
    total = nr_blocks * 2048 * 2
    return {"seconds": secs, "bytes": total,
            "ns_per_byte": secs / total * 1e9}


MICROS: Dict[str, Callable[[bool], Dict[str, float]]] = {
    "interleave_roundtrip": micro_interleave,
    "serialize_roundtrip": micro_serialize,
    "backend_dispatch": micro_backend_dispatch,
    "memory_region_blocked": micro_memory_region,
}


# -- the PrIM suite -----------------------------------------------------------

def run_suite(quick: bool, nr_dpus: int = 64, repeats: int = 2,
              opts: Optional[OptimizationConfig] = None) -> Dict[str, dict]:
    """Run the 16 PrIM apps end-to-end through a vPIM VM session.

    ``quick`` selects the CI-sized "test" workload profile; the full run
    uses the paper-shaped "bench" profile.  Returns per-app wall time
    plus every modeled output the digest covers.

    Each app runs ``repeats`` back-to-back repetitions in **one** VM
    session — the PrIM benchmarks' own rerun-the-kernel shape — and the
    best wall per app is kept (the standard guard against scheduler
    noise).  Sharing the session across repetitions is what exercises
    the shape-specialized plan cache: repetition 1 compiles transfer
    plans, later repetitions replay them (``docs/performance.md``).
    Modeled outputs must be identical on every repetition; a mismatch
    raises instead of silently digesting whichever repetition won.
    """
    profile = "test" if quick else "bench"
    results: Dict[str, dict] = {}
    # One app instance reused across repetitions: generating fresh
    # multi-MB workload arrays per repetition churns large mappings.
    # Reruns of one instance are deterministic (same seed, same modeled
    # output).
    apps = {name: app_by_short_name(name).cls(
                nr_dpus=nr_dpus, **dict(SIZE_PROFILES[profile][name]))
            for name in SUITE_APPS}
    nr_reps = max(1, repeats)
    for name in SUITE_APPS:
        vpim = VPim(machine_for_dpus(nr_dpus))
        session = vpim.vm_session(nr_vupmem=1, opts=opts)
        device = session.vm.devices[0]
        first = None
        best_wall = float("inf")
        rep_totals: List[str] = []
        for rep in range(nr_reps):
            t0 = time.perf_counter()
            report = session.run(apps[name])
            wall = time.perf_counter() - t0
            assert device.backend.pool.outstanding == 0, \
                f"{name}: backend scratch pool leaked a buffer"
            best_wall = min(best_wall, wall)
            rep_totals.append(float(report.total_time).hex())
            row = {
                "verified": bool(report.verified),
                "modeled_total_s": report.total_time,
                "segments": {k: v for k, v in
                             sorted(report.segments.items())},
                "wrank_steps": {k: v for k, v in
                                sorted(report.profile.wrank_steps.items())},
            }
            if first is None:
                # The digest covers repetition 1 — a fresh session, the
                # shape the committed baseline measured; later
                # repetitions only compete on wall time.
                first = row
            else:
                # Reruns in one session accumulate the profiler clock
                # from a different base, so segment sums carry ~1e-13 of
                # float dust; anything beyond that is a real model
                # change.  (Exact plans-on/off equality is enforced
                # per-repetition by the ablation comparison.)
                if row["verified"] != first["verified"]:
                    raise RuntimeError(
                        f"{name}: repetition {rep} changed verification")
                for group in ("segments", "wrank_steps"):
                    for key in set(row[group]) | set(first[group]):
                        a = row[group].get(key)
                        b = first[group].get(key)
                        if a is None or b is None or \
                                not math.isclose(a, b, rel_tol=1e-9,
                                                 abs_tol=1e-12):
                            raise RuntimeError(
                                f"{name}: repetition {rep} changed modeled "
                                f"output {group}.{key} ({a} vs {b})")
        plans = device.frontend.plans
        results[name] = dict(
            first, wall_s=best_wall, nr_reps=nr_reps, rep_totals=rep_totals,
            plan_cache=(
                None if plans is None else
                {"hits": plans.hits, "misses": plans.misses,
                 "evictions": plans.evictions,
                 "invalidations": plans.invalidations}))
    return {name: results[name] for name in SUITE_APPS}


def modeled_digest(suite: Dict[str, dict]) -> str:
    """sha256 over every simulated output, floats rendered exactly.

    Bit-identical modeled time before/after a data-plane change is the
    harness's correctness contract; ``float.hex()`` makes the comparison
    exact rather than print-precision-deep.
    """
    canon: List[str] = []
    for app in sorted(suite):
        row = suite[app]
        canon.append(app)
        canon.append(str(row["verified"]))
        canon.append(float(row["modeled_total_s"]).hex())
        for group in ("segments", "wrank_steps"):
            for key in sorted(row[group]):
                canon.append(f"{group}.{key}={float(row[group][key]).hex()}")
    return hashlib.sha256("\n".join(canon).encode()).hexdigest()


# -- report assembly ----------------------------------------------------------

def profile_suite(quick: bool, limit: int = 20) -> List[dict]:
    """One whole-suite pass under cProfile; top ``limit`` by cumulative.

    A separate single-repetition pass so the profiler's overhead never
    contaminates the timed measurements or the regression gates.
    """
    import cProfile
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    run_suite(quick, repeats=1)
    prof.disable()
    stats = pstats.Stats(prof)
    rows = sorted(stats.stats.items(), key=lambda kv: kv[1][3],
                  reverse=True)[:limit]
    top = []
    for (path, line, func), (_cc, ncalls, tottime, cumtime, _) in rows:
        where = func if path == "~" else f"{Path(path).name}:{line}:{func}"
        top.append({"function": where, "ncalls": ncalls,
                    "tottime_s": tottime, "cumtime_s": cumtime})
    return top


def measure(quick: bool, repeats: int = 2, ablate_plans: bool = False,
            profile: bool = False) -> dict:
    calibration = calibrate_memcpy()
    micro = {name: fn(quick) for name, fn in MICROS.items()}
    suite = run_suite(quick, repeats=repeats)
    suite_wall = sum(row["wall_s"] for row in suite.values())
    report = {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "calibration_memcpy_gbps": calibration,
        "micro": micro,
        "suite": suite,
        "suite_wall_s": suite_wall,
        "modeled_digest": modeled_digest(suite),
    }
    if ablate_plans:
        # Same machine, back-to-back arms: the memcpy calibration factor
        # cancels, so the plain wall ratio IS the calibration-normalized
        # speedup.
        off = run_suite(quick, repeats=repeats,
                        opts=OptimizationConfig(plans=False))
        off_wall = sum(row["wall_s"] for row in off.values())
        off_digest = modeled_digest(off)
        # Bit-identity must hold repetition-by-repetition, not just on
        # the digested first repetition: a replayed plan may not shift
        # any repetition's modeled total relative to the naive path.
        reps_match = all(off[name]["rep_totals"] == suite[name]["rep_totals"]
                         for name in suite)
        report["plans_ablation"] = {
            "off_wall_s": off_wall,
            "on_wall_s": suite_wall,
            "speedup": off_wall / suite_wall,
            "digests_match": (off_digest == report["modeled_digest"]
                              and reps_match),
            "off_digest": off_digest,
            "per_app_speedup": {
                name: off[name]["wall_s"] / suite[name]["wall_s"]
                for name in suite},
        }
    if profile:
        report["profile_top20"] = profile_suite(quick)
    return report


def print_report(report: dict, baseline: dict | None = None) -> None:
    print(f"calibration: memcpy {report['calibration_memcpy_gbps']:.2f} GB/s"
          f"  (mode={report['mode']})")
    print("\nmicro paths:")
    for name, row in report["micro"].items():
        unit = ("us_per_request" if "us_per_request" in row
                else "ns_per_byte")
        print(f"  {name:28s} {row['seconds'] * 1e3:9.2f} ms"
              f"  {row[unit]:9.3f} {unit}")
    print("\nPrIM suite (end-to-end vPIM sessions):")
    for app, row in report["suite"].items():
        mark = "ok" if row["verified"] else "MISMATCH"
        print(f"  {app:10s} {row['wall_s'] * 1e3:9.1f} ms wall"
              f"   {row['modeled_total_s'] * 1e3:9.2f} ms modeled  {mark}")
    print(f"\nsuite wall total: {report['suite_wall_s'] * 1e3:.1f} ms")
    print(f"modeled digest:   {report['modeled_digest'][:32]}…")
    ablation = report.get("plans_ablation")
    if ablation:
        match = "match" if ablation["digests_match"] else "MISMATCH"
        print(f"plans ablation:   off {ablation['off_wall_s'] * 1e3:.1f} ms"
              f" -> on {ablation['on_wall_s'] * 1e3:.1f} ms"
              f"  ({ablation['speedup']:.2f}x, digests {match})")
    for row in report.get("profile_top20", ()):
        print(f"  {row['cumtime_s'] * 1e3:9.1f} ms cum"
              f"  {row['ncalls']:>9} calls  {row['function']}")
    if baseline:
        speed = baseline["suite_wall_s"] / report["suite_wall_s"]
        print(f"baseline suite:   {baseline['suite_wall_s'] * 1e3:.1f} ms"
              f"  -> speedup {speed:.2f}x")


def check_regression(report: dict, committed: dict, threshold: float,
                     ablation_floor: float = 1.0) -> int:
    """CI gate: digest must match exactly; wall costs may not regress by
    more than ``threshold`` after memcpy-speed normalization.

    When the run carried a plans ablation, it must also prove the plan
    cache is working: both arms bit-identical, suite speedup at least
    ``ablation_floor``, and every multi-repetition app must have replayed
    at least one plan.
    """
    failures = []
    ablation = report.get("plans_ablation")
    if ablation:
        if not ablation["digests_match"]:
            failures.append(
                "plans ablation digest mismatch: plans-on and plans-off "
                f"modeled outputs differ ({ablation['off_digest'][:16]}… "
                f"off vs {report['modeled_digest'][:16]}… on)")
        if ablation["speedup"] < ablation_floor:
            failures.append(
                f"plans ablation speedup {ablation['speedup']:.3f}x is "
                f"below the floor {ablation_floor:.2f}x")
        for app, row in report["suite"].items():
            stats = row.get("plan_cache")
            if (stats is not None and row.get("nr_reps", 1) > 1
                    and stats["hits"] == 0):
                failures.append(
                    f"{app}: ran {row['nr_reps']} repetitions but replayed "
                    "no plan (plan_cache hits == 0)")
    if committed.get("mode") != report["mode"]:
        print(f"note: committed artifact is mode={committed.get('mode')!r}, "
              f"this run is mode={report['mode']!r}; comparing anyway")
    if committed["modeled_digest"] != report["modeled_digest"]:
        if committed.get("mode") == report["mode"]:
            failures.append(
                "modeled-time digest mismatch: the data plane changed "
                f"simulated outputs ({report['modeled_digest'][:16]}… vs "
                f"committed {committed['modeled_digest'][:16]}…)")
        else:
            print("note: digest not comparable across modes, skipping")

    # Normalize: a machine with half the memcpy speed is allowed to be
    # half as fast on every wall metric.
    scale = (report["calibration_memcpy_gbps"]
             / committed["calibration_memcpy_gbps"])

    def gate(label: str, now: float, then: float) -> None:
        normalized = now * scale
        if normalized > then * (1.0 + threshold):
            failures.append(
                f"{label}: {now * 1e3:.1f} ms (normalized "
                f"{normalized * 1e3:.1f} ms) vs committed "
                f"{then * 1e3:.1f} ms — >{threshold:.0%} regression")

    if committed.get("mode") == report["mode"]:
        gate("suite_wall", report["suite_wall_s"], committed["suite_wall_s"])
    for name, row in report["micro"].items():
        then = committed.get("micro", {}).get(name)
        if then:
            gate(f"micro.{name}", row["seconds"], then["seconds"])

    if failures:
        print("\nPERF CHECK FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nperf check ok: digest identical, no wall-clock regression "
          f"beyond {threshold:.0%}")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads (test profile)")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the committed artifact")
    parser.add_argument("--update", action="store_true",
                        help=f"rewrite {DEFAULT_ARTIFACT.name}")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional wall regression (default 0.20)")
    parser.add_argument("--artifact", type=Path, default=DEFAULT_ARTIFACT,
                        help="artifact path for --check/--update")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="pre-optimization JSON to embed and compare")
    parser.add_argument("--repeats", type=int, default=2,
                        help="wall-time repetitions per app, best kept "
                             "(default 2)")
    parser.add_argument("--ablate-plans", action="store_true",
                        help="also run the suite with the plan cache off "
                             "and record the speedup + digest comparison")
    parser.add_argument("--ablation-floor", type=float, default=1.0,
                        help="minimum plans-off/plans-on suite speedup "
                             "--check accepts (default 1.0)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile one suite pass; record the top-20 "
                             "cumulative hot functions")
    args = parser.parse_args(argv)

    report = measure(quick=args.quick, repeats=args.repeats,
                     ablate_plans=args.ablate_plans, profile=args.profile)

    baseline = None
    if args.baseline and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        report["baseline"] = {
            "suite_wall_s": baseline["suite_wall_s"],
            "micro": {k: {"seconds": v["seconds"]}
                      for k, v in baseline["micro"].items()},
            "calibration_memcpy_gbps": baseline["calibration_memcpy_gbps"],
            "modeled_digest": baseline["modeled_digest"],
            "mode": baseline.get("mode"),
        }
        report["speedup_vs_baseline"] = (
            baseline["suite_wall_s"] / report["suite_wall_s"])

    print_report(report, baseline)

    rc = 0
    if args.check:
        if not args.artifact.exists():
            print(f"no committed artifact at {args.artifact}; cannot check")
            rc = 1
        else:
            committed = json.loads(args.artifact.read_text())
            rc = check_regression(report, committed, args.threshold,
                                  ablation_floor=args.ablation_floor)

    if args.update and rc == 0:
        args.artifact.write_text(json.dumps(report, indent=2,
                                            sort_keys=True) + "\n")
        print(f"\nwrote {args.artifact}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
