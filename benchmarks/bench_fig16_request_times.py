"""Fig. 16 — per-rank virtio request times of one 8-rank write.

Paper: sequential handling processes rank requests one after the other
(completion times form a staircase); with parallel handling all ranks
complete nearly together, bounded by the slowest request plus memory-bus
contention.
"""

from repro.analysis.figures import fig16_request_times
from repro.analysis.report import format_table


def bench_fig16_request_times(once):
    out = once(fig16_request_times, nr_ranks=8, mb_per_dpu=1.0)

    seq = out["vPIM-Seq"]
    par = out["vPIM"]
    rows = [(rank_seq[0], f"{rank_seq[1]:.4f}", f"{rank_par[1]:.4f}")
            for rank_seq, rank_par in zip(seq, par)]
    print()
    print(format_table(["rank", "sequential s", "parallel s"], rows,
                       title="Fig. 16 - per-rank completion of one write"))

    seq_times = [t for _, t in seq]
    par_times = [t for _, t in par]
    # Sequential: strictly increasing staircase.
    assert all(b > a for a, b in zip(seq_times, seq_times[1:]))
    # Parallel: uniform completions, between one request and the staircase.
    assert max(par_times) - min(par_times) < 1e-9
    assert seq_times[0] < par_times[0] < seq_times[-1]
    total_speedup = seq_times[-1] / par_times[-1]
    print(f"\nmeasured total-time speedup from parallel handling: "
          f"{total_speedup:.2f}x")
    assert total_speedup > 1.2
