"""Table 2 — every optimization configuration, exercised end-to-end.

Runs NW under all Table 2 presets and verifies that (a) results stay
correct under every configuration and (b) each enabled optimization
contributes: "Each optimization in vPIM makes a meaningful contribution
to the overall system performance" (Section 5, result 4).
"""

from repro.analysis.figures import SIZE_PROFILES, machine_for_dpus
from repro.analysis.report import format_table
from repro.apps.prim.nw import NeedlemanWunsch
from repro.core import VPim
from repro.virt.opts import PRESETS


def bench_table2_preset_matrix(once):
    def experiment():
        params = SIZE_PROFILES["test"]["NW"]
        results = []
        for name in PRESETS:
            cfg = machine_for_dpus(16)
            session = VPim(cfg).vm_session(nr_vupmem=1, preset_name=name)
            rep = session.run(NeedlemanWunsch(nr_dpus=16, **params))
            results.append((name, rep))
        return results

    results = once(experiment)
    opts = {name: PRESETS[name] for name, _ in results}
    rows = []
    for name, rep in results:
        o = opts[name]
        rows.append((name,
                     "Y" if o.c_enhancement else "-",
                     "Y" if o.prefetch_cache else "-",
                     "Y" if o.request_batching else "-",
                     "Y" if o.parallel_handling else "-",
                     f"{rep.segments_total * 1e3:.1f}",
                     "OK" if rep.verified else "MISMATCH"))
    print()
    print(format_table(
        ["preset", "C", "Prefetch", "Batching", "Parallel", "NW ms", "verify"],
        rows, title="Table 2 - optimization matrix on NW"))

    by_name = dict(results)
    assert all(rep.verified for _, rep in results)
    # Each optimization must contribute on this workload.
    assert by_name["vPIM+P"].segments_total < by_name["vPIM-C"].segments_total
    assert by_name["vPIM+B"].segments_total < by_name["vPIM-C"].segments_total
    assert by_name["vPIM+PB"].segments_total < min(
        by_name["vPIM+P"].segments_total, by_name["vPIM+B"].segments_total)
