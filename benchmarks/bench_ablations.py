"""Design-choice ablations beyond the paper's figures.

These back the paper's takeaways and design constants with sweeps:

- **Takeaway 1**: "vPIM developers should disable the Prefetch Cache
  when their code lacks frequent small-size data transfer patterns" —
  shown on RED, whose single small read only *loses* from prefetching.
- **Prefetch capacity** (16 pages/DPU in the paper) and **batch
  capacity** (64 pages/DPU) sweeps on NW.
- **Translation threads**: "using more than 8 threads does not provide
  additional benefits" (Section 4.2).
- The Section 7 extensions: **oversubscription** slowdown +
  consolidation, and the **vhost** transition-cost reduction.
"""

import numpy as np

from repro.analysis.figures import machine_for_dpus
from repro.analysis.report import format_table
from repro.apps.prim.nw import NeedlemanWunsch
from repro.apps.prim.red import Reduction
from repro.apps.prim.va import VectorAdd
from repro.config import MRAM_HEAP_SYMBOL, small_machine
from repro.core import VPim
from repro.driver.driver import UpmemDriver
from repro.hardware.machine import Machine
from repro.hardware.timing import DEFAULT_COST_MODEL
from repro.sdk.dpu_set import DpuSet
from repro.sdk.transfer import uniform_write
from repro.virt.backend import VUpmemBackend
from repro.virt.guest_memory import GuestMemory
from repro.virt.opts import OptimizationConfig
from repro.virt.serialization import RequestHeader, RequestKind, serialize_matrix


def run_red(prefetch: bool):
    vpim = VPim(machine_for_dpus(16))
    opts = OptimizationConfig(prefetch_cache=prefetch)
    session = vpim.vm_session(nr_vupmem=1, opts=opts)
    return session.run(Reduction(nr_dpus=16, n_elements=1 << 18))


def bench_takeaway1_disable_prefetch_for_red(once):
    def experiment():
        return run_red(prefetch=True), run_red(prefetch=False)

    with_p, without_p = once(experiment)
    rows = [
        ("prefetch ON", f"{with_p.segments['Inter-DPU'] * 1e3:.3f}",
         f"{with_p.segments_total * 1e3:.2f}"),
        ("prefetch OFF", f"{without_p.segments['Inter-DPU'] * 1e3:.3f}",
         f"{without_p.segments_total * 1e3:.2f}"),
    ]
    print()
    print(format_table(["config", "Inter-DPU ms", "total ms"], rows,
                       title="Takeaway 1 - RED with/without the prefetch cache"))
    # RED's one small read only triggers a useless segment fetch.
    assert (without_p.segments["Inter-DPU"]
            < with_p.segments["Inter-DPU"] * 0.5)
    assert without_p.segments_total < with_p.segments_total
    assert with_p.verified and without_p.verified


def _run_nw(**opt_kwargs):
    vpim = VPim(machine_for_dpus(16))
    opts = OptimizationConfig(**opt_kwargs)
    session = vpim.vm_session(nr_vupmem=1, opts=opts)
    return session.run(NeedlemanWunsch(nr_dpus=16, seq_len=512,
                                       block_size=64))


def bench_prefetch_capacity_sweep(once):
    def experiment():
        return [(pages, _run_nw(prefetch_pages_per_dpu=pages,
                                request_batching=False))
                for pages in (4, 16, 64)]

    results = once(experiment)
    rows = [(pages, f"{rep.segments_total * 1e3:.1f}",
             rep.profile.messages.cache_hits,
             rep.profile.messages.cache_refills)
            for pages, rep in results]
    print()
    print(format_table(["pages/DPU", "NW total ms", "hits", "refills"], rows,
                       title="Prefetch cache capacity sweep (paper: 16)"))
    assert all(rep.verified for _, rep in results)
    # A larger cache never increases the refill count.
    refills = [rep.profile.messages.cache_refills for _, rep in results]
    assert refills == sorted(refills, reverse=True)


def bench_batch_capacity_sweep(once):
    """TRNS stages ~64 KB of tiles per DPU before launching, so the
    batch capacity directly controls how many flushes that takes."""
    from repro.apps.prim.trns import Transpose

    def run_trns(pages):
        vpim = VPim(machine_for_dpus(16))
        opts = OptimizationConfig(batch_pages_per_dpu=pages,
                                  prefetch_cache=False)
        session = vpim.vm_session(nr_vupmem=1, opts=opts)
        return session.run(Transpose(nr_dpus=16, n_rows=512, n_cols=512,
                                     tile_dim=16))

    def experiment():
        return [(pages, run_trns(pages)) for pages in (1, 4, 64)]

    results = once(experiment)
    rows = [(pages, f"{rep.segments_total * 1e3:.1f}",
             rep.profile.messages.requests,
             rep.profile.messages.batched_writes)
            for pages, rep in results]
    print()
    print(format_table(["pages/DPU", "TRNS total ms", "messages", "batched"],
                       rows,
                       title="Batch buffer capacity sweep (paper: 64)"))
    assert all(rep.verified for _, rep in results)
    msgs = [rep.profile.messages.requests for _, rep in results]
    assert msgs[0] > msgs[1] >= msgs[2], "bigger buffers must merge more"


def bench_translation_thread_saturation(once):
    """Section 4.2: translation threads saturate at 8."""
    def experiment():
        machine = Machine(small_machine(nr_ranks=1, dpus_per_rank=8))
        driver = UpmemDriver(machine)
        memory = GuestMemory(256 << 20)
        data = np.zeros(1 << 22, dtype=np.uint8)
        matrix = uniform_write(MRAM_HEAP_SYMBOL, 0, [data] * 2)
        header = RequestHeader(kind=RequestKind.WRITE_RANK,
                               symbol=MRAM_HEAP_SYMBOL)
        out = []
        for threads in (1, 2, 4, 8, 16):
            backend = VUpmemBackend(f"t{threads}", driver, memory,
                                    DEFAULT_COST_MODEL,
                                    translation_threads=threads)
            backend.link_rank(0)
            chain = serialize_matrix(header, matrix, memory).chain
            out.append((threads, backend.process(chain).steps["Deser"]))
            backend.unlink()
        return out

    results = once(experiment)
    rows = [(t, f"{d * 1e6:.1f}") for t, d in results]
    print()
    print(format_table(["threads", "Deser us"], rows,
                       title="GPA->HVA translation thread sweep"))
    by_threads = dict(results)
    assert by_threads[1] > by_threads[8]          # threading helps...
    assert by_threads[16] == by_threads[8]        # ...but saturates at 8


def bench_section7_extensions(once):
    """Oversubscription + consolidation + vhost, end to end."""
    def experiment():
        # Oversubscription: tenant B spills to an emulated rank.
        vpim = VPim(small_machine(nr_ranks=1, dpus_per_rank=8),
                    oversubscription=True)
        holder = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
        tenant = vpim.vm_session(nr_vupmem=1, mem_bytes=1 << 30)
        hold = DpuSet(holder.transport, 8)
        spilled = tenant.run(VectorAdd(nr_dpus=8, n_elements=1 << 18))

        vpim2 = VPim(small_machine(nr_ranks=1, dpus_per_rank=8))
        physical = vpim2.vm_session(nr_vupmem=1).run(
            VectorAdd(nr_dpus=8, n_elements=1 << 18))
        hold.free()

        # vhost: same NW run with and without the in-kernel path.
        base = _run_nw()
        vhost = _run_nw(vhost_vsock=True)
        return spilled, physical, base, vhost

    spilled, physical, base, vhost = once(experiment)
    rows = [
        ("VA on emulated rank", f"{spilled.segments_total * 1e3:.2f}",
         "OK" if spilled.verified else "BAD"),
        ("VA on physical rank", f"{physical.segments_total * 1e3:.2f}",
         "OK" if physical.verified else "BAD"),
        ("NW virtio path", f"{base.segments_total * 1e3:.2f}",
         "OK" if base.verified else "BAD"),
        ("NW vhost path", f"{vhost.segments_total * 1e3:.2f}",
         "OK" if vhost.verified else "BAD"),
    ]
    print()
    print(format_table(["configuration", "total ms", "verify"], rows,
                       title="Section 7 extensions"))
    print(f"\noversubscription slowdown: "
          f"{spilled.segments_total / physical.segments_total:.1f}x "
          f"(runs, degraded, instead of failing)")
    print(f"vhost transition saving on NW: "
          f"{(1 - vhost.segments_total / base.segments_total):.1%}")
    assert spilled.verified and vhost.verified
    assert spilled.segments_total > physical.segments_total
    assert vhost.segments_total < base.segments_total
