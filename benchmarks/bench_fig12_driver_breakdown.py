"""Fig. 12 — driver-centric breakdown: CI, read-from-rank, write-to-rank.

Paper (checksum, 60 DPUs, 16 vCPUs, 8 MB): CI and read-from-rank times
are similar across the Rust and C implementations; write-to-rank is what
separates them — it dominates in Rust.
"""

import pytest

from repro.analysis.figures import fig12_driver_breakdown
from repro.analysis.report import format_table
from repro.sdk.profile import OP_CI, OP_READ, OP_WRITE


def bench_fig12_driver_breakdown(once):
    rust, c = once(fig12_driver_breakdown, scale=16)

    rows = []
    for row in (rust, c):
        ci_n, ci_t = row.ops.get(OP_CI, (0, 0.0))
        r_n, r_t = row.ops.get(OP_READ, (0, 0.0))
        w_n, w_t = row.ops.get(OP_WRITE, (0, 0.0))
        rows.append((row.mode, f"{ci_t * 1e3:.1f} ({ci_n})",
                     f"{r_t * 1e3:.2f} ({r_n})",
                     f"{w_t * 1e3:.1f} ({w_n})"))
    print()
    print(format_table(
        ["mode", "CI ms (ops)", "R-rank ms (ops)", "W-rank ms (ops)"],
        rows, title="Fig. 12 - driver-centric breakdown (checksum 8 MB)"))

    # CI and R-rank are implementation-independent; W-rank dominates in rust.
    assert rust.ops[OP_CI][1] == pytest.approx(c.ops[OP_CI][1], rel=0.05)
    assert rust.ops[OP_READ][1] == pytest.approx(c.ops[OP_READ][1], rel=0.25)
    assert rust.ops[OP_WRITE][1] > 2 * c.ops[OP_WRITE][1]
    assert rust.ops[OP_WRITE][1] > rust.ops[OP_READ][1]
