"""Fig. 11 — the C/AVX-512 enhancement vs the Rust/AVX2 data path.

Paper: checksum under vPIM-rust averages ~5.2x over native; vPIM-C
averages ~1.4x.  Varying (a) the DPU count at 60 MB/DPU and (b) the file
size at 60 DPUs.
"""

from repro.analysis.figures import fig11_c_enhancement
from repro.analysis.report import PAPER_CLAIMS, format_table


def bench_fig11_c_enhancement(once):
    sweeps = once(fig11_c_enhancement, scale=16)

    print()
    all_points = []
    for name, xlabel in (("dpus", "#DPUs"), ("size", "MB/DPU")):
        rows = []
        for p in sweeps[name]:
            rust = p.variants["vPIM-rust"]
            c = p.variants["vPIM-C"]
            rows.append((p.x, f"{p.native_s:.4f}",
                         f"{rust:.4f} ({rust / p.native_s:.2f}x)",
                         f"{c:.4f} ({c / p.native_s:.2f}x)"))
            all_points.append(p)
        print(format_table([xlabel, "native s", "vPIM-rust", "vPIM-C"], rows,
                           title=f"Fig. 11 ({name}) - checksum"))
        print()

    claims = PAPER_CLAIMS["fig11"]
    rust_avg = sum(p.variants["vPIM-rust"] / p.native_s
                   for p in all_points) / len(all_points)
    c_avg = sum(p.variants["vPIM-C"] / p.native_s
                for p in all_points) / len(all_points)
    print(f"paper:    rust avg {claims['rust_avg_overhead']}x, "
          f"C avg {claims['c_avg_overhead']}x")
    print(f"measured: rust avg {rust_avg:.2f}x, C avg {c_avg:.2f}x")

    assert rust_avg > 3.0
    assert c_avg < 2.6
    assert rust_avg > 2.5 * c_avg
