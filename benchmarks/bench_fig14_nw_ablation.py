"""Fig. 14 — NW under the Prefetch Cache / Request Batching ablation.

Paper (NW, single-rank strong scaling, >15000 transfers of ~109 B):

- the unoptimized vPIM-C is ~53x over native;
- Prefetch Cache cuts the boundary read time by 89.3% (messages on the
  read path drop from ~5000 to ~125);
- Request Batching cuts CPU-DPU and Inter-DPU write time by 95.8% and
  95.3% (guest-VMM context switches drop from ~10000 to ~402);
- the combination wins 10.8x over vPIM-C.
"""

from repro.analysis.figures import fig14_nw_ablation
from repro.analysis.report import PAPER_CLAIMS, format_table


def bench_fig14_nw_ablation(once):
    rows_data = once(fig14_nw_ablation, profile="bench", nr_dpus=60)
    by_mode = {r.mode: r for r in rows_data}

    rows = []
    for r in rows_data:
        rows.append((r.mode, f"{r.total_s * 1e3:.1f}",
                     f"{r.segments['CPU-DPU'] * 1e3:.1f}",
                     f"{r.segments['DPU'] * 1e3:.1f}",
                     f"{r.segments['Inter-DPU'] * 1e3:.1f}",
                     r.messages, r.batched, r.cache_hits))
    print()
    print(format_table(
        ["mode", "total ms", "CPU-DPU", "DPU", "Inter-DPU",
         "messages", "batched", "cache hits"],
        rows, title="Fig. 14 - NW optimization ablation (60 DPUs)"))

    claims = PAPER_CLAIMS["fig14"]
    native = by_mode["native"]
    base = by_mode["vPIM-C"]
    pb = by_mode["vPIM+PB"]

    naive_overhead = base.total_s / native.total_s
    combined_speedup = base.total_s / pb.total_s
    read_cut = 1 - by_mode["vPIM+P"].segments["Inter-DPU"] / base.segments["Inter-DPU"]
    write_cut = 1 - by_mode["vPIM+B"].segments["CPU-DPU"] / base.segments["CPU-DPU"]
    msg_cut = base.messages / max(1, pb.messages)

    print(f"\npaper:    naive overhead {claims['naive_overhead']}x; "
          f"prefetch read cut {claims['prefetch_read_reduction']:.1%}; "
          f"batching write cut {claims['batching_writes_reduction']:.1%}; "
          f"combined speedup {claims['combined_speedup']}x; "
          f"messages {claims['batching_ctx_before']} -> "
          f"{claims['batching_ctx_after']}")
    print(f"measured: naive overhead {naive_overhead:.1f}x; "
          f"prefetch read cut {read_cut:.1%}; "
          f"batching write cut {write_cut:.1%}; "
          f"combined speedup {combined_speedup:.1f}x; "
          f"messages {base.messages} -> {pb.messages}")

    # Shapes: big naive overhead, large per-optimization cuts, the
    # combination wins the most, messages drop by >= 10x.
    assert naive_overhead > 3.0
    assert read_cut > 0.5
    assert write_cut > 0.8
    assert combined_speedup > 2.0
    assert msg_cut > 10
    assert pb.total_s < by_mode["vPIM+P"].total_s
    assert pb.total_s < by_mode["vPIM+B"].total_s
