#!/usr/bin/env python
"""Noisy-neighbor QoS benchmark: victim latency with enforcement off/on.

Two VMs share one host (``docs/qos.md``): a latency-sensitive victim
running small Binary Search sessions and a noisy tenant pushing bulk
Vector Addition transfers.  The same schedule runs twice — QoS
registered but unenforced (FIFO event loop, unweighted bus steal) and
enforced (weighted-fair queueing, weight-proportional steal) — and this
harness scores the isolation:

- the victim's per-session execution latency (p50/p99/mean) per arm;
- aggregate session throughput per arm (isolation must be ~free);
- the two acceptance ratios: victim p99 improvement and on/off
  throughput.

The committed artifact is ``BENCH_QOS.json`` at the repository root
(full mode).  ``--check`` fails when the p99 improvement falls below
``--min-p99-improvement`` (default 2.0) or aggregate throughput drops
below ``--min-throughput-ratio`` (default 0.9) of the unenforced arm.

Usage::

    python benchmarks/bench_qos_isolation.py --quick             # print only
    python benchmarks/bench_qos_isolation.py --update            # rewrite JSON
    python benchmarks/bench_qos_isolation.py --quick --check     # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from typing import List

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.qos import isolation_table, run_isolation  # noqa: E402

DEFAULT_ARTIFACT = REPO_ROOT / "BENCH_QOS.json"
SCHEMA = "repro.bench_qos_isolation/1"

QUICK_SESSIONS = 6
FULL_SESSIONS = 16


def measure(quick: bool) -> dict:
    sessions = QUICK_SESSIONS if quick else FULL_SESSIONS
    result = run_isolation(sessions=sessions)
    arms = {}
    for name, arm in (("off", result.off), ("on", result.on)):
        arms[name] = {
            "enforce": arm.enforce,
            "victim_p50_s": arm.victim_p50,
            "victim_p99_s": arm.victim_p99,
            "victim_mean_s": arm.victim_mean,
            "victim_latencies_s": arm.victim_latencies,
            "noisy_mean_s": (sum(arm.noisy_latencies)
                             / max(1, len(arm.noisy_latencies))),
            "sessions": arm.sessions,
            "makespan_s": arm.makespan_s,
            "throughput_per_s": arm.throughput_per_s,
        }
    return {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "sessions_per_arm": sessions,
        "arms": arms,
        "p99_improvement": result.p99_improvement,
        "throughput_ratio": result.throughput_ratio,
        "_result": result,
    }


def print_report(report: dict) -> None:
    print(f"qos isolation (mode={report['mode']}, "
          f"{report['sessions_per_arm']} session pairs per arm)")
    print(isolation_table(report["_result"]))


def check(report: dict, min_p99_improvement: float,
          min_throughput_ratio: float) -> int:
    failures = []
    if report["p99_improvement"] < min_p99_improvement:
        failures.append(
            f"victim p99 improvement {report['p99_improvement']:.2f}x "
            f"below the {min_p99_improvement:.2f}x floor")
    if report["throughput_ratio"] < min_throughput_ratio:
        failures.append(
            f"aggregate throughput ratio {report['throughput_ratio']:.2f} "
            f"below the {min_throughput_ratio:.2f} floor")
    if failures:
        print("\nQOS ISOLATION CHECK FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nqos isolation ok: p99 improvement "
          f">= {min_p99_improvement:.1f}x, throughput ratio "
          f">= {min_throughput_ratio:.2f}")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized schedule (fewer session pairs)")
    parser.add_argument("--check", action="store_true",
                        help="fail below the isolation floors")
    parser.add_argument("--update", action="store_true",
                        help=f"rewrite {DEFAULT_ARTIFACT.name}")
    parser.add_argument("--artifact", type=Path, default=DEFAULT_ARTIFACT,
                        help="artifact path for --update")
    parser.add_argument("--min-p99-improvement", type=float, default=2.0,
                        help="required victim p99 shrink factor "
                             "(default 2.0)")
    parser.add_argument("--min-throughput-ratio", type=float, default=0.9,
                        help="required on/off aggregate throughput ratio "
                             "(default 0.9)")
    args = parser.parse_args(argv)

    report = measure(quick=args.quick)
    print_report(report)
    report.pop("_result")

    rc = 0
    if args.check:
        rc = check(report, args.min_p99_improvement,
                   args.min_throughput_ratio)
    if args.update and rc == 0:
        args.artifact.write_text(json.dumps(report, indent=2,
                                            sort_keys=True) + "\n")
        print(f"\nwrote {args.artifact}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
