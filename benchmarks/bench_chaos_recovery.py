"""Chaos replay contract: deterministic faults, invisible when unarmed.

Three properties back the ``repro.faults`` design:

- **Replay**: the same seed produces a byte-identical fault timeline
  (equal sha256 digests) and an identical ``repro_fault_*`` metric
  snapshot — faults are plan-driven, never wall-clock- or
  iteration-order-driven.
- **Zero unarmed overhead**: a run with *no* plan armed produces the
  exact same simulated durations and verification results as the
  no-faults baseline, so every published figure is unaffected by the
  subsystem existing.
- **Recovery**: sessions survive rank failures by re-running on
  replacement ranks, and a fleet survives host crashes by re-placing
  every tenant (``sessions_lost == 0``).
"""

from repro.analysis.chaos import (
    ChaosConfig,
    build_plan,
    run_chaos,
    run_cluster_chaos,
)
from repro.analysis.figures import machine_for_dpus
from repro.analysis.report import format_table
from repro.apps.prim.va import VectorAdd
from repro.cluster import ClusterConfig, ScenarioConfig
from repro.core import VPim
from repro.faults import FaultInjector, FaultKind, FaultPlan

CHAOS = ChaosConfig(seed=3, fault_rate_per_s=6.0, nr_sessions=6)


def bench_same_seed_identical_timeline(once):
    def experiment():
        return run_chaos(CHAOS), run_chaos(CHAOS)

    first, second = once(experiment)
    assert first.timeline == second.timeline
    assert first.timeline_digest == second.timeline_digest
    assert first.metric_snapshot == second.metric_snapshot
    assert first.faults_fired > 0, "chaos run fired no faults"
    assert first.sessions_lost == 0
    rows = [(run, res.timeline_digest[:16], res.faults_fired,
             res.sessions_lost, f"{res.makespan_s:.4f}")
            for run, res in (("first", first), ("second", second))]
    print()
    print(format_table(
        ["run", "digest[:16]", "faults", "lost", "makespan s"], rows,
        title=f"Same-seed replay (seed={CHAOS.seed})"))


def _baseline_run(armed_empty_plan: bool):
    vpim = VPim(machine_for_dpus(16))
    if armed_empty_plan:
        injector = FaultInjector(FaultPlan(seed=0), vpim.clock,
                                 registry=vpim.machine.metrics)
        injector.arm_machine(vpim.machine, vpim.manager)
    session = vpim.vm_session(nr_vupmem=1)
    if armed_empty_plan:
        injector.arm_vm(session.vm)
    report = session.run(VectorAdd(nr_dpus=16, n_elements=1 << 16))
    return report, vpim.clock.now


def bench_unarmed_matches_baseline(once):
    def experiment():
        return _baseline_run(False), _baseline_run(True)

    (plain, plain_now), (armed, armed_now) = once(experiment)
    assert plain.verified and armed.verified
    assert plain.segments == armed.segments, (
        "an armed-but-empty fault plan changed the figures")
    assert plain_now == armed_now
    rows = [("no injector", f"{plain.segments_total * 1e3:.6f}",
             f"{plain_now:.9f}"),
            ("empty plan armed", f"{armed.segments_total * 1e3:.6f}",
             f"{armed_now:.9f}")]
    print()
    print(format_table(["setup", "segments ms", "clock s"], rows,
                       title="Zero unarmed overhead"))


def bench_rank_offline_recovers(once):
    """A rank dies mid-run; the session completes on a replacement."""
    def experiment():
        config = ChaosConfig(seed=3, nr_sessions=2, fault_rate_per_s=0.0)
        plan = FaultPlan(seed=config.seed)
        plan.add(1e-4, FaultKind.RANK_OFFLINE, "rank:*")
        return run_chaos(config, plan=plan)

    result = once(experiment)
    assert result.faults_fired == 1
    assert result.sessions_recovered >= 1, "no session re-ran after the loss"
    assert result.sessions_lost == 0
    print()
    print(f"\nrank offline at t=1e-4: {result.sessions_run} sessions, "
          f"{result.sessions_recovered} recovered on replacement ranks, "
          f"{result.sessions_lost} lost")


def bench_host_crash_replaces_all_tenants(once):
    def experiment():
        scenario = ScenarioConfig(
            cluster=ClusterConfig(nr_hosts=3, ranks_per_host=4),
            nr_requests=16, seed=1)
        plan = FaultPlan.generate(
            seed=1, horizon_s=6.0, rate_per_s=0.5,
            kinds=(FaultKind.HOST_CRASH,),
            limits={FaultKind.HOST_CRASH: 2})
        return run_cluster_chaos(scenario, plan), \
            run_cluster_chaos(scenario, plan)

    fleet, replay = once(experiment)
    assert fleet.crashed_hosts, "scenario crashed no hosts"
    assert fleet.evicted > 0, "crashes evicted no placements"
    assert fleet.sessions_lost == 0, (
        f"{fleet.sessions_lost} admitted sessions never re-placed")
    assert fleet.completed == fleet.submitted
    assert fleet.timeline_digest == replay.timeline_digest
    assert fleet.metric_snapshot == replay.metric_snapshot
    print()
    print(f"\nhost crash drill: crashed={','.join(fleet.crashed_hosts)} "
          f"evicted={fleet.evicted} completed={fleet.completed}/"
          f"{fleet.submitted} lost={fleet.sessions_lost}")


def bench_generated_plan_is_stable(once):
    """FaultPlan.generate is a pure function of its seed."""
    def experiment():
        kinds = tuple(FaultKind(name) for name in CHAOS.kinds)
        plans = [FaultPlan.generate(seed=11, horizon_s=20.0, rate_per_s=2.0,
                                    kinds=kinds) for _ in range(2)]
        return plans

    first, second = once(experiment)
    assert [e.describe() for e in first.events] \
        == [e.describe() for e in second.events]
    assert len(first.events) > 0
    print(f"\ngenerated plan: {len(first.events)} events, stable across "
          "regenerations")
