"""Benchmark harness configuration.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation and prints the measured series next to the paper's reported
values.  Run with::

    pytest benchmarks/ --benchmark-only

Simulated time is the reproduced metric; pytest-benchmark's wall-clock
numbers measure the harness itself (how long the simulator takes), which
is useful for regression tracking but is *not* what the paper plots.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return runner
