"""A tiny simulated sysfs tree.

Only what the stack needs: the per-rank status files the driver maintains
and the manager's observer thread polls to detect rank releases without
any cooperation from applications (Section 3.5).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

RANK_STATUS_FMT = "/sys/class/upmem/rank{index}/status"

STATUS_FREE = "free"
STATUS_BUSY = "busy"


class SysFs:
    """Path -> string content store with write listeners."""

    def __init__(self) -> None:
        self._files: Dict[str, str] = {}
        self._listeners: List[Callable[[str, str], None]] = []

    def write(self, path: str, content: str) -> None:
        self._files[path] = content
        for listener in list(self._listeners):
            listener(path, content)

    def read(self, path: str) -> Optional[str]:
        return self._files.get(path)

    def exists(self, path: str) -> bool:
        return path in self._files

    def subscribe(self, listener: Callable[[str, str], None]) -> None:
        """Register a callback fired on every write (observer threads)."""
        self._listeners.append(listener)

    # -- rank-status conveniences -------------------------------------------

    def rank_status_path(self, rank_index: int) -> str:
        return RANK_STATUS_FMT.format(index=rank_index)

    def set_rank_status(self, rank_index: int, busy: bool,
                        owner: str = "") -> None:
        value = f"{STATUS_BUSY}:{owner}" if busy else STATUS_FREE
        self.write(self.rank_status_path(rank_index), value)

    def rank_is_busy(self, rank_index: int) -> bool:
        value = self.read(self.rank_status_path(rank_index))
        return bool(value) and value.startswith(STATUS_BUSY)

    def rank_owner(self, rank_index: int) -> str:
        value = self.read(self.rank_status_path(rank_index)) or ""
        if ":" in value:
            return value.split(":", 1)[1]
        return ""
