"""Safe-mode ioctl request codes and payloads.

In safe mode every operation is a request through the kernel driver; the
codes below mirror the operation set a vUPMEM frontend must forward
(Appendix A.1 "Device operations": request configuration, send command,
read command, write to the device, read from the device).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.sdk.transfer import TransferMatrix


class IoctlCode(enum.Enum):
    GET_CONFIG = 0x5001        #: read device configuration/attributes
    ALLOC_RANK = 0x5002        #: reserve a rank for the calling process
    FREE_RANK = 0x5003         #: release a rank
    LOAD_PROGRAM = 0x5004      #: install a DPU binary
    WRITE_RANK = 0x5005        #: write-to-rank (transfer matrix)
    READ_RANK = 0x5006         #: read-from-rank (transfer matrix)
    LAUNCH = 0x5007            #: boot DPUs and wait
    CI_OP = 0x5008             #: raw control-interface operations


@dataclass
class IoctlRequest:
    """One safe-mode request."""

    code: IoctlCode
    rank_index: int
    matrix: Optional[TransferMatrix] = None
    program: Optional[object] = None
    count: int = 1
