"""The UPMEM Linux driver model (Fig. 3).

The driver exposes each rank to userspace two ways:

- **safe mode**: ioctl-style requests through the kernel, providing
  isolation between host applications — the mode the *guest* SDK uses
  against the vUPMEM frontend device file;
- **performance mode**: the application mmaps the rank's MRAMs and
  control interfaces and bypasses the kernel — the mode Firecracker's
  backend (and native benchmarks) use.

The driver also maintains the sysfs rank-status files the vPIM manager's
observer thread watches to detect rank releases (Section 3.5).
"""

from repro.driver.sysfs import SysFs
from repro.driver.driver import UpmemDriver, PerfModeMapping
from repro.driver.native import NativeTransport

__all__ = ["SysFs", "UpmemDriver", "PerfModeMapping", "NativeTransport"]
