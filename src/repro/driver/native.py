"""The native transport: the SDK running directly on the host.

This is the paper's baseline ("native is run in performance mode",
Section 5.1): rank operations go straight through mmap'd ranks, multiple
ranks are driven by concurrent SDK threads, so multi-rank operations
combine in parallel.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import AllocationError
from repro.driver.driver import PerfModeMapping, UpmemDriver, launch_poll_count
from repro.hardware.clock import SimClock
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel
from repro.sdk.kernel import DpuProgram
from repro.sdk.profile import OP_CI, OP_READ, OP_WRITE, Profiler
from repro.sdk.transfer import TransferMatrix
from repro.sdk.transport import RankChannel, Transport

_owner_ids = itertools.count()


class NativeRankChannel(RankChannel):
    """A perf-mode mapping wrapped in the transport interface."""

    def __init__(self, transport: "NativeTransport",
                 mapping: PerfModeMapping) -> None:
        self._transport = transport
        self._mapping = mapping
        self._cost = transport.cost
        self._profiler = transport.profiler

    @property
    def nr_dpus(self) -> int:
        return self._mapping.rank.nr_dpus

    @property
    def rank_index(self) -> int:
        return self._mapping.rank.index

    def load(self, program: DpuProgram) -> float:
        return self._mapping.load(program)

    def write(self, matrix: TransferMatrix) -> float:
        duration = self._mapping.write(matrix)
        self._profiler.record_op(OP_WRITE, duration, rank=self.rank_index)
        self._profiler.record_wrank_step("T-data", duration)
        return duration

    def read(self, matrix: TransferMatrix) -> Tuple[List[np.ndarray], float]:
        buffers, duration = self._mapping.read(matrix)
        self._profiler.record_op(OP_READ, duration, rank=self.rank_index)
        return buffers, duration

    def launch(self) -> float:
        run_time = self._mapping.launch()
        polls = launch_poll_count(run_time)
        poll_cpu_time = polls * self._cost.ci_op_native
        self._profiler.record_op(OP_CI, poll_cpu_time, count=polls,
                                 rank=self.rank_index)
        # Polling overlaps the run; only the final poll extends the wall.
        return run_time + self._cost.ci_op_native

    def ci_ops(self, count: int) -> float:
        duration = self._mapping.ci_ops(count)
        self._profiler.record_op(OP_CI, duration, count=count,
                                 rank=self.rank_index)
        return duration

    def release(self) -> float:
        self._mapping.unmap()
        return self._cost.rank_op_fixed


class NativeTransport(Transport):
    """Allocates physical ranks through the driver in performance mode."""

    def __init__(self, machine: Machine, driver: Optional[UpmemDriver] = None,
                 clock: Optional[SimClock] = None,
                 cost: Optional[CostModel] = None,
                 profiler: Optional[Profiler] = None) -> None:
        clock = clock or machine.clock
        cost = cost or machine.cost
        super().__init__(clock, cost, profiler, metrics=machine.metrics,
                         spans=machine.spans)
        self.machine = machine
        self.driver = driver or UpmemDriver(machine)
        self.owner = f"native-{next(_owner_ids)}"

    @property
    def parallel_ranks(self) -> bool:
        # The SDK drives each rank from its own host thread.
        return True

    def alloc_channels(self, nr_dpus: int) -> List[RankChannel]:
        channels: List[RankChannel] = []
        covered = 0
        for rank_index in self.driver.free_ranks():
            if covered >= nr_dpus:
                break
            mapping = self.driver.mmap_rank(rank_index, self.owner)
            channels.append(NativeRankChannel(self, mapping))
            covered += mapping.rank.nr_dpus
        if covered < nr_dpus:
            for channel in channels:
                channel.release()
            raise AllocationError(
                f"machine cannot cover {nr_dpus} DPUs "
                f"({covered} available in free ranks)"
            )
        return channels
