"""The UPMEM kernel driver: rank ownership, safe mode, performance mode.

``apply_matrix_to_rank`` is the single place where a transfer matrix is
materialized onto hardware; the native transport, the safe-mode ioctl path
and the Firecracker backend all funnel through it, so MRAM-vs-WRAM-symbol
addressing and timing behave identically everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import (
    DPU_FREQUENCY_HZ,
    MRAM_SIZE,
    WRAM_SIZE,
)
from repro.errors import IoctlError, MmapError
from repro.driver.ioctl import IoctlCode, IoctlRequest
from repro.driver.sysfs import SysFs
from repro.hardware.machine import Machine
from repro.hardware.rank import CiCommand, Rank, ReadSpec, WriteSpec
from repro.sdk.kernel import DpuProgram
from repro.sdk.runtime import run_program
from repro.sdk.transfer import Target, TransferMatrix, XferKind


@dataclass(frozen=True)
class DeviceConfig:
    """Hardware attributes the driver exposes to userspace.

    The virtio-pim specification requires the same fields in the device
    configuration layout (Appendix A.1): clock division, memory region
    size, number of control interfaces, DPU frequency, power management.
    """

    frequency_hz: int = DPU_FREQUENCY_HZ
    clock_division: int = 2
    mram_bytes: int = MRAM_SIZE
    wram_bytes: int = WRAM_SIZE
    nr_dpus: int = 64
    nr_control_interfaces: int = 8
    power_management: bool = True


def launch_poll_count(run_duration: float, base_period: float = 50e-6,
                      max_period: float = 10e-3) -> int:
    """Status polls issued by a synchronous launch of ``run_duration``.

    The SDK's sync loop uses exponential backoff: it polls at ``base``,
    doubling up to ``max_period``.  Long runs therefore see only
    ``O(log) + duration/max_period`` polls, which keeps the DPU segment's
    virtualization overhead near 1x, as Fig. 8 shows.
    """
    polls = 0
    waited = 0.0
    period = base_period
    while waited < run_duration:
        polls += 1
        waited += period
        if period < max_period:
            period = min(period * 2, max_period)
    return max(polls, 1)


def apply_matrix_to_rank(rank: Rank, matrix: TransferMatrix,
                         rust_interleave: bool = False,
                         into: Optional[List[np.ndarray]] = None,
                         ) -> Tuple[Optional[List[np.ndarray]], float]:
    """Execute ``matrix`` against ``rank``; entry indices are rank-local.

    Returns ``(buffers, duration)`` — buffers is None for writes.
    ``into`` optionally supplies per-entry destination buffers for MRAM
    reads (pooled zero-copy path); ignored for writes and WRAM symbols.
    """
    if matrix.target is Target.MRAM:
        if matrix.kind is XferKind.TO_DPU:
            specs = [WriteSpec(e.dpu_index, matrix.offset, e.data)
                     for e in matrix.entries]
            duration = rank.write_mram(specs, rust_interleave=rust_interleave)
            return None, duration
        specs = [ReadSpec(e.dpu_index, matrix.offset, e.size)
                 for e in matrix.entries]
        return rank.read_mram(specs, rust_interleave=rust_interleave,
                              into=into)

    # WRAM host-variable transfer: small per-DPU CI-side copies.
    duration = 0.0
    buffers: List[np.ndarray] = []
    for entry in matrix.entries:
        dpu = rank.dpu(entry.dpu_index)
        if matrix.kind is XferKind.TO_DPU:
            dpu.write_symbol(matrix.symbol, matrix.offset, entry.data.tobytes())
        else:
            raw = dpu.read_symbol(matrix.symbol, matrix.offset, entry.size)
            buffers.append(np.frombuffer(raw, dtype=np.uint8).copy())
        duration += rank.cost.dpu_copy_fixed + entry.size / rank.cost.rank_xfer_bandwidth
    rank.ci.counters.record(CiCommand.CONFIG, len(matrix.entries))
    if matrix.kind is XferKind.TO_DPU:
        return None, duration
    return buffers, duration


def load_program_on_rank(rank: Rank, program: DpuProgram,
                         dpu_indices: Optional[List[int]] = None) -> float:
    """Install ``program`` on the given DPUs (default: all); returns time."""
    indices = list(dpu_indices) if dpu_indices is not None else list(range(rank.nr_dpus))
    for idx in indices:
        rank.dpu(idx).load_program(program, program.binary_size, program.symbols)
    ci_time = rank.ci.execute(CiCommand.LOAD, len(indices))
    copy_time = rank.cost.rank_transfer_time(program.binary_size * len(indices))
    return ci_time + copy_time


def launch_rank(rank: Rank, dpu_indices: Optional[List[int]] = None) -> float:
    """Boot the loaded programs and run to completion; returns run time."""
    indices = list(dpu_indices) if dpu_indices is not None else list(range(rank.nr_dpus))

    def runner(dpu):
        return run_program(dpu.program, dpu)

    return rank.launch(indices, runner)


class PerfModeMapping:
    """Performance mode: direct (mmap) access to one rank.

    Bypasses the kernel entirely — what Firecracker's backend and native
    benchmarks use (Section 3.4).
    """

    def __init__(self, driver: "UpmemDriver", rank: Rank, owner: str) -> None:
        self._driver = driver
        self.rank = rank
        self.owner = owner
        self.mapped = True

    @property
    def rank_index(self) -> int:
        """The index this mapping was created for.

        For a paged mapping this is the *virtual* index and never
        faults; use it (not ``.rank.index``) for labels and scans.
        """
        return self.rank.index

    def peek_rank(self) -> Optional[Rank]:
        """The backing rank without faulting (always bound here)."""
        return self.rank

    def _check(self) -> None:
        if not self.mapped:
            raise MmapError(f"rank {self.rank.index} mapping was unmapped")

    def write(self, matrix: TransferMatrix, rust_interleave: bool = False) -> float:
        self._check()
        _, duration = apply_matrix_to_rank(self.rank, matrix, rust_interleave)
        return duration

    def write_pinned(self, pinned, rust_interleave: bool = False) -> float:
        """Replay a pre-resolved MRAM write (plan-cache fast path).

        Same accounting and duration as :meth:`write` for the matrix the
        :class:`~repro.hardware.rank.PinnedMramWrite` was compiled from.
        """
        self._check()
        return self.rank.write_mram_pinned(pinned,
                                           rust_interleave=rust_interleave)

    def read(self, matrix: TransferMatrix, rust_interleave: bool = False,
             into: Optional[List[np.ndarray]] = None,
             ) -> Tuple[List[np.ndarray], float]:
        self._check()
        buffers, duration = apply_matrix_to_rank(self.rank, matrix,
                                                 rust_interleave, into=into)
        assert buffers is not None
        return buffers, duration

    def load(self, program: DpuProgram) -> float:
        self._check()
        return load_program_on_rank(self.rank, program)

    def launch(self) -> float:
        self._check()
        return launch_rank(self.rank)

    def ci_ops(self, count: int) -> float:
        self._check()
        return self.rank.ci.execute(CiCommand.STATUS, count)

    def unmap(self) -> None:
        if self.mapped:
            self.mapped = False
            self._driver.release_rank(self.rank.index, self.owner)


class UpmemDriver:
    """Kernel driver: exposes ranks, tracks ownership, updates sysfs."""

    #: Extra kernel-entry cost of one safe-mode ioctl.
    IOCTL_OVERHEAD = 1.2e-6

    def __init__(self, machine: Machine, sysfs: Optional[SysFs] = None) -> None:
        self.machine = machine
        self.sysfs = sysfs or SysFs()
        self._owners: Dict[int, str] = {}
        #: Optional pool of software ranks (oversubscription, Section 7).
        self.emulated_pool = None
        #: Optional rank pager (demand paging, docs/paging.md): set by
        #: the Manager when a PagingConfig is configured.  Virtual rank
        #: indices (>= PAGED_RANK_BASE) resolve through it.
        self.pager = None
        for rank in machine.ranks:
            self.sysfs.set_rank_status(rank.index, busy=False)

    def resolve_rank(self, rank_index: int) -> Rank:
        """Find a rank by index: physical, emulated, or paged.

        Resolving a swapped-out virtual rank faults it in (the pager
        advances the clock by the modeled swap-in cost).
        """
        if self.pager is not None and self.pager.is_virtual(rank_index):
            return self.pager.resolve(rank_index)
        if self.emulated_pool is not None:
            rank = self.emulated_pool.get(rank_index)
            if rank is not None:
                return rank
        return self.machine.rank(rank_index)

    @property
    def config(self) -> DeviceConfig:
        return DeviceConfig()

    # -- ownership -----------------------------------------------------------

    def rank_owner(self, rank_index: int) -> Optional[str]:
        return self._owners.get(rank_index)

    def claim_rank(self, rank_index: int, owner: str) -> Rank:
        rank = self.resolve_rank(rank_index)
        current = self._owners.get(rank_index)
        if current is not None and current != owner:
            raise MmapError(
                f"rank {rank_index} is owned by {current!r}, not {owner!r}"
            )
        self._owners[rank_index] = owner
        self.sysfs.set_rank_status(rank_index, busy=True, owner=owner)
        return rank

    def release_rank(self, rank_index: int, owner: str) -> None:
        current = self._owners.get(rank_index)
        if current != owner:
            raise MmapError(
                f"rank {rank_index} is owned by {current!r}, not {owner!r}"
            )
        del self._owners[rank_index]
        self.sysfs.set_rank_status(rank_index, busy=False)

    def free_ranks(self) -> List[int]:
        return [rank.index for rank in self.machine.ranks
                if rank.index not in self._owners]

    # -- performance mode ---------------------------------------------------------

    def mmap_rank(self, rank_index: int, owner: str) -> PerfModeMapping:
        if self.pager is not None and self.pager.is_virtual(rank_index):
            # Claim marks sysfs busy (and faults the vrank in — the
            # first bind happens at map time); the mapping itself stays
            # frame-agnostic and re-resolves on every operation.
            from repro.paging.pager import PagedRankMapping
            self.claim_rank(rank_index, owner)
            return PagedRankMapping(self, self.pager, rank_index, owner)
        rank = self.claim_rank(rank_index, owner)
        return PerfModeMapping(self, rank, owner)

    # -- safe mode -------------------------------------------------------------------

    def ioctl(self, owner: str, request: IoctlRequest):
        """Safe-mode entry point; returns ``(data, duration)``.

        Ownership is enforced per request — the isolation property safe
        mode provides between host applications (Fig. 3).
        """
        code = request.code
        if code is IoctlCode.GET_CONFIG:
            return self.config, self.IOCTL_OVERHEAD

        if code is IoctlCode.ALLOC_RANK:
            free = self.free_ranks()
            if not free:
                raise IoctlError("no free rank available")
            rank = self.claim_rank(free[0], owner)
            return rank.index, self.IOCTL_OVERHEAD

        rank = self.resolve_rank(request.rank_index)
        if self._owners.get(request.rank_index) != owner:
            raise IoctlError(
                f"process {owner!r} does not own rank {request.rank_index}"
            )

        if code is IoctlCode.FREE_RANK:
            self.release_rank(request.rank_index, owner)
            return None, self.IOCTL_OVERHEAD
        if code is IoctlCode.LOAD_PROGRAM:
            duration = load_program_on_rank(rank, request.program)
            return None, duration + self.IOCTL_OVERHEAD
        if code is IoctlCode.WRITE_RANK:
            _, duration = apply_matrix_to_rank(rank, request.matrix)
            return None, duration + self.IOCTL_OVERHEAD
        if code is IoctlCode.READ_RANK:
            buffers, duration = apply_matrix_to_rank(rank, request.matrix)
            return buffers, duration + self.IOCTL_OVERHEAD
        if code is IoctlCode.LAUNCH:
            duration = launch_rank(rank)
            return None, duration + self.IOCTL_OVERHEAD
        if code is IoctlCode.CI_OP:
            duration = rank.ci.execute(CiCommand.STATUS, request.count)
            return None, duration + self.IOCTL_OVERHEAD
        raise IoctlError(f"unknown ioctl code {code}")
