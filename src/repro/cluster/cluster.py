"""The fleet: N vPIM hosts sharing one simulated timeline.

The paper virtualizes PIM on *one* machine; its §7 future work ("dynamic
workload consolidation" via checkpoint/restore) and the ROADMAP's
production-scale north star both need the next layer up: a control plane
that owns a fleet of hosts.  A :class:`Cluster` is that root object — it
holds the shared :class:`~repro.hardware.clock.SimClock`, a fleet-wide
metrics registry (separate from each host's machine registry, because
scheduling decisions span hosts), and the per-host stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.host import ClusterHost, host_machine_config
from repro.errors import ClusterError
from repro.paging.config import PagingConfig
from repro.hardware.clock import SimClock
from repro.hardware.timing import CostModel, DEFAULT_COST_MODEL
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import SpanRecorder


@dataclass(frozen=True)
class ClusterConfig:
    """Geometry of a simulated fleet (uniform hosts)."""

    nr_hosts: int = 4
    ranks_per_host: int = 4
    dpus_per_rank: int = 8
    host_cores: int = 16
    manager_policy: str = "round_robin"
    #: Demand-paging config applied to every host (``docs/paging.md``);
    #: ``None`` keeps hosts physically-sized.  With paging, each host
    #: advertises ``ranks_per_host * overcommit_ratio`` allocatable
    #: ranks to the placement layer.
    paging: Optional[PagingConfig] = None

    def __post_init__(self) -> None:
        if self.nr_hosts <= 0:
            raise ClusterError(
                f"nr_hosts must be positive, got {self.nr_hosts}")
        if self.ranks_per_host <= 0:
            raise ClusterError(
                f"ranks_per_host must be positive, got {self.ranks_per_host}")


class Cluster:
    """A fleet of PIM hosts with one clock and one control-plane registry."""

    def __init__(self, config: ClusterConfig = ClusterConfig(),
                 cost: CostModel = DEFAULT_COST_MODEL) -> None:
        self.config = config
        self.clock = SimClock()
        #: Fleet-wide control-plane telemetry (``repro_cluster_*``); per-host
        #: data-plane series stay in each host's machine registry.
        self.metrics = MetricsRegistry()
        #: Fleet-wide trace context, shared by every host like the clock:
        #: a tenant's trace survives cross-host placement and migration.
        self.spans = SpanRecorder(self.clock, registry=self.metrics)
        self.hosts: List[ClusterHost] = [
            ClusterHost(
                host_id=f"host{i}",
                config=host_machine_config(config.ranks_per_host,
                                           config.dpus_per_rank,
                                           config.host_cores),
                clock=self.clock,
                cost=cost,
                manager_policy=config.manager_policy,
                paging=config.paging,
                spans=self.spans,
            )
            for i in range(config.nr_hosts)
        ]
        self._by_id: Dict[str, ClusterHost] = {
            host.host_id: host for host in self.hosts
        }

    # -- fleet views ---------------------------------------------------------

    def host(self, host_id: str) -> ClusterHost:
        try:
            return self._by_id[host_id]
        except KeyError:
            raise ClusterError(
                f"unknown host {host_id!r}; fleet has {sorted(self._by_id)}"
            ) from None

    @property
    def nr_hosts(self) -> int:
        return len(self.hosts)

    @property
    def total_ranks(self) -> int:
        return sum(host.total_ranks for host in self.hosts)

    def allocated_ranks(self) -> int:
        return sum(host.allocated_ranks() for host in self.hosts)

    def utilization(self) -> float:
        """Allocated share of the fleet's ranks, in [0, 1]."""
        total = self.total_ranks
        return self.allocated_ranks() / total if total else 0.0

    def largest_host_ranks(self) -> int:
        """Allocatable-rank capacity of the largest host (admission
        upper bound) — virtual capacity on overcommitted hosts."""
        return max(host.capacity_ranks for host in self.hosts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Cluster({self.nr_hosts} hosts, "
                f"{self.allocated_ranks()}/{self.total_ranks} ranks allocated)")
