"""Migration-driven fleet consolidation.

The paper's §7: "efficient pause-resume and checkpoint-restore
mechanisms could enable dynamic workload consolidation without hardware
changes."  This control loop is that consolidation at fleet scale: it
periodically picks the most drainable host (fewest allocated ranks) and
tries to move every tenant placement off it onto the rest of the fleet
— each vUPMEM device travels through the existing
:func:`~repro.virt.migration.migrate_device` checkpoint/restore path —
so the emptied host could power down or absorb a rank-hungry tenant
whole (Hirofuchi & Takano make the same migration-for-consolidation
argument for hypervisor-attached Optane).

Migration is only legal between launches (a RUNNING DPU cannot pause,
§2); placements whose DPUs are mid-launch are skipped, never aborted.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.host import ClusterHost
from repro.cluster.policies import BestFitPlacement
from repro.cluster.scheduler import Placement, Scheduler
from repro.errors import DpuFaultError, ManagerError
from repro.hardware.dpu import DpuState
from repro.virt.migration import migrate_device


class Consolidator:
    """Defragments the fleet by draining its emptiest busy host."""

    def __init__(self, cluster: Cluster, scheduler: Scheduler) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.obs = scheduler.obs
        #: Receivers are chosen best-fit: pack migrated tenants tightly so
        #: the drained capacity stays whole.
        self._receiver_policy = BestFitPlacement()
        self.migrations = 0
        self.hosts_drained = 0

    # -- eligibility ---------------------------------------------------------

    @staticmethod
    def _migratable(placement: Placement) -> bool:
        """True when every linked DPU of the placement sits at a launch
        boundary (the only consistent checkpoint point, §7)."""
        devices = placement.linked_devices()
        if not devices:
            return False
        for device in devices:
            # peek_rank never faults: a swapped-out paged rank has no
            # resident frame and by the pager's invariant no RUNNING
            # DPU — it is trivially at a launch boundary, hence
            # migratable without dragging its state back in first.
            rank = device.backend.mapping.peek_rank()
            if rank is None:
                continue
            if any(dpu.state is DpuState.RUNNING for dpu in rank.dpus):
                return False
        return True

    def _pick_donor(self) -> Optional[ClusterHost]:
        """The busy host with the fewest allocated ranks — cheapest drain."""
        busy = [host for host in self.cluster.hosts
                if host.allocated_ranks() > 0
                and self.scheduler.active_on(host)]
        if len(busy) <= 1:
            return None          # nothing to consolidate onto
        return min(busy, key=lambda host: host.allocated_ranks())

    # -- the control loop body ----------------------------------------------

    def run_once(self) -> int:
        """One defragmentation pass; returns the number of migrated devices.

        A pass drains at most one host, and only if *every* placement on
        it fits elsewhere — partial drains fragment the fleet further,
        which is the opposite of the goal.
        """
        self.obs.consolidation_run()
        donor = self._pick_donor()
        if donor is None:
            return 0
        placements = self.scheduler.active_on(donor)
        plan = self._plan_drain(donor, placements)
        if plan is None:
            return 0
        moved = 0
        for placement, receiver in plan:
            moved += self._move(placement, donor, receiver)
        if donor.allocated_ranks() == 0:
            self.hosts_drained += 1
            self.obs.host_drained()
        self.scheduler.refresh_host_gauges(donor)
        return moved

    def relieve(self, tenants: List[str]) -> int:
        """SLO-driven migration hints (``repro.qos.slo``): move a burning
        tenant's placements away from their noisy neighbors.

        Receivers are ranked by co-residency first (an empty host
        isolates the victim completely), then fullest-first among
        equally quiet hosts; a hint with no quieter home than the
        current host is dropped — the enforcer re-issues it on the next
        hot evaluation if the burn persists.  Returns migrated devices.
        """
        moved = 0
        for tenant in tenants:
            for placement in list(self.scheduler.active):
                if placement.tenant != tenant:
                    continue
                if not self._migratable(placement):
                    continue
                donor = placement.host
                neighbors_now = len(self.scheduler.active_on(donor)) - 1
                candidates = [
                    host for host in self.cluster.hosts
                    if host is not donor and host.alive
                    and host.free_ranks() >= placement.nr_ranks
                    and len(self.scheduler.active_on(host)) < neighbors_now]
                if not candidates:
                    continue
                receiver = min(
                    candidates,
                    key=lambda host: (len(self.scheduler.active_on(host)),
                                      host.free_ranks()))
                moved += self._move(placement, donor, receiver)
                self.scheduler.refresh_host_gauges(donor)
        return moved

    def _plan_drain(self, donor: ClusterHost, placements: List[Placement],
                    ) -> Optional[List[Tuple[Placement, ClusterHost]]]:
        """Match each placement to a receiver, or ``None`` if undrainable.

        Receivers are booked against a shadow of their free-rank count so
        one pass cannot oversubscribe a host it plans twice.
        """
        others = [host for host in self.cluster.hosts if host is not donor]
        shadow_free = {host.host_id: host.free_ranks() for host in others}
        plan: List[Tuple[Placement, ClusterHost]] = []
        for placement in placements:
            if not self._migratable(placement):
                return None
            candidates = [host for host in others
                          if shadow_free[host.host_id] >= placement.nr_ranks]
            if not candidates:
                return None
            receiver = min(candidates,
                           key=lambda host: shadow_free[host.host_id])
            shadow_free[receiver.host_id] -= placement.nr_ranks
            plan.append((placement, receiver))
        return plan

    def _move(self, placement: Placement, donor: ClusterHost,
              receiver: ClusterHost) -> int:
        """Migrate every linked device of ``placement``; returns the count."""
        moved = 0
        spans = self.cluster.spans
        for device in placement.linked_devices():
            source_rank = device.backend.mapping.rank
            nr_bytes = sum(dpu.mram.materialized_bytes
                           for dpu in source_rank.dpus)
            with spans.scope("cluster.migrate", "cluster",
                             from_host=donor.host_id,
                             to_host=receiver.host_id,
                             tenant=placement.tenant,
                             device=device.device_id):
                try:
                    migrate_device(device, donor.manager,
                                   target_manager=receiver.manager)
                except (DpuFaultError, ManagerError):
                    # A launch raced the plan or the receiver filled up:
                    # leave the device where it is, the next pass retries.
                    continue
                spans.log.emit("migration", "cluster",
                               tenant=placement.tenant,
                               from_host=donor.host_id,
                               to_host=receiver.host_id,
                               device=device.device_id, bytes=nr_bytes)
            self.migrations += 1
            moved += 1
            self.obs.migration(donor.host_id, receiver.host_id, nr_bytes)
        if moved and all(
                device.backend.driver is receiver.driver
                for device in placement.linked_devices()):
            placement.move_to(receiver)
        self.scheduler.refresh_host_gauges(receiver)
        return moved
