"""Pluggable VM placement policies for the fleet scheduler.

Each policy answers one question: *which host should serve a request for
``nr_ranks`` ranks right now?* — the fleet-level analogue of the
single-host manager's NAAV policies (§3.5).  Ghose et al.'s PIM survey
names exactly this resource-scheduling layer as an open systems gap; the
three classical answers implemented here bracket the design space:

- ``round_robin`` — rotate over hosts, paper-prototype style; fair but
  fragments the fleet (1-rank tenants sprinkle every host, so no host
  retains room for a rank-hungry tenant);
- ``best_fit`` — tightest host that still fits (bin packing); keeps
  whole hosts empty for large requests and feeds the consolidator;
- ``least_loaded`` — emptiest host first (worst fit); balances load and
  minimizes per-host bus contention at the price of packing density.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Type

from repro.errors import ClusterError
from repro.cluster.host import ClusterHost


class PlacementPolicy(abc.ABC):
    """Chooses a host for a tenant request; stateless except cursors."""

    name: str = ""

    @abc.abstractmethod
    def choose(self, hosts: Sequence[ClusterHost],
               nr_ranks: int) -> Optional[ClusterHost]:
        """The host to place ``nr_ranks`` on, or ``None`` if none fits."""


class RoundRobinPlacement(PlacementPolicy):
    """Rotate over hosts regardless of fit quality (the fleet analogue of
    the paper prototype's round-robin rank allocation)."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, hosts: Sequence[ClusterHost],
               nr_ranks: int) -> Optional[ClusterHost]:
        n = len(hosts)
        for step in range(n):
            host = hosts[(self._cursor + step) % n]
            if host.fits(nr_ranks):
                self._cursor = (self._cursor + step + 1) % n
                return host
        return None


class BestFitPlacement(PlacementPolicy):
    """Tightest host that still fits: classic bin packing, leaves the
    most whole-host headroom for rank-hungry tenants."""

    name = "best_fit"

    def choose(self, hosts: Sequence[ClusterHost],
               nr_ranks: int) -> Optional[ClusterHost]:
        fitting = [h for h in hosts if h.fits(nr_ranks)]
        if not fitting:
            return None
        # min() keeps the first minimal host: ties break on host order.
        return min(fitting, key=lambda h: h.free_ranks())


class LeastLoadedPlacement(PlacementPolicy):
    """Emptiest host first (worst fit): spreads tenants to balance load
    and host-bus contention."""

    name = "least_loaded"

    def choose(self, hosts: Sequence[ClusterHost],
               nr_ranks: int) -> Optional[ClusterHost]:
        fitting = [h for h in hosts if h.fits(nr_ranks)]
        if not fitting:
            return None
        # max() keeps the first maximal host: ties break on host order.
        return max(fitting, key=lambda h: h.free_ranks())


#: Selectable fleet placement policies, by name.
PLACEMENT_POLICIES: Dict[str, Type[PlacementPolicy]] = {
    cls.name: cls
    for cls in (RoundRobinPlacement, BestFitPlacement, LeastLoadedPlacement)
}


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a placement policy by name."""
    try:
        return PLACEMENT_POLICIES[name]()
    except KeyError:
        raise ClusterError(
            f"unknown placement policy {name!r}; "
            f"choose from {sorted(PLACEMENT_POLICIES)}"
        ) from None
