"""Multi-host control plane: placement, admission control, consolidation.

The fleet layer above the single-machine vPIM stack: a
:class:`~repro.cluster.cluster.Cluster` of simulated hosts sharing one
clock, a :class:`~repro.cluster.scheduler.Scheduler` admitting and
placing tenant VM requests under pluggable policies, a
:class:`~repro.cluster.consolidator.Consolidator` defragmenting the
fleet through the checkpoint/restore migration path, and a
:class:`~repro.cluster.loadgen.LoadGenerator` replaying reproducible
Poisson workloads against the whole thing.
"""

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.consolidator import Consolidator
from repro.cluster.host import ClusterHost, host_machine_config
from repro.cluster.loadgen import (
    LoadGenerator,
    ScenarioConfig,
    ScenarioResult,
    SessionRecord,
    run_scenario,
)
from repro.cluster.policies import (
    PLACEMENT_POLICIES,
    BestFitPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    make_policy,
)
from repro.cluster.scheduler import (
    DEADLINE_CLASSES,
    Placement,
    Scheduler,
    TenantRequest,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterHost",
    "Consolidator",
    "DEADLINE_CLASSES",
    "LoadGenerator",
    "PLACEMENT_POLICIES",
    "BestFitPlacement",
    "LeastLoadedPlacement",
    "Placement",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "ScenarioConfig",
    "ScenarioResult",
    "Scheduler",
    "SessionRecord",
    "TenantRequest",
    "host_machine_config",
    "make_policy",
    "run_scenario",
]
