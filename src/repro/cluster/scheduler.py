"""Fleet admission control and VM placement.

The control-plane front door: tenants submit :class:`TenantRequest`\\ s
(rank count, optional PrIM app, deadline class) and the
:class:`Scheduler` either queues them — bounded queue, explicit
backpressure — or rejects them outright (queue full, per-tenant quota
exceeded, request larger than any host).  Queued requests are placed
FIFO within their deadline class under a pluggable policy
(:mod:`repro.cluster.policies`); placement boots a Firecracker microVM
with one vUPMEM device per requested rank on the chosen host, exactly
the §3.3 "vUPMEM booking" path, now multiplied across hosts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional, Union

from repro.cluster.cluster import Cluster
from repro.cluster.host import ClusterHost
from repro.errors import AdmissionError, HostCrashedError
from repro.cluster.policies import PlacementPolicy, make_policy
from repro.observability.instruments import ClusterInstruments
from repro.qos.config import FleetQosPolicy
from repro.virt.firecracker import VmConfig
from repro.virt.opts import OptimizationConfig
from repro.virt.vm import Vm

#: Deadline classes, in dispatch-priority order.
DEADLINE_CLASSES = ("interactive", "batch")

_request_ids = itertools.count()


@dataclass
class TenantRequest:
    """One tenant's ask: a VM with ``nr_ranks`` vUPMEM devices.

    ``app`` optionally names a PrIM application (Table 1 short name) the
    tenant will run once placed; ``hold_s`` is the residency after the
    run — how long the tenant keeps its devices allocated before
    departing (the underutilization driver of the paper's R2
    motivation).
    """

    tenant: str
    nr_ranks: int = 1
    app: Optional[str] = None
    deadline_class: str = "batch"
    hold_s: float = 1.0
    seed: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    arrival_time: float = 0.0


@dataclass
class Placement:
    """A placed request: the tenant's microVM living on one host."""

    request: TenantRequest
    host: ClusterHost
    vm: Vm
    placed_at: float = 0.0

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def nr_ranks(self) -> int:
        return self.request.nr_ranks

    def acquire(self) -> None:
        """Link every free device to a rank (tenant residency)."""
        for device in self.vm.free_devices():
            self.vm.acquire_rank(device)

    def linked_devices(self):
        return [device for device in self.vm.devices if device.linked]

    def move_to(self, host: ClusterHost) -> None:
        """Re-home the placement after a cross-host migration."""
        if not host.alive:
            raise HostCrashedError(
                f"cannot migrate tenant {self.tenant} to crashed host "
                f"{host.host_id}; pick a live target")
        self.host = host
        self.vm.manager = host.manager


class Scheduler:
    """Admission control + placement over one :class:`Cluster`.

    Dispatch contract: :meth:`try_place_next` books the VM on the chosen
    host but leaves rank acquisition to the caller (running an app
    acquires through the SDK path; pure residency calls
    ``placement.acquire()``).  The caller must resource each returned
    placement before asking for the next one, so policies see up-to-date
    occupancy.
    """

    def __init__(self, cluster: Cluster,
                 policy: Union[str, PlacementPolicy] = "round_robin",
                 queue_limit: int = 16,
                 tenant_quota_ranks: Optional[int] = None,
                 vm_vcpus: int = 4,
                 vm_mem_bytes: int = 1 << 30,
                 qos: Optional[FleetQosPolicy] = None) -> None:
        self.cluster = cluster
        self.policy = (make_policy(policy) if isinstance(policy, str)
                       else policy)
        self.queue_limit = queue_limit
        self.tenant_quota_ranks = tenant_quota_ranks
        self.vm_vcpus = vm_vcpus
        self.vm_mem_bytes = vm_mem_bytes
        #: Fleet-wide QoS policy (``docs/qos.md``): when set, every placed
        #: VM gets a per-deadline-class :class:`~repro.qos.config.QosConfig`
        #: (tenant-tagged) in its optimization config.  ``None`` boots VMs
        #: with no flow — the exact pre-QoS fleet behaviour.
        self.qos = qos
        #: Pending requests, FIFO within deadline class, interactive first.
        self.queue: List[TenantRequest] = []
        self.active: List[Placement] = []
        #: Ranks committed per tenant (queued + placed), for quotas.
        self._tenant_ranks = {}
        self.obs = ClusterInstruments(cluster.metrics, self.policy.name)
        self._refresh_all_host_gauges()

    # -- admission ----------------------------------------------------------

    def submit(self, request: TenantRequest) -> str:
        """Admit ``request`` into the queue or reject it.

        Returns the admission outcome: ``queued``,
        ``rejected_queue_full``, ``rejected_quota`` or
        ``rejected_oversize`` (also the metric label).
        """
        request.arrival_time = self.cluster.clock.now
        outcome = self._admission_outcome(request)
        self.obs.request(outcome)
        if outcome == "queued":
            self._tenant_ranks[request.tenant] = (
                self._tenant_ranks.get(request.tenant, 0) + request.nr_ranks)
            self._enqueue(request)
            self.obs.queue_depth(len(self.queue))
        return outcome

    def submit_or_raise(self, request: TenantRequest) -> None:
        """Strict admission: :meth:`submit`, but rejections raise
        :class:`~repro.errors.AdmissionError` instead of returning an
        outcome string (for callers that treat rejection as fatal)."""
        outcome = self.submit(request)
        if outcome != "queued":
            raise AdmissionError(
                f"request {request.request_id} from tenant "
                f"{request.tenant} rejected: {outcome}")

    def _admission_outcome(self, request: TenantRequest) -> str:
        if request.nr_ranks <= 0 \
                or request.nr_ranks > self.cluster.largest_host_ranks():
            return "rejected_oversize"
        if len(self.queue) >= self.queue_limit:
            return "rejected_queue_full"
        quota = self.tenant_quota_ranks
        if quota is not None:
            committed = self._tenant_ranks.get(request.tenant, 0)
            if committed + request.nr_ranks > quota:
                return "rejected_quota"
        return "queued"

    def _enqueue(self, request: TenantRequest) -> None:
        """FIFO within class; interactive requests dispatch before batch."""
        if request.deadline_class == "interactive":
            insert_at = len(self.queue)
            for i, queued in enumerate(self.queue):
                if queued.deadline_class != "interactive":
                    insert_at = i
                    break
            self.queue.insert(insert_at, request)
        else:
            self.queue.append(request)

    # -- placement ----------------------------------------------------------

    def try_place_next(self) -> Optional[Placement]:
        """Place the head-of-queue request if any host fits it.

        Head-of-line blocking is deliberate: a rank-hungry request at
        the head is not starved by smaller requests behind it, and the
        resulting queue wait is exactly the fragmentation signal the
        placement policies are compared on.
        """
        if not self.queue:
            return None
        request = self.queue[0]
        host = self.policy.choose(self.cluster.hosts, request.nr_ranks)
        if host is None:
            return None
        self.queue.pop(0)
        spans = self.cluster.spans
        with spans.scope("cluster.place", "cluster", host=host.host_id,
                         tenant=request.tenant, nr_ranks=request.nr_ranks):
            vm = host.firecracker.launch_vm(VmConfig(
                vcpus=self.vm_vcpus, mem_bytes=self.vm_mem_bytes,
                nr_vupmem=request.nr_ranks,
                opts=self._opts_for(request)))
            spans.log.emit("placement", "cluster", tenant=request.tenant,
                           host=host.host_id, vm=vm.vm_id,
                           nr_ranks=request.nr_ranks)
        placement = Placement(request=request, host=host, vm=vm,
                              placed_at=self.cluster.clock.now)
        self.active.append(placement)
        wait = placement.placed_at - request.arrival_time
        self.obs.placement(host.host_id, wait)
        self.obs.queue_depth(len(self.queue))
        return placement

    def _opts_for(self, request: TenantRequest) -> OptimizationConfig:
        """The optimization config a placed VM boots with.

        With a fleet QoS policy, the deadline class picks the
        :class:`~repro.qos.config.QosConfig` (interactive flows weigh
        more than batch by default) and the flow is tagged with the
        requesting tenant so SLO burn aggregates across the tenant's VMs.
        """
        if self.qos is None:
            return OptimizationConfig()
        cfg = self.qos.for_class(request.deadline_class)
        return OptimizationConfig(qos=replace(cfg, tenant=request.tenant))

    def release(self, placement: Placement) -> None:
        """Tenant departure: tear the VM down and return its ranks."""
        placement.vm.shutdown()
        self.active.remove(placement)
        tenant = placement.tenant
        remaining = self._tenant_ranks.get(tenant, 0) - placement.nr_ranks
        if remaining > 0:
            self._tenant_ranks[tenant] = remaining
        else:
            self._tenant_ranks.pop(tenant, None)
        self.obs.session_completed(placement.host.host_id)
        self.refresh_host_gauges(placement.host)

    def evict_host(self, host: ClusterHost) -> int:
        """React to a host crash: tear down its placements and requeue
        their tenants at the head of the queue.

        The tenants lost their VMs, not their right to run: their
        requests re-enter ahead of everyone (admission was already paid,
        so the queue limit is deliberately bypassed and quota
        commitments stay), and the next dispatch loop re-places them on
        surviving hosts.  Returns the number of evicted placements.
        """
        evicted = self.active_on(host)
        for placement in evicted:
            self.active.remove(placement)
            # Unlinking a dead host's devices is sysfs-only bookkeeping;
            # the manager ignores the "free" writes for FAIL ranks.
            placement.vm.shutdown()
            self.obs.request("requeued_crash")
        for placement in reversed(evicted):
            self.queue.insert(0, placement.request)
        self.obs.queue_depth(len(self.queue))
        self.refresh_host_gauges(host)
        return len(evicted)

    # -- views ---------------------------------------------------------------

    def active_on(self, host: ClusterHost) -> List[Placement]:
        return [p for p in self.active if p.host is host]

    def refresh_host_gauges(self, host: ClusterHost) -> None:
        self.obs.host_load(host.host_id, host.allocated_ranks(),
                           len(self.active_on(host)))

    def _refresh_all_host_gauges(self) -> None:
        for host in self.cluster.hosts:
            self.refresh_host_gauges(host)
