"""One PIM host of a simulated fleet.

A :class:`ClusterHost` is a full single-machine vPIM stack — machine,
driver, manager, Firecracker launcher (the paper's Fig. 3 deployment) —
built on a *shared* cluster clock so that N hosts advance one fleet-wide
timeline.  The control plane (``repro.cluster.scheduler``) reads rank
occupancy through the host's manager; it never touches ranks directly.
"""

from __future__ import annotations


from typing import Optional

from repro.config import MachineConfig, RankConfig
from repro.core.api import VPim
from repro.hardware.clock import SimClock
from repro.hardware.timing import CostModel, DEFAULT_COST_MODEL
from repro.paging.config import PagingConfig
from repro.virt.manager import RankState


def host_machine_config(ranks_per_host: int, dpus_per_rank: int,
                        host_cores: int = 16) -> MachineConfig:
    """Uniform machine geometry for fleet hosts."""
    ranks = [RankConfig(i, dpus_per_rank) for i in range(ranks_per_host)]
    return MachineConfig(host_cores=host_cores,
                         host_dram_bytes=16 << 30, ranks=ranks)


class ClusterHost:
    """A single machine of the fleet, addressable by ``host_id``."""

    def __init__(self, host_id: str, config: MachineConfig,
                 clock: SimClock,
                 cost: CostModel = DEFAULT_COST_MODEL,
                 manager_policy: str = "round_robin",
                 paging: Optional[PagingConfig] = None,
                 spans=None) -> None:
        self.host_id = host_id
        self.vpim = VPim(config, cost=cost, clock=clock,
                         manager_policy=manager_policy, paging=paging,
                         spans=spans)
        #: False after :meth:`crash`; dead hosts never fit placements.
        self.alive = True

    # -- stack accessors -----------------------------------------------------

    @property
    def machine(self):
        return self.vpim.machine

    @property
    def driver(self):
        return self.vpim.driver

    @property
    def manager(self):
        return self.vpim.manager

    @property
    def firecracker(self):
        return self.vpim.firecracker

    @property
    def metrics(self):
        return self.vpim.machine.metrics

    # -- occupancy views (what placement policies consult) -------------------

    @property
    def total_ranks(self) -> int:
        return self.machine.nr_ranks

    @property
    def capacity_ranks(self) -> int:
        """Allocatable ranks — physical, or the pager's virtual capacity
        when demand paging overcommits the host (``docs/paging.md``).
        Placement policies size against this, not ``total_ranks``."""
        return self.manager.rank_capacity()

    def allocated_ranks(self) -> int:
        """Ranks currently held by a tenant (ALLO)."""
        return sum(1 for state in self.manager.states().values()
                   if state is RankState.ALLO)

    def free_ranks(self) -> int:
        """Ranks a new tenant could obtain: NAAV now, NANA after the
        pending isolation reset (the manager waits that reset out), or —
        on an overcommitted host — a fresh paged virtual rank."""
        return self.capacity_ranks - self.allocated_ranks()

    def utilization(self) -> float:
        """Allocated share of this host's allocatable ranks, in [0, 1].
        On an overcommitted host the denominator is the virtual
        capacity, so 1.0 still means "no new tenant fits"."""
        if self.capacity_ranks == 0:
            return 0.0
        return self.allocated_ranks() / self.capacity_ranks

    def fits(self, nr_ranks: int) -> bool:
        return self.alive and self.free_ranks() >= nr_ranks

    # -- failure model -------------------------------------------------------

    def crash(self) -> None:
        """Kill this host: every rank goes offline, the rank table goes
        FAIL, and placement policies stop considering it.  Idempotent;
        the control-plane reaction (evicting tenants) lives in
        :meth:`repro.cluster.scheduler.Scheduler.evict_host`.
        """
        if not self.alive:
            return
        self.alive = False
        from repro.hardware.rank import RankHealth
        for rank in self.machine.ranks:
            rank.health = RankHealth.OFFLINE
            self.manager.mark_failed(rank.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ClusterHost({self.host_id}, "
                f"{self.allocated_ranks()}/{self.total_ranks} ranks)")
