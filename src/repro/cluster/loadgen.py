"""Closed-loop fleet load generation: Poisson arrivals of PrIM sessions.

A scenario replays ``nr_requests`` tenant sessions against a
:class:`~repro.cluster.cluster.Cluster`: exponential inter-arrival times
(Poisson process), a mix of rank demands, per-request PrIM applications
and exponential residency holds — all drawn from one seeded
``numpy`` generator (the ``workloads.generators`` convention), so the
same seed replays the identical event sequence and metrics snapshot.

The event loop is a discrete-event simulation over the shared cluster
clock: arrivals enter admission control, placements boot microVMs and
run their application, departures free ranks, and (optionally) the
consolidation loop defragments the fleet between events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.consolidator import Consolidator
from repro.cluster.scheduler import Placement, Scheduler, TenantRequest
from repro.core.session import ExecutionSession
from repro.errors import ClusterError
from repro.qos.config import FleetQosPolicy
from repro.qos.slo import SloEnforcer, SloTracker
from repro.virt.transport import VirtTransport

#: Small, verification-cheap PrIM apps the generator draws from.
DEFAULT_APPS: Tuple[str, ...] = ("VA", "RED", "SEL", "BS")

#: Deliberately small datasets: fleet scenarios run many sessions, and
#: the quantity under study is control-plane behaviour, not app scale.
APP_PARAMS: Dict[str, dict] = {
    "VA": dict(n_elements=1 << 13),
    "RED": dict(n_elements=1 << 13),
    "SEL": dict(n_elements=1 << 12),
    "BS": dict(n_elements=1 << 12, n_queries=1 << 8),
}


@dataclass(frozen=True)
class ScenarioConfig:
    """One reproducible fleet scenario."""

    cluster: ClusterConfig = ClusterConfig()
    policy: str = "round_robin"
    nr_tenants: int = 8
    nr_requests: int = 24
    arrival_rate: float = 2.0          #: requests per simulated second
    mean_hold_s: float = 2.0           #: residency after the app run
    interactive_fraction: float = 0.25
    #: Rank demands sampled per request; ``None`` means a bimodal mix of
    #: single-rank tenants and whole-host tenants (the fragmentation-
    #: sensitive workload placement policies differ on).
    rank_choices: Optional[Tuple[int, ...]] = None
    apps: Tuple[str, ...] = DEFAULT_APPS
    run_apps: bool = True
    queue_limit: int = 16
    tenant_quota_ranks: Optional[int] = None
    consolidate_every_s: float = 0.0   #: 0 disables the consolidator
    #: Fleet-wide QoS policy (``docs/qos.md``): per-class flow configs
    #: for every placed VM plus optional SLO objectives the enforcer
    #: actuates during the run.  ``None`` = no QoS, the exact pre-QoS
    #: event sequence.
    qos: Optional[FleetQosPolicy] = None
    seed: int = 0

    def effective_rank_choices(self) -> Tuple[int, ...]:
        if self.rank_choices is not None:
            return self.rank_choices
        full = self.cluster.ranks_per_host
        return (1, 1, 1, full)

    def validate(self) -> None:
        if self.nr_tenants <= 0:
            raise ClusterError(
                f"nr_tenants must be positive, got {self.nr_tenants}")
        if self.nr_requests <= 0:
            raise ClusterError(
                f"nr_requests must be positive, got {self.nr_requests}")
        if self.arrival_rate <= 0:
            raise ClusterError(
                f"arrival_rate must be positive, got {self.arrival_rate}")
        if not 0 <= self.interactive_fraction <= 1:
            raise ClusterError("interactive_fraction must be in [0, 1]")
        if self.run_apps:
            unknown = set(self.apps) - set(APP_PARAMS)
            if unknown:
                raise ClusterError(
                    f"no scenario parameters for apps {sorted(unknown)}; "
                    f"known: {sorted(APP_PARAMS)}")


@dataclass
class SessionRecord:
    """Outcome of one generated request."""

    request_id: int
    tenant: str
    nr_ranks: int
    deadline_class: str
    outcome: str                       #: admission outcome, or "completed"
    wait_s: Optional[float] = None
    host: Optional[str] = None
    app: Optional[str] = None
    verified: Optional[bool] = None


@dataclass
class ScenarioResult:
    """What one scenario run produced (inputs for ``analysis.fleet``)."""

    config: ScenarioConfig
    records: List[SessionRecord] = field(default_factory=list)
    waits: List[float] = field(default_factory=list)
    rejections: Dict[str, int] = field(default_factory=dict)
    placements: int = 0
    completions: int = 0
    migrations: int = 0
    hosts_drained: int = 0
    #: SLO-enforcement actions taken during the run (weight boosts,
    #: throttles, migration hints), in actuation order.
    slo_actions: List[Tuple[str, str]] = field(default_factory=list)
    makespan_s: float = 0.0
    #: Time integral of allocated ranks (piecewise-constant between
    #: events), for the mean-utilization figure.
    rank_seconds: float = 0.0

    @property
    def submitted(self) -> int:
        return len(self.records)

    @property
    def rejected(self) -> int:
        return sum(self.rejections.values())

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.submitted if self.submitted else 0.0

    def mean_utilization(self, total_ranks: int) -> float:
        if self.makespan_s <= 0 or total_ranks <= 0:
            return 0.0
        return self.rank_seconds / (self.makespan_s * total_ranks)


class LoadGenerator:
    """Drives one scenario against a freshly built cluster."""

    def __init__(self, config: ScenarioConfig) -> None:
        config.validate()
        self.config = config
        self.cluster = Cluster(config.cluster)
        self.scheduler = Scheduler(
            self.cluster, policy=config.policy,
            queue_limit=config.queue_limit,
            tenant_quota_ranks=config.tenant_quota_ranks,
            qos=config.qos)
        self.consolidator = Consolidator(self.cluster, self.scheduler)
        #: SLO machinery (``repro.qos.slo``), armed only when the
        #: scenario's QoS policy declares objectives.
        self.slo_tracker: Optional[SloTracker] = None
        self.slo_enforcer: Optional[SloEnforcer] = None
        if config.qos is not None and config.qos.objectives:
            self.slo_tracker = SloTracker(metrics=self.cluster.metrics)
            self.slo_enforcer = SloEnforcer(
                self.slo_tracker, config.qos.objectives,
                metrics=self.cluster.metrics)
        self._records: Dict[int, SessionRecord] = {}
        #: Optional per-event callback ``fn(generator)``, invoked after
        #: the clock advances to each event.  This is the fleet-scope
        #: fault-delivery point (``repro.faults`` host crashes have no
        #: per-operation seam); ``None`` costs nothing.
        self.on_event = None

    # -- schedule construction ----------------------------------------------

    def build_requests(self) -> List[Tuple[float, TenantRequest]]:
        """The arrival schedule: ``(arrival_time, request)`` pairs."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        gaps = rng.exponential(1.0 / cfg.arrival_rate,
                               size=cfg.nr_requests)
        times = np.cumsum(gaps)
        choices = cfg.effective_rank_choices()
        out: List[Tuple[float, TenantRequest]] = []
        for i in range(cfg.nr_requests):
            request = TenantRequest(
                tenant=f"t{int(rng.integers(0, cfg.nr_tenants))}",
                nr_ranks=int(choices[int(rng.integers(0, len(choices)))]),
                app=(cfg.apps[int(rng.integers(0, len(cfg.apps)))]
                     if cfg.run_apps else None),
                deadline_class=("interactive"
                                if rng.random() < cfg.interactive_fraction
                                else "batch"),
                hold_s=float(rng.exponential(cfg.mean_hold_s)),
                seed=int(rng.integers(0, 1 << 30)),
            )
            out.append((float(times[i]), request))
        return out

    # -- the event loop ------------------------------------------------------

    def run(self) -> ScenarioResult:
        clock = self.cluster.clock
        result = ScenarioResult(config=self.config)
        events: List[Tuple[float, int, str, object]] = []
        seq = itertools.count()
        for when, request in self.build_requests():
            heapq.heappush(events, (when, next(seq), "arrival", request))
        last_consolidation = 0.0
        last_t, last_allocated = clock.now, self.cluster.allocated_ranks()

        while events:
            when, _, kind, payload = heapq.heappop(events)
            clock.advance_to(when)
            result.rank_seconds += last_allocated * (clock.now - last_t)
            last_t = clock.now
            if self.on_event is not None:
                self.on_event(self)

            if kind == "arrival":
                self._handle_arrival(payload, result)
            else:
                self._handle_departure(payload, result)

            if (self.config.consolidate_every_s > 0
                    and clock.now - last_consolidation
                    >= self.config.consolidate_every_s):
                self.consolidator.run_once()
                last_consolidation = clock.now

            # Anything newly placeable (capacity freed, queue populated).
            while True:
                placement = self.scheduler.try_place_next()
                if placement is None:
                    break
                self._service(placement, result, events, seq)

            if self.slo_enforcer is not None:
                actions = self.slo_enforcer.evaluate(clock.now)
                result.slo_actions.extend(
                    (action.tenant, action.action) for action in actions)
                hints = self.slo_enforcer.take_migration_hints()
                if hints:
                    # Actuation of last resort: re-home the burning
                    # tenant away from its noisy neighbors.
                    self.consolidator.relieve(hints)

            last_allocated = self.cluster.allocated_ranks()
            for host in self.cluster.hosts:
                self.scheduler.refresh_host_gauges(host)

        result.makespan_s = clock.now
        result.migrations = self.consolidator.migrations
        result.hosts_drained = self.consolidator.hosts_drained
        result.records = [self._records[rid] for rid in sorted(self._records)]
        return result

    # -- event handlers ------------------------------------------------------

    def _handle_arrival(self, request: TenantRequest,
                        result: ScenarioResult) -> None:
        outcome = self.scheduler.submit(request)
        self._records[request.request_id] = SessionRecord(
            request_id=request.request_id, tenant=request.tenant,
            nr_ranks=request.nr_ranks,
            deadline_class=request.deadline_class,
            outcome=outcome, app=request.app)
        if outcome != "queued":
            result.rejections[outcome] = result.rejections.get(outcome, 0) + 1

    def _handle_departure(self, placement: Placement,
                          result: ScenarioResult) -> None:
        if placement not in self.scheduler.active:
            # Evicted by a host crash before departing; the request was
            # requeued and will depart under its replacement placement.
            return
        if (self.slo_enforcer is not None
                and placement.vm.qos_flow is not None):
            self.slo_enforcer.unbind(placement.tenant,
                                     placement.vm.qos_flow)
        self.scheduler.release(placement)
        record = self._records[placement.request.request_id]
        record.outcome = "completed"
        record.host = placement.host.host_id
        result.completions += 1

    def _service(self, placement: Placement, result: ScenarioResult,
                 events: list, seq) -> None:
        """Resource a fresh placement: run its app, hold, book departure."""
        request = placement.request
        record = self._records[request.request_id]
        record.wait_s = placement.placed_at - request.arrival_time
        result.waits.append(record.wait_s)
        result.placements += 1
        flow = placement.vm.qos_flow
        if self.slo_enforcer is not None and flow is not None:
            self.slo_enforcer.bind(request.tenant, flow,
                                   host_id=placement.host.host_id)
        if request.app is not None:
            report = self._run_app(placement)
            record.verified = report.verified
            if self.slo_tracker is not None:
                self.slo_tracker.observe_session(
                    request.tenant, report.total_time,
                    self.cluster.clock.now)
        # Residency: the tenant keeps its devices linked until departure.
        placement.acquire()
        departs_at = self.cluster.clock.now + request.hold_s
        heapq.heappush(events, (departs_at, next(seq), "departure",
                                placement))

    def _run_app(self, placement: Placement):
        from repro.apps.registry import app_by_short_name

        request = placement.request
        nr_dpus = (request.nr_ranks
                   * self.config.cluster.dpus_per_rank)
        params = dict(APP_PARAMS[request.app], seed=request.seed)
        app = app_by_short_name(request.app).cls(nr_dpus=nr_dpus, **params)
        session = ExecutionSession(
            VirtTransport(placement.vm),
            mode=f"fleet/{self.scheduler.policy.name}", vm=placement.vm)
        return session.run(app)


def run_scenario(config: ScenarioConfig) -> Tuple[ScenarioResult, Cluster]:
    """Build a cluster, replay ``config``, return result and cluster."""
    generator = LoadGenerator(config)
    result = generator.run()
    return result, generator.cluster
