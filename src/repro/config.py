"""Machine geometry constants and configuration dataclasses.

The numbers mirror Section 2 and Section 5.1 of the paper:

- A rank has 64 DPUs spread over 8 PIM chips (8 DPUs per chip).
- A DIMM has 2 ranks.
- Each DPU owns a 64 MB MRAM bank, 64 KB WRAM, 24 KB IRAM, and runs up to
  24 tasklets at 350 MHz (the evaluation machine; the architecture allows
  up to 400 MHz).
- The evaluation testbed has 4 UPMEM DIMMs = 8 ranks; rank 0 has only 60
  functional DPUs, the others 64, for 480 functional DPUs in total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

# ---------------------------------------------------------------------------
# Hardware geometry (Fig. 1)
# ---------------------------------------------------------------------------

MRAM_SIZE = 64 * 1024 * 1024       #: bytes of MRAM per DPU
WRAM_SIZE = 64 * 1024              #: bytes of WRAM per DPU
IRAM_SIZE = 24 * 1024              #: bytes of IRAM per DPU
DPUS_PER_CHIP = 8                  #: DPUs per PIM chip
CHIPS_PER_RANK = 8                 #: PIM chips per rank
DPUS_PER_RANK = DPUS_PER_CHIP * CHIPS_PER_RANK   # 64
RANKS_PER_DIMM = 2                 #: ranks on one UPMEM DIMM
MAX_TASKLETS = 24                  #: hardware tasklet limit per DPU
PIPELINE_DEPTH = 11                #: cycles separating two instructions of a thread
DPU_FREQUENCY_HZ = 350_000_000     #: evaluation machine clock (Section 5.1)

PAGE_SIZE = 4096                   #: guest/host page size
MAX_XFER_BYTES = 4 * 1024 * 1024 * 1024  #: 4 GB max per rank operation (Section 3.1)

#: MRAM heap symbol name used by the SDK, mirroring DPU_MRAM_HEAP_POINTER_NAME.
MRAM_HEAP_SYMBOL = "__sys_used_mram_end"

# ---------------------------------------------------------------------------
# Virtio-pim specification constants (Appendix A.1)
# ---------------------------------------------------------------------------

VIRTIO_PIM_DEVICE_ID = 42          #: device ID claimed by the specification
TRANSFERQ_SLOTS = 512              #: transferq capacity in descriptor pointers
MAX_SERIALIZED_BUFFERS = 130       #: request info + matrix meta + 64x(meta+pages)

# ---------------------------------------------------------------------------
# Frontend optimization defaults (Section 4.1)
# ---------------------------------------------------------------------------

PREFETCH_PAGES_PER_DPU = 16        #: prefetch cache capacity, pages per DPU
BATCH_PAGES_PER_DPU = 64           #: request-batching buffer, pages per DPU

# ---------------------------------------------------------------------------
# Backend defaults (Section 4.2)
# ---------------------------------------------------------------------------

BACKEND_WORKER_THREADS = 8         #: DPU-operation worker threads per backend
TRANSLATION_THREADS = 8            #: GPA->HVA translation threads
MANAGER_POOL_THREADS = 8           #: manager request thread pool


@dataclass(frozen=True)
class RankConfig:
    """Static description of one rank's population.

    ``functional_dpus`` models defective DPUs: the evaluation machine's
    first rank exposes only 60 of its 64 DPUs (Section 5.1 footnote).
    """

    index: int
    functional_dpus: int = DPUS_PER_RANK

    def __post_init__(self) -> None:
        if not 0 < self.functional_dpus <= DPUS_PER_RANK:
            raise ValueError(
                f"functional_dpus must be in 1..{DPUS_PER_RANK}, "
                f"got {self.functional_dpus}"
            )


@dataclass(frozen=True)
class MachineConfig:
    """Description of a host machine equipped with UPMEM DIMMs.

    The default mirrors the paper's testbed: 16-core Xeon, 192 GB DRAM,
    8 ranks with 480 functional DPUs (rank 0 has 60).
    """

    host_cores: int = 16
    host_dram_bytes: int = 192 * 1024 * 1024 * 1024
    ranks: List[RankConfig] = field(default_factory=lambda: PAPER_TESTBED_RANKS)

    @property
    def nr_ranks(self) -> int:
        return len(self.ranks)

    @property
    def total_functional_dpus(self) -> int:
        return sum(r.functional_dpus for r in self.ranks)


#: Rank population of the paper's testbed: defective DPUs reduce the
#: nominal 512 to 480 functional DPUs across 8 ranks (Section 5.1); the
#: strong-scaling experiments use 60 DPUs per rank, so we model each rank
#: with 60 functional DPUs (the paper notes rank 0 itself has only 60).
PAPER_TESTBED_RANKS: List[RankConfig] = [RankConfig(i, 60) for i in range(8)]


def paper_testbed() -> MachineConfig:
    """Return a :class:`MachineConfig` matching Section 5.1's machine."""
    return MachineConfig()


def small_machine(nr_ranks: int = 2, dpus_per_rank: int = 8) -> MachineConfig:
    """A deliberately small machine for unit tests and examples."""
    ranks = [RankConfig(i, dpus_per_rank) for i in range(nr_ranks)]
    return MachineConfig(host_cores=4, host_dram_bytes=8 << 30, ranks=ranks)
