"""BS — Binary Search (databases).

Each DPU holds a sorted slice of the array; the full query set is
broadcast to every DPU, which searches its slice.  BS is DPU-compute
dominated, which is why its virtualization overhead is the paper's best
case (1.01x).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import sorted_array

#: Instructions per binary-search probe (compare, branch, halve).
INSTR_PER_PROBE = 6


class BsProgram(DpuProgram):
    """DPU side: search every query in this DPU's sorted slice."""

    name = "bs_dpu"
    symbols = {"n_elems": 4, "n_queries": 4, "q_offset": 4,
               "r_offset": 4, "base_index": 4}
    nr_tasklets = 16
    binary_size = 7 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
        yield ctx.barrier()
        n = ctx.host_u32("n_elems")
        nq = ctx.host_u32("n_queries")
        q_off = ctx.host_u32("q_offset")
        r_off = ctx.host_u32("r_offset")
        base = ctx.host_u32("base_index")
        qrange = tasklet_range(ctx, nq)
        if len(qrange) == 0 or n == 0:
            return
        ctx.mem_alloc(2 * 1024)
        data = ctx.mram_read_blocks(0, n * 8).view(np.int64)
        queries = ctx.mram_read_blocks(q_off + qrange.start * 8,
                                       len(qrange) * 8).view(np.int64)
        # Vectorized equivalent of the per-query binary-search loop.
        pos = np.searchsorted(data, queries)
        found = (pos < n) & (data[np.minimum(pos, n - 1)] == queries)
        results = np.where(found, pos + base, -1).astype(np.int64)
        ctx.mram_write_blocks(r_off + qrange.start * 8, results)
        probes = int(np.ceil(np.log2(max(2, n))))
        ctx.charge_loop(len(qrange), INSTR_PER_PROBE * probes)


class BinarySearch(HostApplication):
    """Host side of BS."""

    name = "Binary Search"
    short_name = "BS"
    domain = "Databases"

    def __init__(self, nr_dpus: int, n_elements: int = 1 << 20,
                 n_queries: int = 1 << 14, seed: int = 0) -> None:
        super().__init__(nr_dpus, n_elements=n_elements,
                         n_queries=n_queries, seed=seed)
        self.data = sorted_array(n_elements, seed=seed)
        rng = np.random.default_rng(seed + 1)
        picks = rng.integers(0, n_elements, size=n_queries)
        self.queries = self.data[picks].copy()
        # A fraction of queries miss on purpose.
        miss = rng.random(n_queries) < 0.25
        self.queries[miss] += 1  # values are spaced by >= 1; +1 may still hit

    def expected(self) -> np.ndarray:
        pos = np.searchsorted(self.data, self.queries)
        n = self.data.size
        found = (pos < n) & (self.data[np.minimum(pos, n - 1)] == self.queries)
        return np.where(found, pos, -1).astype(np.int64)

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        counts = self.split_even(self.data.size, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        nq = self.queries.size
        q_off = max(counts) * 8
        r_off = q_off + nq * 8
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(BsProgram())
            with profiler.segment("CPU-DPU"):
                dpus.push_to("n_elems", 0,
                             [np.array([c], np.uint32) for c in counts])
                dpus.broadcast_to("n_queries", 0, np.array([nq], np.uint32))
                dpus.broadcast_to("q_offset", 0, np.array([q_off], np.uint32))
                dpus.broadcast_to("r_offset", 0, np.array([r_off], np.uint32))
                dpus.push_to("base_index", 0,
                             [np.array([bounds[i]], np.uint32)
                              for i in range(self.nr_dpus)])
                dpus.push_to_mram(0, [self.data[bounds[i]:bounds[i + 1]]
                                      for i in range(self.nr_dpus)])
                dpus.push_to_mram(q_off, [self.queries] * self.nr_dpus)
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("DPU-CPU"):
                per_dpu = dpus.push_from_mram(r_off, nq * 8)
        # Each query hits in exactly one DPU's slice: combine by max.
        stacked = np.stack([buf.view(np.int64) for buf in per_dpu])
        return stacked.max(axis=0)
