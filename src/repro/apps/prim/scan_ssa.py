"""SCAN-SSA — Prefix sum, scan-scan-add variant (parallel primitives).

Phase 1 (DPU): every DPU computes an inclusive scan of its slice and its
slice total.  Inter-DPU (host): read the per-DPU totals (a small read —
prefetch-cache territory in vPIM), exclusive-scan them, and write each
DPU its base offset (small writes — batching territory).  Phase 2 (DPU):
add the base offset to every element.  DPU-CPU: read the scanned slices.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_array

#: Instructions per element in the scan phase.
INSTR_PER_SCAN = 4
#: Instructions per element in the add phase.
INSTR_PER_ADD = 3


class ScanSsaProgram(DpuProgram):
    """DPU side: phase 0 = local scan, phase 1 = add base offset."""

    name = "scan_ssa_dpu"
    symbols = {"n_elems": 4, "out_offset": 4, "sum_offset": 4,
               "phase": 4, "base": 8}
    nr_tasklets = 16
    binary_size = 8 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
            ctx.shared["tsums"] = [0] * ctx.nr_tasklets
        yield ctx.barrier()
        n = ctx.host_u32("n_elems")
        out_off = ctx.host_u32("out_offset")
        phase = ctx.host_u32("phase")
        rng = tasklet_range(ctx, n)
        ctx.mem_alloc(2 * 1024)

        if phase == 0:
            if len(rng):
                data = ctx.mram_read_blocks(rng.start * 4,
                                            len(rng) * 4).view(np.int32)
                local = np.cumsum(data.astype(np.int64))
                ctx.shared["tsums"][ctx.me()] = int(local[-1])
                ctx.shared[f"scan{ctx.me()}"] = local
                ctx.charge_loop(len(rng), INSTR_PER_SCAN)
            yield ctx.barrier()
            # Tasklet-level offsets, then write the scanned slice.
            if len(rng):
                prior = sum(ctx.shared["tsums"][:ctx.me()])
                scanned = (ctx.shared[f"scan{ctx.me()}"] + prior)
                ctx.mram_write_blocks(out_off + rng.start * 8,
                                      scanned.astype(np.int64))
                ctx.charge_loop(len(rng), 1)
            if ctx.me() == 0:
                total = sum(ctx.shared["tsums"])
                ctx.mram_write(ctx.host_u32("sum_offset"),
                               np.array([total], dtype=np.int64))
        else:
            if len(rng):
                base = ctx.host_i64("base")
                scanned = ctx.mram_read_blocks(
                    out_off + rng.start * 8, len(rng) * 8).view(np.int64)
                ctx.mram_write_blocks(out_off + rng.start * 8, scanned + base)
                ctx.charge_loop(len(rng), INSTR_PER_ADD)


class ScanSsa(HostApplication):
    """Host side of SCAN-SSA."""

    name = "Prefix sum (scan-scan-add)"
    short_name = "SCAN-SSA"
    domain = "Parallel primitives"

    def __init__(self, nr_dpus: int, n_elements: int = 1 << 19,
                 seed: int = 0) -> None:
        super().__init__(nr_dpus, n_elements=n_elements, seed=seed)
        self.data = random_array(n_elements, np.int32, lo=0, hi=64, seed=seed)

    def expected(self) -> np.ndarray:
        return np.cumsum(self.data.astype(np.int64))

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        counts = self.split_even(self.data.size, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        out_off = max(counts) * 4
        sum_off = out_off + max(counts) * 8
        out = np.empty(self.data.size, dtype=np.int64)
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(ScanSsaProgram())
            with profiler.segment("CPU-DPU"):
                dpus.push_to("n_elems", 0,
                             [np.array([c], np.uint32) for c in counts])
                dpus.broadcast_to("out_offset", 0,
                                  np.array([out_off], np.uint32))
                dpus.broadcast_to("sum_offset", 0,
                                  np.array([sum_off], np.uint32))
                dpus.broadcast_to("phase", 0, np.array([0], np.uint32))
                dpus.push_to_mram(0, [self.data[bounds[i]:bounds[i + 1]]
                                      for i in range(self.nr_dpus)])
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("Inter-DPU"):
                # Small per-DPU sum read + small base writes: the message
                # traffic the prefetch cache and batching act on.
                sums = dpus.push_from_mram(sum_off, 8)
                totals = np.array([int(s.view(np.int64)[0]) for s in sums],
                                  dtype=np.int64)
                bases = np.concatenate([[0], np.cumsum(totals)[:-1]])
                dpus.push_to("base", 0,
                             [np.array([b], np.int64) for b in bases])
                dpus.broadcast_to("phase", 0, np.array([1], np.uint32))
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("DPU-CPU"):
                for i, buf in enumerate(
                        dpus.push_from_mram(out_off, max(counts) * 8)):
                    out[bounds[i]:bounds[i + 1]] = (
                        buf[:counts[i] * 8].view(np.int64))
        return out
