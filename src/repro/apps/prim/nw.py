"""NW — Needleman-Wunsch sequence alignment (bioinformatics).

The DP matrix is computed block by block along anti-diagonals; blocks of
one diagonal run in parallel on different DPUs.  Every block needs its
top row, left column and corner from neighbouring blocks, and the PrIM
implementation moves these boundaries in *tiny element-wise transfers*
("a data transfer is produced for each element", Section 5.2): >650k
operations of ~160 B at full scale, 53x overhead under naive
virtualization, and the flagship beneficiary of the prefetch-cache +
request-batching optimizations (Fig. 14).  We chunk boundary traffic at
``chunk_bytes`` (128 B by default, matching the paper's per-op sizes);
the op-per-byte ratio of the original is preserved at reduced scale.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext
from repro.sdk.transport import Transport
from repro.workloads.generators import random_array

MATCH = 1
MISMATCH = -1
GAP = 2

#: Instructions per DP cell (three candidates, two maxes, store).
INSTR_PER_CELL = 12


def _dp_rows(a: np.ndarray, b: np.ndarray, top: np.ndarray,
             left: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Compute a DP block; returns (bottom row incl corner, right column).

    ``top`` has len(b)+1 entries (corner first), ``left`` has len(a).
    Rows are vectorized with the prefix-max trick for the in-row gap
    dependency: H[r][j] = max_k<=j (V[k] - (j-k)*GAP).
    """
    nb = b.size
    prev = top.astype(np.int64)
    right = np.empty(a.size, dtype=np.int64)
    jg = np.arange(nb + 1, dtype=np.int64) * GAP
    sub = np.where(b[np.newaxis, :] == a[:, np.newaxis],
                   MATCH, MISMATCH).astype(np.int64)
    v = np.empty(nb + 1, dtype=np.int64)
    for r in range(a.size):
        v[0] = left[r]
        np.maximum(prev[:-1] + sub[r], prev[1:] - GAP, out=v[1:])
        h = v + jg
        np.maximum.accumulate(h, out=h)
        h -= jg
        right[r] = h[-1]
        prev = h
    return prev, right


def nw_score(a: np.ndarray, b: np.ndarray) -> int:
    """CPU reference: global alignment score of ``a`` vs ``b``."""
    top = -GAP * np.arange(b.size + 1, dtype=np.int64)
    left = -GAP * np.arange(1, a.size + 1, dtype=np.int64)
    bottom, _ = _dp_rows(a, b, top, left)
    return int(bottom[-1])


class NwProgram(DpuProgram):
    """DPU side: compute the DP block described by the MRAM header."""

    name = "nw_dpu"
    symbols = {"block_size": 4, "a_offset": 4, "b_offset": 4,
               "hdr_offset": 4, "top_offset": 4, "left_offset": 4,
               "out_offset": 4}
    nr_tasklets = 8
    binary_size = 10 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
        yield ctx.barrier()
        if ctx.me() != 0:
            return
        header = ctx.mram_read(ctx.host_u32("hdr_offset"), 12).view(np.int32)
        active, bi, bj = int(header[0]), int(header[1]), int(header[2])
        if not active:
            return
        bs = ctx.host_u32("block_size")
        ctx.mem_alloc(6 * bs * 8)
        a = ctx.mram_read_blocks(ctx.host_u32("a_offset") + bi * bs,
                                 bs).view(np.int8)
        b = ctx.mram_read_blocks(ctx.host_u32("b_offset") + bj * bs,
                                 bs).view(np.int8)
        top = ctx.mram_read(ctx.host_u32("top_offset"),
                            (bs + 1) * 8).view(np.int64)
        left = ctx.mram_read(ctx.host_u32("left_offset"),
                             bs * 8).view(np.int64)
        bottom, right = _dp_rows(a, b, top, left)
        out = np.concatenate([bottom, right])  # (bs+1) + bs values
        ctx.mram_write(ctx.host_u32("out_offset"), out)
        ctx.charge_loop(bs * bs, INSTR_PER_CELL)


class NeedlemanWunsch(HostApplication):
    """Host side of NW."""

    name = "Needleman-Wunsch"
    short_name = "NW"
    domain = "Bioinformatics"

    def __init__(self, nr_dpus: int, seq_len: int = 512,
                 block_size: int = 64, chunk_bytes: int = 128,
                 seed: int = 0) -> None:
        if seq_len % block_size:
            raise ValueError("seq_len must be a multiple of block_size")
        if chunk_bytes % 8:
            raise ValueError("chunk_bytes must be a multiple of 8")
        super().__init__(nr_dpus, seq_len=seq_len, block_size=block_size,
                         chunk_bytes=chunk_bytes, seed=seed)
        self.a = random_array(seq_len, np.int8, lo=0, hi=4, seed=seed)
        self.b = random_array(seq_len, np.int8, lo=0, hi=4, seed=seed + 1)
        self.block_size = block_size
        self.chunk_bytes = chunk_bytes

    def expected(self) -> int:
        return nw_score(self.a, self.b)

    def _chunked_write(self, dpus: DpuSet, d: int, offset: int,
                       values: np.ndarray) -> None:
        """Write an int64 boundary array in chunk_bytes pieces."""
        step = self.chunk_bytes // 8
        for c in range(0, values.size, step):
            piece = values[c:c + step]
            dpus.copy_to_mram(d, offset + c * 8, piece)

    def _chunked_read(self, dpus: DpuSet, d: int, offset: int,
                      count: int) -> np.ndarray:
        """Read ``count`` int64 values in chunk_bytes pieces."""
        step = self.chunk_bytes // 8
        parts = []
        for c in range(0, count, step):
            n = min(step, count - c)
            parts.append(dpus.copy_from_mram(d, offset + c * 8, n * 8))
        return np.concatenate(parts).view(np.int64)

    def run(self, transport: Transport) -> int:
        profiler = transport.profiler
        bs = self.block_size
        nblocks = self.a.size // bs
        a_off, b_off = 0, self.a.size
        hdr_off = ((b_off + self.b.size + 7) // 8) * 8
        top_off = hdr_off + 16
        left_off = top_off + (bs + 1) * 8
        out_off = left_off + bs * 8

        # Host-side boundary store: block -> (bottom incl corner, right).
        bottom: Dict[Tuple[int, int], np.ndarray] = {}
        right: Dict[Tuple[int, int], np.ndarray] = {}

        def top_of(i: int, j: int) -> np.ndarray:
            """Corner + top row of block (i, j)."""
            if i == 0:
                return -GAP * (np.arange(bs + 1, dtype=np.int64) + j * bs)
            return bottom[(i - 1, j)]

        def left_of(i: int, j: int) -> np.ndarray:
            if j == 0:
                return -GAP * (np.arange(1, bs + 1, dtype=np.int64) + i * bs)
            return right[(i, j - 1)]

        final_score = 0
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(NwProgram())
            with profiler.segment("CPU-DPU"):
                dpus.broadcast_to("block_size", 0, np.array([bs], np.uint32))
                dpus.broadcast_to("a_offset", 0, np.array([a_off], np.uint32))
                dpus.broadcast_to("b_offset", 0, np.array([b_off], np.uint32))
                dpus.broadcast_to("hdr_offset", 0, np.array([hdr_off], np.uint32))
                dpus.broadcast_to("top_offset", 0, np.array([top_off], np.uint32))
                dpus.broadcast_to("left_offset", 0, np.array([left_off], np.uint32))
                dpus.broadcast_to("out_offset", 0, np.array([out_off], np.uint32))
                dpus.push_to_mram(a_off, [self.a] * self.nr_dpus)
                dpus.push_to_mram(b_off, [self.b] * self.nr_dpus)

            for diag in range(2 * nblocks - 1):
                blocks = [(i, diag - i) for i in range(nblocks)
                          if 0 <= diag - i < nblocks]
                for group_start in range(0, len(blocks), self.nr_dpus):
                    group = blocks[group_start:group_start + self.nr_dpus]
                    with profiler.segment("CPU-DPU"):
                        # Element-wise boundary distribution (the paper's
                        # tiny-transfer storm; absorbed by batching).
                        for d, (i, j) in enumerate(group):
                            dpus.copy_to_mram(
                                d, hdr_off, np.array([1, i, j], np.int32))
                            self._chunked_write(dpus, d, top_off, top_of(i, j))
                            self._chunked_write(dpus, d, left_off, left_of(i, j))
                        for d in range(len(group), self.nr_dpus):
                            dpus.copy_to_mram(
                                d, hdr_off, np.array([0, 0, 0], np.int32))
                    with profiler.segment("DPU"):
                        dpus.launch()
                    with profiler.segment("Inter-DPU"):
                        # Element-wise boundary retrieval (served by the
                        # prefetch cache after the first chunk).
                        for d, (i, j) in enumerate(group):
                            out = self._chunked_read(dpus, d, out_off,
                                                     2 * bs + 1)
                            bottom[(i, j)] = out[:bs + 1]
                            right[(i, j)] = out[bs + 1:]
            final_score = int(bottom[(nblocks - 1, nblocks - 1)][-1])
        return final_score
