"""SEL — Select (databases).

Each DPU compacts the elements of its slice that satisfy the predicate
(keep ``x % 2 == 0``, as in PrIM's default).  The DPU-CPU step retrieves
each DPU's compacted output *serially* (one ``dpu_copy_from`` per DPU) —
the transfer-pattern pathology the paper highlights: with more DPUs the
retrieval time grows, so SEL scales badly from 60 to 480 DPUs in both
native and vPIM runs (Section 5.2, Fig. 8 bottom row).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_array

#: Instructions per scanned element (load, test, conditional store).
INSTR_PER_ELEM = 5


def predicate(values: np.ndarray) -> np.ndarray:
    """The PrIM SEL predicate: keep even values."""
    return values % 2 == 0


class SelProgram(DpuProgram):
    """DPU side: stable-compact the slice's matching elements."""

    name = "sel_dpu"
    symbols = {"n_elems": 4, "out_offset": 4, "n_selected": 4}
    nr_tasklets = 16
    binary_size = 7 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
            ctx.shared["kept"] = [None] * ctx.nr_tasklets
        yield ctx.barrier()
        n = ctx.host_u32("n_elems")
        rng = tasklet_range(ctx, n)
        ctx.mem_alloc(2 * 1024)
        if len(rng):
            data = ctx.mram_read_blocks(rng.start * 4,
                                        len(rng) * 4).view(np.int32)
            ctx.shared["kept"][ctx.me()] = data[predicate(data)]
            ctx.charge_loop(len(rng), INSTR_PER_ELEM)
        yield ctx.barrier()
        # Tasklet 0 concatenates the per-tasklet results (the PrIM kernel
        # does this with a prefix sum of per-tasklet counts).
        if ctx.me() == 0:
            parts = [p for p in ctx.shared["kept"] if p is not None and p.size]
            out = (np.concatenate(parts) if parts
                   else np.empty(0, dtype=np.int32))
            ctx.set_host_u32("n_selected", out.size)
            if out.size:
                ctx.mram_write_blocks(ctx.host_u32("out_offset"), out)
            ctx.charge(ctx.nr_tasklets * 4)


class Select(HostApplication):
    """Host side of SEL."""

    name = "Select"
    short_name = "SEL"
    domain = "Databases"

    def __init__(self, nr_dpus: int, n_elements: int = 1 << 20,
                 seed: int = 0) -> None:
        super().__init__(nr_dpus, n_elements=n_elements, seed=seed)
        self.data = random_array(n_elements, np.int32, seed=seed)

    def expected(self) -> np.ndarray:
        return self.data[predicate(self.data)]

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        counts = self.split_even(self.data.size, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        out_off = max(counts) * 4
        pieces = []
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(SelProgram())
            with profiler.segment("CPU-DPU"):
                dpus.push_to("n_elems", 0,
                             [np.array([c], np.uint32) for c in counts])
                dpus.broadcast_to("out_offset", 0,
                                  np.array([out_off], np.uint32))
                dpus.push_to_mram(0, [self.data[bounds[i]:bounds[i + 1]]
                                      for i in range(self.nr_dpus)])
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("DPU-CPU"):
                # Serial retrieval, exactly like the PrIM implementation:
                # read the count, then copy that DPU's output, one DPU at
                # a time.
                for i in range(self.nr_dpus):
                    n_sel = int(dpus.copy_from(i, "n_selected", 0, 4)
                                .view(np.uint32)[0])
                    if n_sel:
                        buf = dpus.copy_from_mram(i, out_off, n_sel * 4)
                        pieces.append(buf.view(np.int32))
        return (np.concatenate(pieces) if pieces
                else np.empty(0, dtype=np.int32))
