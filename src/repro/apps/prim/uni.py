"""UNI — Unique (databases).

Removes *consecutive* duplicates (stream compaction), PrIM-style: each
DPU deduplicates its slice locally; the host stitches slice boundaries
(dropping a slice's head if it equals the previous slice's tail).  Like
SEL, the DPU-CPU retrieval is serial per DPU, so UNI scales poorly with
DPU count in both native and virtualized runs.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_array

#: Instructions per scanned element (load, compare-to-previous, store).
INSTR_PER_ELEM = 5


def unique_consecutive(values: np.ndarray) -> np.ndarray:
    """CPU reference for consecutive-duplicate removal."""
    if values.size == 0:
        return values
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    keep[1:] = values[1:] != values[:-1]
    return values[keep]


class UniProgram(DpuProgram):
    """DPU side: local consecutive-duplicate removal."""

    name = "uni_dpu"
    symbols = {"n_elems": 4, "out_offset": 4, "n_unique": 4}
    nr_tasklets = 16
    binary_size = 7 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
            ctx.shared["parts"] = [None] * ctx.nr_tasklets
        yield ctx.barrier()
        n = ctx.host_u32("n_elems")
        rng = tasklet_range(ctx, n)
        ctx.mem_alloc(2 * 1024)
        if len(rng):
            data = ctx.mram_read_blocks(rng.start * 4,
                                        len(rng) * 4).view(np.int32)
            ctx.shared["parts"][ctx.me()] = (rng.start, data)
            ctx.charge_loop(len(rng), INSTR_PER_ELEM)
        yield ctx.barrier()
        if ctx.me() == 0:
            # Tasklet 0 merges: dedup within and across tasklet boundaries
            # (the real kernel uses handshakes between adjacent tasklets).
            chunks = [p[1] for p in ctx.shared["parts"] if p is not None]
            if chunks:
                out = unique_consecutive(np.concatenate(chunks))
            else:
                out = np.empty(0, dtype=np.int32)
            ctx.set_host_u32("n_unique", out.size)
            if out.size:
                ctx.mram_write_blocks(ctx.host_u32("out_offset"), out)
            ctx.charge(ctx.nr_tasklets * 4)


class Unique(HostApplication):
    """Host side of UNI."""

    name = "Unique"
    short_name = "UNI"
    domain = "Databases"

    def __init__(self, nr_dpus: int, n_elements: int = 1 << 20,
                 value_range: int = 8, seed: int = 0) -> None:
        super().__init__(nr_dpus, n_elements=n_elements,
                         value_range=value_range, seed=seed)
        # A small value range produces plenty of consecutive duplicates.
        self.data = random_array(n_elements, np.int32, lo=0,
                                 hi=value_range, seed=seed)

    def expected(self) -> np.ndarray:
        return unique_consecutive(self.data)

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        counts = self.split_even(self.data.size, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        out_off = max(counts) * 4
        pieces = []
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(UniProgram())
            with profiler.segment("CPU-DPU"):
                dpus.push_to("n_elems", 0,
                             [np.array([c], np.uint32) for c in counts])
                dpus.broadcast_to("out_offset", 0,
                                  np.array([out_off], np.uint32))
                dpus.push_to_mram(0, [self.data[bounds[i]:bounds[i + 1]]
                                      for i in range(self.nr_dpus)])
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("DPU-CPU"):
                for i in range(self.nr_dpus):
                    n_uni = int(dpus.copy_from(i, "n_unique", 0, 4)
                                .view(np.uint32)[0])
                    if n_uni:
                        buf = dpus.copy_from_mram(i, out_off, n_uni * 4)
                        pieces.append(buf.view(np.int32))
        if not pieces:
            return np.empty(0, dtype=np.int32)
        # Host-side boundary stitch between consecutive DPUs.
        return unique_consecutive(np.concatenate(pieces))
