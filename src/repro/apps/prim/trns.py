"""TRNS — Matrix Transposition (parallel primitives).

The PrIM TRNS implementation streams the matrix through the DPUs tile by
tile: each tile is written with its own small ``dpu_copy_to``, locally
transposed on the DPU, and read back with its own small ``dpu_copy_from``
— close to a million ~512 B operations at full scale (Section 5.2).
This is, with NW, the workload that stresses request handling hardest.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_matrix

#: Instructions per transposed element (load, index swap, store).
INSTR_PER_ELEM = 4


class TrnsProgram(DpuProgram):
    """DPU side: transpose the ``n_tiles`` tiles staged in MRAM."""

    name = "trns_dpu"
    symbols = {"tile_dim": 4, "n_tiles": 4, "out_offset": 4}
    nr_tasklets = 16
    binary_size = 6 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
        yield ctx.barrier()
        t = ctx.host_u32("tile_dim")
        n_tiles = ctx.host_u32("n_tiles")
        out_off = ctx.host_u32("out_offset")
        tile_bytes = t * t * 4
        my_tiles = tasklet_range(ctx, n_tiles)
        if len(my_tiles) == 0:
            return
        ctx.mem_alloc(2 * tile_bytes)
        for k in my_tiles:
            tile = ctx.mram_read(k * tile_bytes, tile_bytes).view(np.int32)
            out = np.ascontiguousarray(tile.reshape(t, t).T)
            ctx.mram_write(out_off + k * tile_bytes, out)
            ctx.charge_loop(t * t, INSTR_PER_ELEM)


class Transpose(HostApplication):
    """Host side of TRNS."""

    name = "Matrix Transposition"
    short_name = "TRNS"
    domain = "Parallel primitives"

    def __init__(self, nr_dpus: int, n_rows: int = 512, n_cols: int = 512,
                 tile_dim: int = 16, seed: int = 0) -> None:
        if n_rows % tile_dim or n_cols % tile_dim:
            raise ValueError("matrix dimensions must be multiples of tile_dim")
        super().__init__(nr_dpus, n_rows=n_rows, n_cols=n_cols,
                         tile_dim=tile_dim, seed=seed)
        self.matrix = random_matrix(n_rows, n_cols, seed=seed)
        self.tile_dim = tile_dim

    def expected(self) -> np.ndarray:
        return np.ascontiguousarray(self.matrix.T)

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        t = self.tile_dim
        rows_t = self.matrix.shape[0] // t
        cols_t = self.matrix.shape[1] // t
        tiles = [(i, j) for i in range(rows_t) for j in range(cols_t)]
        tile_bytes = t * t * 4
        # Round-robin tiles over DPUs; per-DPU staging area in MRAM.
        per_dpu = [[] for _ in range(self.nr_dpus)]
        for k, tile in enumerate(tiles):
            per_dpu[k % self.nr_dpus].append(tile)
        max_tiles = max(len(lst) for lst in per_dpu)
        out_off = max_tiles * tile_bytes

        out = np.empty_like(self.matrix.T)
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(TrnsProgram())
            with profiler.segment("CPU-DPU"):
                dpus.broadcast_to("tile_dim", 0, np.array([t], np.uint32))
                dpus.broadcast_to("out_offset", 0,
                                  np.array([out_off], np.uint32))
                dpus.push_to("n_tiles", 0,
                             [np.array([len(lst)], np.uint32)
                              for lst in per_dpu])
                # One small copy per tile: the TRNS transfer storm.
                for d, lst in enumerate(per_dpu):
                    for k, (i, j) in enumerate(lst):
                        tile = np.ascontiguousarray(
                            self.matrix[i * t:(i + 1) * t, j * t:(j + 1) * t])
                        dpus.copy_to_mram(d, k * tile_bytes, tile)
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("DPU-CPU"):
                for d, lst in enumerate(per_dpu):
                    for k, (i, j) in enumerate(lst):
                        buf = dpus.copy_from_mram(
                            d, out_off + k * tile_bytes, tile_bytes)
                        out[j * t:(j + 1) * t, i * t:(i + 1) * t] = (
                            buf.view(np.int32).reshape(t, t))
        return out
