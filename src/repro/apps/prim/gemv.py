"""GEMV — Matrix-Vector Multiply (dense linear algebra).

Rows of the matrix are partitioned across DPUs; the input vector is
broadcast to every DPU; each DPU computes its slice of the output.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_array, random_matrix

#: Instructions per multiply-accumulate (load, mul, add, loop bookkeeping).
INSTR_PER_MADD = 3


class GemvProgram(DpuProgram):
    """DPU side: y[r] = sum_c M[r, c] * x[c] over this DPU's rows."""

    name = "gemv_dpu"
    symbols = {"n_rows": 4, "n_cols": 4, "x_offset": 4, "y_offset": 4}
    nr_tasklets = 16
    binary_size = 8 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
        yield ctx.barrier()
        n_rows = ctx.host_u32("n_rows")
        n_cols = ctx.host_u32("n_cols")
        x_off = ctx.host_u32("x_offset")
        y_off = ctx.host_u32("y_offset")
        rows = tasklet_range(ctx, n_rows)
        if len(rows) == 0:
            return
        ctx.mem_alloc(2 * 1024)
        x = ctx.mram_read_blocks(x_off, n_cols * 4).view(np.int32)
        m = ctx.mram_read_blocks(rows.start * n_cols * 4,
                                 len(rows) * n_cols * 4).view(np.int32)
        y = (m.reshape(len(rows), n_cols).astype(np.int64)
             @ x.astype(np.int64)).astype(np.int32)
        ctx.mram_write_blocks(y_off + rows.start * 4, y)
        ctx.charge_loop(len(rows) * n_cols, INSTR_PER_MADD)


class Gemv(HostApplication):
    """Host side of GEMV."""

    name = "Matrix-Vector Multiply"
    short_name = "GEMV"
    domain = "Dense linear algebra"

    def __init__(self, nr_dpus: int, n_rows: int = 2048, n_cols: int = 512,
                 seed: int = 0) -> None:
        super().__init__(nr_dpus, n_rows=n_rows, n_cols=n_cols, seed=seed)
        self.matrix = random_matrix(n_rows, n_cols, seed=seed)
        self.x = random_array(n_cols, np.int32, lo=0, hi=32, seed=seed + 1)

    def expected(self) -> np.ndarray:
        return (self.matrix.astype(np.int64)
                @ self.x.astype(np.int64)).astype(np.int32)

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        n_rows, n_cols = self.matrix.shape
        counts = self.split_even(n_rows, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        max_rows = max(counts)
        x_off = max_rows * n_cols * 4
        y_off = x_off + n_cols * 4
        out = np.empty(n_rows, dtype=np.int32)
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(GemvProgram())
            with profiler.segment("CPU-DPU"):
                dpus.push_to("n_rows", 0,
                             [np.array([c], np.uint32) for c in counts])
                dpus.broadcast_to("n_cols", 0, np.array([n_cols], np.uint32))
                dpus.broadcast_to("x_offset", 0, np.array([x_off], np.uint32))
                dpus.broadcast_to("y_offset", 0, np.array([y_off], np.uint32))
                dpus.push_to_mram(0, [self.matrix[bounds[i]:bounds[i + 1]]
                                      for i in range(self.nr_dpus)])
                dpus.push_to_mram(x_off, [self.x] * self.nr_dpus)
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("DPU-CPU"):
                for i, buf in enumerate(
                        dpus.push_from_mram(y_off, max_rows * 4)):
                    out[bounds[i]:bounds[i + 1]] = (
                        buf[:counts[i] * 4].view(np.int32))
        return out
