"""BFS — Breadth-First Search (graph processing).

Vertices are partitioned across DPUs (CSR pieces transferred serially,
per the PrIM implementation).  Each level is a synchronization handshake
through the host: broadcast the current frontier bitmap, launch, read
every DPU's next-frontier bitmap and OR them.  These per-level
read/write exchanges are why BFS's Inter-DPU step carries a ~3x
virtualization overhead in the paper (Section 5.2).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_graph_csr

#: Instructions per scanned edge (bit test, neighbor load, bit set).
INSTR_PER_EDGE = 6


def cpu_bfs(row_ptr: np.ndarray, col_idx: np.ndarray, source: int,
            ) -> np.ndarray:
    """CPU reference: level of each vertex, -1 if unreachable."""
    nv = row_ptr.size - 1
    levels = np.full(nv, -1, dtype=np.int32)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        starts = row_ptr[frontier].astype(np.int64)
        sizes = (row_ptr[frontier + 1] - row_ptr[frontier]).astype(np.int64)
        total = int(sizes.sum())
        if total == 0:
            break
        csum = np.cumsum(sizes)
        flat = np.arange(total) + np.repeat(starts - (csum - sizes), sizes)
        neighbours = col_idx[flat]
        # Level-synchronous expansion: every unvisited neighbour of the
        # frontier gets this level, duplicates included (same level).
        # Dense-bitmap dedup: same sorted-unique result as np.unique but
        # without the hash pass (vertex ids are bounded by nv).
        seen = np.zeros(nv, dtype=bool)
        seen[neighbours[levels[neighbours] < 0]] = True
        fresh = np.nonzero(seen)[0]
        if fresh.size == 0:
            break
        levels[fresh] = level
        frontier = fresh
    return levels


class BfsProgram(DpuProgram):
    """DPU side: expand the frontier vertices this DPU owns."""

    name = "bfs_dpu"
    #: args = [n_vertices, first_vertex, n_owned, col_off, front_off,
    #: next_off]: one DPU_INPUT_ARGUMENTS transfer per DPU.
    symbols = {"args": 24}
    nr_tasklets = 16
    binary_size = 8 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
        yield ctx.barrier()
        nv = ctx.host_u32("args", 0)
        first = ctx.host_u32("args", 1)
        n_owned = ctx.host_u32("args", 2)
        col_off = ctx.host_u32("args", 3)
        f_off = ctx.host_u32("args", 4)
        owned = tasklet_range(ctx, n_owned)
        if len(owned):
            ctx.mem_alloc(3 * 1024)
            nbytes = (nv + 7) // 8
            # All tasklets stream the same frontier bitmap and CSR index
            # arrays; readonly reads share one buffer per run (DMA is
            # still charged per tasklet, like the real per-tasklet loop).
            packed = ctx.mram_read_blocks(f_off, nbytes, readonly=True)
            row_ptr = ctx.mram_read_blocks(
                0, (n_owned + 1) * 4, readonly=True).view(np.int32)
            # Active vertices of this tasklet's share, tested directly on
            # the packed bitmap (MSB-first, as np.unpackbits lays bits
            # out) instead of unpacking all nv bits per tasklet.
            share = np.arange(owned.start, owned.stop)
            idx = first + share
            bits = (packed[idx >> 3] >> (7 - (idx & 7))) & 1
            active = share[bits == 1]
            edges = 0
            if active.size:
                starts = row_ptr[active]
                ends = row_ptr[active + 1]
                sizes = ends - starts
                total = int(sizes.sum())
                if total:
                    cols = ctx.mram_read_blocks(
                        col_off, int(row_ptr[n_owned]) * 4,
                        readonly=True).view(np.int32)
                    # One fancy-index gather over all neighbour lists:
                    # flat[k] walks each [s, e) run in order, exactly the
                    # concatenation of the per-vertex slices.
                    csum = np.cumsum(sizes)
                    flat = (np.arange(total)
                            + np.repeat(starts - (csum - sizes), sizes))
                    ctx.shared.setdefault("merge", []).append(cols[flat])
                    edges = total
            ctx.charge_loop(max(1, edges), INSTR_PER_EDGE)
        yield ctx.barrier()
        if ctx.me() == 0:
            nxt = np.zeros(nv, dtype=np.uint8)
            for gathered in ctx.shared.get("merge", []):
                nxt[gathered] = 1
            ctx.mram_write_blocks(ctx.host_u32("args", 5),
                                  np.packbits(nxt))
            ctx.charge(nv // 8)


class BreadthFirstSearch(HostApplication):
    """Host side of BFS."""

    name = "Breadth-First Search"
    short_name = "BFS"
    domain = "Graph processing"

    def __init__(self, nr_dpus: int, n_vertices: int = 1 << 14,
                 avg_degree: int = 4, source: int = 0, seed: int = 0) -> None:
        super().__init__(nr_dpus, n_vertices=n_vertices,
                         avg_degree=avg_degree, source=source, seed=seed)
        self.row_ptr, self.col_idx = random_graph_csr(n_vertices, avg_degree,
                                                      seed)
        self.source = source

    def expected(self) -> np.ndarray:
        return cpu_bfs(self.row_ptr, self.col_idx, self.source)

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        nv = self.row_ptr.size - 1
        nbytes = (nv + 7) // 8
        counts = self.split_even(nv, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        max_owned = max(counts)
        max_edges = max(
            int(self.row_ptr[bounds[i + 1]] - self.row_ptr[bounds[i]])
            for i in range(self.nr_dpus)
        )
        col_off = (max_owned + 1) * 4
        f_off = col_off + max_edges * 4
        n_off = f_off + ((nbytes + 7) // 8) * 8

        levels = np.full(nv, -1, dtype=np.int32)
        levels[self.source] = 0
        frontier = np.zeros(nv, dtype=np.uint8)
        frontier[self.source] = 1

        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(BfsProgram())
            with profiler.segment("CPU-DPU"):
                # Serial CSR distribution (the PrIM pattern for BFS).
                for i in range(self.nr_dpus):
                    lo, hi = bounds[i], bounds[i + 1]
                    s = int(self.row_ptr[lo])
                    e = int(self.row_ptr[hi])
                    args = np.array([nv, lo, hi - lo, col_off, f_off, n_off],
                                    np.uint32)
                    dpus.copy_to(i, "args", 0, args)
                    dpus.copy_to_mram(i, 0,
                                      (self.row_ptr[lo:hi + 1] - s).astype(np.int32))
                    if e > s:
                        dpus.copy_to_mram(i, col_off, self.col_idx[s:e])

            level = 0
            while frontier.any():
                with profiler.segment("Inter-DPU"):
                    packed = np.packbits(frontier)
                    dpus.push_to_mram(f_off, [packed] * self.nr_dpus)
                with profiler.segment("DPU"):
                    dpus.launch()
                with profiler.segment("Inter-DPU"):
                    nxt = np.zeros(nbytes * 8, dtype=np.uint8)
                    for buf in dpus.push_from_mram(n_off, nbytes):
                        nxt[:nv] |= np.unpackbits(buf)[:nv]
                level += 1
                newly = (nxt[:nv] == 1) & (levels < 0)
                levels[newly] = level
                frontier = np.zeros(nv, dtype=np.uint8)
                frontier[newly] = 1
        return levels
