"""HST-S — Image histogram, short (image processing).

The "short" variant keeps one shared histogram per DPU with atomic
updates.  Each DPU histograms its pixel slice; the host merges per-DPU
histograms in the DPU-CPU step — a small read (256 bins x 4 B) that, in
vPIM, trips the prefetch cache into fetching a full segment per DPU
(the Fig. 8 DPU-CPU overhead the paper discusses for HST-S/HST-L).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_image

#: Instructions per pixel (load, shift, atomic increment).
INSTR_PER_PIXEL = 6


class HstSProgram(DpuProgram):
    """DPU side: shared 256-bin histogram with atomic adds."""

    name = "hst_s_dpu"
    symbols = {"n_pixels": 4, "hist_offset": 4, "n_bins": 4}
    nr_tasklets = 16
    binary_size = 6 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
            ctx.shared["hist"] = np.zeros(ctx.host_u32("n_bins"),
                                          dtype=np.int64)
        yield ctx.barrier()
        n = ctx.host_u32("n_pixels")
        n_bins = ctx.host_u32("n_bins")
        rng = tasklet_range(ctx, n)
        if len(rng):
            ctx.mem_alloc(2048)
            pixels = ctx.mram_read_blocks(rng.start * 2,
                                          len(rng) * 2).view(np.uint16)
            ctx.shared["hist"] += np.bincount(
                np.minimum(pixels, n_bins - 1), minlength=n_bins)
            ctx.charge_loop(len(rng), INSTR_PER_PIXEL)
        yield ctx.barrier()
        if ctx.me() == 0:
            hist = ctx.shared["hist"].astype(np.uint32)
            ctx.mram_write_blocks(ctx.host_u32("hist_offset"), hist)
            ctx.charge(hist.size * 2)


class HistogramShort(HostApplication):
    """Host side of HST-S."""

    name = "Image histogram (short)"
    short_name = "HST-S"
    domain = "Image processing"

    N_BINS = 256

    def __init__(self, nr_dpus: int, n_pixels: int = 1 << 20,
                 seed: int = 0) -> None:
        super().__init__(nr_dpus, n_pixels=n_pixels, seed=seed)
        self.pixels = random_image(n_pixels, depth=self.N_BINS, seed=seed)

    def expected(self) -> np.ndarray:
        return np.bincount(self.pixels,
                           minlength=self.N_BINS).astype(np.uint32)

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        counts = self.split_even(self.pixels.size, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        hist_off = ((max(counts) * 2 + 7) // 8) * 8
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(HstSProgram())
            with profiler.segment("CPU-DPU"):
                dpus.push_to("n_pixels", 0,
                             [np.array([c], np.uint32) for c in counts])
                dpus.broadcast_to("n_bins", 0,
                                  np.array([self.N_BINS], np.uint32))
                dpus.broadcast_to("hist_offset", 0,
                                  np.array([hist_off], np.uint32))
                dpus.push_to_mram(0, [self.pixels[bounds[i]:bounds[i + 1]]
                                      for i in range(self.nr_dpus)])
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("DPU-CPU"):
                partials = dpus.push_from_mram(hist_off, self.N_BINS * 4)
        total = np.zeros(self.N_BINS, dtype=np.uint64)
        for buf in partials:
            total += buf.view(np.uint32).astype(np.uint64)
        return total.astype(np.uint32)
