"""TS — Time Series Analysis (subsequence similarity search).

Each DPU receives a chunk of the series (with a query-length-minus-one
overlap so no window is lost at chunk boundaries) plus the query, and
finds the window of its chunk with the minimum sum-of-squared-differences
distance to the query.  The host reduces the per-DPU minima.  Like BS,
TS is heavily DPU-compute bound.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_array

#: Instructions per (window element) comparison: load, sub, mul, add.
INSTR_PER_POINT = 4


def _ssd_profile(chunk: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Sum of squared differences of every window of ``chunk`` vs ``query``.

    Uses the expansion ``sum((x-q)^2) = sum(x^2) - 2*sum(x*q) + sum(q^2)``
    with rolling window sums, so no ``(n_windows, m)`` matrix is ever
    materialized.  All arithmetic is exact int64 (values are bounded by
    the 0..128 generator range), so the profile is bit-identical to the
    direct windowed computation.
    """
    m = query.size
    n_windows = chunk.size - m + 1
    if n_windows <= 0:
        return np.empty(0, dtype=np.int64)
    if m == 0:
        # Degenerate empty query (a booted DPU outside the host's working
        # set sees all-zero symbols): every "window" trivially matches,
        # as the windowed formula reports.
        return np.zeros(n_windows, dtype=np.int64)
    x = chunk.astype(np.int64)
    q = query.astype(np.int64)
    sq_sum = np.cumsum(x * x)
    win_sq = sq_sum[m - 1:].copy()
    win_sq[1:] -= sq_sum[:n_windows - 1]
    cross = np.correlate(x, q, mode="valid")
    return win_sq - 2 * cross + int(q @ q)


class TsProgram(DpuProgram):
    """DPU side: minimum-SSD window of this DPU's chunk."""

    name = "ts_dpu"
    symbols = {"n_points": 4, "m": 4, "q_offset": 4,
               "best_dist": 8, "best_index": 8}
    nr_tasklets = 16
    binary_size = 9 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
            ctx.shared["best"] = [(np.iinfo(np.int64).max, -1)] * ctx.nr_tasklets
        yield ctx.barrier()
        n = ctx.host_u32("n_points")
        m = ctx.host_u32("m")
        q_off = ctx.host_u32("q_offset")
        n_windows = max(0, n - m + 1)
        rng = tasklet_range(ctx, n_windows)
        if len(rng):
            ctx.mem_alloc(3 * 1024)
            query = ctx.mram_read_blocks(q_off, m * 4).view(np.int32)
            span = ctx.mram_read_blocks(rng.start * 4,
                                        (len(rng) + m - 1) * 4).view(np.int32)
            dists = _ssd_profile(span, query)
            best_local = int(dists.argmin())
            ctx.shared["best"][ctx.me()] = (int(dists[best_local]),
                                            rng.start + best_local)
            ctx.charge_loop(len(rng) * m, INSTR_PER_POINT)
        yield ctx.barrier()
        if ctx.me() == 0:
            dist, index = min(ctx.shared["best"])
            ctx.set_host_i64("best_dist", dist)
            ctx.set_host_i64("best_index", index)
            ctx.charge(ctx.nr_tasklets * 3)


class TimeSeries(HostApplication):
    """Host side of TS."""

    name = "Time Series Analysis"
    short_name = "TS"
    domain = "Data analytics"

    def __init__(self, nr_dpus: int, n_points: int = 1 << 17,
                 query_len: int = 64, seed: int = 0) -> None:
        super().__init__(nr_dpus, n_points=n_points, query_len=query_len,
                         seed=seed)
        self.series = random_array(n_points, np.int32, lo=0, hi=128,
                                   seed=seed)
        self.query = random_array(query_len, np.int32, lo=0, hi=128,
                                  seed=seed + 1)

    def expected(self) -> int:
        dists = _ssd_profile(self.series, self.query)
        return int(dists.argmin())

    def verify(self, output) -> bool:
        # Several windows can tie on distance; compare distances, not indices.
        dists = _ssd_profile(self.series, self.query)
        return int(dists[output]) == int(dists.min())

    def run(self, transport: Transport) -> int:
        profiler = transport.profiler
        m = self.query.size
        n_windows = self.series.size - m + 1
        counts = self.split_even(n_windows, self.nr_dpus)
        starts = np.concatenate([[0], np.cumsum(counts)])[:-1]
        chunk_points = [c + m - 1 for c in counts]
        q_off = (max(chunk_points) * 4 + 7) // 8 * 8
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(TsProgram())
            with profiler.segment("CPU-DPU"):
                dpus.push_to("n_points", 0,
                             [np.array([c], np.uint32) for c in chunk_points])
                dpus.broadcast_to("m", 0, np.array([m], np.uint32))
                dpus.broadcast_to("q_offset", 0, np.array([q_off], np.uint32))
                dpus.push_to_mram(0, [
                    self.series[starts[i]:starts[i] + chunk_points[i]]
                    for i in range(self.nr_dpus)
                ])
                dpus.push_to_mram(q_off, [self.query] * self.nr_dpus)
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("DPU-CPU"):
                dists = dpus.push_from("best_dist", 0, 8)
                indices = dpus.push_from("best_index", 0, 8)
        best = None
        for i in range(self.nr_dpus):
            d = int(dists[i].view(np.int64)[0])
            local = int(indices[i].view(np.int64)[0])
            if local < 0:
                continue
            candidate = (d, int(starts[i]) + local)
            if best is None or candidate < best:
                best = candidate
        assert best is not None
        return best[1]
