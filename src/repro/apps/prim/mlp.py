"""MLP — Multilayer Perceptron inference (neural networks).

Three fully-connected layers with ReLU.  Weights are distributed across
DPUs once (rows of each layer partitioned, like GEMV); each layer is one
launch: the host broadcasts the layer's input vector (Inter-DPU),
gathers the partial outputs, and feeds them to the next layer.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_array, random_matrix

#: Instructions per multiply-accumulate.
INSTR_PER_MADD = 3


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


class MlpProgram(DpuProgram):
    """DPU side: one ReLU(W_chunk @ x) layer slice per launch."""

    name = "mlp_dpu"
    symbols = {"n_rows": 4, "n_cols": 4, "w_offset": 4,
               "x_offset": 4, "y_offset": 4}
    nr_tasklets = 16
    binary_size = 9 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
        yield ctx.barrier()
        n_rows = ctx.host_u32("n_rows")
        n_cols = ctx.host_u32("n_cols")
        w_off = ctx.host_u32("w_offset")
        x_off = ctx.host_u32("x_offset")
        y_off = ctx.host_u32("y_offset")
        rows = tasklet_range(ctx, n_rows)
        if len(rows) == 0:
            return
        ctx.mem_alloc(3 * 1024)
        x = ctx.mram_read_blocks(x_off, n_cols * 4, readonly=True)
        w = ctx.mram_read_blocks(w_off + rows.start * n_cols * 4,
                                 len(rows) * n_cols * 4).view(np.int32)
        # All tasklets stream the same input vector; convert it once per
        # DPU.  float64 keeps the arithmetic exact (|w| <= 4, |x| < 2^31,
        # row sums stay far below 2^53) while the matmul runs on BLAS.
        xf = ctx.shared.get("xf")
        if xf is None:
            xf = x.view(np.int32).astype(np.float64)
            ctx.shared["xf"] = xf
        # One conversion scratch per DPU, reused by every tasklet: the
        # compute below runs without yielding, so tasklets never overlap
        # inside it.  Avoids a fresh multi-100KB allocation per tasklet.
        wf = ctx.shared.get("wf")
        if wf is None or wf.size < len(rows) * n_cols:
            wf = np.empty(len(rows) * n_cols, dtype=np.float64)
            ctx.shared["wf"] = wf
        wm = wf[:len(rows) * n_cols].reshape(len(rows), n_cols)
        wm[...] = w.reshape(len(rows), n_cols)
        y = relu(wm @ xf)
        # Saturate into int32 range as the fixed-point kernel would.
        y = np.minimum(y, np.iinfo(np.int32).max).astype(np.int32)
        ctx.mram_write_blocks(y_off + rows.start * 4, y)
        ctx.charge_loop(len(rows) * n_cols, INSTR_PER_MADD)


class MultilayerPerceptron(HostApplication):
    """Host side of MLP (3-layer inference)."""

    name = "Multilayer Perceptron"
    short_name = "MLP"
    domain = "Neural networks"

    def __init__(self, nr_dpus: int, layer_sizes: tuple = (512, 512, 512, 256),
                 seed: int = 0, nr_reps: int = 1) -> None:
        super().__init__(nr_dpus, layer_sizes=layer_sizes, seed=seed,
                         nr_reps=nr_reps)
        self.layer_sizes = layer_sizes
        #: PrIM-style repetition count: the original benchmarks re-run
        #: each kernel several times and re-copy *all* inputs — weights
        #: included — every rep.  ``nr_reps=1`` (the default) keeps the
        #: historical single-pass operation stream; higher values
        #: reproduce PrIM's measurement loop, whose re-pushed weights
        #: are the redundancy the content-aware transfer cache targets.
        self.nr_reps = nr_reps
        self.weights: List[np.ndarray] = [
            random_matrix(layer_sizes[i + 1], layer_sizes[i], lo=-4, hi=5,
                          seed=seed + i)
            for i in range(len(layer_sizes) - 1)
        ]
        self.x = random_array(layer_sizes[0], np.int32, lo=0, hi=8,
                              seed=seed + 100)

    def expected(self) -> np.ndarray:
        # Exact in float64: weights are in [-4, 4], activations are
        # clipped below 2^31, so every partial sum is an integer < 2^53.
        v = self.x.astype(np.float64)
        for w in self.weights:
            v = relu(w.astype(np.float64) @ v)
            v = np.minimum(v, np.iinfo(np.int32).max)
        return v.astype(np.int32)

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        max_cols = max(self.layer_sizes[:-1])

        # Per-layer row partitions and MRAM layout.
        partitions = [self.split_even(w.shape[0], self.nr_dpus)
                      for w in self.weights]
        w_offsets = []
        cursor = 0
        for li, w in enumerate(self.weights):
            w_offsets.append(cursor)
            cursor += max(partitions[li]) * w.shape[1] * 4
        x_off = cursor
        y_off = x_off + max_cols * 4

        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(MlpProgram())
            for _rep in range(self.nr_reps):
                with profiler.segment("CPU-DPU"):
                    for li, w in enumerate(self.weights):
                        bounds = np.concatenate([[0],
                                                 np.cumsum(partitions[li])])
                        dpus.push_to_mram(w_offsets[li], [
                            w[bounds[i]:bounds[i + 1]]
                            for i in range(self.nr_dpus)
                        ])
                v = self.x
                for li, w in enumerate(self.weights):
                    counts = partitions[li]
                    bounds = np.concatenate([[0], np.cumsum(counts)])
                    with profiler.segment("Inter-DPU"):
                        dpus.push_to("n_rows", 0,
                                     [np.array([c], np.uint32)
                                      for c in counts])
                        dpus.broadcast_to("n_cols", 0,
                                          np.array([w.shape[1]], np.uint32))
                        dpus.broadcast_to("w_offset", 0,
                                          np.array([w_offsets[li]], np.uint32))
                        dpus.broadcast_to("x_offset", 0,
                                          np.array([x_off], np.uint32))
                        dpus.broadcast_to("y_offset", 0,
                                          np.array([y_off], np.uint32))
                        dpus.push_to_mram(x_off,
                                          [v.astype(np.int32)] * self.nr_dpus)
                    with profiler.segment("DPU"):
                        dpus.launch()
                    with profiler.segment(
                            "Inter-DPU" if li < len(self.weights) - 1
                            else "DPU-CPU"):
                        nxt = np.empty(w.shape[0], dtype=np.int32)
                        bufs = dpus.push_from_mram(y_off, max(counts) * 4)
                        for i, buf in enumerate(bufs):
                            nxt[bounds[i]:bounds[i + 1]] = (
                                buf[:counts[i] * 4].view(np.int32))
                        v = nxt
        return v
