"""RED — Reduction (parallel primitives).

Each DPU reduces its slice; per-tasklet partials are combined at a
barrier and the per-DPU sum is written to MRAM.  The Inter-DPU step is a
single tiny read-from-rank (8 bytes per DPU — the paper's "256 bytes")
that the host sums.  Under vPIM that small read triggers the prefetch
cache, which fetches a full cache segment per DPU and produces the
33x-145x Inter-DPU overhead called out in Section 5.2.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_array

#: Instructions per reduced element (load, add, loop).
INSTR_PER_ELEM = 3


class RedProgram(DpuProgram):
    """DPU side: sum this DPU's slice into MRAM[result_offset]."""

    name = "red_dpu"
    symbols = {"n_elems": 4, "result_offset": 4}
    nr_tasklets = 16
    binary_size = 5 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
            ctx.shared["partials"] = [0] * ctx.nr_tasklets
        yield ctx.barrier()
        n = ctx.host_u32("n_elems")
        rng = tasklet_range(ctx, n)
        if len(rng):
            ctx.mem_alloc(2048)
            data = ctx.mram_read_blocks(rng.start * 4,
                                        len(rng) * 4).view(np.int32)
            ctx.shared["partials"][ctx.me()] = int(data.astype(np.int64).sum())
            ctx.charge_loop(len(rng), INSTR_PER_ELEM)
        yield ctx.barrier()
        if ctx.me() == 0:
            total = sum(ctx.shared["partials"])
            ctx.mram_write(ctx.host_u32("result_offset"),
                           np.array([total], dtype=np.int64))
            ctx.charge(ctx.nr_tasklets * 2)


class Reduction(HostApplication):
    """Host side of RED."""

    name = "Reduction"
    short_name = "RED"
    domain = "Parallel primitives"

    def __init__(self, nr_dpus: int, n_elements: int = 1 << 20,
                 seed: int = 0) -> None:
        super().__init__(nr_dpus, n_elements=n_elements, seed=seed)
        self.data = random_array(n_elements, np.int32, seed=seed)

    def expected(self) -> int:
        return int(self.data.astype(np.int64).sum())

    def run(self, transport: Transport) -> int:
        profiler = transport.profiler
        counts = self.split_even(self.data.size, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        result_off = max(counts) * 4
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(RedProgram())
            with profiler.segment("CPU-DPU"):
                dpus.push_to("n_elems", 0,
                             [np.array([c], np.uint32) for c in counts])
                dpus.broadcast_to("result_offset", 0,
                                  np.array([result_off], np.uint32))
                dpus.push_to_mram(0, [self.data[bounds[i]:bounds[i + 1]]
                                      for i in range(self.nr_dpus)])
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("Inter-DPU"):
                # The paper's pathological step: one small read per run.
                partials = dpus.push_from_mram(result_off, 8)
        return int(sum(int(p.view(np.int64)[0]) for p in partials))
