"""SpMV — Sparse Matrix-Vector Multiply (sparse linear algebra).

Rows are partitioned across DPUs.  The PrIM implementation transfers the
CSR pieces *serially*, one DPU at a time (row pointers, column indices,
values, and the dense vector each via ``dpu_copy_to``) — the CPU-DPU
pattern that makes SpMV's input step grow with the DPU count, in native
and virtualized runs alike (Section 5.2).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import CsrMatrix, random_csr, random_array

#: Instructions per non-zero (load idx, load val, load x, mul, add).
INSTR_PER_NNZ = 5


class SpmvProgram(DpuProgram):
    """DPU side: y = A_slice @ x over this DPU's rows."""

    name = "spmv_dpu"
    #: args = [n_rows, nnz, n_cols, col_off, val_off, x_off, y_off], one
    #: transfer per DPU — the DPU_INPUT_ARGUMENTS struct of the PrIM code.
    symbols = {"args": 28}
    nr_tasklets = 16
    binary_size = 9 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
        yield ctx.barrier()
        n_rows = ctx.host_u32("args", 0)
        nnz = ctx.host_u32("args", 1)
        n_cols = ctx.host_u32("args", 2)
        col_off = ctx.host_u32("args", 3)
        val_off = ctx.host_u32("args", 4)
        x_off = ctx.host_u32("args", 5)
        y_off = ctx.host_u32("args", 6)
        rows = tasklet_range(ctx, n_rows)
        if len(rows) == 0:
            return
        ctx.mem_alloc(4 * 768)
        row_ptr = ctx.mram_read_blocks(0, (n_rows + 1) * 4).view(np.int32)
        s, e = int(row_ptr[rows.start]), int(row_ptr[rows.stop])
        if e > s:
            cols = ctx.mram_read_blocks(col_off + s * 4,
                                        (e - s) * 4).view(np.int32)
            vals = ctx.mram_read_blocks(val_off + s * 4,
                                        (e - s) * 4).view(np.int32)
        else:
            cols = np.empty(0, dtype=np.int32)
            vals = np.empty(0, dtype=np.int32)
        x = ctx.mram_read_blocks(x_off, n_cols * 4).view(np.int32)
        y = np.zeros(len(rows), dtype=np.int64)
        for j, r in enumerate(rows):
            rs, re = int(row_ptr[r]) - s, int(row_ptr[r + 1]) - s
            if re > rs:
                y[j] = (vals[rs:re].astype(np.int64)
                        * x[cols[rs:re]].astype(np.int64)).sum()
        ctx.mram_write_blocks(y_off + rows.start * 8, y)
        ctx.charge_loop(max(0, e - s), INSTR_PER_NNZ)
        del nnz  # symbol kept for layout parity with the PrIM kernel


class SpMV(HostApplication):
    """Host side of SpMV."""

    name = "Sparse Matrix-Vector Multiply"
    short_name = "SpMV"
    domain = "Sparse linear algebra"

    def __init__(self, nr_dpus: int, n_rows: int = 4096, n_cols: int = 2048,
                 nnz_per_row: int = 8, seed: int = 0) -> None:
        super().__init__(nr_dpus, n_rows=n_rows, n_cols=n_cols,
                         nnz_per_row=nnz_per_row, seed=seed)
        self.csr: CsrMatrix = random_csr(n_rows, n_cols, nnz_per_row, seed)
        self.x = random_array(n_cols, np.int32, lo=0, hi=16, seed=seed + 1)

    def expected(self) -> np.ndarray:
        out = np.zeros(self.csr.nr_rows, dtype=np.int64)
        for r in range(self.csr.nr_rows):
            s, e = int(self.csr.row_ptr[r]), int(self.csr.row_ptr[r + 1])
            out[r] = (self.csr.values[s:e].astype(np.int64)
                      * self.x[self.csr.col_idx[s:e]].astype(np.int64)).sum()
        return out

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        counts = self.split_even(self.csr.nr_rows, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        out = np.empty(self.csr.nr_rows, dtype=np.int64)

        # Per-DPU MRAM layout computed from the largest slice.
        max_rows = max(counts)
        max_nnz = max(
            int(self.csr.row_ptr[bounds[i + 1]] - self.csr.row_ptr[bounds[i]])
            for i in range(self.nr_dpus)
        )
        col_off = (max_rows + 1) * 4
        val_off = col_off + max_nnz * 4
        x_off = val_off + max_nnz * 4
        y_off = x_off + self.csr.nr_cols * 4

        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(SpmvProgram())
            with profiler.segment("CPU-DPU"):
                # Serial per-DPU transfers, as in the PrIM implementation.
                for i in range(self.nr_dpus):
                    lo, hi = bounds[i], bounds[i + 1]
                    s = int(self.csr.row_ptr[lo])
                    e = int(self.csr.row_ptr[hi])
                    local_ptr = (self.csr.row_ptr[lo:hi + 1] - s).astype(np.int32)
                    args = np.array([hi - lo, e - s, self.csr.nr_cols,
                                     col_off, val_off, x_off, y_off],
                                    np.uint32)
                    dpus.copy_to(i, "args", 0, args)
                    dpus.copy_to_mram(i, 0, local_ptr)
                    if e > s:
                        dpus.copy_to_mram(i, col_off, self.csr.col_idx[s:e])
                        dpus.copy_to_mram(i, val_off, self.csr.values[s:e])
                    dpus.copy_to_mram(i, x_off, self.x)
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("DPU-CPU"):
                for i, buf in enumerate(
                        dpus.push_from_mram(y_off, max_rows * 8)):
                    out[bounds[i]:bounds[i + 1]] = (
                        buf[:counts[i] * 8].view(np.int64))
        return out
