"""SCAN-RSS — Prefix sum, reduce-scan-scan variant (parallel primitives).

Phase 1 (DPU): each DPU only *reduces* its slice (cheaper than scanning).
Inter-DPU (host): read per-DPU sums, exclusive-scan, write base offsets.
Phase 2 (DPU): full local scan plus the base offset in one pass.
DPU-CPU: read the scanned slices.

Compared to SCAN-SSA this trades a second elementwise pass for a
cheaper first one; both share the small-transfer Inter-DPU step.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_array

#: Instructions per element in the reduce phase.
INSTR_PER_REDUCE = 3
#: Instructions per element in the scan+add phase.
INSTR_PER_SCAN_ADD = 5


class ScanRssProgram(DpuProgram):
    """DPU side: phase 0 = reduce, phase 1 = scan + base offset."""

    name = "scan_rss_dpu"
    symbols = {"n_elems": 4, "out_offset": 4, "sum_offset": 4,
               "phase": 4, "base": 8}
    nr_tasklets = 16
    binary_size = 8 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
            ctx.shared["tsums"] = [0] * ctx.nr_tasklets
        yield ctx.barrier()
        n = ctx.host_u32("n_elems")
        out_off = ctx.host_u32("out_offset")
        phase = ctx.host_u32("phase")
        rng = tasklet_range(ctx, n)
        ctx.mem_alloc(2 * 1024)

        if phase == 0:
            if len(rng):
                data = ctx.mram_read_blocks(rng.start * 4,
                                            len(rng) * 4).view(np.int32)
                ctx.shared["tsums"][ctx.me()] = int(
                    data.astype(np.int64).sum())
                ctx.charge_loop(len(rng), INSTR_PER_REDUCE)
            yield ctx.barrier()
            if ctx.me() == 0:
                total = sum(ctx.shared["tsums"])
                ctx.mram_write(ctx.host_u32("sum_offset"),
                               np.array([total], dtype=np.int64))
        else:
            if len(rng):
                data = ctx.mram_read_blocks(rng.start * 4,
                                            len(rng) * 4).view(np.int32)
                local = np.cumsum(data.astype(np.int64))
                ctx.shared["tsums"][ctx.me()] = int(local[-1])
                ctx.shared[f"scan{ctx.me()}"] = local
                ctx.charge_loop(len(rng), INSTR_PER_SCAN_ADD)
            yield ctx.barrier()
            if len(rng):
                base = ctx.host_i64("base")
                prior = sum(ctx.shared["tsums"][:ctx.me()])
                scanned = ctx.shared[f"scan{ctx.me()}"] + prior + base
                ctx.mram_write_blocks(out_off + rng.start * 8,
                                      scanned.astype(np.int64))
                ctx.charge_loop(len(rng), 1)


class ScanRss(HostApplication):
    """Host side of SCAN-RSS."""

    name = "Prefix sum (reduce-scan-scan)"
    short_name = "SCAN-RSS"
    domain = "Parallel primitives"

    def __init__(self, nr_dpus: int, n_elements: int = 1 << 19,
                 seed: int = 0) -> None:
        super().__init__(nr_dpus, n_elements=n_elements, seed=seed)
        self.data = random_array(n_elements, np.int32, lo=0, hi=64, seed=seed)

    def expected(self) -> np.ndarray:
        return np.cumsum(self.data.astype(np.int64))

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        counts = self.split_even(self.data.size, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        out_off = max(counts) * 4
        sum_off = out_off + max(counts) * 8
        out = np.empty(self.data.size, dtype=np.int64)
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(ScanRssProgram())
            with profiler.segment("CPU-DPU"):
                dpus.push_to("n_elems", 0,
                             [np.array([c], np.uint32) for c in counts])
                dpus.broadcast_to("out_offset", 0,
                                  np.array([out_off], np.uint32))
                dpus.broadcast_to("sum_offset", 0,
                                  np.array([sum_off], np.uint32))
                dpus.broadcast_to("phase", 0, np.array([0], np.uint32))
                dpus.push_to_mram(0, [self.data[bounds[i]:bounds[i + 1]]
                                      for i in range(self.nr_dpus)])
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("Inter-DPU"):
                sums = dpus.push_from_mram(sum_off, 8)
                totals = np.array([int(s.view(np.int64)[0]) for s in sums],
                                  dtype=np.int64)
                bases = np.concatenate([[0], np.cumsum(totals)[:-1]])
                dpus.push_to("base", 0,
                             [np.array([b], np.int64) for b in bases])
                dpus.broadcast_to("phase", 0, np.array([1], np.uint32))
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("DPU-CPU"):
                for i, buf in enumerate(
                        dpus.push_from_mram(out_off, max(counts) * 8)):
                    out[bounds[i]:bounds[i + 1]] = (
                        buf[:counts[i] * 8].view(np.int64))
        return out
