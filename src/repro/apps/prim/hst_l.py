"""HST-L — Image histogram, long (image processing).

The "long" variant gives each tasklet a private histogram copy and
merges them after a barrier — the right shape when the bin count is too
large for cheap atomics.  Transfer pattern matches HST-S, including the
small result read that triggers the prefetch cache in vPIM.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_image

#: Instructions per pixel (load, shift, private increment — no atomics).
INSTR_PER_PIXEL = 4
#: Instructions per bin during the merge phase.
INSTR_PER_MERGE_BIN = 3


class HstLProgram(DpuProgram):
    """DPU side: per-tasklet private histograms, merged by tasklet 0."""

    name = "hst_l_dpu"
    symbols = {"n_pixels": 4, "hist_offset": 4, "n_bins": 4}
    nr_tasklets = 16
    binary_size = 7 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
            ctx.shared["private"] = [None] * ctx.nr_tasklets
        yield ctx.barrier()
        n = ctx.host_u32("n_pixels")
        n_bins = ctx.host_u32("n_bins")
        rng = tasklet_range(ctx, n)
        if len(rng):
            # Private bins must fit this tasklet's WRAM share; larger
            # histograms are built in several passes over the pixels, as
            # the PrIM HST-L kernel does.
            from repro.config import WRAM_SIZE
            budget = max(1024, WRAM_SIZE // ctx.nr_tasklets - 2048)
            bins_per_pass = max(256, budget // 4)
            passes = -(-n_bins // bins_per_pass)
            ctx.mem_alloc(1024 + min(n_bins, bins_per_pass) * 4)
            pixels = ctx.mram_read_blocks(rng.start * 2,
                                          len(rng) * 2).view(np.uint16)
            ctx.shared["private"][ctx.me()] = np.bincount(
                np.minimum(pixels, n_bins - 1), minlength=n_bins)
            ctx.charge_loop(len(rng) * passes, INSTR_PER_PIXEL)
        yield ctx.barrier()
        if ctx.me() == 0:
            total = np.zeros(n_bins, dtype=np.int64)
            merged = 0
            for private in ctx.shared["private"]:
                if private is not None:
                    total += private
                    merged += 1
            ctx.charge_loop(n_bins * max(1, merged), INSTR_PER_MERGE_BIN)
            ctx.mram_write_blocks(ctx.host_u32("hist_offset"),
                                  total.astype(np.uint32))


class HistogramLong(HostApplication):
    """Host side of HST-L."""

    name = "Image histogram (long)"
    short_name = "HST-L"
    domain = "Image processing"

    def __init__(self, nr_dpus: int, n_pixels: int = 1 << 20,
                 n_bins: int = 1024, seed: int = 0) -> None:
        super().__init__(nr_dpus, n_pixels=n_pixels, n_bins=n_bins, seed=seed)
        self.n_bins = n_bins
        self.pixels = random_image(n_pixels, depth=n_bins, seed=seed)

    def expected(self) -> np.ndarray:
        return np.bincount(self.pixels,
                           minlength=self.n_bins).astype(np.uint32)

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        counts = self.split_even(self.pixels.size, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        hist_off = ((max(counts) * 2 + 7) // 8) * 8
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(HstLProgram())
            with profiler.segment("CPU-DPU"):
                dpus.push_to("n_pixels", 0,
                             [np.array([c], np.uint32) for c in counts])
                dpus.broadcast_to("n_bins", 0,
                                  np.array([self.n_bins], np.uint32))
                dpus.broadcast_to("hist_offset", 0,
                                  np.array([hist_off], np.uint32))
                dpus.push_to_mram(0, [self.pixels[bounds[i]:bounds[i + 1]]
                                      for i in range(self.nr_dpus)])
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("DPU-CPU"):
                partials = dpus.push_from_mram(hist_off, self.n_bins * 4)
        total = np.zeros(self.n_bins, dtype=np.uint64)
        for buf in partials:
            total += buf.view(np.uint32).astype(np.uint64)
        return total.astype(np.uint32)
