"""VA — Vector Addition (dense linear algebra).

The PrIM pattern: A and B are partitioned across DPUs, each DPU adds its
slice element-wise, and C is read back.  All transfers are parallel
``push_xfer`` operations, so VA virtualizes cheaply.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_array

#: Pipeline instructions per added element (load, add, store, loop).
INSTR_PER_ELEM = 4


class VaProgram(DpuProgram):
    """DPU side: C[i] = A[i] + B[i] over this DPU's slice."""

    name = "va_dpu"
    symbols = {"n_elems": 4, "b_offset": 4, "c_offset": 4}
    nr_tasklets = 16
    binary_size = 6 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
        yield ctx.barrier()
        n = ctx.host_u32("n_elems")
        b_off = ctx.host_u32("b_offset")
        c_off = ctx.host_u32("c_offset")
        rng = tasklet_range(ctx, n)
        if len(rng) == 0:
            return
        ctx.mem_alloc(3 * 1024)  # A/B/C block buffers
        a = ctx.mram_read_blocks(rng.start * 4, len(rng) * 4).view(np.int32)
        b = ctx.mram_read_blocks(b_off + rng.start * 4,
                                 len(rng) * 4).view(np.int32)
        ctx.mram_write_blocks(c_off + rng.start * 4, a + b)
        ctx.charge_loop(len(rng), INSTR_PER_ELEM)


class VectorAdd(HostApplication):
    """Host side of VA."""

    name = "Vector Addition"
    short_name = "VA"
    domain = "Dense linear algebra"

    def __init__(self, nr_dpus: int, n_elements: int = 1 << 20,
                 seed: int = 0) -> None:
        super().__init__(nr_dpus, n_elements=n_elements, seed=seed)
        self.a = random_array(n_elements, np.int32, seed=seed)
        self.b = random_array(n_elements, np.int32, seed=seed + 1)

    def expected(self) -> np.ndarray:
        return self.a + self.b

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        counts = self.split_even(self.a.size, self.nr_dpus)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        max_bytes = max(counts) * 4
        b_off, c_off = max_bytes, 2 * max_bytes
        out_parts = []
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(VaProgram())
            with profiler.segment("CPU-DPU"):
                dpus.push_to("n_elems", 0,
                             [np.array([c], np.uint32) for c in counts])
                dpus.broadcast_to("b_offset", 0, np.array([b_off], np.uint32))
                dpus.broadcast_to("c_offset", 0, np.array([c_off], np.uint32))
                dpus.push_to_mram(0, [self.a[bounds[i]:bounds[i + 1]]
                                      for i in range(self.nr_dpus)])
                dpus.push_to_mram(b_off, [self.b[bounds[i]:bounds[i + 1]]
                                          for i in range(self.nr_dpus)])
            with profiler.segment("DPU"):
                dpus.launch()
            with profiler.segment("DPU-CPU"):
                for i, buf in enumerate(dpus.push_from_mram(c_off, max_bytes)):
                    out_parts.append(buf[:counts[i] * 4].view(np.int32))
        return np.concatenate(out_parts)
