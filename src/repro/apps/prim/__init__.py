"""The 16 PrIM benchmark applications (Table 1), reimplemented on the SDK.

Each module exposes one :class:`~repro.apps.base.HostApplication`
subclass with the same transfer pattern as the PrIM original — including
the patterns the paper calls out: the serial per-DPU transfers of
SEL/UNI/SpMV/BFS, the tiny-transfer storms of NW/TRNS, and the small
result reads of RED/HST/SCAN that trip the prefetch cache.
"""

from repro.apps.prim.va import VectorAdd
from repro.apps.prim.gemv import Gemv
from repro.apps.prim.spmv import SpMV
from repro.apps.prim.sel import Select
from repro.apps.prim.uni import Unique
from repro.apps.prim.bs import BinarySearch
from repro.apps.prim.ts import TimeSeries
from repro.apps.prim.bfs import BreadthFirstSearch
from repro.apps.prim.mlp import MultilayerPerceptron
from repro.apps.prim.nw import NeedlemanWunsch
from repro.apps.prim.hst_s import HistogramShort
from repro.apps.prim.hst_l import HistogramLong
from repro.apps.prim.red import Reduction
from repro.apps.prim.scan_ssa import ScanSsa
from repro.apps.prim.scan_rss import ScanRss
from repro.apps.prim.trns import Transpose

__all__ = [
    "VectorAdd", "Gemv", "SpMV", "Select", "Unique", "BinarySearch",
    "TimeSeries", "BreadthFirstSearch", "MultilayerPerceptron",
    "NeedlemanWunsch", "HistogramShort", "HistogramLong", "Reduction",
    "ScanSsa", "ScanRss", "Transpose",
]
