"""Applications: the 16 PrIM benchmarks plus the two UPMEM microbenchmarks.

Each application module contains the DPU program(s), the host program
(written against the transport-agnostic SDK), and a CPU reference used
to verify that DPU-computed results are correct — the paper's first
evaluation claim ("the DPU computed results match accurately with those
computed on CPUs").
"""

from repro.apps.base import HostApplication
from repro.apps.registry import ALL_APPS, PRIM_APPS, app_by_short_name

__all__ = ["HostApplication", "ALL_APPS", "PRIM_APPS", "app_by_short_name"]
