"""Checksum — the UPMEM SDK demo used for sensitivity analysis (§5.3.1).

The host generates a random file of a given size and sends the *same*
file to every allocated DPU, which computes its checksum; unlike the
PrIM apps, all DPUs do identical work on identical data.

One execution performs one write-to-rank, one read-from-rank per DPU
(60 at the paper's configuration), and a stream of control-interface
operations whose count grows with the run length — the paper reports
8,000 to 28,000 CI ops depending on file size.  Those synchronous CI
exchanges are precisely what makes checksum's virtualization overhead
*shrink* as the file grows (2.33x at 8 MB down to 1.29x at 60 MB,
Fig. 9c): their cost is fixed while the transfer and compute scale.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.generators import random_array

#: Instructions per checksummed byte (load, add, loop shared 4-wide).
INSTR_PER_BYTE = 8

#: Bytes re-read per DPU by the optional staging spot-check.
VERIFY_SPOT_BYTES = 256


def ci_ops_for_size(file_mb: float) -> int:
    """CI-operation count of one checksum run (§5.3.1 calibration).

    Anchored on the paper's observation: roughly 8,000-12,000 ops for an
    8 MB file, growing with the running time toward ~20,000-28,000 at
    60 MB.  The affine fit below lands inside that band at both ends and
    reproduces Fig. 9c's decreasing-overhead shape.
    """
    return int(10760 + 145 * file_mb)


class ChecksumProgram(DpuProgram):
    """DPU side: 32-bit additive checksum of the staged file."""

    name = "checksum_dpu"
    symbols = {"n_bytes": 4, "checksum": 4}
    nr_tasklets = 16
    binary_size = 4 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
            ctx.shared["partials"] = [0] * ctx.nr_tasklets
        yield ctx.barrier()
        n = ctx.host_u32("n_bytes")
        rng = tasklet_range(ctx, n)
        if len(rng):
            ctx.mem_alloc(2048)
            data = ctx.mram_read_blocks(rng.start, len(rng))
            ctx.shared["partials"][ctx.me()] = int(
                data.astype(np.uint64).sum())
            ctx.charge_loop(len(rng), INSTR_PER_BYTE)
        yield ctx.barrier()
        if ctx.me() == 0:
            total = sum(ctx.shared["partials"]) & 0xFFFFFFFF
            ctx.set_host_u32("checksum", total)
            ctx.charge(ctx.nr_tasklets * 2)


class Checksum(HostApplication):
    """Host side of the checksum demo."""

    name = "Checksum"
    short_name = "CHK"
    domain = "Microbenchmark"

    def __init__(self, nr_dpus: int, file_mb: float = 1.0, scale: int = 1,
                 seed: int = 0, verify_staging: bool = False) -> None:
        """``file_mb`` is the *nominal* (paper-scale) file size; ``scale``
        divides both the materialized bytes and the CI-operation count so
        scaled-down runs preserve the paper's overhead ratios exactly.

        ``verify_staging`` adds an opt-in integrity pass after staging:
        one small per-DPU MRAM tag write (absorbed by the frontend's
        request batching when enabled) and a double spot-check read of
        the staged file (the second read hits the prefetch cache when
        enabled).  Off by default so the Fig. 9/11 operation mix and
        timings are exactly the paper's.
        """
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        super().__init__(nr_dpus, file_mb=file_mb, scale=scale, seed=seed)
        file_bytes = max(1024, int(file_mb * (1 << 20) / scale))
        self.scale = scale
        self.file_mb = file_mb
        self.verify_staging = verify_staging
        self.file = random_array(file_bytes, np.uint8, lo=0, hi=256,
                                 seed=seed).astype(np.uint8)

    def expected(self) -> int:
        return int(self.file.astype(np.uint64).sum() & 0xFFFFFFFF)

    def _spot_check(self, dpus: DpuSet) -> None:
        """Verify the staged file in place before launching.

        Tags are 8-byte per-DPU serial writes (the batching-absorbable
        pattern); the spot read runs twice so the first pass refills the
        prefetch cache and the second is served from it.
        """
        tag_offset = (self.file.size + 7) & ~7
        for i in range(self.nr_dpus):
            tag = np.full(8, i % 256, np.uint8)
            dpus.copy_to_mram(i, tag_offset, tag)
        spot = min(VERIFY_SPOT_BYTES, self.file.size)
        expect = self.file[:spot]
        for _pass in range(2):
            for i in range(self.nr_dpus):
                got = dpus.copy_from_mram(i, 0, spot)
                if not np.array_equal(got, expect):
                    raise AssertionError(
                        f"DPU {i} staged file mismatch in spot check")

    def run(self, transport: Transport) -> int:
        profiler = transport.profiler
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(ChecksumProgram())
            with profiler.segment("CPU-DPU"):
                dpus.broadcast_to("n_bytes", 0,
                                  np.array([self.file.size], np.uint32))
                # One write-to-rank carrying the file to every DPU.
                dpus.push_to_mram(0, [self.file] * self.nr_dpus)
                if self.verify_staging:
                    self._spot_check(dpus)
            with profiler.segment("DPU"):
                dpus.launch()
                # The demo's status/command CI stream (§5.3.1), scaled
                # with the workload.
                dpus.ci_ops(max(1, ci_ops_for_size(self.file_mb) // self.scale))
            with profiler.segment("DPU-CPU"):
                # One read-from-rank operation per DPU, serially.
                sums = [int(dpus.copy_from(i, "checksum", 0, 4)
                            .view(np.uint32)[0])
                        for i in range(self.nr_dpus)]
        expected = sums[0]
        if any(s != expected for s in sums):
            raise AssertionError("DPUs disagree on the checksum")
        return expected
