"""Index Search — scanning a Wikipedia-style inverted index (§5.3.2).

Mirrors the UPMEM UPIS demo's structure: the inverted index is
*replicated* to every DPU (written with serial per-DPU transfers, so
distribution time grows with the DPU count — Fig. 10's rising curves),
while each batch's queries are *partitioned* across DPUs.  445 search
requests are served in 4 batches of 128.  The demo launches DPUs
asynchronously and polls their status from userspace; under vPIM every
poll is a guest->VMM round trip, which is why the compute-dominated
1-DPU configuration shows ~2.1x overhead while the transfer-dominated
128-DPU one drops to ~1.3x.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import HostApplication
from repro.sdk.dpu_set import DpuSet
from repro.sdk.kernel import DpuProgram, TaskletContext, tasklet_range
from repro.sdk.transport import Transport
from repro.workloads.wikipedia import SyntheticCorpus

#: Instructions per scanned posting (load, compare, conditional count).
INSTR_PER_POSTING = 4

BATCH_SIZE = 128

#: Userspace status-poll cadence of the demo's wait loop.
STATUS_POLL_CADENCE = 50e-6


class IndexSearchProgram(DpuProgram):
    """DPU side: answer this DPU's query share over the full index."""

    name = "index_search_dpu"
    symbols = {"n_words": 4, "post_offset": 4, "n_queries": 4,
               "q_offset": 4, "r_offset": 4}
    nr_tasklets = 16
    binary_size = 8 * 1024

    def kernel(self, ctx: TaskletContext):
        if ctx.me() == 0:
            ctx.mem_reset()
        yield ctx.barrier()
        n_words = ctx.host_u32("n_words")
        post_off = ctx.host_u32("post_offset")
        nq = ctx.host_u32("n_queries")
        q_off = ctx.host_u32("q_offset")
        r_off = ctx.host_u32("r_offset")
        qrange = tasklet_range(ctx, nq)
        if len(qrange) == 0:
            return
        ctx.mem_alloc(3 * 1024)
        offsets = ctx.mram_read_blocks(0, (n_words + 1) * 4).view(np.int32)
        queries = ctx.mram_read_blocks(q_off + qrange.start * 4,
                                       len(qrange) * 4).view(np.int32)
        results = np.zeros(len(qrange), dtype=np.int32)
        scanned = 0
        for qi, word in enumerate(queries):
            w = int(word)
            if 0 <= w < n_words:
                s, e = int(offsets[w]), int(offsets[w + 1])
                # Offsets index (doc_id, position) pairs; scan them all.
                if e > s:
                    pairs = ctx.mram_read(post_off + s * 8, (e - s) * 8)
                    results[qi] = pairs.size // 8
                scanned += (e - s) * 2
        ctx.mram_write_blocks(r_off + qrange.start * 4, results)
        ctx.charge_loop(max(1, scanned), INSTR_PER_POSTING)


class IndexSearch(HostApplication):
    """Host side of the index-search benchmark."""

    name = "Wikipedia Index Search"
    short_name = "UPIS"
    domain = "Microbenchmark"

    def __init__(self, nr_dpus: int, corpus: SyntheticCorpus = None,
                 nr_queries: int = 445, seed: int = 0) -> None:
        super().__init__(nr_dpus, nr_queries=nr_queries, seed=seed)
        self.corpus = corpus or SyntheticCorpus(seed=seed + 7)
        self.query_words = self.corpus.queries(nr_queries, seed=seed + 11)

    def expected(self) -> np.ndarray:
        return np.array([len(self.corpus.search(w))
                         for w in self.query_words], dtype=np.int64)

    def run(self, transport: Transport) -> np.ndarray:
        profiler = transport.profiler
        vocab = self.corpus.vocabulary_size
        offsets, postings = self.corpus.postings_array()
        post_off = (vocab + 1) * 4
        q_off = post_off + postings.size * 4
        r_off = q_off + BATCH_SIZE * 4

        answers = np.zeros(self.query_words.size, dtype=np.int64)
        with DpuSet(transport, self.nr_dpus) as dpus:
            dpus.load(IndexSearchProgram())
            with profiler.segment("CPU-DPU"):
                dpus.broadcast_to("n_words", 0, np.array([vocab], np.uint32))
                dpus.broadcast_to("post_offset", 0,
                                  np.array([post_off], np.uint32))
                dpus.broadcast_to("q_offset", 0, np.array([q_off], np.uint32))
                dpus.broadcast_to("r_offset", 0, np.array([r_off], np.uint32))
                # Replicate the index to every DPU: the transferred volume
                # grows linearly with the DPU count, which is why Fig. 10's
                # execution time rises for native and vPIM alike.
                dpus.push_to_mram(0, [offsets.astype(np.int32)] * self.nr_dpus)
                dpus.push_to_mram(post_off, [postings] * self.nr_dpus)

            # 445 requests in 4 batches of 128; each batch's queries are
            # partitioned across the DPUs.
            for start in range(0, self.query_words.size, BATCH_SIZE):
                batch = self.query_words[start:start + BATCH_SIZE]
                counts = self.split_even(batch.size, self.nr_dpus)
                bounds = np.concatenate([[0], np.cumsum(counts)])
                with profiler.segment("CPU-DPU"):
                    dpus.push_to("n_queries", 0,
                                 [np.array([c], np.uint32) for c in counts])
                    dpus.push_to_mram(q_off, [
                        np.ascontiguousarray(batch[bounds[i]:bounds[i + 1]])
                        if counts[i] else np.zeros(1, np.int32)
                        for i in range(self.nr_dpus)
                    ])
                with profiler.segment("DPU"):
                    dpus.launch(status_poll_cadence=STATUS_POLL_CADENCE)
                with profiler.segment("DPU-CPU"):
                    bufs = dpus.push_from_mram(r_off, BATCH_SIZE * 4)
                    for i in range(self.nr_dpus):
                        if counts[i]:
                            answers[start + bounds[i]:start + bounds[i + 1]] = (
                                bufs[i].view(np.int32)[:counts[i]]
                                .astype(np.int64))
        return answers
