"""The two UPMEM microbenchmarks of Section 5.3."""

from repro.apps.micro.checksum import Checksum
from repro.apps.micro.index_search import IndexSearch

__all__ = ["Checksum", "IndexSearch"]
