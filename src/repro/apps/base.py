"""Host application base class.

Applications follow the paper's timing discipline: every host step is
wrapped in one of the four application-centric segments,

- ``CPU-DPU``   input data transfer to the DPUs,
- ``DPU``       DPU program execution,
- ``Inter-DPU`` synchronization between DPUs via the host CPU,
- ``DPU-CPU``   result retrieval,

so reports decompose exactly like Fig. 8.  Host-side data *generation*
(building inputs, CPU references) happens in ``__init__`` and is not
timed — it is identical under native and virtualized execution.
"""

from __future__ import annotations

import abc
from typing import Any, Dict

import numpy as np

from repro.sdk.transport import Transport


class HostApplication(abc.ABC):
    """One benchmark application."""

    #: Long name, e.g. "Vector Addition".
    name: str = ""
    #: PrIM short name, e.g. "VA".
    short_name: str = ""
    #: Domain per Table 1, e.g. "Dense linear algebra".
    domain: str = ""

    def __init__(self, nr_dpus: int, **params: Any) -> None:
        if nr_dpus <= 0:
            raise ValueError(f"nr_dpus must be positive, got {nr_dpus}")
        self.nr_dpus = nr_dpus
        self.params: Dict[str, Any] = dict(params, nr_dpus=nr_dpus)

    @abc.abstractmethod
    def run(self, transport: Transport) -> Any:
        """Execute on DPUs through ``transport``; returns the output."""

    @abc.abstractmethod
    def expected(self) -> Any:
        """CPU reference result for the generated workload."""

    def verify(self, output: Any) -> bool:
        """Compare DPU output against the CPU reference (exact by default)."""
        expected = self.expected()
        if isinstance(expected, np.ndarray):
            return bool(np.array_equal(np.asarray(output), expected))
        return bool(output == expected)

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def split_even(total: int, parts: int) -> list:
        """Split ``total`` items into ``parts`` near-equal contiguous counts."""
        base, rem = divmod(total, parts)
        return [base + (1 if i < rem else 0) for i in range(parts)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(nr_dpus={self.nr_dpus})"
