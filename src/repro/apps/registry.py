"""Table 1: the PrIM application inventory, plus the microbenchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Type

from repro.apps.base import HostApplication
from repro.apps.prim import (
    BinarySearch,
    BreadthFirstSearch,
    Gemv,
    HistogramLong,
    HistogramShort,
    MultilayerPerceptron,
    NeedlemanWunsch,
    Reduction,
    ScanRss,
    ScanSsa,
    Select,
    SpMV,
    TimeSeries,
    Transpose,
    Unique,
    VectorAdd,
)
from repro.apps.micro import Checksum, IndexSearch


@dataclass(frozen=True)
class AppInfo:
    """One row of Table 1."""

    domain: str
    benchmark: str
    short_name: str
    cls: Type[HostApplication]


#: The 16 PrIM applications, ordered as in Table 1.
PRIM_APPS: List[AppInfo] = [
    AppInfo("Dense linear algebra", "Vector Addition", "VA", VectorAdd),
    AppInfo("Dense linear algebra", "Matrix-Vector Multiply", "GEMV", Gemv),
    AppInfo("Sparse linear algebra", "Sparse Matrix-Vector Multiply", "SpMV", SpMV),
    AppInfo("Databases", "Select", "SEL", Select),
    AppInfo("Databases", "Unique", "UNI", Unique),
    AppInfo("Databases", "Binary Search", "BS", BinarySearch),
    AppInfo("Data analytics", "Time Series Analysis", "TS", TimeSeries),
    AppInfo("Graph processing", "Breadth-First Search", "BFS", BreadthFirstSearch),
    AppInfo("Neural networks", "Multilayer Perceptron", "MLP", MultilayerPerceptron),
    AppInfo("Bioinformatics", "Needleman-Wunsch", "NW", NeedlemanWunsch),
    AppInfo("Image processing", "Image histogram short", "HST-S", HistogramShort),
    AppInfo("Image processing", "Image histogram long", "HST-L", HistogramLong),
    AppInfo("Parallel primitives", "Reduction", "RED", Reduction),
    AppInfo("Parallel primitives", "Prefix Sum: scan-scan-add", "SCAN-SSA", ScanSsa),
    AppInfo("Parallel primitives", "Prefix Sum: reduce-scan-scan", "SCAN-RSS", ScanRss),
    AppInfo("Parallel primitives", "Matrix Transposition", "TRNS", Transpose),
]

#: PrIM apps plus the two UPMEM microbenchmarks.
ALL_APPS: List[AppInfo] = PRIM_APPS + [
    AppInfo("Microbenchmark", "Checksum", "CHK", Checksum),
    AppInfo("Microbenchmark", "Wikipedia Index Search", "UPIS", IndexSearch),
]

_BY_SHORT: Dict[str, AppInfo] = {info.short_name: info for info in ALL_APPS}


def app_by_short_name(short_name: str) -> AppInfo:
    """Look up an application by its Table 1 short name."""
    try:
        return _BY_SHORT[short_name]
    except KeyError:
        raise KeyError(
            f"unknown application {short_name!r}; known: {sorted(_BY_SHORT)}"
        ) from None
