"""Execution reports: what one application run measured."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sdk.profile import SEGMENTS, ProfileSnapshot


@dataclass
class ExecutionReport:
    """Everything recorded for one application run."""

    app_name: str
    mode: str                          #: "native", "vPIM", "vPIM-rust", ...
    nr_dpus: int
    total_time: float                  #: simulated seconds
    profile: ProfileSnapshot
    verified: bool
    vmexits: int = 0
    rank_completions: List[Tuple[int, float]] = field(default_factory=list)
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def segments(self) -> Dict[str, float]:
        return {name: self.profile.segments.get(name, 0.0)
                for name in SEGMENTS}

    @property
    def segments_total(self) -> float:
        """Sum of the four application segments — what Fig. 8 plots.

        ``total_time`` additionally includes allocation/load/free, which
        the paper reports separately (the 36 ms ``dpu_alloc`` manager
        cost, Section 4.2).
        """
        return sum(self.segments.values())

    def overhead_vs(self, baseline: "ExecutionReport",
                    metric: str = "segments") -> float:
        """Overhead factor relative to ``baseline``.

        ``metric`` is "segments" (the paper's execution-time comparison)
        or "wall" (includes allocation and teardown).
        """
        if metric == "wall":
            mine, base = self.total_time, baseline.total_time
        else:
            mine, base = self.segments_total, baseline.segments_total
        if base <= 0:
            raise ValueError("baseline has zero execution time")
        return mine / base

    def segment_overhead_vs(self, baseline: "ExecutionReport",
                            segment: str) -> Optional[float]:
        """Per-segment overhead, or None when the baseline segment is ~0."""
        base = baseline.profile.segments.get(segment, 0.0)
        mine = self.profile.segments.get(segment, 0.0)
        if base <= 1e-12:
            return None
        return mine / base

    def row(self) -> str:
        """One human-readable table row (benchmark harness output)."""
        seg = self.segments
        return (f"{self.app_name:<12} {self.mode:<10} dpus={self.nr_dpus:<4} "
                f"total={self.total_time * 1e3:9.2f}ms  "
                f"CPU-DPU={seg['CPU-DPU'] * 1e3:8.2f}  "
                f"DPU={seg['DPU'] * 1e3:8.2f}  "
                f"Inter-DPU={seg['Inter-DPU'] * 1e3:8.2f}  "
                f"DPU-CPU={seg['DPU-CPU'] * 1e3:8.2f}  "
                f"ok={self.verified}")
