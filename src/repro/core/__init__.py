"""The vPIM public API.

Typical use::

    from repro.core import VPim

    vpim = VPim()                              # the paper's 8-rank testbed
    native = vpim.native_session()
    report = native.run(VectorAdd(nr_dpus=60))

    vm = vpim.vm_session(nr_vupmem=1)          # full vPIM optimizations
    vreport = vm.run(VectorAdd(nr_dpus=60))
    print(vreport.overhead_vs(report))         # e.g. 1.08
"""

from repro.core.api import VPim
from repro.core.session import ExecutionSession
from repro.core.results import ExecutionReport

__all__ = ["VPim", "ExecutionSession", "ExecutionReport"]
