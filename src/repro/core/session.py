"""Execution sessions: run an application on one transport and report."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.results import ExecutionReport
from repro.observability.instruments import SessionInstruments
from repro.sdk.transport import Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apps.base import HostApplication
    from repro.virt.vm import Vm


class ExecutionSession:
    """Binds a transport (native or virtualized) to a run/report loop."""

    def __init__(self, transport: Transport, mode: str,
                 vm: Optional["Vm"] = None) -> None:
        self.transport = transport
        self.mode = mode
        self.vm = vm
        self.obs = SessionInstruments(transport.metrics)

    def run(self, app: "HostApplication",
            verify: bool = True) -> ExecutionReport:
        """Execute ``app`` once; returns its report.

        The profiler is reset so back-to-back runs on the same session do
        not bleed into each other; the VM (if any) persists, so rank
        reuse through the manager behaves as in a long-lived guest.
        """
        profiler = self.transport.profiler
        profiler.reset()
        vmexits_before = self.vm.kvm.stats.vmexits if self.vm else 0
        start = self.transport.clock.now

        spans = self.transport.spans
        root = (spans.begin("session.run", "session", start=start,
                            app=app.short_name, mode=self.mode)
                if spans is not None else None)
        try:
            output = app.run(self.transport)
        finally:
            # The root span always closes at the clock, even when the app
            # dies mid-run — faulted traces must still finish (and be
            # retained) for post-mortem attribution.
            if spans is not None:
                spans.end(root, end=max(self.transport.clock.now,
                                        root.cursor))

        total = self.transport.clock.now - start
        verified = app.verify(output) if verify else True
        vmexits = (self.vm.kvm.stats.vmexits - vmexits_before) if self.vm else 0
        self.obs.run(app.short_name, self.mode, verified, total)
        return ExecutionReport(
            app_name=app.short_name,
            mode=self.mode,
            nr_dpus=app.nr_dpus,
            total_time=total,
            profile=profiler.snapshot(),
            verified=verified,
            vmexits=vmexits,
            params=dict(app.params),
        )
