"""``VPim``: the library facade.

One ``VPim`` instance models one host machine: the physical UPMEM ranks,
the kernel driver, the rank manager, and a Firecracker launcher.  From it
you create *sessions* — native or virtualized — and run applications on
them.  Native and virtualized sessions share the same machine, so ranks
allocated to a VM are unavailable natively and vice versa, exactly like
the coexistence story of Section 3.5.
"""

from __future__ import annotations

from typing import Optional

from repro.config import MachineConfig
from repro.core.session import ExecutionSession
from repro.driver.driver import UpmemDriver
from repro.driver.native import NativeTransport
from repro.hardware.machine import Machine
from repro.hardware.timing import CostModel, DEFAULT_COST_MODEL
from repro.virt.firecracker import Firecracker, VmConfig
from repro.virt.manager import Manager
from repro.virt.opts import OptimizationConfig, preset
from repro.virt.transport import VirtTransport


class VPim:
    """A host machine with UPMEM ranks, ready to run native or VM sessions."""

    def __init__(self, machine_config: Optional[MachineConfig] = None,
                 cost: CostModel = DEFAULT_COST_MODEL,
                 oversubscription: bool = False,
                 emulation_slowdown: float = 20.0,
                 paging=None,
                 clock=None, manager_policy: str = "round_robin",
                 spans=None) -> None:
        """``oversubscription`` enables the Section 7 extension: when all
        physical ranks are allocated, the manager hands out software-
        emulated ranks running ``emulation_slowdown``x slower.

        ``paging`` takes a :class:`~repro.paging.config.PagingConfig` to
        enable the stronger §7 extension (``docs/paging.md``): the
        manager hands out *virtual* ranks demand-paged over the physical
        frames at full speed, with emulation (if also enabled) as the
        last resort past the pager's virtual capacity.  ``None`` (the
        default) models no paging at all.

        ``clock`` may be a shared :class:`~repro.hardware.clock.SimClock`
        so several hosts simulate one fleet-wide timeline
        (``repro.cluster``); likewise ``spans`` may be a shared
        :class:`~repro.observability.spans.SpanRecorder` so cross-host
        placements and migrations propagate one trace context.
        ``manager_policy`` selects the host manager's NAAV-allocation
        policy.
        """
        self.machine = Machine(machine_config, cost, clock=clock,
                               spans=spans)
        self.driver = UpmemDriver(self.machine)
        self.manager = Manager(self.machine, self.driver,
                               oversubscription=oversubscription,
                               emulation_slowdown=emulation_slowdown,
                               paging=paging,
                               policy=manager_policy)
        self.firecracker = Firecracker(self.machine, self.driver, self.manager)

    @property
    def clock(self):
        return self.machine.clock

    @property
    def spans(self):
        return self.machine.spans

    def native_session(self) -> ExecutionSession:
        """A session running directly on the hardware (the paper baseline)."""
        transport = NativeTransport(self.machine, self.driver)
        return ExecutionSession(transport, mode="native")

    def vm_session(self, nr_vupmem: int = 1, vcpus: int = 16,
                   mem_bytes: int = 4 << 30,
                   opts: Optional[OptimizationConfig] = None,
                   preset_name: Optional[str] = None) -> ExecutionSession:
        """Boot a microVM and return a session running inside it.

        ``preset_name`` selects a Table 2 configuration (e.g. "vPIM-rust",
        "vPIM+PB"); ``opts`` overrides it with an explicit config.
        """
        if opts is None:
            opts = preset(preset_name) if preset_name else OptimizationConfig()
        config = VmConfig(vcpus=vcpus, mem_bytes=mem_bytes,
                          nr_vupmem=nr_vupmem, opts=opts)
        vm = self.firecracker.launch_vm(config)
        transport = VirtTransport(vm)
        mode = preset_name or opts.label
        return ExecutionSession(transport, mode=mode, vm=vm)
