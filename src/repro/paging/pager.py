"""The rank pager: demand paging of physical ranks (``docs/paging.md``).

The :class:`RankPager` lets one host hand out more ranks than it has:
tenants get *virtual* rank indices (``>= PAGED_RANK_BASE``), and the
pager binds each to a physical *frame* on first touch, swapping rank
state out to a :class:`~repro.paging.store.SwapStore` and back in as
frames run short.  The §2 hardware constraint — a RUNNING DPU cannot
pause — is honoured structurally: state only moves inside rank
operations (write/read/load/launch), which are the exact boundaries
where no DPU is running; :func:`~repro.virt.migration.checkpoint_rank`
additionally refuses a RUNNING rank as a backstop.

Time discipline: the pager advances the machine clock itself by the
modeled swap costs (the precedent is
:func:`~repro.virt.migration.migrate_device`), charged at rank transfer
bandwidth plus a fixed per-fault overhead, so swap time is never folded
into — or double-counted against — the rank operation that triggered
the fault.

Frames come from the Manager's ordinary NAAV pool (claimed under the
``"pager"`` owner, so sysfs/observer bookkeeping sees them as busy) and
go back through a normal release — i.e. through the full isolation
reset — once the pager holds more frames than it has virtual ranks.
*Between* pager tenants a frame skips that 597 ms reset: restoring a
checkpoint zero-fills every DPU before loading (and a first-touch bind
pays a targeted wipe of the evicted tenant's materialized bytes), which
is leak-free and bit-exact at a fraction of the cost — this is where
paging's advantage over the 20x emulation fallback comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.driver.driver import PerfModeMapping, UpmemDriver
from repro.errors import ManagerError
from repro.hardware.dpu import DpuState
from repro.hardware.rank import Rank
from repro.observability.instruments import PagingInstruments
from repro.paging.config import PagingConfig
from repro.paging.eviction import make_policy
from repro.paging.store import SwapStore
from repro.virt.migration import checkpoint_rank, restore_rank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.virt.manager import Manager

#: Virtual (paged) rank indices start here — above physical ranks and
#: above the emulated-rank base (1000), so the three tiers never alias.
PAGED_RANK_BASE = 2000

#: Driver-ownership identity under which the pager claims frames.
PAGER_OWNER = "pager"


@dataclass
class _VRankEntry:
    """Pager-side state of one virtual rank."""

    owner: str
    frame: Optional[int] = None      #: bound physical rank, or swapped out
    has_state: bool = False          #: a checkpoint exists in the store
    pinned: bool = False
    weight: float = 1.0


@dataclass
class PagerStats:
    """Cumulative pager counters (mirrors ``repro_paging_*`` metrics)."""

    faults: int = 0
    demand_faults: int = 0
    predictive_faults: int = 0
    first_touch_faults: int = 0
    evictions: int = 0
    swap_out_bytes: int = 0
    swap_in_bytes: int = 0
    swap_seconds: float = 0.0
    frames_acquired: int = 0
    frames_returned: int = 0
    prefault_overlap_s: float = 0.0


class RankPager:
    """Demand-pages virtual ranks onto the host's physical frames."""

    def __init__(self, manager: "Manager", config: PagingConfig) -> None:
        self.manager = manager
        self.machine = manager.machine
        self.clock = manager.clock
        self.cost = manager.cost
        self.config = config
        self.store = SwapStore()
        self.policy = make_policy(config.policy,
                                  half_life_s=config.wss_half_life_s)
        self.stats = PagerStats()
        self.obs = PagingInstruments(self.machine.metrics,
                                     policy=config.policy,
                                     spans=self.machine.spans)
        self._vranks: Dict[int, _VRankEntry] = {}
        self._free_frames: List[int] = []
        self._dirty_frames: set = set()
        self._next_index = PAGED_RANK_BASE

    # -- capacity -----------------------------------------------------------

    @property
    def virtual_capacity(self) -> int:
        """Allocatable ranks this host advertises under overcommit."""
        return int(self.machine.nr_ranks * self.config.overcommit_ratio)

    def has_capacity(self) -> bool:
        return len(self._vranks) < self.virtual_capacity

    @staticmethod
    def is_virtual(rank_index: int) -> bool:
        return rank_index >= PAGED_RANK_BASE

    @property
    def nr_resident(self) -> int:
        return sum(1 for e in self._vranks.values() if e.frame is not None)

    @property
    def nr_swapped(self) -> int:
        return sum(1 for e in self._vranks.values() if e.frame is None)

    # -- lifecycle ----------------------------------------------------------

    def create(self, owner: str) -> int:
        """Allot a new virtual rank (no frame bound until first touch)."""
        if not self.has_capacity():
            raise ManagerError(
                f"pager at virtual capacity ({self.virtual_capacity} vranks "
                f"over {self.machine.nr_ranks} frames)")
        vrank = self._next_index
        self._next_index += 1
        self._vranks[vrank] = _VRankEntry(owner=owner)
        self.policy.touch(vrank, self.clock.now)
        self._refresh_gauges()
        return vrank

    def release(self, vrank: int) -> None:
        """Tear down a released vrank.

        The vrank's swap-store state is discarded and its frame (if
        resident) becomes free for reuse.  Freed frames stay *sticky* in
        the pager's pool: the next first-touch bind pays only a targeted
        wipe of the departed tenant's materialized bytes instead of
        waiting out a 597 ms isolation reset — the pager's analogue of
        the paper's NANA fast path, and the reason paged re-allocation
        beats the ladder's reset-wait step.  :meth:`drain` hands sticky
        frames back to the Manager (through the full isolation reset)
        when the host needs them for non-pager consumers.
        """
        entry = self._vranks.pop(vrank, None)
        if entry is None:
            return
        self.policy.forget(vrank)
        self.store.drop(vrank)
        if entry.frame is not None:
            self._free_frames.append(entry.frame)
            self._dirty_frames.add(entry.frame)
        self._refresh_gauges()

    def drain(self) -> int:
        """Return every free (unbound) frame to the Manager's pool.

        Each goes through a normal driver release — i.e. the full
        isolation reset — before any non-pager consumer can see it.
        Resident frames are untouched; returns the number released.
        """
        returned = 0
        while self._free_frames:
            frame = self._free_frames.pop()
            self._dirty_frames.discard(frame)
            self.manager.return_frame(frame)
            self.stats.frames_returned += 1
            returned += 1
        self._refresh_gauges()
        return returned

    @property
    def frames_held(self) -> int:
        """Physical frames currently claimed by the pager."""
        return self.nr_resident + len(self._free_frames)

    # -- residency ----------------------------------------------------------

    def resolve(self, vrank: int) -> Rank:
        """The physical rank behind ``vrank``, faulting it in if needed."""
        entry = self._require(vrank)
        self.policy.touch(vrank, self.clock.now)
        if entry.frame is None:
            self._fault_in(vrank, kind="demand")
        return self.machine.rank(entry.frame)

    def resident_rank(self, vrank: int) -> Optional[Rank]:
        """Non-faulting peek: the bound rank, or None if swapped out."""
        entry = self._vranks.get(vrank)
        if entry is None or entry.frame is None:
            return None
        return self.machine.rank(entry.frame)

    def prefault(self, vrank: int, overlap: float = 0.0) -> None:
        """Predictive swap-in for a queued request targeting ``vrank``.

        ``overlap`` is modeled time the request will spend waiting
        anyway (virtio queue + QoS arbitration); the swap-in runs under
        that wait, so only the excess is charged to the clock.
        """
        if not self.config.predictive:
            return
        entry = self._vranks.get(vrank)
        if entry is None or entry.frame is not None:
            return
        self._fault_in(vrank, kind="predictive", credit=max(overlap, 0.0))

    def pin(self, vrank: int) -> None:
        """Make ``vrank`` ineligible for eviction (faulting it in)."""
        entry = self._require(vrank)
        if entry.frame is None:
            self._fault_in(vrank, kind="demand")
        entry.pinned = True

    def unpin(self, vrank: int) -> None:
        self._require(vrank).pinned = False

    def set_weight(self, vrank: int, weight: float) -> None:
        """QoS weight for victim selection (heavier = evicted later)."""
        self._require(vrank).weight = max(float(weight), 0.0)

    # -- the fault path -----------------------------------------------------

    def _fault_in(self, vrank: int, kind: str, credit: float = 0.0) -> None:
        entry = self._vranks[vrank]
        self.stats.faults += 1
        if not entry.has_state:
            kind = "first_touch"
        self.obs.fault(kind)
        if kind == "demand":
            self.stats.demand_faults += 1
        elif kind == "predictive":
            self.stats.predictive_faults += 1
        else:
            self.stats.first_touch_faults += 1

        frame = self._grab_frame(exclude=vrank)
        rank = self.machine.rank(frame)
        spans = self.machine.spans
        with spans.scope("paging.swap_in", "paging", vrank=vrank,
                         frame=frame, kind=kind):
            if entry.has_state:
                checkpoint = self.store.get(vrank)
                duration = restore_rank(rank, checkpoint)
                nr_bytes = checkpoint.nr_bytes
                self.stats.swap_in_bytes += nr_bytes
            elif frame in self._dirty_frames:
                # First touch onto an evicted tenant's frame: a targeted
                # wipe of just the materialized bytes (the pager knows
                # exactly which segments exist — that is why this is far
                # cheaper than the manager's whole-DIMM reset).
                dirty = sum(dpu.mram.materialized_bytes for dpu in rank.dpus)
                rank.reset()
                duration = self.cost.rank_transfer_time(dirty)
                nr_bytes = 0
            else:
                duration = 0.0
                nr_bytes = 0
            duration += self.config.fault_overhead_s
            charged = max(0.0, duration - credit)
            hidden = duration - charged
            if hidden > 0:
                self.stats.prefault_overlap_s += hidden
                self.obs.prefault_overlap(hidden)
            self.clock.advance(charged)
            self.stats.swap_seconds += charged
            if entry.has_state:
                self.obs.swap("in", nr_bytes, duration)
        self._dirty_frames.discard(frame)
        entry.frame = frame
        entry.has_state = False
        # The authoritative copy is on the frame now; the store's copy
        # would go stale with the first write, so it is dropped.
        self.store.drop(vrank)
        self._refresh_gauges()

    def _swap_out(self, vrank: int) -> None:
        entry = self._vranks[vrank]
        frame = entry.frame
        rank = self.machine.rank(frame)
        spans = self.machine.spans
        with spans.scope("paging.swap_out", "paging", vrank=vrank,
                         frame=frame):
            checkpoint, duration = checkpoint_rank(rank)
            raw, deduped, hits = self.store.put(vrank, checkpoint)
            self.clock.advance(duration)
            self.stats.swap_seconds += duration
            self.stats.swap_out_bytes += checkpoint.nr_bytes
            self.stats.evictions += 1
            self.obs.swap("out", checkpoint.nr_bytes, duration)
            self.obs.eviction()
            self.obs.dedup_hit(hits)
        entry.frame = None
        entry.has_state = True
        self._free_frames.append(frame)
        self._dirty_frames.add(frame)
        self._refresh_gauges()

    def _grab_frame(self, exclude: int) -> int:
        """A physical frame to bind: free > fresh NAAV > evict > wait."""
        if self._free_frames:
            return self._free_frames.pop()
        frame = self.manager.acquire_frame(wait=False)
        if frame is not None:
            self.stats.frames_acquired += 1
            return frame
        victim = self._pick_victim(exclude)
        if victim is not None:
            self._swap_out(victim)
            return self._free_frames.pop()
        frame = self.manager.acquire_frame(wait=True)
        if frame is not None:
            self.stats.frames_acquired += 1
            return frame
        raise ManagerError(
            f"pager cannot bind vrank {exclude}: no free frame and every "
            "resident rank is pinned or running")

    def _pick_victim(self, exclude: int) -> Optional[int]:
        candidates = []
        for vrank, entry in self._vranks.items():
            if vrank == exclude or entry.pinned or entry.frame is None:
                continue
            rank = self.machine.rank(entry.frame)
            if any(d.state is DpuState.RUNNING for d in rank.dpus):
                continue  # §2: cannot checkpoint a running rank
            candidates.append(vrank)
        return self.policy.victim(candidates, self.clock.now,
                                  lambda v: self._vranks[v].weight)

    # -- helpers ------------------------------------------------------------

    def _require(self, vrank: int) -> _VRankEntry:
        entry = self._vranks.get(vrank)
        if entry is None:
            raise ManagerError(f"unknown virtual rank {vrank}")
        return entry

    def _refresh_gauges(self) -> None:
        self.obs.residency(self.nr_resident, self.nr_swapped)
        self.obs.store_footprint(self.store.raw_bytes,
                                 self.store.stored_bytes)


class PagedRankMapping(PerfModeMapping):
    """A performance-mode mapping of a *virtual* rank.

    Every operation resolves the backing physical rank through the
    pager (``self.rank`` is a property), so a swapped-out rank faults
    back in exactly at the operation boundary — transparently to the
    backend, which still sees the plain :class:`PerfModeMapping` API.
    ``rank_index``/``peek_rank`` never fault, so metric labels and
    consolidator scans cannot cause paging traffic.
    """

    def __init__(self, driver: UpmemDriver, pager: RankPager, vrank: int,
                 owner: str) -> None:
        # Deliberately not calling super().__init__: the base class pins
        # a static ``self.rank``, which is the one thing this mapping
        # must not have.
        self._driver = driver
        self._pager = pager
        self.vrank = vrank
        self.owner = owner
        self.mapped = True

    @property
    def rank(self) -> Rank:  # type: ignore[override]
        return self._pager.resolve(self.vrank)

    @property
    def rank_index(self) -> int:
        return self.vrank

    def peek_rank(self) -> Optional[Rank]:
        return self._pager.resident_rank(self.vrank)

    def _check(self) -> None:
        if not self.mapped:
            from repro.errors import MmapError
            raise MmapError(f"rank {self.vrank} mapping was unmapped")

    def unmap(self) -> None:
        if self.mapped:
            self.mapped = False
            self._driver.release_rank(self.vrank, self.owner)
