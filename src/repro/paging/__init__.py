"""Rank demand paging: transparent PIM oversubscription (§7).

The paper's future work asks for "efficient pause-resume and
checkpoint-restore mechanisms [enabling] dynamic workload consolidation
without hardware changes".  ``repro.paging`` builds exactly that: the
Manager hands out more *virtual* ranks than physically exist, and a
:class:`~repro.paging.pager.RankPager` time-multiplexes the physical
ranks underneath by swapping rank state to a host-memory
:class:`~repro.paging.store.SwapStore` — always at launch/transfer
boundaries, never while a DPU is RUNNING (the §2 hardware constraint).

See ``docs/paging.md`` for the design; off-path by default (no pager is
created unless a :class:`~repro.paging.config.PagingConfig` is passed).
"""

from repro.paging.config import PagingConfig
from repro.paging.eviction import (
    DecayedWorkingSetPolicy,
    EvictionPolicy,
    LruPolicy,
    make_policy,
)
from repro.paging.pager import PAGED_RANK_BASE, PagedRankMapping, RankPager
from repro.paging.store import SwapStore

__all__ = [
    "PAGED_RANK_BASE",
    "DecayedWorkingSetPolicy",
    "EvictionPolicy",
    "LruPolicy",
    "PagedRankMapping",
    "PagingConfig",
    "RankPager",
    "SwapStore",
    "make_policy",
]
