"""Victim selection for the rank pager (``docs/paging.md``).

A policy only *ranks* candidates; residency, pinning and QoS weights
live in the :class:`~repro.paging.pager.RankPager`, which passes the
eligible candidates in.  Both policies are QoS-weight-aware: a tenant
with twice the weight looks half as evictable, so the pager's victim
choice composes with the weighted-fair scheduling of ``repro.qos``
instead of fighting it.

All ties break toward the lowest virtual-rank index, keeping victim
selection fully deterministic (run-to-run reproducibility is a
simulation invariant).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

#: Weights below this are clamped so a zero-weight flow cannot produce
#: an infinite eviction score (it just becomes maximally evictable).
MIN_WEIGHT = 1e-6


class EvictionPolicy:
    """Interface: observe accesses, forget departed ranks, pick victims."""

    name = "base"

    def touch(self, vrank: int, now: float) -> None:
        """Record one access to ``vrank`` at simulated time ``now``."""
        raise NotImplementedError

    def forget(self, vrank: int) -> None:
        """Drop all state for a released rank."""
        raise NotImplementedError

    def victim(self, candidates: Iterable[int], now: float,
               weight_of: Callable[[int], float]) -> Optional[int]:
        """The candidate to evict, or ``None`` if there are none."""
        raise NotImplementedError

    @staticmethod
    def _weight(weight_of: Callable[[int], float], vrank: int) -> float:
        return max(weight_of(vrank), MIN_WEIGHT)


class LruPolicy(EvictionPolicy):
    """Evict the rank idle the longest, scaled by QoS weight.

    Score is ``idle_time / weight``: a weight-2 tenant must sit idle
    twice as long as a weight-1 tenant before it becomes the victim.
    """

    name = "lru"

    def __init__(self) -> None:
        self._last_used: Dict[int, float] = {}

    def touch(self, vrank: int, now: float) -> None:
        self._last_used[vrank] = now

    def forget(self, vrank: int) -> None:
        self._last_used.pop(vrank, None)

    def victim(self, candidates: Iterable[int], now: float,
               weight_of: Callable[[int], float]) -> Optional[int]:
        best: Optional[int] = None
        best_score = float("-inf")
        for vrank in sorted(candidates):
            idle = now - self._last_used.get(vrank, float("-inf"))
            score = idle / self._weight(weight_of, vrank)
            if score > best_score:
                best, best_score = vrank, score
        return best


class DecayedWorkingSetPolicy(EvictionPolicy):
    """Evict the rank with the coldest exponentially-decayed activity.

    Each access adds one to the rank's score; the score halves every
    ``half_life_s`` of simulated idle time, so a rank that was hot a
    while ago decays below one that is merely warm *now* — unlike pure
    LRU, a single stale touch does not protect a rank.  The final
    eviction score is ``activity * weight`` (lowest goes), so heavier
    tenants keep their working set resident longer.
    """

    name = "wss"

    def __init__(self, half_life_s: float = 1.0) -> None:
        if half_life_s <= 0:
            raise ValueError("half_life_s must be positive")
        self.half_life_s = half_life_s
        self._score: Dict[int, float] = {}
        self._stamp: Dict[int, float] = {}

    def _decayed(self, vrank: int, now: float) -> float:
        score = self._score.get(vrank, 0.0)
        if score == 0.0:
            return 0.0
        age = now - self._stamp[vrank]
        return score * 0.5 ** (age / self.half_life_s)

    def touch(self, vrank: int, now: float) -> None:
        self._score[vrank] = self._decayed(vrank, now) + 1.0
        self._stamp[vrank] = now

    def forget(self, vrank: int) -> None:
        self._score.pop(vrank, None)
        self._stamp.pop(vrank, None)

    def victim(self, candidates: Iterable[int], now: float,
               weight_of: Callable[[int], float]) -> Optional[int]:
        best: Optional[int] = None
        best_score = float("inf")
        for vrank in sorted(candidates):
            score = self._decayed(vrank, now) * self._weight(weight_of, vrank)
            if score < best_score:
                best, best_score = vrank, score
        return best


def make_policy(name: str, half_life_s: float = 1.0) -> EvictionPolicy:
    """Instantiate an eviction policy by its config name."""
    if name == "lru":
        return LruPolicy()
    if name == "wss":
        return DecayedWorkingSetPolicy(half_life_s=half_life_s)
    raise ValueError(f"unknown eviction policy {name!r}; "
                     "choose 'lru' or 'wss'")
