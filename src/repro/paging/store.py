"""The host-memory backing store for swapped-out rank state.

A :class:`SwapStore` holds :class:`~repro.virt.migration.RankCheckpoint`
contents keyed by virtual rank, with the MRAM segment payloads
*content-addressed*: two tenants whose checkpoints contain identical
64 KB segments (common — identical input datasets, zero-heavy buffers)
share one stored copy.  The digest function is the exact one the
transfer cache uses (:mod:`repro.virt.digest`), so the two
content-addressed indexes in this codebase cannot drift.

Collision keying: a digest is only ever trusted *within* the store's own
payload table, where it was computed from the payload it names — a
2^-64 cross-payload collision would silently share a wrong segment,
which is the same accepted trade the transfer cache documents.

Checkpoints are stored structurally (per-DPU segment-digest maps plus
the small program/symbol state), and :meth:`get` rebuilds a
``RankCheckpoint`` without copying payload bytes — ``load_segments``
copies into MRAM extents on restore, so read-only views are safe to
hand out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.hardware.dpu import DpuState
from repro.virt.digest import content_digest
from repro.virt.migration import DpuSnapshot, RankCheckpoint


@dataclass
class _StoredDpu:
    """One DPU's checkpoint with segments replaced by payload digests."""

    segments: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: ``segment index -> (digest, size)``; payloads live in the store.
    symbols: Dict[str, bytes] = field(default_factory=dict)
    program: object = None
    state: DpuState = DpuState.IDLE


@dataclass
class _StoredCheckpoint:
    source_rank: int = 0
    dpus: List[_StoredDpu] = field(default_factory=list)


class SwapStore:
    """Content-addressed, refcounted store of swapped-out rank state."""

    def __init__(self) -> None:
        self._payloads: Dict[int, bytes] = {}
        self._refs: Dict[int, int] = {}
        self._vranks: Dict[int, _StoredCheckpoint] = {}
        #: Segment stores that matched an already-held payload.
        self.dedup_hits = 0

    # -- write side ---------------------------------------------------------

    def put(self, vrank: int, checkpoint: RankCheckpoint,
            ) -> Tuple[int, int, int]:
        """Store ``checkpoint``; returns ``(raw, deduped, hits)``.

        ``raw`` is the checkpoint's logical segment byte count, ``deduped``
        how many of those bytes matched a payload already held (and were
        therefore not stored again), ``hits`` the number of segments that
        deduplicated.  A prior checkpoint for the same vrank is replaced.
        """
        if vrank in self._vranks:
            self.drop(vrank)
        stored = _StoredCheckpoint(source_rank=checkpoint.source_rank)
        raw = 0
        deduped = 0
        hits = 0
        for snap in checkpoint.dpus:
            sdpu = _StoredDpu(symbols=dict(snap.symbols),
                              program=snap.program, state=snap.state)
            for seg_idx, payload in snap.mram_segments.items():
                digest = content_digest(payload)
                size = int(np.asarray(payload).nbytes)
                raw += size
                if digest in self._payloads:
                    self._refs[digest] += 1
                    deduped += size
                    hits += 1
                    self.dedup_hits += 1
                else:
                    self._payloads[digest] = (
                        np.ascontiguousarray(payload)
                        .view(np.uint8).reshape(-1).tobytes())
                    self._refs[digest] = 1
                sdpu.segments[seg_idx] = (digest, size)
            stored.dpus.append(sdpu)
        self._vranks[vrank] = stored
        return raw, deduped, hits

    # -- read side ----------------------------------------------------------

    def __contains__(self, vrank: int) -> bool:
        return vrank in self._vranks

    def get(self, vrank: int) -> RankCheckpoint:
        """Rebuild the stored checkpoint (payloads as read-only views)."""
        stored = self._vranks[vrank]
        checkpoint = RankCheckpoint(source_rank=stored.source_rank)
        for sdpu in stored.dpus:
            segments = {}
            for seg_idx, (digest, size) in sdpu.segments.items():
                segments[seg_idx] = np.frombuffer(
                    self._payloads[digest], dtype=np.uint8, count=size)
            checkpoint.dpus.append(DpuSnapshot(
                mram_segments=segments, symbols=dict(sdpu.symbols),
                program=sdpu.program, state=sdpu.state))
        return checkpoint

    def drop(self, vrank: int) -> None:
        """Discard a vrank's checkpoint, releasing unshared payloads."""
        stored = self._vranks.pop(vrank, None)
        if stored is None:
            return
        for sdpu in stored.dpus:
            for digest, _size in sdpu.segments.values():
                self._refs[digest] -= 1
                if self._refs[digest] == 0:
                    del self._refs[digest]
                    del self._payloads[digest]

    # -- accounting ---------------------------------------------------------

    @property
    def nr_checkpoints(self) -> int:
        return len(self._vranks)

    @property
    def raw_bytes(self) -> int:
        """Logical segment bytes across all stored checkpoints."""
        return sum(size * self._refs[digest]
                   for digest, size in self._sizes().items())

    @property
    def stored_bytes(self) -> int:
        """Unique payload bytes actually held in host memory."""
        return sum(len(p) for p in self._payloads.values())

    def _sizes(self) -> Dict[int, int]:
        return {digest: len(p) for digest, p in self._payloads.items()}
