"""Configuration of the rank demand-paging subsystem (``docs/paging.md``)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PagingConfig:
    """Tunables of the :class:`~repro.paging.pager.RankPager`.

    Passing one to :class:`~repro.virt.manager.Manager` (or
    :class:`~repro.core.api.VPim`) turns demand paging on; the default
    everywhere is ``None``, which models no paging at all — the
    committed wall-clock digest stays bit-identical.
    """

    #: Virtual ranks handed out per physical rank.  2.0 means a 4-rank
    #: host advertises 8 allocatable ranks; the pager time-multiplexes
    #: the physical frames underneath.
    overcommit_ratio: float = 2.0

    #: Victim selection: ``lru`` (evict the rank idle longest, scaled by
    #: QoS weight) or ``wss`` (decayed working-set score — evict the
    #: rank with the coldest recent activity).
    policy: str = "lru"

    #: Half-life of the ``wss`` policy's activity decay, in simulated
    #: seconds: a rank's score halves after this much idle time.
    wss_half_life_s: float = 1.0

    #: Fixed modeled bookkeeping cost of one fault (frame lookup, page
    #: table update) on top of the bandwidth-charged state copy.
    fault_overhead_s: float = 150e-6

    #: Start swap-ins for queued virtio requests that target a
    #: swapped-out rank while the request is still waiting its turn, so
    #: the copy overlaps the queue wait instead of serializing after it.
    predictive: bool = True

    def __post_init__(self) -> None:
        if self.overcommit_ratio < 1.0:
            raise ValueError(
                f"overcommit_ratio must be >= 1, got {self.overcommit_ratio}")
        if self.policy not in ("lru", "wss"):
            raise ValueError(
                f"unknown eviction policy {self.policy!r}; "
                "choose 'lru' or 'wss'")
        if self.wss_half_life_s <= 0:
            raise ValueError("wss_half_life_s must be positive")
        if self.fault_overhead_s < 0:
            raise ValueError("fault_overhead_s must be non-negative")
