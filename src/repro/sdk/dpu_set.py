"""``DpuSet``: the host-side handle over allocated DPUs (Fig. 2a workflow).

The set may span several ranks; every rank-level operation is issued to
each underlying :class:`~repro.sdk.transport.RankChannel` and the
durations are combined by the transport (parallel or sequential), which
advances the simulated clock exactly once per logical operation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import MRAM_HEAP_SYMBOL
from repro.errors import AllocationError, LaunchError, TransferError
from repro.sdk.kernel import DpuProgram
from repro.sdk.transfer import DpuEntry, TransferMatrix, XferKind
from repro.sdk.transport import RankChannel, Transport


class DpuSet:
    """A set of allocated DPUs, possibly spanning multiple ranks."""

    def __init__(self, transport: Transport, nr_dpus: int) -> None:
        if nr_dpus <= 0:
            raise AllocationError(f"cannot allocate {nr_dpus} DPUs")
        self.transport = transport
        self.channels: List[RankChannel] = transport.alloc_channels(nr_dpus)
        self.nr_dpus = nr_dpus
        # Map set-index -> (channel position, local DPU index).
        self._map: List[Tuple[int, int]] = []
        remaining = nr_dpus
        for ci, channel in enumerate(self.channels):
            take = min(remaining, channel.nr_dpus)
            self._map.extend((ci, local) for local in range(take))
            remaining -= take
            if remaining == 0:
                break
        if remaining > 0:
            raise AllocationError(
                f"transport allocated only {nr_dpus - remaining} of "
                f"{nr_dpus} requested DPUs"
            )
        self._freed = False
        self._loaded = False
        #: Per-rank completion times of the most recent operation (Fig. 16).
        self.last_completions: List[Tuple[int, float]] = []

    # -- context management ----------------------------------------------------

    def __enter__(self) -> "DpuSet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._freed:
            self.free()

    # -- helpers -----------------------------------------------------------------

    def _check_alive(self) -> None:
        if self._freed:
            raise AllocationError("operation on a freed DPU set")

    def _split_entries(self, entries: Sequence[DpuEntry]) -> List[List[DpuEntry]]:
        """Regroup set-indexed entries into per-channel, locally-indexed lists."""
        per_channel: List[List[DpuEntry]] = [[] for _ in self.channels]
        for entry in entries:
            if not 0 <= entry.dpu_index < self.nr_dpus:
                raise TransferError(
                    f"entry targets DPU {entry.dpu_index}, set has {self.nr_dpus}"
                )
            ci, local = self._map[entry.dpu_index]
            per_channel[ci].append(
                DpuEntry(dpu_index=local, size=entry.size, data=entry.data)
            )
        return per_channel

    def _run(self, durations: List[float], contended: bool = True) -> float:
        """Combine per-rank durations, advance the clock, record completions."""
        elapsed, completions = self.transport.combine(durations, contended)
        self.transport.clock.advance(elapsed)
        self.last_completions = [
            (self.channels[i].rank_index, completions[i])
            for i in range(len(completions))
        ]
        return elapsed

    def _active_channels(self) -> List[int]:
        """Channel positions that actually hold DPUs of this set."""
        used = sorted({ci for ci, _ in self._map})
        return used

    # -- tracing helpers -------------------------------------------------------

    def _begin_op(self, name: str, **attrs) -> object:
        """Open one SDK-layer span covering a logical set operation."""
        spans = self.transport.spans
        if spans is None:
            return None
        return spans.begin(name, "sdk", start=self.transport.clock.now,
                           nr_dpus=self.nr_dpus, **attrs)

    def _sibling(self, span) -> None:
        """Lay the next per-rank channel call out as a parallel sibling:
        rewind the op span's cursor so concurrent ranks' sub-spans start
        together (Fig. 16's parallel handling).  Sequential transports
        keep the advancing cursor, so siblings chain back-to-back."""
        spans = self.transport.spans
        if spans is not None and span is not None and \
                self.transport.parallel_ranks:
            spans.rewind(span)

    def _end_op(self, span, elapsed: float) -> None:
        """Close the SDK op span at exactly the combined elapsed time."""
        spans = self.transport.spans
        if spans is not None and span is not None:
            spans.end(span, duration=elapsed)

    # -- SDK operations ----------------------------------------------------------

    def load(self, program: DpuProgram) -> None:
        """``dpu_load``: install the program binary on every DPU."""
        self._check_alive()
        span = self._begin_op("sdk.load", program=program.name)
        durations = []
        for ci in self._active_channels():
            self._sibling(span)
            durations.append(self.channels[ci].load(program))
        self._end_op(span, self._run(durations))
        self._loaded = True

    def push(self, matrix_entries: Sequence[DpuEntry], kind: XferKind,
             symbol: str, offset: int) -> Optional[List[np.ndarray]]:
        """``dpu_push_xfer``: one parallel rank operation per involved rank."""
        self._check_alive()
        per_channel = self._split_entries(matrix_entries)
        span = self._begin_op(
            "sdk.push", kind="to_dpu" if kind is XferKind.TO_DPU else "from_dpu",
            symbol=symbol)
        durations: List[float] = []
        results_by_channel: List[List[np.ndarray]] = []
        involved: List[int] = []
        for ci, entries in enumerate(per_channel):
            if not entries:
                continue
            involved.append(ci)
            matrix = TransferMatrix(kind, symbol, offset, entries)
            matrix.validate()
            self._sibling(span)
            if kind is XferKind.TO_DPU:
                durations.append(self.channels[ci].write(matrix))
                results_by_channel.append([])
            else:
                bufs, duration = self.channels[ci].read(matrix)
                durations.append(duration)
                results_by_channel.append(bufs)
        elapsed, completions = self.transport.combine(durations)
        self.transport.clock.advance(elapsed)
        self._end_op(span, elapsed)
        self.last_completions = [
            (self.channels[ci].rank_index, completions[j])
            for j, ci in enumerate(involved)
        ]
        if kind is XferKind.FROM_DPU:
            # Restitch per-channel buffers into set order.
            out: List[Optional[np.ndarray]] = [None] * len(matrix_entries)
            cursor = {ci: 0 for ci in involved}
            for pos, entry in enumerate(matrix_entries):
                ci, _ = self._map[entry.dpu_index]
                bufs = results_by_channel[involved.index(ci)]
                out[pos] = bufs[cursor[ci]]
                cursor[ci] += 1
            return [buf for buf in out if buf is not None]
        return None

    def push_to(self, symbol: str, offset: int,
                buffers: Sequence[np.ndarray]) -> None:
        """Distribute ``buffers[i]`` to set-DPU ``i`` in one parallel xfer."""
        if len(buffers) > self.nr_dpus:
            raise TransferError(
                f"{len(buffers)} buffers for a set of {self.nr_dpus} DPUs"
            )
        entries = []
        for i, buf in enumerate(buffers):
            u8 = np.ascontiguousarray(buf).view(np.uint8).reshape(-1)
            entries.append(DpuEntry(dpu_index=i, size=u8.size, data=u8))
        self.push(entries, XferKind.TO_DPU, symbol, offset)

    def broadcast_to(self, symbol: str, offset: int, buffer: np.ndarray) -> None:
        """Send the same buffer to every DPU (``dpu_broadcast_to``)."""
        u8 = np.ascontiguousarray(buffer).view(np.uint8).reshape(-1)
        entries = [DpuEntry(dpu_index=i, size=u8.size, data=u8)
                   for i in range(self.nr_dpus)]
        self.push(entries, XferKind.TO_DPU, symbol, offset)

    def push_from(self, symbol: str, offset: int, size: int) -> List[np.ndarray]:
        """Read ``size`` bytes from each DPU in one parallel xfer."""
        entries = [DpuEntry(dpu_index=i, size=size) for i in range(self.nr_dpus)]
        result = self.push(entries, XferKind.FROM_DPU, symbol, offset)
        assert result is not None
        return result

    def copy_to(self, dpu_index: int, symbol: str, offset: int,
                buffer: np.ndarray) -> None:
        """``dpu_copy_to``: serial transfer to a single DPU.

        This is the transfer style whose per-operation fixed cost makes
        SEL/UNI/SpMV/BFS scale poorly and NW/TRNS storm the device
        (Section 5.2) — and which the frontend's request batching absorbs.
        """
        u8 = np.ascontiguousarray(buffer).view(np.uint8).reshape(-1)
        entries = [DpuEntry(dpu_index=dpu_index, size=u8.size, data=u8)]
        self.push(entries, XferKind.TO_DPU, symbol, offset)

    def copy_from(self, dpu_index: int, symbol: str, offset: int,
                  size: int) -> np.ndarray:
        """``dpu_copy_from``: serial read from a single DPU."""
        entries = [DpuEntry(dpu_index=dpu_index, size=size)]
        result = self.push(entries, XferKind.FROM_DPU, symbol, offset)
        assert result is not None and len(result) == 1
        return result[0]

    def copy_to_mram(self, dpu_index: int, offset: int,
                     buffer: np.ndarray) -> None:
        """Serial MRAM write to a single DPU."""
        self.copy_to(dpu_index, MRAM_HEAP_SYMBOL, offset, buffer)

    def copy_from_mram(self, dpu_index: int, offset: int,
                       size: int) -> np.ndarray:
        """Serial MRAM read from a single DPU."""
        return self.copy_from(dpu_index, MRAM_HEAP_SYMBOL, offset, size)

    def push_to_mram(self, offset: int, buffers: Sequence[np.ndarray]) -> None:
        """Shorthand for pushing to the MRAM heap symbol."""
        self.push_to(MRAM_HEAP_SYMBOL, offset, buffers)

    def push_from_mram(self, offset: int, size: int) -> List[np.ndarray]:
        return self.push_from(MRAM_HEAP_SYMBOL, offset, size)

    def launch(self, status_poll_cadence: Optional[float] = None) -> None:
        """``dpu_launch``: run and wait for completion.

        With ``status_poll_cadence`` unset this is the synchronous launch
        (the kernel-side wait of ``DPU_SYNCHRONOUS``).  When set, it
        models the asynchronous launch + userspace status-polling loop
        some applications use (e.g. the UPMEM Index Search demo): the
        application re-reads DPU status every ``status_poll_cadence``
        seconds, and each of those reads is a CI operation that a
        virtualized transport turns into a full round trip.
        """
        self._check_alive()
        if not self._loaded:
            raise LaunchError(
                "dpu_launch before dpu_load: no program is installed on "
                "this set's DPUs")
        span = self._begin_op("sdk.launch")
        durations = []
        for ci in self._active_channels():
            self._sibling(span)
            durations.append(self.channels[ci].launch())
        if status_poll_cadence is not None and durations:
            penalty = self.transport.launch_poll_penalty(
                max(durations), status_poll_cadence)
            durations = [d + penalty for d in durations]
        # DPU execution is device-side: ranks overlap perfectly.
        self._end_op(span, self._run(durations, contended=False))

    def ci_ops(self, count: int) -> None:
        """Issue explicit control-interface traffic (status/command ops)."""
        self._check_alive()
        per_channel = count  # each rank's CI sees the full command stream
        span = self._begin_op("sdk.ci_ops", count=count)
        durations = []
        for ci in self._active_channels():
            self._sibling(span)
            durations.append(self.channels[ci].ci_ops(per_channel))
        self._end_op(span, self._run(durations, contended=False))

    def free(self) -> None:
        """``dpu_free``: release all ranks of the set."""
        if self._freed:
            return
        span = self._begin_op("sdk.free")
        durations = []
        for channel in self.channels:
            self._sibling(span)
            durations.append(channel.release())
        self._end_op(span, self._run(durations, contended=False))
        self._freed = True

    # -- introspection --------------------------------------------------------------

    def dpus_per_channel(self) -> List[int]:
        counts = [0] * len(self.channels)
        for ci, _ in self._map:
            counts[ci] += 1
        return counts

    def __len__(self) -> int:
        return self.nr_dpus
