"""The transport abstraction that makes applications virtualization-agnostic.

A :class:`Transport` hands out :class:`RankChannel` objects — one per
allocated rank — through which the SDK performs rank operations.  Two
implementations exist:

- :class:`repro.driver.native.NativeTransport` talks to the physical
  ranks in performance mode (mmap), as native UPMEM applications do;
- :class:`repro.virt.transport.VirtTransport` routes every operation
  through the vUPMEM frontend driver, the virtio transferq, and the
  Firecracker backend.

Channel methods *return* simulated durations; the :class:`~repro.sdk.
dpu_set.DpuSet` combines them across ranks (parallel = max, sequential =
sum, per :attr:`Transport.parallel_ranks`) and advances the clock.  This
is what makes Fig. 15/16's sequential-vs-parallel handling observable.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

import numpy as np

from repro.hardware.clock import SimClock
from repro.hardware.timing import CostModel
from repro.observability import MetricsRegistry
from repro.observability.spans import SpanRecorder
from repro.sdk.kernel import DpuProgram
from repro.sdk.profile import Profiler
from repro.sdk.transfer import TransferMatrix


class RankChannel(abc.ABC):
    """One allocated rank as seen by the SDK."""

    @property
    @abc.abstractmethod
    def nr_dpus(self) -> int:
        """Number of usable DPUs behind this channel."""

    @property
    @abc.abstractmethod
    def rank_index(self) -> int:
        """Physical rank index (for reporting)."""

    @abc.abstractmethod
    def load(self, program: DpuProgram) -> float:
        """Load ``program`` on every DPU; returns the duration."""

    @abc.abstractmethod
    def write(self, matrix: TransferMatrix) -> float:
        """Perform a write-to-rank operation; returns the duration."""

    @abc.abstractmethod
    def read(self, matrix: TransferMatrix) -> Tuple[List[np.ndarray], float]:
        """Perform a read-from-rank; returns per-entry buffers and duration."""

    @abc.abstractmethod
    def launch(self) -> float:
        """Boot the loaded program on all DPUs, synchronously."""

    @abc.abstractmethod
    def ci_ops(self, count: int) -> float:
        """Issue ``count`` synchronous control-interface operations."""

    @abc.abstractmethod
    def release(self) -> float:
        """Release the rank (free the DPUs); returns the duration."""


class Transport(abc.ABC):
    """Factory for rank channels plus the shared clock/profiler/cost model."""

    def __init__(self, clock: SimClock, cost: CostModel,
                 profiler: Optional[Profiler] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 spans: Optional[SpanRecorder] = None) -> None:
        self.clock = clock
        self.cost = cost
        self.profiler = profiler or Profiler(clock)
        #: Registry shared with the machine behind this transport; sessions
        #: record their run metrics here.
        self.metrics = metrics or MetricsRegistry()
        #: Span recorder shared with the machine behind this transport;
        #: ``None`` (e.g. bare test transports) disables tracing.
        self.spans = spans

    @property
    @abc.abstractmethod
    def parallel_ranks(self) -> bool:
        """Whether operations spanning several ranks execute concurrently."""

    @abc.abstractmethod
    def alloc_channels(self, nr_dpus: int) -> List[RankChannel]:
        """Allocate enough ranks to cover ``nr_dpus`` DPUs."""

    def launch_poll_penalty(self, run_duration: float,
                            cadence: float) -> float:
        """Wall-time penalty of *userspace* status polling during a launch.

        Applications using the asynchronous launch API poll DPU status
        from a userspace loop (the UPMEM Index Search demo does).
        Natively those polls overlap the wait for free; a virtualized
        transport must override this to charge the per-poll round trip.
        """
        return 0.0

    # -- duration combining ----------------------------------------------------

    def contention(self) -> float:
        """Share of concurrent transfer work that serializes on the host
        memory bus (0 = perfectly parallel, 1 = sequential)."""
        return self.cost.native_parallel_contention

    def combine(self, durations: List[float],
                contended: bool = True) -> Tuple[float, List[float]]:
        """Combine per-rank durations of one logical operation.

        ``contended`` distinguishes host-side transfers (which share the
        memory bus when handled in parallel) from device-side work such
        as DPU launches (which overlap perfectly).  Returns ``(elapsed,
        completion_times)`` where ``completion_times[i]`` is when rank
        i's request finished, relative to the operation start — the
        series Fig. 16 plots.
        """
        if not durations:
            return 0.0, []
        if self.parallel_ranks:
            peak = max(durations)
            if not contended:
                return peak, list(durations)
            elapsed = peak + (sum(durations) - peak) * self.contention()
            # Fair bus sharing: concurrent requests finish together.
            return elapsed, [elapsed] * len(durations)
        completions = []
        acc = 0.0
        for d in durations:
            acc += d
            completions.append(acc)
        return acc, completions
