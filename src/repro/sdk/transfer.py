"""Transfer matrices: the SDK structure behind ``dpu_push_xfer`` (Fig. 6).

A transfer matrix describes one rank-level operation: for each target DPU,
a (size, offset) pair plus, for writes, the page-backed payload.  The
virtualization frontend serializes this exact structure into the
virtqueue (Fig. 7); natively it feeds the driver directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import MAX_XFER_BYTES, MRAM_HEAP_SYMBOL, MRAM_SIZE, PAGE_SIZE
from repro.errors import TransferError


class XferKind(enum.Enum):
    """Direction of a transfer, as DPU_XFER_TO_DPU / DPU_XFER_FROM_DPU."""

    TO_DPU = "to_dpu"
    FROM_DPU = "from_dpu"


class Target(enum.Enum):
    """What the transfer addresses on the DPU."""

    MRAM = "mram"        #: the 64 MB bank, addressed via the heap symbol
    WRAM_SYMBOL = "wram" #: a host-visible WRAM variable


@dataclass
class DpuEntry:
    """One DPU's slice of a transfer matrix (one row of Fig. 6)."""

    dpu_index: int                    #: index within the *set* (not the rank)
    size: int
    data: Optional[np.ndarray] = None #: payload for writes, None for reads

    def __post_init__(self) -> None:
        if self.size < 0 or self.size > MAX_XFER_BYTES:
            raise TransferError(f"entry size {self.size} outside 0..4 GB")
        if self.data is not None:
            buf = self.data
            if not (isinstance(buf, np.ndarray) and buf.dtype == np.uint8
                    and buf.ndim == 1 and buf.flags.c_contiguous):
                buf = np.ascontiguousarray(buf).view(np.uint8).reshape(-1)
            if buf.size != self.size:
                raise TransferError(
                    f"entry data is {buf.size} bytes but size says {self.size}"
                )
            self.data = buf

    @property
    def nr_pages(self) -> int:
        return (self.size + PAGE_SIZE - 1) // PAGE_SIZE


@dataclass
class TransferMatrix:
    """A rank operation covering up to 64 DPUs (Fig. 6)."""

    kind: XferKind
    symbol: str
    offset: int
    entries: List[DpuEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise TransferError(f"negative symbol offset {self.offset}")
        seen = set()
        for entry in self.entries:
            if entry.dpu_index in seen:
                raise TransferError(
                    f"duplicate DPU {entry.dpu_index} in transfer matrix"
                )
            seen.add(entry.dpu_index)
        if self.kind is XferKind.TO_DPU:
            for entry in self.entries:
                if entry.data is None:
                    raise TransferError(
                        f"TO_DPU matrix entry for DPU {entry.dpu_index} "
                        "is missing its payload"
                    )

    @property
    def target(self) -> Target:
        return Target.MRAM if self.symbol == MRAM_HEAP_SYMBOL else Target.WRAM_SYMBOL

    @property
    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.entries)

    @property
    def total_pages(self) -> int:
        return sum(entry.nr_pages for entry in self.entries)

    @property
    def max_entry_bytes(self) -> int:
        return max((entry.size for entry in self.entries), default=0)

    def validate(self) -> None:
        if self.total_bytes > MAX_XFER_BYTES:
            raise TransferError(
                f"matrix moves {self.total_bytes} bytes, over the 4 GB "
                "per-operation hardware limit (Section 3.1)"
            )
        if self.target is Target.MRAM:
            end = self.offset + self.max_entry_bytes
            if end > MRAM_SIZE:
                raise TransferError(
                    f"MRAM transfer reaches byte {end}, past the "
                    f"{MRAM_SIZE}-byte bank"
                )


def uniform_write(symbol: str, offset: int, buffers: List[np.ndarray]) -> TransferMatrix:
    """Build a TO_DPU matrix assigning ``buffers[i]`` to set-DPU ``i``."""
    entries = []
    for i, buf in enumerate(buffers):
        if (isinstance(buf, np.ndarray) and buf.dtype == np.uint8
                and buf.ndim == 1 and buf.flags.c_contiguous):
            u8 = buf
        else:
            u8 = np.ascontiguousarray(buf).view(np.uint8).reshape(-1)
        entries.append(DpuEntry(dpu_index=i, size=u8.size, data=u8))
    matrix = TransferMatrix(XferKind.TO_DPU, symbol, offset, entries)
    matrix.validate()
    return matrix


def uniform_read(symbol: str, offset: int, size: int, nr_dpus: int) -> TransferMatrix:
    """Build a FROM_DPU matrix reading ``size`` bytes from each of the DPUs."""
    entries = [DpuEntry(dpu_index=i, size=size) for i in range(nr_dpus)]
    matrix = TransferMatrix(XferKind.FROM_DPU, symbol, offset, entries)
    matrix.validate()
    return matrix
