"""Profiling: the paper's two breakdowns.

*Application-centric* (Fig. 8): total execution time split into CPU-DPU,
DPU, Inter-DPU and DPU-CPU segments.  Applications wrap their phases in
``profiler.segment(...)`` context managers; simulated-clock deltas are
attributed to the innermost open segment.

*Driver-centric* (Figs. 12/13): time and counts per rank-operation kind
(write-to-rank, read-from-rank, CI) spent inside the guest driver and the
VMM — excluding SDK time — plus the write-to-rank step breakdown (page
management, serialization, interrupt, deserialization, data transfer).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.hardware.clock import SimClock

#: Application-centric segment names, in plot order.
SEGMENTS = ("CPU-DPU", "DPU", "Inter-DPU", "DPU-CPU")

#: Driver-centric operation kinds.
OP_WRITE = "W-rank"
OP_READ = "R-rank"
OP_CI = "CI"

#: Write-to-rank step names (Fig. 13): page management, matrix
#: serialization, virtio interrupt handling, matrix deserialization, and
#: the data transfer to UPMEM.  "Cache" is the content-aware transfer
#: cache's digest/probe cost — only ever recorded when
#: ``Optimization(cache=True)`` is on, so Fig. 13 runs never see it.
#: "QoS" is likewise opt-in: cross-VM throttle and queueing waits, only
#: recorded when the VM carries a ``QosConfig`` (``docs/qos.md``).
WRANK_STEPS = ("Page", "Ser", "Int", "Deser", "T-data", "Cache", "QoS")


@dataclass
class OpStats:
    """Count and cumulative driver/VMM time of one operation kind."""

    count: int = 0
    time: float = 0.0

    def record(self, duration: float, count: int = 1) -> None:
        self.count += count
        self.time += duration


@dataclass
class MessageStats:
    """Frontend<->backend message accounting (drives Fig. 14's claims).

    Mutate through the ``count_*`` methods (mirroring
    :class:`~repro.observability.instruments.FrontendInstruments`) so
    profiler totals and live metrics cannot drift apart.
    """

    requests: int = 0          #: virtio requests actually sent
    batched_writes: int = 0    #: small writes absorbed by the batch buffer
    cache_hits: int = 0        #: reads served from the prefetch cache
    cache_refills: int = 0     #: prefetch segment fetches

    def count_request(self, count: int = 1) -> None:
        self.requests += count

    def count_batched_writes(self, count: int = 1) -> None:
        self.batched_writes += count

    def count_cache_hits(self, count: int = 1) -> None:
        self.cache_hits += count

    def count_cache_refills(self, count: int = 1) -> None:
        self.cache_refills += count


class Profiler:
    """Collects both breakdowns against a simulated clock."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.segments: Dict[str, float] = {}
        self._stack: List[str] = []
        self._last_mark = clock.now
        self.driver: Dict[str, OpStats] = {}
        self.wrank_steps: Dict[str, float] = {}
        self.messages = MessageStats()
        #: Optional :class:`repro.analysis.trace.Tracer` receiving a
        #: timed event for every segment and driver operation.
        self.tracer = None

    def reset(self) -> None:
        """Clear all recorded data (fresh run on the same transport)."""
        self.segments.clear()
        self._stack.clear()
        self._last_mark = self.clock.now
        self.driver.clear()
        self.wrank_steps.clear()
        self.messages = MessageStats()

    # -- application-centric ----------------------------------------------

    def _settle(self) -> None:
        """Attribute clock progress since the last mark to the open segment."""
        now = self.clock.now
        delta = now - self._last_mark
        if delta > 0 and self._stack:
            name = self._stack[-1]
            self.segments[name] = self.segments.get(name, 0.0) + delta
        self._last_mark = now

    @contextmanager
    def segment(self, name: str) -> Iterator[None]:
        """Attribute simulated time spent in the body to segment ``name``."""
        self._settle()
        self._stack.append(name)
        start = self.clock.now
        try:
            yield
        finally:
            self._settle()
            self._stack.pop()
            if self.tracer is not None:
                self.tracer.record(name, "segment", start,
                                   self.clock.now - start)

    def segment_time(self, name: str) -> float:
        self._settle()
        return self.segments.get(name, 0.0)

    @property
    def total_time(self) -> float:
        self._settle()
        return sum(self.segments.values())

    # -- driver-centric --------------------------------------------------------

    def record_op(self, kind: str, duration: float, count: int = 1,
                  start: Optional[float] = None,
                  rank: Optional[int] = None) -> None:
        """Account ``duration`` of driver/VMM time against ``kind``.

        ``start`` is the operation's true simulated start.  Callers on
        the duration-returning path record *before* the clock advances,
        so it defaults to ``clock.now`` — not ``now - duration``, which
        misplaced events whose cost lands after other clock advances.
        Span-integrated callers pass the enclosing span's start instead.
        """
        self.driver.setdefault(kind, OpStats()).record(duration, count)
        if self.tracer is not None:
            if start is None:
                start = self.clock.now
            extra = {} if rank is None else {"rank": rank}
            self.tracer.record(kind, "op", start, duration,
                               count=count, **extra)

    def record_wrank_step(self, step: str, duration: float) -> None:
        if step not in WRANK_STEPS:
            raise ValueError(f"unknown write-to-rank step {step!r}")
        self.wrank_steps[step] = self.wrank_steps.get(step, 0.0) + duration

    def op_stats(self, kind: str) -> OpStats:
        return self.driver.get(kind, OpStats())

    # -- reporting ----------------------------------------------------------------

    def breakdown(self) -> Dict[str, float]:
        """The four-segment application breakdown, zero-filled."""
        self._settle()
        return {name: self.segments.get(name, 0.0) for name in SEGMENTS}

    def snapshot(self) -> "ProfileSnapshot":
        self._settle()
        return ProfileSnapshot(
            segments=dict(self.segments),
            driver={k: OpStats(v.count, v.time) for k, v in self.driver.items()},
            wrank_steps=dict(self.wrank_steps),
            messages=MessageStats(
                self.messages.requests,
                self.messages.batched_writes,
                self.messages.cache_hits,
                self.messages.cache_refills,
            ),
        )


@dataclass
class ProfileSnapshot:
    """Immutable copy of a profiler's state, for reports."""

    segments: Dict[str, float] = field(default_factory=dict)
    driver: Dict[str, OpStats] = field(default_factory=dict)
    wrank_steps: Dict[str, float] = field(default_factory=dict)
    messages: Optional[MessageStats] = None

    @property
    def total_time(self) -> float:
        return sum(self.segments.values())
