"""The DPU-side programming model: programs, tasklets, and their context.

Real UPMEM DPU programs are C binaries compiled for the DPU ISA.  Here a
program is a :class:`DpuProgram` subclass whose :meth:`DpuProgram.kernel`
is a *generator function* executed once per tasklet (SPMD):

- ``ctx.me()`` is the tasklet id, ``ctx.nr_tasklets`` the launch width;
- ``ctx.mram_read`` / ``ctx.mram_write`` move data between the MRAM bank
  and WRAM-resident numpy buffers, charging the DMA engine;
- ``ctx.mem_alloc`` accounts WRAM heap usage against the 64 KB budget;
- ``yield ctx.barrier()`` suspends until every live tasklet reaches the
  same barrier (the ``barrier_wait`` of Fig. 2b);
- ``ctx.charge(n)`` accounts ``n`` pipeline instructions, which the
  11-cycle-rule timing model converts to cycles.

Host-visible variables (``__host`` in real DPU C) are declared in
``DpuProgram.symbols`` and accessed with the typed helpers.
"""

from __future__ import annotations

import struct
from typing import Dict, Generator, Optional

import numpy as np

from repro.config import MAX_TASKLETS, MRAM_HEAP_SYMBOL, WRAM_SIZE
from repro.errors import DpuFaultError
from repro.hardware.dpu import Dpu

#: Sentinel yielded by kernels at barrier points.
BARRIER = object()


class DpuProgram:
    """Base class for DPU programs.

    Subclasses override :attr:`name`, :attr:`symbols`, :attr:`nr_tasklets`
    and :meth:`kernel`.  ``binary_size`` models the IRAM footprint of the
    compiled binary and is checked against the 24 KB IRAM at load time.
    """

    #: Program name (doubles as the DPU_BINARY path in examples).
    name: str = "dpu_program"
    #: Host-visible symbols: name -> size in bytes.
    symbols: Dict[str, int] = {}
    #: Number of tasklets the program runs with (PrIM optimum is app-specific).
    nr_tasklets: int = 16
    #: Modeled size of the compiled binary in IRAM bytes.
    binary_size: int = 8 * 1024

    def kernel(self, ctx: "TaskletContext") -> Generator:
        """The per-tasklet generator body.  Must be overridden."""
        raise NotImplementedError

    def instruction_estimate(self) -> Optional[int]:  # pragma: no cover - doc hook
        """Optional static estimate used by documentation tooling."""
        return None


class DpuSharedState:
    """Per-DPU state shared by all tasklets of one run.

    Holds the WRAM heap pointer and a scratch dict kernels use for
    cross-tasklet communication (what real programs place in shared WRAM).
    """

    def __init__(self, dpu: Dpu, nr_tasklets: int) -> None:
        self.dpu = dpu
        self.nr_tasklets = nr_tasklets
        self.wram_used = 0
        self.scratch: Dict[str, object] = {}
        self.dma_ops = 0
        self.dma_bytes = 0
        #: (offset, length) -> immutable buffer for ``readonly`` reads.
        #: SPMD kernels stream identical spans (query vectors, CSR index
        #: arrays, frontier bitmaps) once per tasklet; serving repeats
        #: from this per-run cache removes the redundant copies while the
        #: DMA engine still gets charged per call.  Any MRAM write during
        #: the run invalidates it.
        self.read_cache: Dict[tuple, np.ndarray] = {}

    def mem_alloc(self, size: int) -> int:
        """Bump-allocate ``size`` bytes of WRAM heap; returns the offset."""
        aligned = (size + 7) & ~7
        if self.wram_used + aligned > WRAM_SIZE:
            raise DpuFaultError(
                f"WRAM heap overflow: {self.wram_used} + {aligned} "
                f"> {WRAM_SIZE} bytes"
            )
        offset = self.wram_used
        self.wram_used += aligned
        return offset

    def mem_reset(self) -> None:
        """Reset the WRAM heap (``mem_reset()`` in Fig. 2b line 7)."""
        self.wram_used = 0


class TaskletContext:
    """Execution context handed to each tasklet's kernel generator."""

    def __init__(self, shared: DpuSharedState, tasklet_id: int) -> None:
        if not 0 <= tasklet_id < MAX_TASKLETS:
            raise DpuFaultError(
                f"tasklet id {tasklet_id} outside hardware range 0..{MAX_TASKLETS - 1}"
            )
        self._shared = shared
        self._id = tasklet_id
        self.instructions = 0

    # -- identity ----------------------------------------------------------

    def me(self) -> int:
        """Tasklet id, as ``me()`` in the UPMEM runtime."""
        return self._id

    @property
    def nr_tasklets(self) -> int:
        return self._shared.nr_tasklets

    @property
    def dpu_index(self) -> int:
        return self._shared.dpu.dpu_index

    # -- instruction accounting ---------------------------------------------

    def charge(self, instructions: int) -> None:
        """Account ``instructions`` pipeline slots to this tasklet."""
        if instructions < 0:
            raise DpuFaultError(f"negative instruction charge {instructions}")
        self.instructions += int(instructions)

    def charge_loop(self, iterations: int, instructions_per_iteration: float) -> None:
        """Convenience for ``for`` loops: charge n x cost instructions."""
        self.charge(int(iterations * instructions_per_iteration))

    def _mark_dirty(self, space: str, offset: int, nbytes: int) -> None:
        """Record a kernel store in the DPU's dirty log, when armed.

        The transfer cache's digest records claim "this extent still
        holds what the host last wrote"; any kernel-side store breaks
        that claim, so the backend arms this log around a launch and
        prunes overlapping digests afterwards.
        """
        log = self._shared.dpu.dirty_log
        if log is not None and nbytes:
            log.append((space, offset, nbytes))

    # -- WRAM heap ------------------------------------------------------------

    def mem_alloc(self, size: int) -> int:
        return self._shared.mem_alloc(size)

    def mem_reset(self) -> None:
        self._shared.mem_reset()

    # -- MRAM <-> WRAM DMA -----------------------------------------------------

    def mram_read(self, offset: int, length: int) -> np.ndarray:
        """DMA ``length`` bytes of MRAM at ``offset`` into a WRAM buffer."""
        data = self._shared.dpu.mram.read(offset, length)
        self._shared.dma_ops += 1
        self._shared.dma_bytes += length
        return data

    def mram_write(self, offset: int, data: np.ndarray) -> None:
        """DMA a WRAM buffer out to MRAM at ``offset``."""
        buf = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        self._shared.dpu.mram.write(offset, buf)
        self._shared.read_cache.clear()
        self._shared.dma_ops += 1
        self._shared.dma_bytes += buf.size
        self._mark_dirty(MRAM_HEAP_SYMBOL, offset, buf.size)

    def mram_read_blocks(self, offset: int, length: int,
                         block_bytes: int = 2048,
                         readonly: bool = False) -> np.ndarray:
        """Read ``length`` MRAM bytes as the hardware would: in WRAM-sized
        DMA blocks.

        Real kernels stream MRAM through small WRAM buffers (Fig. 2b uses
        one block per tasklet).  The data is fetched in one simulator
        operation for speed, but the DMA engine is charged one setup per
        ``block_bytes`` chunk, preserving the timing of the block loop.

        ``readonly=True`` promises the caller never mutates the returned
        buffer; repeated reads of the same span within one run (every
        tasklet streaming the same query/index array) are then served
        from a shared write-protected buffer instead of re-copied.  DMA
        charges are identical either way.
        """
        if block_bytes <= 0:
            raise DpuFaultError(f"block_bytes must be positive, got {block_bytes}")
        shared = self._shared
        shared.dma_ops += max(1, -(-length // block_bytes))
        shared.dma_bytes += length
        if readonly:
            key = (offset, length)
            data = shared.read_cache.get(key)
            if data is None:
                data = shared.dpu.mram.read(offset, length)
                data.flags.writeable = False
                shared.read_cache[key] = data
            return data
        return shared.dpu.mram.read(offset, length)

    def mram_write_blocks(self, offset: int, data: np.ndarray,
                          block_bytes: int = 2048) -> None:
        """Blocked counterpart of :meth:`mram_read_blocks` for writes."""
        if block_bytes <= 0:
            raise DpuFaultError(f"block_bytes must be positive, got {block_bytes}")
        buf = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        self._shared.dpu.mram.write(offset, buf)
        self._shared.read_cache.clear()
        self._shared.dma_ops += max(1, -(-buf.size // block_bytes))
        self._shared.dma_bytes += buf.size
        self._mark_dirty(MRAM_HEAP_SYMBOL, offset, buf.size)

    # -- host-visible symbols ----------------------------------------------------

    def _symbol(self, name: str) -> bytearray:
        try:
            return self._shared.dpu.symbols[name]
        except KeyError:
            raise DpuFaultError(f"kernel referenced unknown symbol {name!r}") from None

    def host_u32(self, name: str, index: int = 0) -> int:
        buf = self._symbol(name)
        return struct.unpack_from("<I", buf, index * 4)[0]

    def set_host_u32(self, name: str, value: int, index: int = 0) -> None:
        struct.pack_into("<I", self._symbol(name), index * 4, value & 0xFFFFFFFF)
        self._mark_dirty(name, index * 4, 4)

    def add_host_u32(self, name: str, value: int, index: int = 0) -> None:
        """Atomic add to a host variable (mutex-protected in real programs)."""
        self.set_host_u32(name, self.host_u32(name, index) + value, index)

    def host_u64(self, name: str, index: int = 0) -> int:
        return struct.unpack_from("<Q", self._symbol(name), index * 8)[0]

    def set_host_u64(self, name: str, value: int, index: int = 0) -> None:
        struct.pack_into("<Q", self._symbol(name), index * 8,
                         value & 0xFFFFFFFFFFFFFFFF)
        self._mark_dirty(name, index * 8, 8)

    def add_host_u64(self, name: str, value: int, index: int = 0) -> None:
        self.set_host_u64(name, self.host_u64(name, index) + value, index)

    def host_i64(self, name: str, index: int = 0) -> int:
        return struct.unpack_from("<q", self._symbol(name), index * 8)[0]

    def set_host_i64(self, name: str, value: int, index: int = 0) -> None:
        struct.pack_into("<q", self._symbol(name), index * 8, value)
        self._mark_dirty(name, index * 8, 8)

    # -- shared scratch ------------------------------------------------------------

    @property
    def shared(self) -> Dict[str, object]:
        """Per-DPU dict shared across tasklets (shared-WRAM stand-in)."""
        return self._shared.scratch

    # -- synchronization ---------------------------------------------------------

    def barrier(self) -> object:
        """Return the barrier sentinel: use as ``yield ctx.barrier()``."""
        return BARRIER


def tasklet_range(ctx: TaskletContext, total: int) -> range:
    """Split ``total`` items across tasklets; returns this tasklet's range.

    Mirrors the block partitioning of Fig. 2b (lines 8-11): tasklet ``t``
    gets the contiguous block ``[t*chunk, min((t+1)*chunk, total))`` with
    ``chunk = ceil(total / nr_tasklets)``.
    """
    chunk = (total + ctx.nr_tasklets - 1) // ctx.nr_tasklets
    start = min(ctx.me() * chunk, total)
    stop = min(start + chunk, total)
    return range(start, stop)
