"""Reimplementation of the UPMEM SDK host and device programming model.

Applications written against this package follow the same workflow as
Fig. 2 of the paper:

1. allocate DPUs (:meth:`~repro.sdk.dpu_set.DpuSet` via a transport),
2. load the DPU program,
3. push input data (``push_to`` = parallel ``dpu_push_xfer``,
   ``copy_to`` = serial per-DPU transfer),
4. launch synchronously,
5. read back results (``push_from`` / ``copy_from``),
6. free the set.

The same application code runs unmodified on the native transport
(performance mode on the physical ranks) and on the virtualized transport
(through the vUPMEM frontend/backend) — the paper's transparency
requirement R3.
"""

from repro.sdk.kernel import DpuProgram, TaskletContext
from repro.sdk.dpu_set import DpuSet
from repro.sdk.transport import Transport
from repro.sdk.profile import Profiler

__all__ = ["DpuProgram", "TaskletContext", "DpuSet", "Transport", "Profiler"]
