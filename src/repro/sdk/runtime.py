"""The tasklet scheduler: runs a DPU program's generators to completion.

Execution proceeds in *phases* separated by barriers: within a phase each
live tasklet runs until it either yields (reaching a barrier) or returns.
All tasklets that yielded are resumed together in the next phase, which
gives exactly the semantics of a full-width ``barrier_wait`` — the only
synchronization primitive the PrIM kernels use.

The scheduler is deterministic (tasklet order 0..N-1 inside a phase),
which keeps results reproducible; SPMD kernels partition data disjointly
so ordering cannot change results, and cross-tasklet reductions happen
at barriers.
"""

from __future__ import annotations

import inspect
from typing import List, Optional

from repro.config import MAX_TASKLETS
from repro.errors import DpuFaultError
from repro.hardware.dpu import Dpu, DpuRunStats
from repro.sdk.kernel import BARRIER, DpuProgram, DpuSharedState, TaskletContext

#: Safety valve against kernels that never terminate.
MAX_PHASES = 1_000_000


def run_program(program: DpuProgram, dpu: Dpu) -> DpuRunStats:
    """Execute ``program`` on ``dpu`` functionally; returns run statistics."""
    nr_tasklets = program.nr_tasklets
    if not 0 < nr_tasklets <= MAX_TASKLETS:
        raise DpuFaultError(
            f"program {program.name!r} requests {nr_tasklets} tasklets, "
            f"hardware supports 1..{MAX_TASKLETS}"
        )

    shared = DpuSharedState(dpu, nr_tasklets)
    contexts = [TaskletContext(shared, t) for t in range(nr_tasklets)]
    generators: List[Optional[object]] = []
    for ctx in contexts:
        gen = program.kernel(ctx)
        if not inspect.isgenerator(gen):
            raise DpuFaultError(
                f"kernel of {program.name!r} must be a generator function "
                "(use 'yield ctx.barrier()' or end with 'return; yield')"
            )
        generators.append(gen)

    live = list(range(nr_tasklets))
    phases = 0
    while live:
        phases += 1
        if phases > MAX_PHASES:
            raise DpuFaultError(
                f"program {program.name!r} exceeded {MAX_PHASES} barrier phases"
            )
        still_live = []
        for t in live:
            gen = generators[t]
            try:
                token = next(gen)
            except StopIteration:
                generators[t] = None
                continue
            if token is not BARRIER:
                raise DpuFaultError(
                    f"tasklet {t} of {program.name!r} yielded a non-barrier "
                    f"value {token!r}"
                )
            still_live.append(t)
        live = still_live

    return DpuRunStats(
        tasklet_instructions=[ctx.instructions for ctx in contexts],
        dma_ops=shared.dma_ops,
        dma_bytes=shared.dma_bytes,
    )


def make_runner(program: DpuProgram):
    """Return a rank-compatible runner callable for ``program``."""
    def runner(dpu: Dpu) -> DpuRunStats:
        if dpu.program is not program:
            raise DpuFaultError(
                f"DPU r{dpu.rank_index}.d{dpu.dpu_index} does not have "
                f"{program.name!r} loaded"
            )
        return run_program(program, dpu)
    return runner
