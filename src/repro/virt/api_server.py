"""The Firecracker API server (Section 3.2).

"When a Firecracker VM is launched, a thread establishes a listening
socket to handle incoming requests, starting to receive the VM's
configuration, such as the path to the kernel, the root file system, the
virtio devices (including vUPMEM), and the VM launch command."

This module models that control plane: an :class:`ApiServer` accepts
Firecracker-style REST requests (method + path + JSON body), accumulates
the machine configuration, and boots the microVM on the ``InstanceStart``
action.  Hosts request vUPMEM devices exactly like other resources
(Section 3.3: "hosts send requests to the Firecracker API server
detailing the requested resources, including the desired amount of
vUPMEMs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import VmConfigError
from repro.virt.firecracker import Firecracker, VmConfig
from repro.virt.opts import preset
from repro.virt.vm import Vm


@dataclass
class ApiResponse:
    """Status code plus a JSON-style body (a §3.2 API-server reply)."""

    status: int
    body: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ApiServer:
    """One listening socket per Firecracker process (§3.2's API thread
    receiving the §3.3 vUPMEM booking)."""

    def __init__(self, firecracker: Firecracker) -> None:
        self.firecracker = firecracker
        self._draft = VmConfig(nr_vupmem=0)
        self.vm: Optional[Vm] = None
        self.request_log: list = []

    # -- request dispatch ------------------------------------------------------

    def handle(self, method: str, path: str,
               body: Optional[Dict[str, object]] = None) -> ApiResponse:
        """Process one API request, Firecracker-style."""
        body = body or {}
        self.request_log.append((method, path, body))
        try:
            if (method, path) == ("PUT", "/machine-config"):
                return self._machine_config(body)
            if (method, path) == ("PUT", "/boot-source"):
                return self._boot_source(body)
            if (method, path) == ("PUT", "/drives/rootfs"):
                return self._rootfs(body)
            if (method, path) == ("PUT", "/vupmem"):
                return self._vupmem(body)
            if (method, path) == ("PUT", "/actions"):
                return self._actions(body)
            if (method, path) == ("GET", "/"):
                return self._describe()
        except VmConfigError as exc:
            return ApiResponse(400, {"fault_message": str(exc)})
        return ApiResponse(404, {"fault_message": f"no route {method} {path}"})

    # -- endpoints -----------------------------------------------------------------

    def _machine_config(self, body: Dict[str, object]) -> ApiResponse:
        if self.vm is not None:
            return ApiResponse(409, {"fault_message": "VM already started"})
        if "vcpu_count" in body:
            self._draft.vcpus = int(body["vcpu_count"])
        if "mem_size_mib" in body:
            self._draft.mem_bytes = int(body["mem_size_mib"]) << 20
        return ApiResponse(204)

    def _boot_source(self, body: Dict[str, object]) -> ApiResponse:
        if "kernel_image_path" not in body:
            return ApiResponse(400,
                               {"fault_message": "kernel_image_path required"})
        self._draft.kernel_path = str(body["kernel_image_path"])
        return ApiResponse(204)

    def _rootfs(self, body: Dict[str, object]) -> ApiResponse:
        self._draft.rootfs_path = str(body.get("path_on_host", "rootfs.ext4"))
        return ApiResponse(204)

    def _vupmem(self, body: Dict[str, object]) -> ApiResponse:
        """Request vUPMEM devices, optionally with an optimization preset."""
        if self.vm is not None:
            return ApiResponse(409, {"fault_message": "VM already started"})
        count = int(body.get("count", 1))
        if count < 0:
            return ApiResponse(400, {"fault_message": "count must be >= 0"})
        self._draft.nr_vupmem = count
        if "preset" in body:
            try:
                self._draft.opts = preset(str(body["preset"]))
            except KeyError as exc:
                return ApiResponse(400, {"fault_message": str(exc)})
        return ApiResponse(204)

    def _actions(self, body: Dict[str, object]) -> ApiResponse:
        if body.get("action_type") != "InstanceStart":
            return ApiResponse(400, {"fault_message": "unknown action"})
        if self.vm is not None:
            return ApiResponse(409, {"fault_message": "VM already started"})
        self._draft.validate(self.firecracker.machine)
        self.vm = self.firecracker.launch_vm(self._draft)
        return ApiResponse(
            200,
            {"vm_id": self.vm.vm_id,
             "boot_time_ms": self.vm.boot_time * 1e3,
             "kernel_cmdline": list(self.vm.kernel_cmdline)},
        )

    def _describe(self) -> ApiResponse:
        state = "Running" if self.vm is not None else "Not started"
        return ApiResponse(200, {
            "state": state,
            "vcpu_count": self._draft.vcpus,
            "mem_size_mib": self._draft.mem_bytes >> 20,
            "vupmem_devices": self._draft.nr_vupmem,
        })
