"""The virtio-mmio register interface of a vUPMEM device.

Firecracker exposes virtio devices over MMIO; the guest learns each
device's register window and IRQ from the kernel command line (Section
3.2).  This module models the register file and the virtio device-status
initialization handshake the Appendix's "Device initialization" section
requires:

1. the driver resets the device and sets ACKNOWLEDGE, then DRIVER;
2. feature negotiation — the PIM device offers **no feature bits**
   (Appendix A.1), so the driver writes back 0 and sets FEATURES_OK;
3. the driver configures the two queues and sets DRIVER_OK;
4. only then may requests flow: "The driver must wait until the
   completion of device initialization before sending any requests."

Every MMIO write from the guest is a trapped access (a VMEXIT), which is
how the queue-notify "kick" register gets its cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.config import VIRTIO_PIM_DEVICE_ID
from repro.errors import VirtError

#: "virt" in little-endian, the virtio-mmio magic value.
MAGIC_VALUE = 0x74726976
MMIO_VERSION = 2
VENDOR_ID = 0x76504D49  # "vPMI"


class Reg(enum.IntEnum):
    """Register offsets (the virtio-mmio layout subset we model; §3.2's
    MMIO transport)."""

    MAGIC = 0x000
    VERSION = 0x004
    DEVICE_ID = 0x008
    VENDOR_ID = 0x00C
    DEVICE_FEATURES = 0x010
    DRIVER_FEATURES = 0x020
    QUEUE_SEL = 0x030
    QUEUE_NUM = 0x038
    QUEUE_READY = 0x044
    QUEUE_NOTIFY = 0x050
    INTERRUPT_STATUS = 0x060
    INTERRUPT_ACK = 0x064
    STATUS = 0x070
    CONFIG = 0x100


class DeviceStatus(enum.IntFlag):
    """The virtio device-status bits (the driver–device handshake behind
    §3.2's device initialization)."""

    RESET = 0
    ACKNOWLEDGE = 1
    DRIVER = 2
    DRIVER_OK = 4
    FEATURES_OK = 8
    FAILED = 128


@dataclass
class MmioWindow:
    """One device's MMIO register window plus its assigned IRQ line (§3.2:
    passed to the guest on the kernel command line)."""

    base_address: int
    irq: int
    config_fields: Dict[str, int] = field(default_factory=dict)
    on_notify: Optional[Callable[[int], None]] = None
    status: int = 0
    driver_features: int = 0
    queue_sel: int = 0
    queue_ready: Dict[int, bool] = field(default_factory=dict)
    interrupt_status: int = 0
    notifies: int = 0

    # -- guest accessors -----------------------------------------------------

    def read(self, offset: int) -> int:
        if offset == Reg.MAGIC:
            return MAGIC_VALUE
        if offset == Reg.VERSION:
            return MMIO_VERSION
        if offset == Reg.DEVICE_ID:
            return VIRTIO_PIM_DEVICE_ID
        if offset == Reg.VENDOR_ID:
            return VENDOR_ID
        if offset == Reg.DEVICE_FEATURES:
            return 0  # Appendix A.1: no feature bits
        if offset == Reg.STATUS:
            return self.status
        if offset == Reg.INTERRUPT_STATUS:
            return self.interrupt_status
        if offset == Reg.QUEUE_READY:
            return int(self.queue_ready.get(self.queue_sel, False))
        if offset >= Reg.CONFIG:
            index = (offset - Reg.CONFIG) // 4
            values = list(self.config_fields.values())
            if 0 <= index < len(values):
                return int(values[index]) & 0xFFFFFFFF
            raise VirtError(f"config read past the layout (offset {offset:#x})")
        raise VirtError(f"unmapped MMIO read at offset {offset:#x}")

    def write(self, offset: int, value: int) -> None:
        if offset == Reg.STATUS:
            self._write_status(value)
        elif offset == Reg.DRIVER_FEATURES:
            if value != 0:
                raise VirtError(
                    "virtio-pim offers no feature bits; the driver must "
                    "negotiate 0"
                )
            self.driver_features = value
        elif offset == Reg.QUEUE_SEL:
            self.queue_sel = value
        elif offset == Reg.QUEUE_READY:
            self.queue_ready[self.queue_sel] = bool(value)
        elif offset == Reg.QUEUE_NOTIFY:
            if not self.is_live:
                raise VirtError(
                    "queue notify before DRIVER_OK: the driver must wait "
                    "for device initialization (Appendix A.1)"
                )
            self.notifies += 1
            if self.on_notify is not None:
                self.on_notify(value)
        elif offset == Reg.INTERRUPT_ACK:
            self.interrupt_status &= ~value
        else:
            raise VirtError(f"unmapped MMIO write at offset {offset:#x}")

    def _write_status(self, value: int) -> None:
        if value == 0:
            self.status = 0
            self.queue_ready.clear()
            self.interrupt_status = 0
            return
        added = value & ~self.status
        # Enforce the initialization ordering.
        if added & DeviceStatus.DRIVER and not (value & DeviceStatus.ACKNOWLEDGE):
            raise VirtError("DRIVER before ACKNOWLEDGE")
        if added & DeviceStatus.FEATURES_OK and not (value & DeviceStatus.DRIVER):
            raise VirtError("FEATURES_OK before DRIVER")
        if added & DeviceStatus.DRIVER_OK and not (value & DeviceStatus.FEATURES_OK):
            raise VirtError("DRIVER_OK before FEATURES_OK")
        self.status = value

    # -- device side ------------------------------------------------------------

    def raise_interrupt(self) -> None:
        self.interrupt_status |= 1

    @property
    def is_live(self) -> bool:
        return bool(self.status & DeviceStatus.DRIVER_OK)

    def command_line_entry(self) -> str:
        """The kernel command-line fragment describing this device
        (Section 3.2: MMIO region + IRQ passed to the guest at boot)."""
        return f"virtio_mmio.device=4K@{self.base_address:#x}:{self.irq}"


def driver_init_sequence(window: MmioWindow,
                         nr_queues: int = 2) -> None:
    """Run the standard driver-side initialization dance on ``window``."""
    if window.read(Reg.MAGIC) != MAGIC_VALUE:
        raise VirtError("bad virtio-mmio magic")
    if window.read(Reg.DEVICE_ID) != VIRTIO_PIM_DEVICE_ID:
        raise VirtError(
            f"not a virtio-pim device (id {window.read(Reg.DEVICE_ID)})"
        )
    window.write(Reg.STATUS, 0)
    window.write(Reg.STATUS, int(DeviceStatus.ACKNOWLEDGE))
    window.write(Reg.STATUS,
                 int(DeviceStatus.ACKNOWLEDGE | DeviceStatus.DRIVER))
    window.write(Reg.DRIVER_FEATURES, window.read(Reg.DEVICE_FEATURES))
    window.write(Reg.STATUS, int(DeviceStatus.ACKNOWLEDGE
                                 | DeviceStatus.DRIVER
                                 | DeviceStatus.FEATURES_OK))
    for queue in range(nr_queues):
        window.write(Reg.QUEUE_SEL, queue)
        window.write(Reg.QUEUE_READY, 1)
    window.write(Reg.STATUS, int(DeviceStatus.ACKNOWLEDGE
                                 | DeviceStatus.DRIVER
                                 | DeviceStatus.FEATURES_OK
                                 | DeviceStatus.DRIVER_OK))
