"""The virtualized SDK transport: guest applications -> vUPMEM devices.

An application inside the VM uses the exact same :class:`~repro.sdk.
dpu_set.DpuSet` API as natively; this transport routes every rank
operation through a device's frontend (and thus the virtio queue, KVM
and the backend).  Whether multi-rank operations overlap is decided by
the VM's parallel-operation-handling optimization (Section 4.2).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import AllocationError, DeviceNotLinkedError
from repro.sdk.kernel import DpuProgram
from repro.sdk.transfer import TransferMatrix
from repro.sdk.transport import RankChannel, Transport
from repro.virt.vm import Vm, VUpmemDevice


class VirtRankChannel(RankChannel):
    """One linked vUPMEM device as an SDK rank channel (requirement R3:
    the application-facing API is identical to native)."""

    def __init__(self, vm: Vm, device: VUpmemDevice) -> None:
        self._vm = vm
        self.device = device
        mapping = device.backend.mapping
        if mapping is None:
            raise DeviceNotLinkedError(
                f"device {device.device_id} lost its rank"
            )
        # Cached so reporting still works after the rank is released.
        # ``mapping.rank_index`` (not ``.rank.index``) so a paged
        # mapping reports its stable virtual index, not whichever
        # physical frame happens to back it right now.
        rank = mapping.peek_rank()
        self._nr_dpus = (rank.nr_dpus if rank is not None
                         else vm.machine.config.ranks[0].functional_dpus)
        self._rank_index = mapping.rank_index

    def _rank(self):
        mapping = self.device.backend.mapping
        if mapping is None:
            raise DeviceNotLinkedError(
                f"device {self.device.device_id} lost its rank"
            )
        return mapping.rank

    @property
    def nr_dpus(self) -> int:
        return self._nr_dpus

    @property
    def rank_index(self) -> int:
        return self._rank_index

    def load(self, program: DpuProgram) -> float:
        return self.device.frontend.load(program)

    def write(self, matrix: TransferMatrix) -> float:
        return self.device.frontend.write(matrix)

    def read(self, matrix: TransferMatrix) -> Tuple[List[np.ndarray], float]:
        return self.device.frontend.read(matrix)

    def launch(self) -> float:
        return self.device.frontend.launch()

    def ci_ops(self, count: int) -> float:
        return self.device.frontend.ci_ops(count)

    def release(self) -> float:
        return self.device.frontend.release()


class VirtTransport(Transport):
    """SDK transport bound to one VM (§4.2's parallel operation handling
    decides how its multi-rank durations combine)."""

    def __init__(self, vm: Vm) -> None:
        super().__init__(vm.machine.clock, vm.machine.cost, vm.profiler,
                         metrics=vm.machine.metrics,
                         spans=vm.machine.spans)
        self.vm = vm

    @property
    def parallel_ranks(self) -> bool:
        return self.vm.config.opts.parallel_handling

    def launch_poll_penalty(self, run_duration: float,
                            cadence: float) -> float:
        """Each userspace status poll is a synchronous CI round trip.

        The poll loop issues one CI read every ``cadence`` seconds of run
        time; in a VM each read costs an extra guest->VMM->guest
        transition, which extends the perceived wait (Fig. 10's 2.1x
        overhead for the compute-dominated 1-DPU index search).
        """
        if cadence <= 0:
            raise ValueError(f"poll cadence must be positive, got {cadence}")
        polls = int(run_duration / cadence)
        penalty = polls * self.cost.ci_virt_roundtrip
        if polls:
            self.vm.kvm.stats.vmexits += polls
            self.vm.kvm.stats.irq_injections += polls
            event = (self.spans.event("sdk.launch_poll", "sdk", penalty,
                                      op="CI", polls=polls)
                     if self.spans is not None else None)
            self.profiler.record_op(
                "CI", penalty, count=polls,
                start=event.start if event is not None else None)
        return penalty

    def contention(self) -> float:
        """VMM-side parallel handling contends harder than native SDK
        threads: the backend's dedicated threads share the memory bus
        *and* the Firecracker process (the ~uniform, elongated blue bars
        of Fig. 16).

        With a QoS flow registered, co-resident demand raises the factor
        further: this VM's own parallel rank operations overlap less well
        when neighbors occupy the shared bus (``docs/qos.md``).
        """
        base = self.cost.parallel_contention
        flow = self.vm.qos_flow
        if flow is None:
            return base
        return flow.intra_contention(base, self.clock.now)

    def alloc_channels(self, nr_dpus: int) -> List[RankChannel]:
        channels: List[RankChannel] = []
        covered = 0
        for device in self.vm.free_devices():
            if covered >= nr_dpus:
                break
            self.vm.acquire_rank(device)
            channel = VirtRankChannel(self.vm, device)
            channels.append(channel)
            covered += channel.nr_dpus
        if covered < nr_dpus:
            for channel in channels:
                self.clock.advance(channel.release())
            raise AllocationError(
                f"VM {self.vm.vm_id} cannot cover {nr_dpus} DPUs with its "
                f"vUPMEM devices ({covered} DPUs reachable); request more "
                "devices in the VM configuration (Section 3.3)"
            )
        return channels
