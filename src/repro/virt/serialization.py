"""The transfer-matrix wire format (Figs. 6 and 7).

The frontend cannot hand Linux ``struct page`` pointers to Firecracker —
they are meaningless outside the guest — so the matrix is serialized into
two buffer types (Section 4.1 "Data Transfer"):

- **metadata buffers**: 64-bit integer arrays describing the whole matrix
  and each DPU's slice (size, offset, page count);
- **page buffers**: 64-bit arrays of Guest Physical Addresses, one entry
  per data page, letting Firecracker reach the pages with no copy.

Layout in the virtqueue (Fig. 7)::

    [request info][matrix meta][dpu0 meta][dpu0 pages][dpu1 meta]...

which is at most 2 + 2*64 = 130 buffers for a full 64-DPU rank.

With the content-aware transfer cache enabled (``Optimization(cache=True)``,
see ``docs/transfer_cache.md``) writes use an extended **cache format**:
the matrix-meta buffer grows a tail of ``SKIP`` extents — unchanged
slices the backend resolves from its resident-extent index instead of
the wire — and each kept entry's metadata gains a fourth word, its
64-bit content digest.  The default format is emitted bit-for-bit
unchanged when the cache is off; the deserializer tells the two apart by
the metadata buffer sizes alone, so old and new chains coexist.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import PAGE_SIZE
from repro.errors import SerializationError
from repro.sdk.transfer import TransferMatrix, XferKind
from repro.virt.guest_memory import GuestMemory
from repro.virt.virtio import Descriptor, write_buffer


class RequestKind(enum.IntEnum):
    """Operation codes of the virtio-pim device (Appendix A.1)."""

    GET_CONFIG = 0
    LOAD = 1
    WRITE_RANK = 2
    READ_RANK = 3
    LAUNCH = 4
    CI_OP = 5
    RELEASE = 6


_KIND_TO_XFER = {
    RequestKind.WRITE_RANK: XferKind.TO_DPU,
    RequestKind.READ_RANK: XferKind.FROM_DPU,
}


@dataclass
class RequestHeader:
    """The request-info buffer: op code plus addressing information (the
    first descriptor of the Fig. 6/7 wire format)."""

    kind: RequestKind
    offset: int = 0
    count: int = 0                 #: CI op count (CI_OP requests)
    symbol: str = ""
    program_name: str = ""         #: LOAD requests

    def pack(self) -> np.ndarray:
        sym = self.symbol.encode("utf-8")
        prog = self.program_name.encode("utf-8")
        head = np.array([int(self.kind), self.offset, self.count,
                         len(sym), len(prog)], dtype=np.uint64)
        payload = np.frombuffer(sym + prog, dtype=np.uint8)
        return np.concatenate([head.view(np.uint8), payload])

    @classmethod
    def unpack(cls, raw: np.ndarray) -> "RequestHeader":
        if raw.size < 40:
            raise SerializationError(
                f"request header of {raw.size} bytes is too short"
            )
        head = raw[:40].view(np.uint64)
        sym_len, prog_len = int(head[3]), int(head[4])
        tail = raw[40:40 + sym_len + prog_len].tobytes()
        try:
            kind = RequestKind(int(head[0]))
        except ValueError:
            raise SerializationError(f"unknown request kind {int(head[0])}")
        return cls(
            kind=kind,
            offset=int(head[1]),
            count=int(head[2]),
            symbol=tail[:sym_len].decode("utf-8"),
            program_name=tail[sym_len:sym_len + prog_len].decode("utf-8"),
        )


@dataclass
class SerializedEntry:
    """One DPU's slice after deserialization: metadata + page GPAs (the
    per-DPU buffer pair of the Fig. 7 chain layout)."""

    dpu_index: int
    size: int
    page_gpas: np.ndarray
    #: Content digest of the payload (cache wire format only; 0 means
    #: "not digested" and the backend records nothing for the extent).
    digest: int = 0


@dataclass(frozen=True)
class SkipExtent:
    """An unchanged extent elided from the wire (cache format only).

    The offset is the matrix offset — every entry of one matrix shares
    it — so a skip is fully located by its DPU index.  The backend must
    find the extent, with this digest, in its resident index; anything
    else is a protocol violation.
    """

    dpu_index: int
    size: int
    digest: int


@dataclass
class SerializedRequest:
    """A fully assembled descriptor chain plus accounting (one transferq
    message of the Appendix A.1 protocol)."""

    header: RequestHeader
    chain: List[Descriptor]
    total_pages: int = 0
    data_descriptors: List[Tuple[int, int, int]] = field(default_factory=list)
    #: ``data_descriptors[i]`` = (dpu_index, size, first page GPA) for reads.


def _entry_pages(size: int) -> int:
    return max(1, (size + PAGE_SIZE - 1) // PAGE_SIZE)


def matrix_meta_words(matrix: TransferMatrix,
                      skips: Optional[List[SkipExtent]],
                      cache_format: bool) -> np.ndarray:
    """The matrix-meta buffer contents (u64), shared by the serializer
    and the plan compiler so both emit the identical wire layout."""
    head = [len(matrix.entries), matrix.offset,
            int(matrix.kind is XferKind.TO_DPU)]
    if cache_format:
        head.append(len(skips or ()))
        for skip in skips or ():
            head.extend((skip.dpu_index, skip.size, skip.digest))
    return np.array(head, dtype=np.uint64)


def entry_meta_words(dpu_index: int, size: int, nr_pages: int, digest: int,
                     cache_format: bool) -> np.ndarray:
    """One entry-meta buffer's contents (u64) — see :func:`matrix_meta_words`."""
    words = [dpu_index, size, nr_pages]
    if cache_format:
        words.append(digest)
    return np.array(words, dtype=np.uint64)


def serialize_matrix(header: RequestHeader, matrix: TransferMatrix,
                     memory: GuestMemory,
                     digests: Optional[Dict[int, int]] = None,
                     skips: Optional[List[SkipExtent]] = None,
                     ) -> SerializedRequest:
    """Serialize ``matrix`` into guest memory and build the chain.

    For writes, the payload is placed into guest pages and referenced by
    GPA (zero-copy hand-off).  For reads, destination pages are allocated
    so the backend can deposit results directly into guest memory.

    ``digests`` (per-DPU content digests of the kept entries) and
    ``skips`` (suppressed extents) switch the chain to the cache wire
    format; leaving both ``None`` — the cache-off default — emits the
    original format byte-for-byte.
    """
    cache_format = digests is not None or skips is not None
    chain: List[Descriptor] = [write_buffer(memory, header.pack())]
    matrix_meta = matrix_meta_words(matrix, skips, cache_format)
    chain.append(write_buffer(memory, matrix_meta))

    total_pages = 0
    data_descriptors: List[Tuple[int, int, int]] = []
    for entry in matrix.entries:
        nr_pages = _entry_pages(entry.size)
        total_pages += nr_pages
        entry_meta = entry_meta_words(
            entry.dpu_index, entry.size, nr_pages,
            (digests or {}).get(entry.dpu_index, 0), cache_format)
        chain.append(write_buffer(memory, entry_meta))
        if matrix.kind is XferKind.TO_DPU:
            gpa = memory.alloc_pages(nr_pages)
            memory.write(gpa, entry.data)
            writable = False
        else:
            gpa = memory.alloc_pages(nr_pages)
            writable = True
        page_gpas = (np.arange(nr_pages, dtype=np.uint64) * PAGE_SIZE
                     + np.uint64(gpa))
        chain.append(write_buffer(memory, page_gpas, device_writable=writable))
        data_descriptors.append((entry.dpu_index, entry.size, gpa))

    return SerializedRequest(header=header, chain=chain,
                             total_pages=total_pages,
                             data_descriptors=data_descriptors)


def deserialize_request(chain: List[Descriptor], memory: GuestMemory,
                        ) -> Tuple[RequestHeader, List[SerializedEntry],
                                   List[SkipExtent]]:
    """Backend side: rebuild header, entries and SKIP extents from a chain.

    The third element is empty for the default wire format; only the
    cache format (``Optimization(cache=True)`` writes) can carry skips.
    """
    if not chain:
        raise SerializationError("empty descriptor chain")
    header = RequestHeader.unpack(memory.read(chain[0].gpa, chain[0].length))
    if len(chain) == 1:
        return header, [], []
    meta = memory.read(chain[1].gpa, chain[1].length).view(np.uint64)
    nr_entries = int(meta[0])
    skips: List[SkipExtent] = []
    if meta.size != 3:
        # Cache format: word 3 counts skip extents, three words each.
        if meta.size < 4 or meta.size != 4 + 3 * int(meta[3]):
            raise SerializationError(
                f"matrix metadata of {meta.size} words matches neither the "
                f"default (3) nor the cache format (4 + 3*nr_skips)"
            )
        for s in range(int(meta[3])):
            base = 4 + 3 * s
            skips.append(SkipExtent(dpu_index=int(meta[base]),
                                    size=int(meta[base + 1]),
                                    digest=int(meta[base + 2])))
    expected = 2 + 2 * nr_entries
    if len(chain) != expected:
        raise SerializationError(
            f"chain has {len(chain)} buffers, expected {expected} "
            f"for {nr_entries} entries"
        )
    entries: List[SerializedEntry] = []
    for i in range(nr_entries):
        meta_desc = chain[2 + 2 * i]
        pages_desc = chain[3 + 2 * i]
        emeta = memory.read(meta_desc.gpa, meta_desc.length).view(np.uint64)
        page_gpas = memory.read(pages_desc.gpa, pages_desc.length).view(np.uint64)
        if int(emeta[2]) != page_gpas.size:
            raise SerializationError(
                f"entry {i}: metadata says {int(emeta[2])} pages, "
                f"page buffer holds {page_gpas.size}"
            )
        entries.append(SerializedEntry(
            dpu_index=int(emeta[0]), size=int(emeta[1]),
            page_gpas=page_gpas.copy(),
            digest=int(emeta[3]) if emeta.size >= 4 else 0,
        ))
    return header, entries, skips


def gather_entry_data(entry: SerializedEntry, memory: GuestMemory,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
    """Collect an entry's payload from guest pages (bulk per contiguous run).

    With ``out`` (a pooled scratch buffer of at least ``entry.size`` bytes)
    the gather is allocation-free; the returned array is the filled
    ``entry.size``-byte prefix of ``out``.  Only the payload bytes are
    touched — the partial tail page is never read past ``entry.size``.
    """
    if out is None:
        out = np.empty(entry.size, dtype=np.uint8)
    elif out.size < entry.size:
        raise SerializationError(
            f"gather buffer of {out.size} bytes is smaller than entry "
            f"size {entry.size}"
        )
    dst = out[:entry.size]
    memory.gather_pages(entry.page_gpas, entry.size, dst)
    return dst


def scatter_entry_data(entry: SerializedEntry, data: np.ndarray,
                       memory: GuestMemory) -> None:
    """Deposit read results into the entry's guest destination pages."""
    buf = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    if buf.size != entry.size:
        raise SerializationError(
            f"result of {buf.size} bytes does not match entry size {entry.size}"
        )
    memory.scatter_pages(entry.page_gpas, buf)


def xfer_kind_of(kind: RequestKind) -> XferKind:
    try:
        return _KIND_TO_XFER[kind]
    except KeyError:
        raise SerializationError(f"{kind} is not a data transfer") from None
