"""Shape-specialized transfer plans: compile once, replay per repetition.

PrIM workloads run ``nr_reps`` repetitions of *identically shaped*
transfers, yet the naive data plane re-derives the wire layout, page
allocations, GPA run lists, and gather/scatter segmentation from scratch
on every request.  A :class:`TransferPlan` captures everything
shape-derived and content-independent the first time a
``(direction, symbol, offset, entry shapes)`` tuple is seen:

- the serialized descriptor chain (header, matrix-meta, per-entry meta
  and page buffers), placed in *reserved* guest pages
  (:meth:`GuestMemory.reserve_pages`) that the rolling DMA arena never
  recycles, with writable views pinned over every buffer;
- a cached :class:`~repro.sdk.transfer.TransferMatrix` whose write
  payloads alias the pinned guest views — a replay refreshes content
  with one slice copy per entry and the backend consumes it with no
  gather;
- for reads, the pinned destination views the backend deposits into
  directly (no scatter);
- a slot for the backend's resolved MRAM destination pairing
  (:class:`~repro.hardware.rank.PinnedMramWrite`) and the XLB
  translation generation, so replays skip per-entry re-translation.

Plans change **wall-clock time only**: every modeled duration, metric
that feeds the wall-clock digest, guest-visible byte, and DPU-visible
byte is bit-identical to the naive path.  Shapes the compiler cannot
pin (entries larger than one backing extent, arena exhaustion) are
marked unplannable and permanently served by the naive path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.config import PAGE_SIZE
from repro.errors import MemoryAccessError, TransferError, TranslationError
from repro.sdk.transfer import DpuEntry, Target, TransferMatrix, XferKind
from repro.virt.guest_memory import GuestMemory
from repro.virt.serialization import (
    RequestHeader,
    RequestKind,
    SerializedEntry,
    SerializedRequest,
    SkipExtent,
    _entry_pages,
    entry_meta_words,
    matrix_meta_words,
)
from repro.virt.virtio import Descriptor

__all__ = [
    "PlanCache", "PlanUnsupported", "TransferPlan", "compile_plan",
    "plan_key",
]

#: Word index of the digest inside a cache-format entry-meta buffer.
_ENTRY_DIGEST_WORD = 3
#: Matrix-meta words before the skip extents (cache format).
_SKIP_BASE_WORD = 4
#: u64 words per skip extent: (dpu_index, size, digest).
_SKIP_WORDS = 3


class PlanUnsupported(Exception):
    """The shape cannot be compiled; the caller falls back to the naive
    serializer (and remembers the key so it never tries again)."""


def plan_key(header: RequestHeader, matrix: TransferMatrix,
             digests: Optional[Dict[int, int]],
             skips: Optional[List[SkipExtent]],
             batched: bool) -> Optional[Tuple]:
    """The cache key of a data request, or ``None`` if unplannable.

    Everything that shapes the wire layout is part of the key: request
    kind, addressing, wire format, batching, the (dpu, size) tuple of
    every kept entry, and the (dpu, size) tuple of every SKIP extent.
    """
    if header.kind not in (RequestKind.WRITE_RANK, RequestKind.READ_RANK):
        return None
    if header.offset != matrix.offset or header.symbol != matrix.symbol:
        return None
    cache_format = digests is not None or skips is not None
    return (
        int(header.kind), header.symbol, matrix.offset, batched,
        cache_format,
        tuple((e.dpu_index, e.size) for e in matrix.entries),
        tuple((s.dpu_index, s.size) for s in (skips or ())),
    )


@dataclass
class TransferPlan:
    """One compiled shape: stable chain + pinned views + replay patches."""

    key: Tuple
    header: RequestHeader
    sreq: SerializedRequest
    entries: List[SerializedEntry]
    skips: List[SkipExtent]
    #: Cached matrix whose TO_DPU payloads alias ``payload_views``
    #: (``None`` for batched flushes — the backend replays the records).
    matrix: Optional[TransferMatrix]
    #: Pinned guest views over each entry's payload pages.
    payload_views: List[np.ndarray]
    #: u64 views over each entry-meta buffer (digest patched per replay).
    entry_meta_views: List[np.ndarray]
    #: u64 view over the matrix-meta buffer (skip digests patched).
    matrix_meta_view: Optional[np.ndarray]
    #: ``(gpa, nr_pages)`` reservations to release when the plan dies.
    reservations: List[Tuple[int, int]]
    guest_generation: int
    cache_format: bool
    batched: bool
    #: MRAM reads deposit straight into ``payload_views`` via ``into=``;
    #: WRAM reads return fresh buffers that replay copies over.
    direct_read: bool
    #: XLB generation at which this plan's page runs were last resolved.
    xlb_generation: int = -1
    #: Backend-resolved destination pairing for MRAM writes.
    pinned_write: object = None
    replays: int = field(default=0)

    def valid(self, memory: GuestMemory) -> bool:
        """Pinned views survive only as long as the guest backing store."""
        return self.guest_generation == memory.region.generation

    @property
    def read_views(self) -> List[np.ndarray]:
        return self.payload_views

    def replay(self, matrix: TransferMatrix,
               digests: Optional[Dict[int, int]],
               skips: Optional[List[SkipExtent]]) -> SerializedRequest:
        """Refresh content-dependent state; returns the stable chain.

        For writes, each live payload is copied into its pinned view
        (one slice copy per entry — the only byte work of a replayed
        serialization).  Cache-format replays also re-patch the digest
        words in the wire metadata and swap in the fresh SKIP extents.
        """
        self.replays += 1
        if self.matrix is not None and matrix.kind is XferKind.TO_DPU:
            # The cached matrix's entries alias these views, so one slice
            # copy per entry refreshes both the wire and the matrix.
            for view, live in zip(self.payload_views, matrix.entries):
                if live.data is not view:
                    view[...] = live.data
        if self.cache_format:
            for view, entry, live in zip(self.entry_meta_views,
                                         self.entries, matrix.entries):
                digest = (digests or {}).get(live.dpu_index, 0)
                entry.digest = digest
                view[_ENTRY_DIGEST_WORD] = digest
            self.skips = list(skips or ())
            meta = self.matrix_meta_view
            assert meta is not None
            for s, skip in enumerate(self.skips):
                meta[_SKIP_BASE_WORD + _SKIP_WORDS * s + 2] = skip.digest
        return self.sreq

    def release(self, memory: GuestMemory) -> None:
        for gpa, nr_pages in self.reservations:
            memory.release_reservation(gpa, nr_pages)
        self.reservations = []


def _pin_wire_buffer(memory: GuestMemory, data: np.ndarray,
                     reservations: List[Tuple[int, int]],
                     device_writable: bool = False,
                     ) -> Tuple[np.ndarray, Descriptor]:
    """Reserve + pin + fill one wire buffer; mirrors
    :func:`repro.virt.virtio.write_buffer` byte-for-byte."""
    u8 = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    nr_pages = max(1, (u8.size + PAGE_SIZE - 1) // PAGE_SIZE)
    gpa = memory.reserve_pages(nr_pages)
    reservations.append((gpa, nr_pages))
    view = memory.pin_span(gpa, u8.size)
    view[...] = u8
    return view, Descriptor(gpa=gpa, length=u8.size,
                            device_writable=device_writable)


def compile_plan(key: Tuple, header: RequestHeader, matrix: TransferMatrix,
                 memory: GuestMemory,
                 digests: Optional[Dict[int, int]],
                 skips: Optional[List[SkipExtent]],
                 batched: bool) -> TransferPlan:
    """Compile ``matrix`` into a :class:`TransferPlan`.

    Emits the exact chain :func:`~repro.virt.serialization.serialize_matrix`
    would (same buffer contents, lengths, and writable flags — only the
    GPAs differ, drawn from the reservation arena instead of the rolling
    bump allocator).  Raises :class:`PlanUnsupported` when the shape
    cannot be pinned; all partial reservations are released first.
    """
    cache_format = digests is not None or skips is not None
    reservations: List[Tuple[int, int]] = []
    try:
        matrix.validate()
        chain: List[Descriptor] = []
        _, desc = _pin_wire_buffer(memory, header.pack(), reservations)
        chain.append(desc)
        meta_u8, desc = _pin_wire_buffer(
            memory, matrix_meta_words(matrix, skips, cache_format),
            reservations)
        chain.append(desc)
        matrix_meta_view = meta_u8.view(np.uint64) if cache_format else None

        total_pages = 0
        data_descriptors: List[Tuple[int, int, int]] = []
        entries: List[SerializedEntry] = []
        payload_views: List[np.ndarray] = []
        entry_meta_views: List[np.ndarray] = []
        cached_entries: List[DpuEntry] = []
        writable = matrix.kind is XferKind.FROM_DPU
        for entry in matrix.entries:
            nr_pages = _entry_pages(entry.size)
            total_pages += nr_pages
            digest = (digests or {}).get(entry.dpu_index, 0)
            emeta_u8, desc = _pin_wire_buffer(
                memory,
                entry_meta_words(entry.dpu_index, entry.size, nr_pages,
                                 digest, cache_format),
                reservations)
            chain.append(desc)
            if cache_format:
                entry_meta_views.append(emeta_u8.view(np.uint64))
            gpa = memory.reserve_pages(nr_pages)
            reservations.append((gpa, nr_pages))
            view = memory.pin_span(gpa, entry.size)
            if matrix.kind is XferKind.TO_DPU:
                view[...] = entry.data
            payload_views.append(view)
            page_gpas = (np.arange(nr_pages, dtype=np.uint64) * PAGE_SIZE
                         + np.uint64(gpa))
            _, desc = _pin_wire_buffer(memory, page_gpas, reservations,
                                       device_writable=writable)
            chain.append(desc)
            data_descriptors.append((entry.dpu_index, entry.size, gpa))
            entries.append(SerializedEntry(
                dpu_index=entry.dpu_index, size=entry.size,
                page_gpas=page_gpas, digest=digest))
            cached_entries.append(DpuEntry(
                dpu_index=entry.dpu_index, size=entry.size,
                data=view if matrix.kind is XferKind.TO_DPU else None))
    except (TranslationError, MemoryAccessError, TransferError) as exc:
        for gpa, nr_pages in reservations:
            memory.release_reservation(gpa, nr_pages)
        raise PlanUnsupported(str(exc)) from exc

    cached_matrix = None
    if not batched:
        cached_matrix = TransferMatrix(matrix.kind, matrix.symbol,
                                       matrix.offset, cached_entries)
    sreq = SerializedRequest(header=header, chain=chain,
                             total_pages=total_pages,
                             data_descriptors=data_descriptors)
    return TransferPlan(
        key=key, header=header, sreq=sreq, entries=entries,
        skips=list(skips or ()), matrix=cached_matrix,
        payload_views=payload_views, entry_meta_views=entry_meta_views,
        matrix_meta_view=matrix_meta_view, reservations=reservations,
        guest_generation=memory.region.generation,
        cache_format=cache_format, batched=batched,
        direct_read=matrix.target is Target.MRAM,
    )


class PlanCache:
    """Bounded LRU of compiled :class:`TransferPlan` per frontend."""

    def __init__(self, memory: GuestMemory, capacity: int = 128) -> None:
        self.memory = memory
        self.capacity = max(1, capacity)
        self._plans: "OrderedDict[Tuple, TransferPlan]" = OrderedDict()
        #: Shapes the compiler refused — permanent naive fallback.
        self.unplannable: Set[Tuple] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: Tuple) -> Optional[TransferPlan]:
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
        return plan

    def insert(self, key: Tuple, plan: TransferPlan) -> int:
        """Cache ``plan``; returns how many plans were evicted for room."""
        evicted = 0
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.capacity:
            _, old = self._plans.popitem(last=False)
            old.release(self.memory)
            evicted += 1
        self.evictions += evicted
        return evicted

    def drop(self, key: Tuple) -> None:
        plan = self._plans.pop(key, None)
        if plan is not None:
            plan.release(self.memory)
            self.invalidations += 1

    def invalidate_all(self) -> int:
        """Drop every plan (migration/failover/teardown); returns count."""
        count = len(self._plans)
        for plan in self._plans.values():
            plan.release(self.memory)
        self._plans.clear()
        self.invalidations += count
        return count

    @property
    def nr_plans(self) -> int:
        return len(self._plans)
