"""The vPIM virtualization stack (Sections 3 and 4 of the paper).

Components, mirroring Fig. 4:

- :mod:`repro.virt.guest_memory` — the VM's physical address space and
  GPA->HVA translation;
- :mod:`repro.virt.kvm` — the hypervisor boundary: traps and IRQs, whose
  *count* is the paper's key overhead driver;
- :mod:`repro.virt.virtio` — virtqueues per the virtio-pim specification
  (Appendix A.1): 512-slot transferq + controlq, device ID 42;
- :mod:`repro.virt.serialization` — the Fig. 6/7 transfer-matrix wire format;
- :mod:`repro.virt.frontend` — the guest driver, with the prefetch cache
  and request batching optimizations;
- :mod:`repro.virt.backend` — the Firecracker-side device model with
  zero-copy request handling, threaded GPA->HVA translation and the
  C-vs-Rust data path;
- :mod:`repro.virt.firecracker` — the VMM: API server, boot, event loop
  (sequential or parallel operation handling);
- :mod:`repro.virt.manager` — the host-wide rank manager (Fig. 5 FSM);
- :mod:`repro.virt.transport` — the SDK transport that routes through all
  of the above, making guest applications run unmodified.
"""

from repro.virt.opts import Optimization, OptimizationConfig
from repro.virt.manager import Manager, RankState
from repro.virt.firecracker import Firecracker, VmConfig
from repro.virt.transport import VirtTransport
from repro.virt.api_server import ApiServer
from repro.virt.emulation import EmulatedRankPool
from repro.virt.migration import (
    checkpoint_rank,
    consolidate,
    migrate_device,
    restore_rank,
)

__all__ = [
    "Optimization",
    "OptimizationConfig",
    "Manager",
    "RankState",
    "Firecracker",
    "VmConfig",
    "VirtTransport",
    "ApiServer",
    "EmulatedRankPool",
    "checkpoint_rank",
    "restore_rank",
    "migrate_device",
    "consolidate",
]
