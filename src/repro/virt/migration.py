"""Rank checkpoint/restore and device migration (Section 7).

The paper: "efficient pause-resume and checkpoint-restore mechanisms
could enable dynamic workload consolidation without hardware changes."
UPMEM cannot pause a *running* DPU (Section 2), but between launches a
rank's entire state is host-visible: MRAM banks, loaded programs, and
host-visible WRAM symbols.  This module implements exactly that:

- :func:`checkpoint_rank` snapshots a rank's state (sparse: only
  materialized MRAM segments are copied);
- :func:`restore_rank` replays a snapshot onto another rank;
- :func:`migrate_device` moves a linked vUPMEM device to a different
  physical (or emulated) rank — e.g. consolidating a tenant off an
  emulated rank onto a freed physical one, or defragmenting ranks so a
  whole DIMM can power down.

Migration is refused while any DPU is RUNNING — the hardware constraint
the paper states — and its cost is modeled as the two rank-level copies
of the checkpointed bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DpuFaultError, ManagerError
from repro.hardware.dpu import DpuState
from repro.hardware.memory import SEGMENT_SIZE
from repro.hardware.rank import Rank
from repro.virt.manager import Manager
from repro.virt.vm import VUpmemDevice


@dataclass
class DpuSnapshot:
    """State of one DPU between launches (§7 checkpoint/restore: launches
    are the only consistent snapshot boundary)."""

    mram_segments: Dict[int, np.ndarray] = field(default_factory=dict)
    symbols: Dict[str, bytes] = field(default_factory=dict)
    program: Optional[object] = None
    state: DpuState = DpuState.IDLE


@dataclass
class RankCheckpoint:
    """A consistent snapshot of a rank's host-visible state (§7 device
    migration between emulated and physical ranks)."""

    source_rank: int
    dpus: List[DpuSnapshot] = field(default_factory=list)

    @property
    def nr_bytes(self) -> int:
        """Bytes of MRAM actually captured (sparse)."""
        return sum(len(snap.mram_segments) * SEGMENT_SIZE
                   for snap in self.dpus)


def checkpoint_rank(rank: Rank) -> Tuple[RankCheckpoint, float]:
    """Snapshot ``rank``; returns (checkpoint, simulated duration).

    Refuses while any DPU is running: the hardware cannot pause a
    launched task (Section 2), so checkpoints are launch boundaries.
    """
    checkpoint = RankCheckpoint(source_rank=rank.index)
    for dpu in rank.dpus:
        if dpu.state is DpuState.RUNNING:
            raise DpuFaultError(
                f"cannot checkpoint rank {rank.index}: DPU "
                f"{dpu.dpu_index} is running and UPMEM tasks cannot pause"
            )
        snap = DpuSnapshot(
            mram_segments=dpu.mram.snapshot_segments(),
            symbols={name: bytes(buf) for name, buf in dpu.symbols.items()},
            program=dpu.program,
            state=dpu.state,
        )
        checkpoint.dpus.append(snap)
    duration = rank.cost.rank_transfer_time(checkpoint.nr_bytes)
    return checkpoint, duration


def restore_rank(rank: Rank, checkpoint: RankCheckpoint) -> float:
    """Replay ``checkpoint`` onto ``rank``; returns the duration.

    The target must have at least as many functional DPUs as the source
    had (defective-DPU topologies differ between ranks).
    """
    if rank.nr_dpus < len(checkpoint.dpus):
        raise ManagerError(
            f"rank {rank.index} has {rank.nr_dpus} DPUs; checkpoint needs "
            f"{len(checkpoint.dpus)}"
        )
    for dpu, snap in zip(rank.dpus, checkpoint.dpus):
        dpu.reset()
        if snap.program is not None:
            dpu.load_program(snap.program, snap.program.binary_size,
                             snap.program.symbols)
            for name, raw in snap.symbols.items():
                dpu.write_symbol(name, 0, raw)
        dpu.mram.load_segments(snap.mram_segments)
        dpu.state = snap.state if snap.state is not DpuState.RUNNING \
            else DpuState.IDLE
    return rank.cost.rank_transfer_time(checkpoint.nr_bytes)


def migrate_device(device: VUpmemDevice, manager: Manager,
                   target_rank: Optional[int] = None,
                   target_manager: Optional[Manager] = None) -> int:
    """Move a linked device's rank state to another rank.

    Allocates a target through the manager (unless ``target_rank`` is
    given), checkpoints the source, restores onto the target, relinks
    the backend, and releases the source (which the manager then resets
    as usual).  Advances the simulated clock by the copy costs.  Returns
    the new physical rank index.

    ``target_manager`` moves the device to a *different host*: the
    target rank is allocated from that manager's rank table and the
    backend is re-pointed at that host's driver — the cross-host
    consolidation path of ``repro.cluster`` (§7: checkpoint/restore
    enables dynamic workload consolidation).
    """
    mapping = device.backend.mapping
    if mapping is None:
        raise ManagerError(f"device {device.device_id} is not linked")
    source = mapping.rank
    clock = manager.clock
    dest = target_manager or manager

    checkpoint, save_time = checkpoint_rank(source)
    clock.advance(save_time)

    if target_rank is None:
        target_rank = dest.allocate(device.device_id)
        if dest is manager and target_rank == source.index:
            # The manager handed back the same rank (NANA fast path):
            # nothing to move.  Rank indices are per-host, so this
            # shortcut only applies when source and target managers are
            # the same.
            return target_rank
    target = dest.driver.resolve_rank(target_rank)

    restore_time = restore_rank(target, checkpoint)
    clock.advance(restore_time)

    # Swap the backend's mapping: release the source, claim the target
    # (re-pointing the backend at the destination host's driver first
    # when the move crosses hosts).
    device.backend.unlink()
    device.backend.driver = dest.driver
    device.backend.link_rank(target_rank)
    # Compiled transfer plans hold rank-specific pinned state; the
    # relinked backend must not replay them against the new rank.
    device.frontend._invalidate_plans("migration")
    return target_rank


def consolidate(manager: Manager, devices: List[VUpmemDevice]) -> int:
    """Upgrade devices running on emulated ranks to free physical ranks.

    Returns the number of devices migrated.  This is the paper's
    "dynamic workload consolidation" use case: oversubscribed tenants
    move back to hardware as capacity frees up.
    """
    if manager.emulated_pool is None:
        return 0
    migrated = 0
    for device in devices:
        mapping = device.backend.mapping
        if mapping is None:
            continue
        if not manager.emulated_pool.is_emulated(mapping.rank.index):
            continue
        free = manager.available_ranks()
        if not free:
            break
        migrate_device(device, manager, target_rank=None)
        new_rank = device.backend.mapping.rank.index
        if not manager.emulated_pool.is_emulated(new_rank):
            migrated += 1
    return migrated
