"""The shared content-digest primitive.

Two content-addressed indexes live in this codebase — the transfer
cache's :class:`~repro.virt.transfer_cache.ExtentDigestIndex` (wire
suppression, ``docs/transfer_cache.md``) and the paging subsystem's
:class:`~repro.paging.store.SwapStore` (deduplicated swap segments,
``docs/paging.md``).  Both must agree byte-for-byte on what "same
content" means: a swap-in replays exactly the bytes the transfer cache
considers resident, so a digest-function drift between the two would
silently break the SKIP-validation protocol after a swap.  This module
is the single definition both import.

Digests are 8-byte blake2b (the stdlib stand-in for xxhash — same
short-digest, non-cryptographic-speed role).  Collision safety is the
*caller's* job, by keying: digests are only ever compared within one
extent or one segment slot, never across a global namespace, so a
2^-64 per-slot collision is the accepted content-addressing trade.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Digest width in bytes; 8 matches the xxhash64 family PIM-CACHE uses.
DIGEST_BYTES = 8


def content_digest(data) -> int:
    """64-bit content digest of one payload.

    Accepts any array-like; bytes are hashed in canonical C order so the
    digest is a pure function of the payload bytes.
    """
    buf = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    return int.from_bytes(
        hashlib.blake2b(buf.tobytes(), digest_size=DIGEST_BYTES).digest(),
        "little")
