"""The Firecracker VMM model (Sections 3.2-3.4).

Responsibilities reproduced here:

- the **API server**: VM configuration requests specify vCPUs, memory and
  the number of vUPMEM devices (Section 3.3 "vUPMEM Booking");
- **boot**: device descriptions (MMIO region, IRQ) are passed to the
  guest on the kernel command line; each vUPMEM device adds up to 2 ms of
  boot time (Section 3.2);
- the **event loop**: Firecracker originally handles virtio events
  sequentially; vPIM's parallel-operation-handling optimization hands
  each rank operation to a dedicated thread so concurrent requests to
  different ranks overlap (Section 4.2, Figs. 15/16).  The sequential-
  vs-parallel behaviour is realized by the transport's duration
  combining; this module records which policy is active.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import VmConfigError
from repro.driver.driver import UpmemDriver
from repro.hardware.machine import Machine
from repro.hardware.timing import BandwidthArbiter, CostModel
from repro.observability.instruments import VmInstruments
from repro.qos.flow import QosFlow
from repro.sdk.profile import Profiler
from repro.virt.backend import VUpmemBackend
from repro.virt.frontend import VUpmemFrontend
from repro.virt.guest_memory import GuestMemory
from repro.virt.kvm import Kvm
from repro.virt.manager import Manager
from repro.virt.mmio import MmioWindow
from repro.virt.opts import OptimizationConfig
from repro.virt.virtio import VirtioPimQueues
from repro.virt.vm import Vm, VUpmemDevice

#: Firecracker's own boot time before devices are added (microVM scale).
BASE_BOOT_TIME = 125e-3


@dataclass
class VmConfig:
    """What the host sends to the Firecracker API server (§3.3 "vUPMEM
    Booking": vCPUs, memory, number of vUPMEM devices)."""

    vcpus: int = 16
    mem_bytes: int = 128 << 30
    nr_vupmem: int = 1
    kernel_path: str = "vmlinux.bin"
    rootfs_path: str = "rootfs.ext4"
    opts: OptimizationConfig = field(default_factory=OptimizationConfig)

    def validate(self, machine: Machine,
                 capacity: Optional[int] = None) -> None:
        """Reject impossible VM shapes.

        ``capacity`` overrides the physical rank count as the sizing
        limit — the Manager's :meth:`~repro.virt.manager.Manager.\
rank_capacity` passes the pager's virtual capacity here when demand
        paging (``docs/paging.md``) advertises more ranks than exist.
        """
        if self.vcpus <= 0:
            raise VmConfigError(f"vcpus must be positive, got {self.vcpus}")
        if self.mem_bytes <= 0:
            raise VmConfigError(f"mem_bytes must be positive, got {self.mem_bytes}")
        if self.nr_vupmem < 0:
            raise VmConfigError(f"nr_vupmem must be >= 0, got {self.nr_vupmem}")
        limit = capacity if capacity is not None else machine.nr_ranks
        if self.nr_vupmem > limit:
            raise VmConfigError(
                f"VM requests {self.nr_vupmem} vUPMEM devices but the host "
                f"offers only {limit} allocatable ranks (Section 3.3)"
            )
        if not self.kernel_path:
            raise VmConfigError("a kernel image path is required")


class VirtioEventLoop:
    """Cross-VM request scheduling in the (shared) Firecracker event loop.

    Originally the event loop serves virtio kicks in FIFO arrival order,
    so one tenant's bulk transfer head-of-line-blocks every co-resident
    small request.  With QoS enforced, the next request is picked by
    **virtual finish time**: each flow's virtual clock advances by
    ``service / weight`` per dispatch, and the wait a request pays is
    capped at one service quantum per busy neighbor (the arbiter's WFQ
    mode).  The loop keeps the per-flow virtual-time bookkeeping and
    dispatch counters; the delay arithmetic lives in the arbiter so both
    views (event loop and bus) share one demand model.
    """

    def __init__(self, arbiter: BandwidthArbiter) -> None:
        self.arbiter = arbiter
        self.virtual_now = 0.0
        self.dispatches = {"fifo": 0, "wfq": 0}

    def dispatch(self, flow_id: str, now: float,
                 fair: bool) -> "tuple[float, str]":
        """Pick-order cost of serving ``flow_id``'s next request at
        ``now``; returns ``(queue_delay_s, mode)``."""
        delay = self.arbiter.queue_delay(flow_id, now, fair)
        flow = self.arbiter.flow(flow_id)
        service = self.arbiter.mean_op_s(flow)
        start = max(flow.virtual_finish, self.virtual_now)
        flow.virtual_finish = start + service / flow.weight
        self.virtual_now = max(self.virtual_now, start)
        mode = "wfq" if fair else "fifo"
        self.dispatches[mode] += 1
        return delay, mode


class Firecracker:
    """One Firecracker process per VM; this class is the factory side.

    The listening-socket thread of Section 3.2 is modeled by
    :meth:`launch_vm`, which validates the configuration, builds the
    guest, attaches the vUPMEM devices and boots.
    """

    def __init__(self, machine: Machine, driver: Optional[UpmemDriver] = None,
                 manager: Optional[Manager] = None) -> None:
        self.machine = machine
        self.driver = driver or UpmemDriver(machine)
        self.manager = manager or Manager(machine, self.driver)
        self.cost: CostModel = machine.cost
        #: Per-launcher, not global: VM (and thus device) names depend
        #: only on this machine's launch order, so a seeded run names its
        #: devices identically no matter what ran earlier in the process
        #: (the fault-timeline replay contract hashes these names).
        self._vm_ids = itertools.count()
        #: Live telemetry (shares the machine registry): boots + devices.
        self.obs = VmInstruments(machine.metrics)
        #: The host-wide request scheduler across co-resident VMs' queues
        #: (``repro.qos``); inert until a VM registers a flow.
        self.event_loop = VirtioEventLoop(machine.bus_arbiter)

    def launch_vm(self, config: VmConfig) -> Vm:
        """Boot a microVM with the requested vUPMEM devices attached."""
        config.validate(self.machine, capacity=self.manager.rank_capacity())
        vm_id = f"vm-{next(self._vm_ids)}"
        memory = GuestMemory(config.mem_bytes)
        kvm = Kvm(self.cost)
        profiler = Profiler(self.machine.clock)
        vm = Vm(vm_id=vm_id, config=config, machine=self.machine,
                memory=memory, kvm=kvm, profiler=profiler,
                manager=self.manager)
        if config.opts.qos is not None:
            # One flow per VM: all of the VM's devices share its weight,
            # throttles and demand window (per-tenant isolation).
            vm.qos_flow = QosFlow(
                flow_id=vm_id, config=config.opts.qos,
                arbiter=self.machine.bus_arbiter, loop=self.event_loop,
                metrics=self.machine.metrics, spans=self.machine.spans)

        boot_time = BASE_BOOT_TIME
        for i in range(config.nr_vupmem):
            device_id = f"{vm_id}.vupmem{i}"
            queues = VirtioPimQueues()
            backend = VUpmemBackend(
                device_id=device_id, driver=self.driver, guest_memory=memory,
                cost=self.cost, rust_data_path=not config.opts.c_enhancement,
                metrics=self.machine.metrics, spans=self.machine.spans,
                cache_enabled=config.opts.cache, qos=vm.qos_flow,
            )
            # One MMIO window + IRQ per device, passed to the guest on
            # the kernel command line (Section 3.2).
            mmio = MmioWindow(
                base_address=0xD000_0000 + i * 0x1000, irq=5 + i,
                config_fields={
                    "frequency_hz": self.driver.config.frequency_hz,
                    "clock_division": self.driver.config.clock_division,
                    "mram_bytes": self.driver.config.mram_bytes,
                    "nr_dpus": self.driver.config.nr_dpus,
                    "nr_control_interfaces":
                        self.driver.config.nr_control_interfaces,
                },
            )
            frontend = VUpmemFrontend(
                device_id=device_id, queues=queues, memory=memory,
                backend=backend, kvm=kvm, opts=config.opts, cost=self.cost,
                profiler=profiler, mmio=mmio,
                metrics=self.machine.metrics, spans=self.machine.spans,
                qos=vm.qos_flow,
            )
            vm.devices.append(VUpmemDevice(device_id=device_id,
                                           frontend=frontend,
                                           backend=backend,
                                           queues=queues,
                                           mmio=mmio))
            vm.kernel_cmdline.append(mmio.command_line_entry())
            boot_time += self.cost.vupmem_boot_cost

        self.machine.clock.advance(boot_time)
        vm.boot_time = boot_time
        self.obs.boot(vm_id, config.nr_vupmem, boot_time)
        return vm
