"""The hypervisor boundary.

vPIM requires **no KVM changes** (requirement R1); what the hypervisor
contributes to the story is the *cost of crossing it*: every virtio kick
traps the vCPU into KVM, which forwards the event to Firecracker, and
every completion injects an IRQ back.  The paper's central measurement is
that these guest-hypervisor-VMM transitions — not data volume — dominate
virtualization overhead.

:class:`Kvm` therefore does exactly two things: charge the calibrated
transition costs and count them (the counts back Fig. 14's claims:
NW messages drop from ~10000 to ~402 with batching).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.timing import CostModel


@dataclass
class KvmStats:
    """VMEXIT/IRQ counters of one VM (the transition counts whose cost
    §3.4 identifies as the irreducible virtualization overhead)."""

    vmexits: int = 0
    irq_injections: int = 0


@dataclass
class Kvm:
    """Trap/IRQ accounting for one VM (§3.4: guest↔VMM world switches are
    the irreducible virtualization cost)."""

    cost: CostModel
    stats: KvmStats = field(default_factory=KvmStats)

    def trap(self) -> float:
        """Guest MMIO write (queue kick) -> VMEXIT -> event fd."""
        self.stats.vmexits += 1
        return self.cost.vmexit_cost

    def inject_irq(self) -> float:
        """Completion IRQ -> guest driver wakeup."""
        self.stats.irq_injections += 1
        return self.cost.irq_inject_cost

    def roundtrip(self) -> float:
        """One full kick..IRQ transition pair."""
        return self.trap() + self.inject_irq()
