"""The vUPMEM frontend: the virtio driver in the guest kernel (Section 4.1).

The frontend exposes a device file to the guest userspace (the SDK's safe
mode) and forwards requests to the backend over the transferq.  It hosts
the two message-count optimizations:

- **Prefetch cache** — 16 pages per DPU.  A read smaller than the cache
  is served locally when the cached segment covers it; a miss fetches a
  cache-sized segment per DPU in one request.  The cache is invalidated
  by writes, launches, CI operations, and rank release.
- **Request batching** — 64 pages per DPU.  Small MRAM writes accumulate
  in a batch buffer and flush collectively (one message) when the buffer
  fills or any non-write request arrives.

Every request the frontend actually sends costs one guest->VMM->guest
transition; the whole point of both optimizations is to send fewer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import MRAM_HEAP_SYMBOL, MRAM_SIZE, PAGE_SIZE
from repro.errors import (
    DeviceNotLinkedError,
    HardwareError,
    TransferError,
    TransientFaultError,
)
from repro.hardware.timing import CostModel
from repro.observability import MetricsRegistry
from repro.observability.instruments import FaultInstruments, FrontendInstruments
from repro.observability.spans import SpanRecorder
from repro.sdk.kernel import DpuProgram
from repro.sdk.profile import OP_CI, OP_READ, OP_WRITE, Profiler
from repro.sdk.transfer import Target, TransferMatrix, XferKind, DpuEntry
from repro.virt.backend import BackendResult, BatchRecord, VUpmemBackend
from repro.virt.guest_memory import GuestMemory
from repro.virt.kvm import Kvm
from repro.virt.opts import OptimizationConfig
from repro.virt.mmio import MmioWindow, Reg, driver_init_sequence
from repro.virt.plans import (
    PlanCache,
    PlanUnsupported,
    compile_plan,
    plan_key,
)
from repro.virt.serialization import (
    RequestHeader,
    RequestKind,
    SerializedRequest,
    SkipExtent,
    serialize_matrix,
)
from repro.virt.transfer_cache import ExtentDigestIndex, content_digest
from repro.virt.virtio import UsedElement, VirtioPimQueues, write_buffer

#: Writes at or below this per-DPU size are candidates for batching.
SMALL_WRITE_BYTES = PAGE_SIZE

#: Modeled size of a Linux ``struct page`` (frontend memory accounting).
PAGE_STRUCT_BYTES = 64


class PrefetchCache:
    """Per-DPU read cache of one contiguous MRAM segment each (§4.1's
    prefetching optimization; Fig. 14's hits column)."""

    def __init__(self, pages_per_dpu: int) -> None:
        self.capacity = pages_per_dpu * PAGE_SIZE
        self._lines: Dict[int, Tuple[int, np.ndarray]] = {}

    def lookup(self, dpu_index: int, offset: int, size: int,
               ) -> Optional[np.ndarray]:
        line = self._lines.get(dpu_index)
        if line is None:
            return None
        start, data = line
        if start <= offset and offset + size <= start + data.size:
            rel = offset - start
            return data[rel:rel + size].copy()
        return None

    def fill(self, dpu_index: int, start: int, data: np.ndarray) -> None:
        if data.size > self.capacity:
            raise TransferError(
                f"prefetch fill of {data.size} bytes exceeds the "
                f"{self.capacity}-byte cache line"
            )
        self._lines[dpu_index] = (start, data)

    def invalidate(self) -> None:
        self._lines.clear()

    @property
    def nr_lines(self) -> int:
        return len(self._lines)


class BatchBuffer:
    """Per-DPU accumulation buffer for small MRAM writes (§4.1's request
    batching; Fig. 14's batched column)."""

    def __init__(self, pages_per_dpu: int) -> None:
        self.capacity = pages_per_dpu * PAGE_SIZE
        self.records: List[BatchRecord] = []
        self._used: Dict[int, int] = {}

    def fits(self, matrix: TransferMatrix) -> bool:
        for entry in matrix.entries:
            if self._used.get(entry.dpu_index, 0) + entry.size > self.capacity:
                return False
        return True

    def add(self, matrix: TransferMatrix) -> int:
        """Buffer the matrix's entries; returns the bytes copied."""
        total = 0
        for entry in matrix.entries:
            self.records.append(BatchRecord(
                dpu_index=entry.dpu_index, offset=matrix.offset,
                data=entry.data.copy(),
            ))
            self._used[entry.dpu_index] = (
                self._used.get(entry.dpu_index, 0) + entry.size)
            total += entry.size
        return total

    def drain(self) -> List[BatchRecord]:
        records = self.records
        self.records = []
        self._used = {}
        return records

    @property
    def empty(self) -> bool:
        return not self.records

    @property
    def buffered_bytes(self) -> int:
        return sum(self._used.values())


class VUpmemFrontend:
    """The guest-side driver of one vUPMEM device (the §4.1 frontend
    kernel module)."""

    def __init__(self, device_id: str, queues: VirtioPimQueues,
                 memory: GuestMemory, backend: VUpmemBackend, kvm: Kvm,
                 opts: OptimizationConfig, cost: CostModel,
                 profiler: Profiler,
                 mmio: Optional[MmioWindow] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 spans: Optional[SpanRecorder] = None,
                 qos=None) -> None:
        self.device_id = device_id
        self.queues = queues
        self.memory = memory
        self.backend = backend
        self.kvm = kvm
        self.opts = opts
        self.cost = cost
        self.profiler = profiler
        self.cache = PrefetchCache(opts.prefetch_pages_per_dpu)
        self.batch = BatchBuffer(opts.batch_pages_per_dpu)
        #: Content-aware transfer cache (``Optimization(cache=True)``):
        #: per-extent digests of what the device already holds, used to
        #: suppress unchanged writes.  ``None`` keeps the default path
        #: bit-identical to the committed wall-clock digest.
        self.digests: Optional[ExtentDigestIndex] = (
            ExtentDigestIndex() if opts.cache else None)
        #: Shape-specialized plan cache (``docs/performance.md``): wire
        #: layouts compiled once per transfer shape and replayed on each
        #: repetition.  Wall-clock only — bit-identical modeled time —
        #: so it defaults on; ``Optimization(plans=False)`` ablates it.
        self.plans: Optional[PlanCache] = (
            PlanCache(memory, opts.plan_capacity) if opts.plans else None)
        #: Adaptive digest bypass (``docs/transfer_cache.md``): once the
        #: observed suppression rate over at least
        #: ``opts.cache_bypass_min_probes`` probes stays below
        #: ``opts.cache_bypass_hit_rate``, digesting stops — workloads
        #: that never rewrite identical content stop paying digest cost.
        self._digest_probes = 0
        self._digest_hits = 0
        self._digest_bypassed = False
        #: The owning VM's :class:`~repro.qos.flow.QosFlow` (``docs/qos.md``):
        #: kicks pay token-bucket throttle waits and the event loop's
        #: cross-VM queueing delay.  ``None`` = the exact default path.
        self.qos = qos
        self.device_config: Optional[dict] = None
        self.mmio = mmio or MmioWindow(base_address=0xD000_0000, irq=5)
        #: Live telemetry (cache hits/misses, flush reasons, request
        #: latencies); shares the machine registry when built by
        #: :class:`~repro.virt.firecracker.Firecracker`.
        registry = metrics or MetricsRegistry()
        #: Trace context; shares the machine recorder when built by
        #: :class:`~repro.virt.firecracker.Firecracker`, so frontend
        #: request spans parent the backend spans they trigger.
        self.spans = spans or SpanRecorder(profiler.clock)
        self.obs = FrontendInstruments(registry, device_id, spans=self.spans)
        self.fault_obs = FaultInstruments(registry)
        #: Span ids of batched-write copies awaiting a flush; the flush
        #: span links them so the absorbed writes stay attributable.
        self._batch_span_ids: List[int] = []
        #: Simulated start of the most recent request span (feeds the
        #: profiler's tracer with true event starts).
        self._last_request_start: Optional[float] = None
        #: Fault-injection seam (armed by :mod:`repro.faults`): when set,
        #: called as ``hook(frontend)`` before each transferq roundtrip —
        #: returns a stall duration to add and may raise a
        #: :class:`TransientFaultError`.  ``None`` keeps the path exact.
        self.fault_hook = None
        #: Bounded retry budget for transient transport faults.
        self.max_transport_retries = 3

    # -- core message path --------------------------------------------------

    def _roundtrip(self, header: RequestHeader,
                   matrix: Optional[TransferMatrix] = None,
                   program: Optional[DpuProgram] = None,
                   batch_records: Optional[List[BatchRecord]] = None,
                   extra_pages: int = 0,
                   op: Optional[str] = None,
                   digests: Optional[Dict[int, int]] = None,
                   skips: Optional[List[SkipExtent]] = None,
                   ) -> Tuple[BackendResult, float, Optional[SerializedRequest]]:
        """Send one request, retrying on transient transport faults.

        Bounded retry with exponential backoff: each retry re-sends the
        identical request, which is safe because a transient fault fires
        before the backend performs any work.  Detection latency, stall
        time and backoff all ride the returned duration — hooks never
        advance the clock, so time stays single-writer.  With the retry
        budget exhausted the prefetch cache is dropped (its lines may
        reflect state the failed exchange was about to change) and the
        fault propagates.

        ``op`` tags the request span with the driver-centric operation
        kind it accounts for (``W-rank``/``R-rank``), so span-derived
        breakdowns match :meth:`Profiler.op_stats` exactly.
        """
        attrs = {"kind": header.kind.name.lower(), "device": self.device_id}
        if op is not None:
            attrs["op"] = op
        span = self.spans.begin("frontend.request", "frontend", **attrs)
        self._last_request_start = span.start
        penalty = 0.0
        attempts = 0
        try:
            while True:
                try:
                    if self.fault_hook is not None:
                        penalty += self.fault_hook(self)
                    result, duration, sreq = self._roundtrip_once(
                        header, matrix=matrix, program=program,
                        batch_records=batch_records, extra_pages=extra_pages,
                        digests=digests, skips=skips)
                except TransientFaultError as exc:
                    attempts += 1
                    penalty += exc.penalty_s
                    self.fault_obs.detected(exc.kind, "frontend")
                    self.spans.mark_fault(exc.kind)
                    self.spans.log.emit(
                        "transient_fault", "frontend", kind=exc.kind,
                        attempt=attempts, device=self.device_id)
                    if attempts > self.max_transport_retries:
                        self.cache.invalidate()
                        # The aborted exchange may have partially landed;
                        # a digest index claiming otherwise would suppress
                        # the repair write after recovery.
                        self._invalidate_digests("retry_exhausted")
                        raise
                    self.fault_obs.retry("frontend")
                    penalty += (self.cost.transport_retry_backoff
                                * 2 ** (attempts - 1))
                    continue
                if attempts:
                    self.fault_obs.recovered("transient", "retry")
                total = duration + penalty
                self.spans.end(span, duration=total, retries=attempts)
                return result, total, sreq
        except BaseException:
            # Close the request span on the error path too, so one failed
            # exchange cannot leave a dangling parent for later requests.
            self.spans.end(span, duration=penalty, error=True)
            raise

    def _roundtrip_once(self, header: RequestHeader,
                        matrix: Optional[TransferMatrix] = None,
                        program: Optional[DpuProgram] = None,
                        batch_records: Optional[List[BatchRecord]] = None,
                        extra_pages: int = 0,
                        digests: Optional[Dict[int, int]] = None,
                        skips: Optional[List[SkipExtent]] = None,
                        ) -> Tuple[BackendResult, float,
                                   Optional[SerializedRequest]]:
        """Send one request through the transferq; returns the backend
        result, the total frontend+VMM duration, and the serialized form."""
        page_time = ser_time = 0.0
        sreq: Optional[SerializedRequest] = None
        plan = None
        if matrix is not None:
            sreq, plan = self._plan_or_serialize(
                header, matrix, digests, skips, batch_records is not None)
            pages = sreq.total_pages + extra_pages
            page_time = pages * self.cost.page_mgmt_per_page
            ser_time = pages * self.cost.serialize_per_page
            chain = sreq.chain
        else:
            pages = extra_pages
            page_time = pages * self.cost.page_mgmt_per_page
            ser_time = pages * self.cost.serialize_per_page
            chain = [write_buffer(self.memory, header.pack())]

        self.spans.event("frontend.page_mgmt", "frontend", page_time,
                         pages=pages)
        self.spans.event("frontend.serialize", "frontend", ser_time,
                         pages=pages)
        request_id = self.queues.transferq.add_chain(
            chain, flow=self.qos.flow_id if self.qos is not None else None)
        self.obs.queue_depth("transferq", self.queues.transferq.pending)
        self.queues.transferq.kick()
        self.obs.kick("transferq")
        self.mmio.write(Reg.QUEUE_NOTIFY, 0)   # trapped MMIO write
        if self.opts.vhost_vsock:
            # vhost-style path (Section 7 extension): the request is
            # handled in the host kernel without waking the Firecracker
            # event loop, saving the dispatch hop on every message.
            int_time = self.kvm.trap()
        else:
            int_time = self.kvm.trap() + self.cost.event_dispatch_cost
        self.spans.event("virtio.kick", "virtio", int_time,
                         queue="transferq")
        qos_time = 0.0
        if self.qos is not None:
            # Cross-VM scheduling: token-bucket throttles plus the event
            # loop's modeled queueing delay before this kick is served.
            payload = matrix.total_bytes if matrix is not None else 0
            qos_time = self.qos.on_kick(header.kind.name.lower(), payload,
                                        self.profiler.clock.now)

        pager = getattr(self.backend.driver, "pager", None)
        if pager is not None and self.backend.mapping is not None:
            vrank = self.backend.mapping.rank_index
            if pager.is_virtual(vrank):
                # Predictive swap-in (docs/paging.md): the request is
                # already queued, so the pager can overlap the swap with
                # the dispatch window (interrupt + QoS queueing delay)
                # instead of stalling the backend on a demand fault.
                pager.prefault(vrank, overlap=int_time + qos_time)

        # The device takes the chain before processing; on failure it still
        # completes the request (with an error status) so the queue never
        # wedges.
        popped = self.queues.transferq.pop_avail()
        assert popped is not None and popped[0] == request_id
        try:
            result = self.backend.process(chain, program=program,
                                          batch_records=batch_records,
                                          plan=plan)
        except Exception:
            self.queues.transferq.push_used(
                UsedElement(request_id=request_id, status=1))
            self.queues.transferq.pop_used()
            self.kvm.inject_irq()
            raise

        irq_time = self.kvm.inject_irq()
        self.mmio.raise_interrupt()
        self.queues.transferq.push_used(UsedElement(request_id=request_id))
        self.queues.transferq.pop_used()
        self.mmio.write(Reg.INTERRUPT_ACK, 1)
        self.spans.event("virtio.irq", "virtio", irq_time,
                         queue="transferq")

        self.obs.queue_depth("transferq", self.queues.transferq.pending)
        self.profiler.messages.count_request()
        duration = (page_time + ser_time + int_time + qos_time
                    + result.duration + irq_time)
        self.obs.request(header.kind.name.lower(), duration)

        if header.kind is RequestKind.WRITE_RANK:
            self.profiler.record_wrank_step("Page", page_time)
            self.profiler.record_wrank_step("Ser", ser_time)
            self.profiler.record_wrank_step("Int", int_time + irq_time)
            if qos_time > 0.0:
                self.profiler.record_wrank_step("QoS", qos_time)
            for step, value in result.steps.items():
                self.profiler.record_wrank_step(step, value)
        return result, duration, sreq

    # -- shape-specialized plans (``docs/performance.md``) -------------------

    def _plan_or_serialize(self, header: RequestHeader,
                           matrix: TransferMatrix,
                           digests: Optional[Dict[int, int]],
                           skips: Optional[List[SkipExtent]],
                           batched: bool,
                           ) -> Tuple[SerializedRequest, Optional[object]]:
        """Serialize via the plan cache when possible.

        Returns ``(sreq, plan)`` — ``plan`` is ``None`` whenever the
        naive serializer ran (plans off, unplannable shape, compile
        refusal), in which case the backend deserializes from the wire
        exactly as before.
        """
        plans = self.plans
        if plans is None:
            return serialize_matrix(header, matrix, self.memory,
                                    digests=digests, skips=skips), None
        key = plan_key(header, matrix, digests, skips, batched)
        if key is None or key in plans.unplannable:
            return serialize_matrix(header, matrix, self.memory,
                                    digests=digests, skips=skips), None
        plan = plans.get(key)
        if plan is not None and not plan.valid(self.memory):
            plans.drop(key)
            self.obs.plan_invalidation("stale", 1)
            plan = None
        if plan is not None:
            plans.hits += 1
            self.obs.plan_hit()
            return plan.replay(matrix, digests, skips), plan
        plans.misses += 1
        self.obs.plan_miss()
        try:
            plan = compile_plan(key, header, matrix, self.memory,
                                digests, skips, batched)
        except PlanUnsupported:
            plans.unplannable.add(key)
            return serialize_matrix(header, matrix, self.memory,
                                    digests=digests, skips=skips), None
        evicted = plans.insert(key, plan)
        if evicted:
            self.obs.plan_eviction(evicted)
        self.spans.event("plan.compile", "frontend", 0.0,
                         kind=header.kind.name.lower(),
                         entries=len(matrix.entries),
                         pages=plan.sreq.total_pages)
        return plan.sreq, plan

    def _invalidate_plans(self, reason: str) -> None:
        """Drop every compiled plan, counting the drops by ``reason``."""
        if self.plans is None:
            return
        dropped = self.plans.invalidate_all()
        if dropped:
            self.obs.plan_invalidation(reason, dropped)

    # -- device initialization (Section 3.2) ------------------------------------

    def initialize(self) -> float:
        """Configure virtio, fetch device attributes, expose /dev node.

        Follows the Appendix's initialization order: the MMIO status
        handshake (ACKNOWLEDGE -> DRIVER -> FEATURES_OK -> queue setup ->
        DRIVER_OK) must complete before the first request is sent.
        """
        driver_init_sequence(self.mmio)
        result, duration, _ = self._roundtrip(
            RequestHeader(kind=RequestKind.GET_CONFIG))
        config = result.payload
        self._notify_manager(linked=True)
        self.device_config = {
            "frequency_hz": config.frequency_hz,
            "clock_division": config.clock_division,
            "mram_bytes": config.mram_bytes,
            "nr_dpus": config.nr_dpus,
            "nr_control_interfaces": config.nr_control_interfaces,
            "power_management": config.power_management,
        }
        return duration

    # -- batching ---------------------------------------------------------------

    def _flush_batch(self, reason: str = "barrier") -> float:
        """Send all buffered writes as one collective message.

        ``reason`` labels the flush trigger in the metrics: ``capacity``
        (buffer full), ``large_write``, ``read``, ``load``, ``launch``,
        ``ci`` or ``release`` — every non-write request is a batching
        barrier (§4.1).
        """
        if self.batch.empty:
            return 0.0
        self.obs.batch_flush(reason)
        # Peek, send, then clear: if the flush fails mid-flight the
        # records stay buffered for an idempotent replay after recovery,
        # and any prefetched lines (possibly stale vs the partially
        # applied batch) are dropped.
        records = list(self.batch.records)
        # One wire entry per DPU carrying that DPU's buffered bytes.
        per_dpu: Dict[int, List[BatchRecord]] = {}
        for record in records:
            per_dpu.setdefault(record.dpu_index, []).append(record)
        entries = []
        for dpu_index, recs in sorted(per_dpu.items()):
            blob = np.concatenate([r.data for r in recs])
            entries.append(DpuEntry(dpu_index=dpu_index, size=blob.size,
                                    data=blob))
        matrix = TransferMatrix(XferKind.TO_DPU, MRAM_HEAP_SYMBOL, 0, entries)
        header = RequestHeader(kind=RequestKind.WRITE_RANK, offset=0,
                               symbol=MRAM_HEAP_SYMBOL)
        span = self.spans.begin("frontend.batch_flush", "frontend",
                                reason=reason, records=len(records))
        for span_id in self._batch_span_ids:
            span.link("absorbed", span_id)
        try:
            _, duration, _ = self._roundtrip(header, matrix=matrix,
                                             batch_records=records,
                                             op=OP_WRITE)
        except Exception:
            self.cache.invalidate()
            # Batched digests were indexed at add time; a failed flush
            # means that content never landed on the device.
            self._invalidate_digests("flush_error")
            self.spans.end(span, error=True)
            raise
        self.batch.drain()
        self._batch_span_ids = []
        self.spans.end(span, duration=duration)
        self.profiler.record_op(OP_WRITE, duration, start=span.start)
        return duration

    # -- content-aware transfer cache (``Optimization(cache=True)``) ---------

    #: Digest-invalidation reasons that leave compiled plans replayable.
    #: Rank release and program load do not disturb the reserved guest
    #: memory a plan's wire layout lives in, and the parts that DO go
    #: stale revalidate themselves on replay: translations through the
    #: XLB generation counter, pinned MRAM writes through the rank
    #: identity check.  Everything else (failover, transport-retry
    #: exhaustion, flush errors, adaptive bypass) drops plans too.
    _PLAN_SAFE_REASONS = frozenset({"load", "release"})

    def _invalidate_digests(self, reason: str) -> None:
        """Drop every digest record, counting the drops by ``reason``.

        Compiled plans usually ride along — except for the benign
        reasons in :data:`_PLAN_SAFE_REASONS`, which is what lets a
        repeated workload replay its plans across sessions ("compile
        once, replay per repetition")."""
        if self.digests is not None:
            self.obs.cache_invalidation(reason,
                                        self.digests.invalidate_all())
        if reason not in self._PLAN_SAFE_REASONS:
            self._invalidate_plans(reason)

    @property
    def _digesting(self) -> bool:
        """Whether writes should digest-probe (cache on, not bypassed)."""
        return self.digests is not None and not self._digest_bypassed

    def _maybe_bypass(self) -> None:
        """Engage the adaptive bypass when suppression is not paying.

        A workload that never rewrites identical content pays digest cost
        on every write and saves nothing (the BFS 0.96x of the committed
        ablation); once enough probes show a hit rate below the threshold,
        stop digesting.  Only *revisit* probes count — extents that
        already held a digest, where a hit was possible — so a large
        cold first write (e.g. one full-rank push is 64 first-touch
        entries at once) can never trip the bypass before the workload
        has had a chance to repeat itself.
        ``cache_bypass_min_probes=0`` disables the bypass.
        """
        min_probes = self.opts.cache_bypass_min_probes
        if (self._digest_bypassed or min_probes <= 0
                or self._digest_probes < min_probes):
            return
        rate = self._digest_hits / self._digest_probes
        if rate < self.opts.cache_bypass_hit_rate:
            self._digest_bypassed = True
            self._invalidate_digests("adaptive_bypass")

    def _probe_digests(self, matrix: TransferMatrix,
                       ) -> Tuple[List[DpuEntry], List[SkipExtent],
                                  Dict[int, int], int, float]:
        """Digest a write matrix and split it into kept vs suppressed.

        Returns ``(kept, skips, digests, suppressed_bytes, cache_time)``:
        entries whose extent digest matches the index become ``SKIP``
        extents; the rest are kept with their fresh digests.  The modeled
        cost charges the calibrated per-page digest rate plus a per-entry
        index probe.
        """
        index = self.digests
        assert index is not None
        kept: List[DpuEntry] = []
        skips: List[SkipExtent] = []
        digests: Dict[int, int] = {}
        suppressed = 0
        pages = 0
        revisits = 0
        for entry in matrix.entries:
            digest = content_digest(entry.data)
            pages += self.cost.pages_of(entry.size)
            if index.has_record(entry.dpu_index, matrix.symbol,
                                matrix.offset):
                revisits += 1
            if index.lookup(entry.dpu_index, matrix.symbol, matrix.offset,
                            entry.size, digest):
                skips.append(SkipExtent(dpu_index=entry.dpu_index,
                                        size=entry.size, digest=digest))
                suppressed += entry.size
            else:
                kept.append(entry)
                digests[entry.dpu_index] = digest
        cache_time = (pages * self.cost.digest_per_page
                      + len(matrix.entries) * self.cost.cache_lookup_cost)
        self._digest_probes += revisits
        self._digest_hits += len(skips)
        self._maybe_bypass()
        self.obs.cache_hit(len(skips))
        self.obs.cache_miss(len(kept))
        self.obs.cache_suppressed(suppressed)
        self.spans.event("cache.lookup", "frontend", cache_time,
                         op=OP_WRITE, entries=len(matrix.entries),
                         hits=len(skips))
        if skips:
            self.spans.event("cache.suppress", "frontend", 0.0, op=OP_WRITE,
                             extents=len(skips), bytes=suppressed)
        self.profiler.record_wrank_step("Cache", cache_time)
        return kept, skips, digests, suppressed, cache_time

    # -- SDK-visible operations ----------------------------------------------------

    def write(self, matrix: TransferMatrix) -> float:
        """write-to-rank, possibly absorbed by the batch buffer."""
        self.cache.invalidate()
        small = (matrix.target is Target.MRAM
                 and matrix.max_entry_bytes <= SMALL_WRITE_BYTES)
        if self.opts.request_batching and small:
            cache_time = 0.0
            if self._digesting:
                kept, _, digests, _, cache_time = self._probe_digests(matrix)
                if not kept:
                    # Every entry suppressed: nothing enters the batch.
                    self.profiler.record_op(OP_WRITE, cache_time)
                    return cache_time
                if len(kept) < len(matrix.entries):
                    matrix = TransferMatrix(matrix.kind, matrix.symbol,
                                            matrix.offset, kept)
                # Indexed at add time, before the flush lands: safe
                # because a failed flush (and retry exhaustion) drops
                # the whole index.
                for entry in kept:
                    self.digests.insert(entry.dpu_index, matrix.symbol,
                                        matrix.offset, entry.size,
                                        digests[entry.dpu_index])
            flush_time = 0.0
            if not self.batch.fits(matrix):
                flush_time = self._flush_batch(reason="capacity")
            copied = self.batch.add(matrix)
            copy_time = (copied / self.cost.guest_copy_bandwidth
                         + 0.3e-6 * len(matrix.entries))
            self.profiler.messages.count_batched_writes(len(matrix.entries))
            self.obs.batched_writes(len(matrix.entries))
            event = self.spans.event("frontend.batch_copy", "frontend",
                                     copy_time, op=OP_WRITE,
                                     entries=len(matrix.entries),
                                     bytes=copied)
            if event is not None:
                self._batch_span_ids.append(event.span_id)
            self.profiler.record_op(
                OP_WRITE, copy_time + cache_time,
                start=event.start if event is not None else None)
            return flush_time + copy_time + cache_time

        duration = self._flush_batch(reason="large_write")
        if self._digesting:
            return duration + self._cached_write(matrix)
        header = RequestHeader(kind=RequestKind.WRITE_RANK,
                               offset=matrix.offset, symbol=matrix.symbol)
        _, rt, _ = self._roundtrip(header, matrix=matrix, op=OP_WRITE)
        self.profiler.record_op(OP_WRITE, rt, start=self._last_request_start)
        return duration + rt

    def _cached_write(self, matrix: TransferMatrix) -> float:
        """Full-roundtrip write with digest suppression (cache on)."""
        assert self.digests is not None
        kept, skips, digests, _, cache_time = self._probe_digests(matrix)
        if not kept:
            # The whole matrix is unchanged: no message at all.
            self.profiler.record_op(OP_WRITE, cache_time)
            return cache_time
        wire = matrix
        if skips:
            wire = TransferMatrix(matrix.kind, matrix.symbol, matrix.offset,
                                  kept)
        header = RequestHeader(kind=RequestKind.WRITE_RANK,
                               offset=matrix.offset, symbol=matrix.symbol)
        _, rt, _ = self._roundtrip(header, matrix=wire, op=OP_WRITE,
                                   digests=digests, skips=skips)
        # Indexed only after the exchange succeeded.
        for entry in kept:
            self.digests.insert(entry.dpu_index, matrix.symbol,
                                matrix.offset, entry.size,
                                digests[entry.dpu_index])
        self.profiler.record_op(OP_WRITE, rt + cache_time,
                                start=self._last_request_start)
        return rt + cache_time

    def read(self, matrix: TransferMatrix) -> Tuple[List[np.ndarray], float]:
        """read-from-rank, possibly served by the prefetch cache."""
        duration = self._flush_batch(reason="read")

        cacheable = (self.opts.prefetch_cache
                     and matrix.target is Target.MRAM
                     and all(e.size <= self.cache.capacity
                             for e in matrix.entries))
        if cacheable:
            hits = [self.cache.lookup(e.dpu_index, matrix.offset, e.size)
                    for e in matrix.entries]
            if all(h is not None for h in hits):
                copy_bytes = sum(e.size for e in matrix.entries)
                serve = (copy_bytes / self.cost.guest_copy_bandwidth
                         + 0.3e-6 * len(matrix.entries))
                self.profiler.messages.count_cache_hits(len(matrix.entries))
                self.obs.prefetch_hit(len(matrix.entries))
                event = self.spans.event("frontend.cache_serve", "frontend",
                                         serve, op=OP_READ,
                                         entries=len(matrix.entries))
                self.profiler.record_op(
                    OP_READ, serve,
                    start=event.start if event is not None else None)
                return [h for h in hits if h is not None], duration + serve
            self.obs.prefetch_miss(len(matrix.entries))

            # Miss: fetch a cache-sized segment per DPU in one request.
            seg_len = min(self.cache.capacity, MRAM_SIZE - matrix.offset)
            refill_entries = [DpuEntry(dpu_index=e.dpu_index, size=seg_len)
                              for e in matrix.entries]
            refill = TransferMatrix(XferKind.FROM_DPU, matrix.symbol,
                                    matrix.offset, refill_entries)
            header = RequestHeader(kind=RequestKind.READ_RANK,
                                   offset=matrix.offset, symbol=matrix.symbol)
            _, rt, sreq = self._roundtrip(header, matrix=refill, op=OP_READ)
            assert sreq is not None
            for (dpu_index, size, gpa) in sreq.data_descriptors:
                data = self.memory.read(gpa, size)
                self.cache.fill(dpu_index, matrix.offset, data)
            self.profiler.messages.count_cache_refills(len(matrix.entries))
            self.obs.prefetch_refill(len(matrix.entries))
            buffers = []
            for entry in matrix.entries:
                hit = self.cache.lookup(entry.dpu_index, matrix.offset,
                                        entry.size)
                assert hit is not None
                buffers.append(hit)
            self.profiler.record_op(OP_READ, rt,
                                    start=self._last_request_start)
            return buffers, duration + rt

        header = RequestHeader(kind=RequestKind.READ_RANK,
                               offset=matrix.offset, symbol=matrix.symbol)
        _, rt, sreq = self._roundtrip(header, matrix=matrix, op=OP_READ)
        assert sreq is not None
        buffers = [self.memory.read(gpa, size)
                   for (_dpu, size, gpa) in sreq.data_descriptors]
        self.profiler.record_op(OP_READ, rt, start=self._last_request_start)
        return buffers, duration + rt

    def load(self, program: DpuProgram) -> float:
        duration = self._flush_batch(reason="load")
        self.cache.invalidate()
        # Loading rebuilds every symbol buffer on the device; digests of
        # the previous program's extents are meaningless afterwards.
        self._invalidate_digests("load")
        # A new program is a new workload: forget the old suppression
        # statistics and probe again from scratch.
        self._digest_probes = 0
        self._digest_hits = 0
        self._digest_bypassed = False
        binary_pages = (program.binary_size + PAGE_SIZE - 1) // PAGE_SIZE
        header = RequestHeader(kind=RequestKind.LOAD,
                               program_name=program.name)
        _, rt, _ = self._roundtrip(header, program=program,
                                   extra_pages=binary_pages)
        return duration + rt

    def launch(self) -> float:
        duration = self._flush_batch(reason="launch")
        self.cache.invalidate()
        header = RequestHeader(kind=RequestKind.LAUNCH)
        result, rt, _ = self._roundtrip(header)
        if self.digests is not None and result.payload:
            # The backend collected the kernel's dirty stores; drop the
            # digests they overlap instead of the whole index, so digests
            # of extents the run never touched keep suppressing.
            pruned = 0
            for dpu_index, space, offset, nbytes in result.payload:
                pruned += self.digests.prune(dpu_index, space, offset,
                                             nbytes)
            self.obs.cache_invalidation("launch_dirty", pruned)
        return duration + rt

    def ci_ops(self, count: int) -> float:
        """Synchronous control-interface traffic: one message per op.

        CI operations are latency-bound control exchanges; neither
        batching nor prefetching applies, so each op pays the full
        transition round trip — the paper's dominant overhead source for
        CI-heavy workloads like the checksum microbenchmark.
        """
        duration = self._flush_batch(reason="ci")
        self.cache.invalidate()
        per_op = self.cost.ci_virt_roundtrip + self.cost.ci_op_native
        if self.opts.vhost_vsock:
            # The in-kernel path halves the synchronous CI round trip.
            per_op = self.cost.ci_virt_roundtrip / 2 + self.cost.ci_op_native
        span = self.spans.begin("frontend.ci_ops", "frontend",
                                op=OP_CI, count=count)
        # Run a small number of real round trips through the queue
        # machinery, then account the rest arithmetically (the wire format
        # is identical for every op).
        real = min(count, 8)
        try:
            for _ in range(real):
                header = RequestHeader(kind=RequestKind.CI_OP, count=1)
                self._roundtrip(header)
            if count > real:
                self.backend._require_mapping().ci_ops(count - real)
                self.kvm.stats.vmexits += count - real
                self.kvm.stats.irq_injections += count - real
                self.profiler.messages.count_request(count - real)
                self.obs.request_count("ci_op", count - real)
        except BaseException:
            self.spans.end(span, error=True)
            raise
        self.spans.end(span, duration=count * per_op)
        total = duration + count * per_op
        self.profiler.record_op(OP_CI, count * per_op, count=count,
                                start=span.start)
        return total

    def _notify_manager(self, linked: bool) -> None:
        """Post a manager-sync boolean on the controlq (Appendix A.1)."""
        flag = np.array([1 if linked else 0], dtype=np.uint8)
        self.queues.controlq.add_chain([write_buffer(self.memory, flag)])
        self.queues.controlq.kick()
        self.obs.kick("controlq")
        self.queues.controlq.pop_avail()
        self.obs.queue_depth("controlq", self.queues.controlq.pending)

    def release(self) -> float:
        """Tear the device's rank binding down.

        Hardened against dying hardware: releasing runs inside
        exception unwinds (``DpuSet.__exit__``), so a dead rank must
        not raise here and mask the error that killed the run.  The
        buffered writes can never land on a dead rank; they are dropped
        with the cache, and the backend is force-unlinked if even the
        RELEASE exchange fails.
        """
        try:
            duration = self._flush_batch(reason="release")
        except (HardwareError, DeviceNotLinkedError, TransientFaultError):
            self.batch.drain()
            duration = 0.0
        self.cache.invalidate()
        self._invalidate_digests("release")
        header = RequestHeader(kind=RequestKind.RELEASE)
        try:
            _, rt, _ = self._roundtrip(header)
        except (HardwareError, DeviceNotLinkedError, TransientFaultError):
            self.backend.unlink()
            rt = 0.0
        self._notify_manager(linked=False)
        return duration + rt

    # -- memory accounting (Section 4.1 "Memory Overhead") ----------------------------

    def max_memory_overhead_per_dpu(self) -> int:
        """Worst-case extra frontend memory per DPU, in bytes.

        16384 page structs (a full 64 MB MRAM transfer) + the prefetch
        cache + the batch buffer = 1.37 MB, matching the paper's figure.
        """
        max_pages = MRAM_SIZE // PAGE_SIZE
        return (max_pages * PAGE_STRUCT_BYTES
                + self.opts.prefetch_pages_per_dpu * PAGE_SIZE
                + self.opts.batch_pages_per_dpu * PAGE_SIZE)
