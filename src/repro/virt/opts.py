"""The optimization matrix of Table 2.

Each :class:`OptimizationConfig` toggles one or more of vPIM's four
optimizations; the named presets reproduce the exact rows of Table 2 that
Section 5.4 evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import BATCH_PAGES_PER_DPU, PREFETCH_PAGES_PER_DPU
from repro.qos.config import QosConfig


@dataclass(frozen=True)
class OptimizationConfig:
    """Which vPIM optimizations are enabled (Table 2 columns)."""

    c_enhancement: bool = True      #: C/AVX-512 data path instead of Rust/AVX2
    prefetch_cache: bool = True     #: frontend read prefetch cache
    request_batching: bool = True   #: frontend small-write batching
    parallel_handling: bool = True  #: per-rank threads in the VMM event loop

    #: Section 7 future work, implemented as an experimental extension:
    #: a vhost_vsock-style in-kernel data path that skips the Firecracker
    #: event loop on every request, cutting the guest-hypervisor-VMM
    #: transition cost.  Not part of Table 2; off by default.
    vhost_vsock: bool = False

    #: PIM-CACHE-inspired experimental extension (``docs/transfer_cache.md``):
    #: content-aware transfer suppression in the W-rank write path —
    #: unchanged extents become SKIP records, broadcast-identical payloads
    #: are deserialized once.  Not part of Table 2; off by default so the
    #: committed wall-clock digest stays bit-identical.
    cache: bool = False

    #: Multi-tenant performance isolation (``docs/qos.md``): a
    #: :class:`~repro.qos.config.QosConfig` registers the VM as a flow on
    #: the host's :class:`~repro.hardware.timing.BandwidthArbiter` and
    #: (when ``enforce``) schedules its virtio requests weighted-fair
    #: with token-bucket throttles.  ``None`` (the default) models no
    #: cross-VM contention at all — bit-identical to the committed
    #: wall-clock digest.
    qos: Optional[QosConfig] = None

    #: Shape-specialized plan cache (``docs/performance.md``): the
    #: frontend compiles the wire layout, page reservations, and pinned
    #: payload views of each (shape, direction, symbol) tuple once and
    #: replays them on every repetition; the backend skips
    #: deserialization and re-translation for planned requests.  Plans
    #: change *wall-clock only* — modeled durations and all simulated
    #: outputs are bit-identical — so the default is on.
    plans: bool = True

    #: Bound on distinct shapes the plan cache holds (LRU beyond it).
    #: Sized above the largest per-run shape count in the PrIM suite
    #: (321 for bench-size SpMV): an LRU scanned cyclically by a
    #: repeated workload degrades to zero hits the moment the working
    #: set exceeds the capacity.
    plan_capacity: int = 512

    prefetch_pages_per_dpu: int = PREFETCH_PAGES_PER_DPU
    batch_pages_per_dpu: int = BATCH_PAGES_PER_DPU

    #: Transfer-cache adaptive bypass (``docs/transfer_cache.md``): once
    #: the frontend has probed at least ``cache_bypass_min_probes``
    #: *revisited* extents (ones that already held a digest — first
    #: touches can never hit and carry no signal) with a hit rate below
    #: ``cache_bypass_hit_rate``, it stops digesting entirely (a
    #: workload that never rewrites identical content only pays for
    #: digests, the BFS 0.96x regression of the committed ablation).
    #: A threshold of 0 disables the bypass.
    cache_bypass_min_probes: int = 64
    cache_bypass_hit_rate: float = 0.02

    @property
    def label(self) -> str:
        """The paper's name for this configuration, if it is a preset."""
        for name, preset in PRESETS.items():
            if preset == self:
                return name
        flags = "".join([
            "C" if self.c_enhancement else "r",
            "P" if self.prefetch_cache else "-",
            "B" if self.request_batching else "-",
            "M" if self.parallel_handling else "-",
        ])
        label = f"vPIM[{flags}]"
        if self.cache:
            label += "+cache"
        if not self.plans:
            label += "-plans"
        if self.qos is not None:
            label += "+qos"
        return label


#: Short alias used in examples and docs: ``Optimization(cache=True)``.
Optimization = OptimizationConfig


#: The rows of Table 2.  ``vPIM-Seq`` differs from full ``vPIM`` only by
#: sequential request handling; ``vPIM`` enables everything.
PRESETS: Dict[str, OptimizationConfig] = {
    "vPIM-rust": OptimizationConfig(
        c_enhancement=False, prefetch_cache=False,
        request_batching=False, parallel_handling=False,
    ),
    "vPIM-C": OptimizationConfig(
        c_enhancement=True, prefetch_cache=False,
        request_batching=False, parallel_handling=False,
    ),
    "vPIM+P": OptimizationConfig(
        c_enhancement=True, prefetch_cache=True,
        request_batching=False, parallel_handling=False,
    ),
    "vPIM+B": OptimizationConfig(
        c_enhancement=True, prefetch_cache=False,
        request_batching=True, parallel_handling=False,
    ),
    "vPIM+PB": OptimizationConfig(
        c_enhancement=True, prefetch_cache=True,
        request_batching=True, parallel_handling=False,
    ),
    "vPIM-Seq": OptimizationConfig(
        c_enhancement=True, prefetch_cache=True,
        request_batching=True, parallel_handling=False,
    ),
    "vPIM": OptimizationConfig(),
}


def preset(name: str) -> OptimizationConfig:
    """Return a Table 2 preset by its paper name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown vPIM preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
