"""Rank oversubscription via software-emulated ranks (Section 7).

The paper's future work: "a VMM module similar to the UPMEM simulator
could support oversubscription by running applications at reduced
performance."  This module implements that: when every physical rank is
allocated and a tenant still asks for one, the Manager can hand out an
*emulated* rank — a functionally identical rank whose DPUs execute on
host CPU time (the UPMEM functional simulator), at a configurable
slowdown.

An emulated rank is a real :class:`~repro.hardware.rank.Rank` driven by
a derated cost model, so the whole stack above (driver mappings, the
backend, transfer matrices, kernels) works on it unchanged; results stay
bit-exact, only the simulated timing degrades.  Emulated ranks get
indices starting at :data:`EMULATED_RANK_BASE` so reports can tell them
apart, and they are destroyed when released (nothing to reset).

Since demand paging landed (``repro.paging``, ``docs/paging.md``),
emulation is the *last resort* in the oversubscription ladder, not the
first: a Manager configured with both tiers satisfies overflow
allocations from the pager's virtual capacity first (full-speed paged
ranks, swap cost only at launch/transfer boundaries) and only falls
back to a 20x-derated emulated rank once the pager's virtual capacity
is itself exhausted.  ``Manager(oversubscription=True)`` alone keeps
the historical behaviour.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import RankConfig
from repro.errors import HardwareError
from repro.hardware.machine import Machine
from repro.hardware.rank import Rank
from repro.hardware.timing import CostModel

#: Emulated rank indices start here, far above any physical rank.
EMULATED_RANK_BASE = 1000

#: Default performance derating of the software DPU simulator: kernels
#: interpret the DPU ISA on the host CPU.
DEFAULT_SLOWDOWN = 20.0


def emulated_cost_model(base: CostModel,
                        slowdown: float = DEFAULT_SLOWDOWN) -> CostModel:
    """Derate a cost model to software-simulation speed.

    DPU cycles are interpreted on the host CPU (``slowdown`` x); MRAM
    "transfers" are host memcpys, so they run at guest-copy bandwidth
    with no interleaving work (there are no chips to interleave over).
    """
    if slowdown < 1.0:
        raise ValueError(f"slowdown must be >= 1, got {slowdown}")
    return base.with_overrides(
        dpu_frequency_hz=base.dpu_frequency_hz / slowdown,
        rank_xfer_bandwidth=base.guest_copy_bandwidth,
        interleave_bw_c=base.guest_copy_bandwidth * 16,
        manager_reset=1e-3,   # freeing host memory, not wiping a DIMM
    )


class EmulatedRankPool:
    """Creates and tracks software ranks on one machine (§7's rank
    oversubscription extension, implemented)."""

    def __init__(self, machine: Machine,
                 slowdown: float = DEFAULT_SLOWDOWN,
                 max_ranks: int = 8) -> None:
        self.machine = machine
        self.slowdown = slowdown
        self.max_ranks = max_ranks
        self._ranks: Dict[int, Rank] = {}
        self._next_index = EMULATED_RANK_BASE

    @property
    def active(self) -> int:
        return len(self._ranks)

    def create(self, dpus_per_rank: Optional[int] = None) -> Rank:
        """Spin up a new emulated rank; raises when the pool is full.

        By default it mirrors the machine's physical rank geometry, so a
        spilled tenant sees the same DPU population it would have gotten
        on hardware.
        """
        if len(self._ranks) >= self.max_ranks:
            raise HardwareError(
                f"emulated-rank pool exhausted ({self.max_ranks} active); "
                "raise max_ranks or wait for releases"
            )
        if dpus_per_rank is None:
            dpus_per_rank = max(r.nr_dpus for r in self.machine.ranks)
        index = self._next_index
        self._next_index += 1
        rank = Rank(RankConfig(index, dpus_per_rank),
                    emulated_cost_model(self.machine.cost, self.slowdown),
                    metrics=self.machine.metrics, spans=self.machine.spans)
        self._ranks[index] = rank
        return rank

    def get(self, index: int) -> Optional[Rank]:
        return self._ranks.get(index)

    def destroy(self, index: int) -> None:
        """Tear down a released emulated rank (its memory just vanishes)."""
        self._ranks.pop(index, None)

    @staticmethod
    def is_emulated(rank_index: int) -> bool:
        return rank_index >= EMULATED_RANK_BASE
