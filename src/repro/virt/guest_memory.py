"""Guest physical memory and GPA->HVA translation.

Firecracker maps the whole VM memory into its own address space, so every
guest physical address (GPA) corresponds to a host virtual address (HVA)
at a fixed offset.  The frontend serializes transfer matrices as arrays
of GPAs; the backend translates them to HVAs to reach the pages without
copying (Section 4.2 "Zero-copy Request Handling").
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.config import PAGE_SIZE
from repro.errors import TranslationError
from repro.hardware.memory import MemoryRegion

#: Host virtual address at which guest physical page 0 is mapped.
HVA_BASE = 0x7F00_0000_0000


class GuestMemory:
    """The VM's physical address space plus a bump page allocator (the GPA
    space that §4.2's zero-copy translation resolves to HVAs).

    The allocator hands out contiguous page runs from a rolling arena;
    requests are synchronous, so pages can be recycled once the arena
    wraps (the guest driver reuses its DMA area the same way).
    """

    def __init__(self, size: int, arena_bytes: int = 512 << 20) -> None:
        self.size = size
        self.region = MemoryRegion(size, name="guest-ram")
        self._arena_start = 1 << 20  # leave the first MiB alone (BIOS area)
        self._arena_bytes = min(arena_bytes, size - self._arena_start)
        self._arena_cursor = 0

    # -- page allocation ------------------------------------------------------

    def alloc_pages(self, nr_pages: int) -> int:
        """Return the GPA of a fresh run of ``nr_pages`` contiguous pages."""
        need = nr_pages * PAGE_SIZE
        if need > self._arena_bytes:
            raise TranslationError(
                f"request for {nr_pages} pages exceeds the "
                f"{self._arena_bytes}-byte DMA arena"
            )
        if self._arena_cursor + need > self._arena_bytes:
            self._arena_cursor = 0  # wrap: previous requests have completed
        gpa = self._arena_start + self._arena_cursor
        self._arena_cursor += need
        return gpa

    # -- data access ------------------------------------------------------------

    def write(self, gpa: int, data: np.ndarray) -> None:
        self.region.write(gpa, data)

    def read(self, gpa: int, length: int) -> np.ndarray:
        return self.region.read(gpa, length)

    # -- translation ---------------------------------------------------------------

    def gpa_to_hva(self, gpa: int) -> int:
        """Translate one GPA; raises on out-of-range addresses."""
        if not 0 <= gpa < self.size:
            raise TranslationError(
                f"GPA {gpa:#x} outside guest memory of {self.size} bytes"
            )
        return HVA_BASE + gpa

    def hva_to_gpa(self, hva: int) -> int:
        gpa = hva - HVA_BASE
        if not 0 <= gpa < self.size:
            raise TranslationError(f"HVA {hva:#x} does not map into the guest")
        return gpa

    def translate_pages(self, gpas: np.ndarray) -> np.ndarray:
        """Vectorized GPA->HVA for a page buffer (u64 array)."""
        arr = np.asarray(gpas, dtype=np.uint64)
        if arr.size and (int(arr.max()) >= self.size):
            bad = int(arr.max())
            raise TranslationError(
                f"GPA {bad:#x} outside guest memory of {self.size} bytes"
            )
        return arr + np.uint64(HVA_BASE)

    # -- contiguity helper ---------------------------------------------------------

    @staticmethod
    def contiguous_runs(gpas: np.ndarray) -> List[Tuple[int, int]]:
        """Split a page-GPA array into (start_gpa, nr_pages) contiguous runs.

        The backend uses this to gather page data with bulk copies instead
        of page-by-page loops — the simulator-level analogue of the
        scatter-gather the real backend performs.
        """
        arr = np.asarray(gpas, dtype=np.uint64)
        if arr.size == 0:
            return []
        breaks = np.nonzero(np.diff(arr) != PAGE_SIZE)[0] + 1
        runs = []
        start = 0
        for b in list(breaks) + [arr.size]:
            runs.append((int(arr[start]), b - start))
            start = b
        return runs
