"""Guest physical memory and GPA->HVA translation.

Firecracker maps the whole VM memory into its own address space, so every
guest physical address (GPA) corresponds to a host virtual address (HVA)
at a fixed offset.  The frontend serializes transfer matrices as arrays
of GPAs; the backend translates them to HVAs to reach the pages without
copying (Section 4.2 "Zero-copy Request Handling").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.config import PAGE_SIZE
from repro.errors import TranslationError
from repro.hardware.memory import MemoryRegion

#: Host virtual address at which guest physical page 0 is mapped.
HVA_BASE = 0x7F00_0000_0000


class GuestMemory:
    """The VM's physical address space plus a bump page allocator (the GPA
    space that §4.2's zero-copy translation resolves to HVAs).

    The allocator hands out contiguous page runs from a rolling arena;
    requests are synchronous, so pages can be recycled once the arena
    wraps (the guest driver reuses its DMA area the same way).
    """

    def __init__(self, size: int, arena_bytes: int = 512 << 20) -> None:
        self.size = size
        self.region = MemoryRegion(size, name="guest-ram")
        self._arena_start = 1 << 20  # leave the first MiB alone (BIOS area)
        self._arena_bytes = min(arena_bytes, size - self._arena_start)
        self._arena_cursor = 0
        # Long-lived plan reservations grow *downward* from the arena top;
        # the rolling bump allocator keeps the shrinking bottom part.
        self._reserve_floor = self._arena_start + self._arena_bytes
        self._free_reservations: Dict[int, List[int]] = {}

    # -- page allocation ------------------------------------------------------

    @property
    def _bump_limit(self) -> int:
        return self._reserve_floor - self._arena_start

    def alloc_pages(self, nr_pages: int) -> int:
        """Return the GPA of a fresh run of ``nr_pages`` contiguous pages."""
        need = nr_pages * PAGE_SIZE
        limit = self._bump_limit
        if need > limit:
            raise TranslationError(
                f"request for {nr_pages} pages exceeds the "
                f"{limit}-byte DMA arena"
            )
        if self._arena_cursor + need > limit:
            self._arena_cursor = 0  # wrap: previous requests have completed
        gpa = self._arena_start + self._arena_cursor
        self._arena_cursor += need
        return gpa

    def reserve_pages(self, nr_pages: int) -> int:
        """Claim a *stable* run of ``nr_pages`` pages for a compiled plan.

        Unlike :meth:`alloc_pages`, reserved runs are never recycled by
        the rolling arena — they stay valid for the plan's lifetime and
        return to a free list via :meth:`release_reservation`.  Runs that
        fit inside one backing extent are aligned so they never straddle
        an extent boundary (keeping the payload pinnable as one view).
        At most half of the arena may be reserved; beyond that the plan
        cache falls back to the naive path.
        """
        need = nr_pages * PAGE_SIZE
        free = self._free_reservations.get(need)
        if free:
            return free.pop()
        gpa = ((self._reserve_floor - need) // PAGE_SIZE) * PAGE_SIZE
        ext = self.region.extent_bytes
        if need <= ext:
            boundary = (gpa // ext) * ext
            if gpa + need > boundary + ext:
                gpa = boundary + ext - need
        if gpa < self._arena_start + self._arena_bytes // 2:
            raise TranslationError(
                f"reservation of {nr_pages} pages would shrink the DMA "
                "arena below half capacity"
            )
        self._reserve_floor = gpa
        return gpa

    def release_reservation(self, gpa: int, nr_pages: int) -> None:
        """Return a reserved run to the free list for same-size reuse."""
        self._free_reservations.setdefault(nr_pages * PAGE_SIZE, []).append(gpa)

    def pin_span(self, gpa: int, length: int) -> np.ndarray:
        """Writable view of guest bytes (see :meth:`MemoryRegion.pin_span`)."""
        return self.region.pin_span(gpa, length)

    # -- data access ------------------------------------------------------------

    def write(self, gpa: int, data: np.ndarray) -> None:
        self.region.write(gpa, data)

    def read(self, gpa: int, length: int) -> np.ndarray:
        return self.region.read(gpa, length)

    def read_into(self, gpa: int, out: np.ndarray) -> np.ndarray:
        """Allocation-free read into a caller-provided uint8 buffer."""
        return self.region.read_into(gpa, out)

    def gather_pages(self, gpas: np.ndarray, nbytes: int,
                     out: np.ndarray) -> np.ndarray:
        """Gather ``nbytes`` spread over the pages in ``gpas`` into ``out``.

        One bulk :meth:`MemoryRegion.read_into` per contiguous page run
        instead of a per-page Python loop — the simulator-level analogue
        of the batched scatter-gather the real backend performs on the
        translated HVA list (Section 4.2).  The tail page may be partial
        (``nbytes`` need not be page-aligned).
        """
        pos = 0
        for start_gpa, nr_pages in self.contiguous_runs(gpas):
            if pos >= nbytes:
                break
            span = min(nr_pages * PAGE_SIZE, nbytes - pos)
            self.region.read_into(start_gpa, out[pos:pos + span])
            pos += span
        return out

    def scatter_pages(self, gpas: np.ndarray, data: np.ndarray) -> None:
        """Inverse of :meth:`gather_pages`: spread ``data`` over the pages."""
        pos = 0
        nbytes = data.size
        for start_gpa, nr_pages in self.contiguous_runs(gpas):
            if pos >= nbytes:
                break
            span = min(nr_pages * PAGE_SIZE, nbytes - pos)
            self.region.write(start_gpa, data[pos:pos + span])
            pos += span

    # -- translation ---------------------------------------------------------------

    def gpa_to_hva(self, gpa: int) -> int:
        """Translate one GPA; raises on out-of-range addresses."""
        if not 0 <= gpa < self.size:
            raise TranslationError(
                f"GPA {gpa:#x} outside guest memory of {self.size} bytes"
            )
        return HVA_BASE + gpa

    def hva_to_gpa(self, hva: int) -> int:
        gpa = hva - HVA_BASE
        if not 0 <= gpa < self.size:
            raise TranslationError(f"HVA {hva:#x} does not map into the guest")
        return gpa

    def translate_pages(self, gpas: np.ndarray) -> np.ndarray:
        """Vectorized GPA->HVA for a page buffer (u64 array)."""
        arr = np.asarray(gpas, dtype=np.uint64)
        if arr.size and (int(arr.max()) >= self.size):
            bad = int(arr.max())
            raise TranslationError(
                f"GPA {bad:#x} outside guest memory of {self.size} bytes"
            )
        return arr + np.uint64(HVA_BASE)

    # -- contiguity helper ---------------------------------------------------------

    @staticmethod
    def contiguous_runs(gpas: np.ndarray) -> List[Tuple[int, int]]:
        """Split a page-GPA array into (start_gpa, nr_pages) contiguous runs.

        The backend uses this to gather page data with bulk copies instead
        of page-by-page loops — the simulator-level analogue of the
        scatter-gather the real backend performs.
        """
        arr = np.asarray(gpas, dtype=np.uint64)
        if arr.size == 0:
            return []
        if arr.size == 1:
            return [(int(arr[0]), 1)]
        breaks = np.nonzero(np.diff(arr) != PAGE_SIZE)[0] + 1
        if breaks.size == 0:
            # Common case: the bump allocator hands out one contiguous run.
            return [(int(arr[0]), arr.size)]
        starts = np.concatenate(([0], breaks))
        ends = np.concatenate((breaks, [arr.size]))
        run_gpas = arr[starts]
        return [(int(g), int(n)) for g, n in zip(run_gpas, ends - starts)]
