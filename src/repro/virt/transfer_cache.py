"""Content-aware transfer suppression (the PIM-CACHE-inspired extension).

The paper's W-rank write path is dominated by T-data (98.3% of the rust
path, Fig. 13), and iterative PrIM workloads rewrite largely-unchanged
buffers every iteration.  This module provides the shared data structure
behind the opt-in ``Optimization(cache=True)`` toggle (see
``docs/transfer_cache.md``):

- the **frontend digest index** remembers, per ``(dpu, space, offset)``
  extent, the 64-bit content digest of the last payload successfully
  written there.  A write whose extent digest matches is *suppressed* —
  either dropped from the batch buffer or turned into a ``SKIP`` extent
  on the wire;
- the **backend resident index** is the same structure on the host side,
  fed from the wire, used to validate ``SKIP`` extents before trusting
  them (a mismatch is a protocol violation, not a silent corruption).

The digest function itself lives in :mod:`repro.virt.digest` — it is
shared with the paging subsystem's deduplicating
:class:`~repro.paging.store.SwapStore`, and the two indexes must agree
byte-for-byte on what "same content" means (a swap-in replays exactly
the bytes this cache considers resident).  Collision safety comes from
*extent keying*: a digest is only ever compared against the digest
previously stored for the exact same ``(dpu, space, offset, size)``
extent, so a colliding payload at a first-touch extent can never be
suppressed.  Within one extent, a 2^-64 collision is the accepted
content-addressing trade; the paper's bit-exactness contract is kept by
leaving the default (cache-off) path untouched.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

# Re-exported for existing importers (frontend/backend/tests pull the
# digest from here); the definition moved to the shared module.
from repro.virt.digest import DIGEST_BYTES, content_digest

__all__ = [
    "DIGEST_BYTES", "content_digest", "ExtentDigestIndex",
    "MAX_RECORDS_PER_REGION",
]

#: Records kept per (dpu, space) region before LRU eviction.  PrIM apps
#: touch a handful of distinct extents per DPU per region; the bound only
#: exists so adversarial write patterns cannot grow the index unbounded.
MAX_RECORDS_PER_REGION = 128


class ExtentDigestIndex:
    """Per-extent content digests with overlap invalidation.

    Keys are ``(dpu_index, space)`` regions holding ``offset -> (size,
    digest)`` records, LRU-bounded per region.  ``space`` is the transfer
    matrix's symbol — the MRAM heap symbol for MRAM transfers, the WRAM
    variable name otherwise — so MRAM offsets and symbol-relative offsets
    can never alias each other.
    """

    def __init__(self, max_records_per_region: int = MAX_RECORDS_PER_REGION,
                 ) -> None:
        self.max_records_per_region = max_records_per_region
        self._regions: Dict[Tuple[int, str], Dict[int, Tuple[int, int]]] = {}
        #: Bumped whenever records are dropped (wholesale or pruned).
        #: Compiled transfer plans never bake digest *values* (SKIP
        #: digests are re-patched from the live probe on every replay),
        #: but dependents can watch this counter to observe suppression
        #: -state churn without walking the index.
        self.generation = 0

    # -- probing ------------------------------------------------------------

    def lookup(self, dpu_index: int, space: str, offset: int, size: int,
               digest: int) -> bool:
        """True iff the exact extent is recorded with the same digest.

        Hits require the full ``(offset, size, digest)`` triple to match:
        a first-touch extent — even one whose payload digest collides
        with a record at another offset — always misses.
        """
        region = self._regions.get((dpu_index, space))
        if region is None:
            return False
        record = region.get(offset)
        return record is not None and record == (size, digest)

    def has_record(self, dpu_index: int, space: str, offset: int) -> bool:
        """True iff any digest is recorded at this exact offset.

        A probe here *could* have hit; a first-touch probe cannot, so
        only these count toward the adaptive-bypass hit-rate window.
        """
        region = self._regions.get((dpu_index, space))
        return region is not None and offset in region

    def insert(self, dpu_index: int, space: str, offset: int, size: int,
               digest: int) -> None:
        """Record an extent digest, invalidating overlapping records.

        A write to ``[offset, offset+size)`` makes any record overlapping
        that span stale (partial overwrites change content without
        matching the old key), so overlaps are dropped before inserting.
        """
        key = (dpu_index, space)
        region = self._regions.setdefault(key, {})
        self._drop_overlaps(region, offset, size, keep=offset)
        # dict preserves insertion order; re-inserting moves to the back,
        # which is all the LRU bound needs.
        region.pop(offset, None)
        region[offset] = (size, digest)
        while len(region) > self.max_records_per_region:
            region.pop(next(iter(region)))

    # -- invalidation -------------------------------------------------------

    def prune(self, dpu_index: int, space: str, offset: int,
              size: int) -> int:
        """Drop records overlapping a dirtied extent; returns the count."""
        region = self._regions.get((dpu_index, space))
        if not region:
            return 0
        dropped = self._drop_overlaps(region, offset, size)
        if dropped:
            self.generation += 1
        return dropped

    def invalidate_all(self) -> int:
        """Drop every record; returns how many were held."""
        count = self.nr_records
        self._regions.clear()
        self.generation += 1
        return count

    @staticmethod
    def _drop_overlaps(region: Dict[int, Tuple[int, int]], offset: int,
                       size: int, keep: Optional[int] = None) -> int:
        if size <= 0:
            return 0
        stale = [off for off, (sz, _) in region.items()
                 if off != keep and off < offset + size and offset < off + sz]
        for off in stale:
            del region[off]
        return len(stale)

    # -- accounting ---------------------------------------------------------

    @property
    def nr_records(self) -> int:
        return sum(len(region) for region in self._regions.values())
