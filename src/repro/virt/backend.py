"""The vUPMEM backend: the device model inside Firecracker (Section 4.2).

For each request popped from the transferq the backend:

1. deserializes the transfer matrix from the descriptor chain;
2. translates the page GPAs to HVAs (8 translation threads);
3. accesses the guest pages directly — zero copy — and performs the
   operation on the physical rank through a performance-mode mapping;
4. for reads, deposits results straight into the guest's destination
   pages; finally the VMM injects the completion IRQ.

The data path (byte interleaving + memcpy) runs either the C/AVX-512
flavour or the Rust/AVX2 flavour ~3.43x slower, per the optimization
config — the Fig. 11 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import BACKEND_WORKER_THREADS, TRANSLATION_THREADS
from repro.errors import DeviceNotLinkedError, SerializationError
from repro.driver.driver import PerfModeMapping, UpmemDriver
from repro.hardware.clock import SimClock
from repro.hardware.timing import CostModel
from repro.observability import MetricsRegistry
from repro.observability.instruments import BackendInstruments
from repro.observability.spans import SpanRecorder
from repro.sdk.kernel import DpuProgram
from repro.sdk.transfer import DpuEntry, TransferMatrix, XferKind
from repro.virt.guest_memory import GuestMemory
from repro.virt.serialization import (
    RequestHeader,
    RequestKind,
    SerializedEntry,
    deserialize_request,
    gather_entry_data,
    scatter_entry_data,
)
from repro.virt.virtio import Descriptor


@dataclass
class BatchRecord:
    """One buffered small write replayed by the backend at flush time
    (§4.1: batching merges messages, not hardware operations)."""

    dpu_index: int
    offset: int
    data: np.ndarray


@dataclass
class BackendResult:
    """Outcome of processing one request (duration feeds the Fig. 13 steps)."""

    duration: float
    steps: Dict[str, float] = field(default_factory=dict)
    payload: Optional[object] = None


class VUpmemBackend:
    """One vUPMEM device's backend, bound to at most one physical rank
    (the §4.2 device model inside Firecracker)."""

    def __init__(self, device_id: str, driver: UpmemDriver,
                 guest_memory: GuestMemory, cost: CostModel,
                 rust_data_path: bool = False,
                 translation_threads: int = TRANSLATION_THREADS,
                 worker_threads: int = BACKEND_WORKER_THREADS,
                 metrics: Optional[MetricsRegistry] = None,
                 spans: Optional[SpanRecorder] = None) -> None:
        self.device_id = device_id
        self.driver = driver
        self.memory = guest_memory
        self.cost = cost
        self.rust_data_path = rust_data_path
        self.translation_threads = translation_threads
        self.worker_threads = worker_threads
        self.mapping: Optional[PerfModeMapping] = None
        self.requests_processed = 0
        #: Fault-injection seam (armed by :mod:`repro.faults`): when set,
        #: called as ``hook(backend)`` before any request work — a hung
        #: worker raises :class:`~repro.errors.BackendHungError` here,
        #: before side effects, so the frontend's retry is idempotent.
        self.fault_hook = None
        #: Live telemetry (translation/interleave timings, request counts
        #: labeled by the currently bound rank).
        self.obs = BackendInstruments(metrics or MetricsRegistry(),
                                      device_id)
        #: Trace context; shares the machine recorder when built by
        #: :class:`~repro.virt.firecracker.Firecracker`, making each
        #: backend span a child of the frontend request that caused it.
        self.spans = spans or SpanRecorder(SimClock())

    # -- rank linking -------------------------------------------------------

    @property
    def linked(self) -> bool:
        return self.mapping is not None

    def link_rank(self, rank_index: int) -> None:
        if self.mapping is not None:
            raise DeviceNotLinkedError(
                f"device {self.device_id} is already linked to rank "
                f"{self.mapping.rank.index}"
            )
        self.mapping = self.driver.mmap_rank(rank_index, self.device_id)

    def unlink(self) -> None:
        if self.mapping is not None:
            self.mapping.unmap()
            self.mapping = None

    def _require_mapping(self) -> PerfModeMapping:
        if self.mapping is None:
            raise DeviceNotLinkedError(
                f"device {self.device_id} has no backing rank; requests "
                "would be lost (Appendix A.1 'Device operations')"
            )
        return self.mapping

    # -- request processing -----------------------------------------------------

    def process(self, chain: List[Descriptor],
                program: Optional[DpuProgram] = None,
                batch_records: Optional[List[BatchRecord]] = None,
                ) -> BackendResult:
        """Handle one transferq request; returns timing and any payload."""
        if self.fault_hook is not None:
            try:
                self.fault_hook(self)
            except Exception:
                self.spans.mark_fault("backend_fault")
                raise
        self.requests_processed += 1
        header, entries = deserialize_request(chain, self.memory)
        # Rank bound at arrival time (RELEASE unlinks while handling).
        rank = str(self.mapping.rank.index) if self.mapping else "none"
        span = self.spans.begin("backend.request", "backend",
                                kind=header.kind.name.lower(),
                                rank=rank, device=self.device_id)
        try:
            result = self._handle(header, entries, program, batch_records)
        except BaseException:
            self.spans.end(span, error=True)
            raise
        self.spans.end(span, duration=result.duration)
        self.obs.request(header.kind.name.lower(), rank, result.duration)
        return result

    def _handle(self, header: RequestHeader,
                entries: List[SerializedEntry],
                program: Optional[DpuProgram],
                batch_records: Optional[List[BatchRecord]],
                ) -> BackendResult:
        kind = header.kind

        if kind is RequestKind.GET_CONFIG:
            return BackendResult(
                duration=self.cost.config_request_cost,
                payload=self.driver.config,
            )
        if kind is RequestKind.RELEASE:
            self.unlink()
            return BackendResult(duration=self.cost.backend_request_fixed)

        mapping = self._require_mapping()

        if kind is RequestKind.LOAD:
            if program is None:
                raise SerializationError("LOAD request without a program image")
            duration = (self.cost.backend_request_fixed
                        + mapping.load(program))
            return BackendResult(duration=duration)

        if kind is RequestKind.LAUNCH:
            duration = (self.cost.backend_request_fixed
                        + mapping.launch())
            return BackendResult(duration=duration)

        if kind is RequestKind.CI_OP:
            duration = (self.cost.backend_request_fixed
                        + mapping.ci_ops(header.count))
            return BackendResult(duration=duration)

        # Data transfers: deserialization + translation + zero-copy access.
        total_pages = sum(e.page_gpas.size for e in entries)
        deser_time = (self.cost.backend_request_fixed
                      + total_pages * self.cost.deserialize_per_page)
        # Threaded GPA->HVA translation saturates at 8 threads — the
        # paper "empirically validate[d] that using more than 8 threads
        # does not provide additional benefits" (Section 4.2), which
        # matches the 8-DPUs-per-chip memory parallelism.
        effective_threads = max(1, min(self.translation_threads, 8))
        translate_time = (self.cost.translate_fixed
                          + total_pages * self.cost.translate_per_page
                          / effective_threads)
        for entry in entries:
            self.memory.translate_pages(entry.page_gpas)  # bounds-checked
        self.obs.translation(total_pages, translate_time)
        self.spans.event("backend.deserialize", "backend", deser_time,
                         pages=total_pages)
        self.spans.event("backend.translate", "backend", translate_time,
                         pages=total_pages, threads=effective_threads)

        dispatch_time = self.cost.backend_dispatch
        self.spans.event("backend.dispatch", "backend", dispatch_time)

        if kind is RequestKind.WRITE_RANK:
            if batch_records is not None:
                tdata = self._replay_batch(mapping, header, batch_records)
            else:
                matrix = self._rebuild_matrix(header, entries, XferKind.TO_DPU)
                tdata = mapping.write(matrix, rust_interleave=self.rust_data_path)
            self.obs.interleave(tdata)
            steps = {"Deser": deser_time + translate_time, "T-data": tdata}
            duration = deser_time + translate_time + dispatch_time + tdata
            return BackendResult(duration=duration, steps=steps)

        if kind is RequestKind.READ_RANK:
            matrix = self._rebuild_matrix(header, entries, XferKind.FROM_DPU)
            buffers, tdata = mapping.read(
                matrix, rust_interleave=self.rust_data_path)
            for entry, buf in zip(entries, buffers):
                scatter_entry_data(entry, buf, self.memory)
            self.obs.interleave(tdata)
            steps = {"Deser": deser_time + translate_time, "T-data": tdata}
            duration = deser_time + translate_time + dispatch_time + tdata
            return BackendResult(duration=duration, steps=steps,
                                 payload=len(buffers))

        raise SerializationError(f"backend cannot handle request kind {kind}")

    # -- helpers ---------------------------------------------------------------------

    def _rebuild_matrix(self, header: RequestHeader,
                        entries: List[SerializedEntry],
                        kind: XferKind) -> TransferMatrix:
        dpu_entries = []
        for entry in entries:
            data = (gather_entry_data(entry, self.memory)
                    if kind is XferKind.TO_DPU else None)
            dpu_entries.append(DpuEntry(dpu_index=entry.dpu_index,
                                        size=entry.size, data=data))
        matrix = TransferMatrix(kind, header.symbol, header.offset, dpu_entries)
        matrix.validate()
        return matrix

    def _replay_batch(self, mapping: PerfModeMapping, header: RequestHeader,
                      records: List[BatchRecord]) -> float:
        """Apply buffered small writes one hardware operation each.

        Batching merges *messages*, not hardware operations: "this batching
        mechanism does not reduce the total data writing time" (Section
        4.1) — each record still pays the rank's per-operation cost.
        """
        total = 0.0
        for record in records:
            matrix = TransferMatrix(
                XferKind.TO_DPU, header.symbol, record.offset,
                [DpuEntry(dpu_index=record.dpu_index,
                          size=record.data.size, data=record.data)],
            )
            total += mapping.write(matrix, rust_interleave=self.rust_data_path)
        self.obs.batch_replay(len(records))
        return total
