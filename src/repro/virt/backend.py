"""The vUPMEM backend: the device model inside Firecracker (Section 4.2).

For each request popped from the transferq the backend:

1. deserializes the transfer matrix from the descriptor chain;
2. translates the page GPAs to HVAs (8 translation threads);
3. accesses the guest pages directly — zero copy — and performs the
   operation on the physical rank through a performance-mode mapping;
4. for reads, deposits results straight into the guest's destination
   pages; finally the VMM injects the completion IRQ.

The data path (byte interleaving + memcpy) runs either the C/AVX-512
flavour or the Rust/AVX2 flavour ~3.43x slower, per the optimization
config — the Fig. 11 ablation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import BACKEND_WORKER_THREADS, TRANSLATION_THREADS
from repro.errors import DeviceNotLinkedError, SerializationError
from repro.driver.driver import PerfModeMapping, UpmemDriver
from repro.hardware.bufpool import BufferPool
from repro.hardware.rank import WriteSpec
from repro.hardware.clock import SimClock
from repro.hardware.timing import CostModel
from repro.observability import MetricsRegistry
from repro.observability.instruments import BackendInstruments
from repro.observability.spans import SpanRecorder
from repro.sdk.kernel import DpuProgram
from repro.sdk.transfer import DpuEntry, Target, TransferMatrix, XferKind
from repro.virt.guest_memory import HVA_BASE, GuestMemory
from repro.virt.serialization import (
    RequestHeader,
    RequestKind,
    SerializedEntry,
    SkipExtent,
    deserialize_request,
    gather_entry_data,
    scatter_entry_data,
)
from repro.virt.transfer_cache import ExtentDigestIndex
from repro.virt.virtio import Descriptor


def _is_broadcast(matrix: TransferMatrix) -> bool:
    """True iff every entry carries the same payload (all-DPUs pattern)."""
    entries = matrix.entries
    if len(entries) < 2:
        return False
    first = entries[0]
    return all(e.size == first.size and np.array_equal(e.data, first.data)
               for e in entries[1:])


@dataclass
class BatchRecord:
    """One buffered small write replayed by the backend at flush time
    (§4.1: batching merges messages, not hardware operations)."""

    dpu_index: int
    offset: int
    data: np.ndarray


@dataclass
class BackendResult:
    """Outcome of processing one request (duration feeds the Fig. 13 steps)."""

    duration: float
    steps: Dict[str, float] = field(default_factory=dict)
    payload: Optional[object] = None


class TranslationCache:
    """TLB-style cache over GPA→HVA page-run translation (the XLB).

    The guest driver recycles its DMA arena, so the *same* page runs come
    back request after request (§4.2's translation threads re-resolve
    them every time).  A run is keyed by ``(first GPA, last GPA, page
    count)`` — the identity of an arithmetic page sequence produced by
    the frontend serializer — and a hit skips the vectorized bounds
    validation that a miss performs via
    :meth:`GuestMemory.translate_pages`.  LRU-bounded; purely a
    wall-clock optimization, the GPA+offset arithmetic is unchanged.
    """

    def __init__(self, memory: GuestMemory, capacity: int = 512) -> None:
        self.memory = memory
        self.capacity = capacity
        self._runs: "OrderedDict[Tuple[int, int, int], bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Bumped on every :meth:`invalidate` (unlink/relink).  Compiled
        #: transfer plans snapshot this after resolving their page runs;
        #: a matching generation lets a replay skip per-entry translation
        #: (the runs were bounds-validated when first resolved and the
        #: GPAs are frozen in the plan's reservations).
        self.generation = 0

    def translate(self, page_gpas: np.ndarray) -> np.ndarray:
        """GPA→HVA for one entry's page buffer; validates on miss only."""
        arr = np.asarray(page_gpas, dtype=np.uint64)
        if arr.size == 0:
            return arr + np.uint64(HVA_BASE)
        key = (int(arr[0]), int(arr[-1]), arr.size)
        runs = self._runs
        if key in runs:
            runs.move_to_end(key)
            self.hits += 1
            return arr + np.uint64(HVA_BASE)
        self.misses += 1
        hvas = self.memory.translate_pages(arr)  # bounds-checked
        runs[key] = True
        if len(runs) > self.capacity:
            runs.popitem(last=False)
        return hvas

    def invalidate(self) -> None:
        self._runs.clear()
        self.generation += 1


class VUpmemBackend:
    """One vUPMEM device's backend, bound to at most one physical rank
    (the §4.2 device model inside Firecracker)."""

    def __init__(self, device_id: str, driver: UpmemDriver,
                 guest_memory: GuestMemory, cost: CostModel,
                 rust_data_path: bool = False,
                 translation_threads: int = TRANSLATION_THREADS,
                 worker_threads: int = BACKEND_WORKER_THREADS,
                 metrics: Optional[MetricsRegistry] = None,
                 spans: Optional[SpanRecorder] = None,
                 cache_enabled: bool = False,
                 qos=None) -> None:
        self.device_id = device_id
        self.driver = driver
        self.memory = guest_memory
        self.cost = cost
        self.rust_data_path = rust_data_path
        self.translation_threads = translation_threads
        self.worker_threads = worker_threads
        #: Content-aware transfer cache (``Optimization(cache=True)``):
        #: resident-extent digests validating SKIPs, broadcast dedup,
        #: launch-time dirty collection.
        self.cache_enabled = cache_enabled
        #: The owning VM's :class:`~repro.qos.flow.QosFlow` (``docs/qos.md``):
        #: when set, data transfers pay a modeled bus share for co-resident
        #: demand and report their own usage to the arbiter.  ``None`` keeps
        #: the exact single-tenant timing path.
        self.qos = qos
        self.resident = ExtentDigestIndex()
        self.mapping: Optional[PerfModeMapping] = None
        self.requests_processed = 0
        #: Fault-injection seam (armed by :mod:`repro.faults`): when set,
        #: called as ``hook(backend)`` before any request work — a hung
        #: worker raises :class:`~repro.errors.BackendHungError` here,
        #: before side effects, so the frontend's retry is idempotent.
        self.fault_hook = None
        #: Trace context; shared with the frontend (assigned below) so
        #: request-latency exemplars point at the live trace.
        self.spans = spans or SpanRecorder(SimClock())
        #: Live telemetry (translation/interleave timings, request counts
        #: labeled by the currently bound rank).
        self.obs = BackendInstruments(metrics or MetricsRegistry(),
                                      device_id, spans=self.spans)
        #: TLB-style GPA→HVA run cache (hits skip bounds re-validation).
        self.xlb = TranslationCache(guest_memory)
        #: Scratch-buffer pool backing gathers and pooled rank reads;
        #: per-backend so chaos drills can assert loan stability.
        self.pool = BufferPool()
        #: (``self.spans`` is assigned before ``self.obs`` above: shares
        #: the machine recorder when built by
        #: :class:`~repro.virt.firecracker.Firecracker`, making each
        #: backend span a child of the frontend request that caused it.)

    # -- rank linking -------------------------------------------------------

    @property
    def linked(self) -> bool:
        return self.mapping is not None

    def link_rank(self, rank_index: int) -> None:
        if self.mapping is not None:
            raise DeviceNotLinkedError(
                f"device {self.device_id} is already linked to rank "
                f"{self.mapping.rank_index}"
            )
        self.mapping = self.driver.mmap_rank(rank_index, self.device_id)

    def unlink(self) -> None:
        if self.mapping is not None:
            self.mapping.unmap()
            self.mapping = None
            # The rank binding changed (release/migration/failover):
            # cached translation state must be re-resolved, and plans
            # holding this generation stop short-circuiting the XLB.
            self.xlb.invalidate()

    def _require_mapping(self) -> PerfModeMapping:
        if self.mapping is None:
            raise DeviceNotLinkedError(
                f"device {self.device_id} has no backing rank; requests "
                "would be lost (Appendix A.1 'Device operations')"
            )
        return self.mapping

    # -- request processing -----------------------------------------------------

    def process(self, chain: List[Descriptor],
                program: Optional[DpuProgram] = None,
                batch_records: Optional[List[BatchRecord]] = None,
                plan=None) -> BackendResult:
        """Handle one transferq request; returns timing and any payload.

        ``plan`` (a :class:`~repro.virt.plans.TransferPlan`, frontend
        side-channel for the shape it just replayed) skips the chain
        deserialization: the plan's entries/skips are the wire content
        by construction, and its payload views alias the guest pages the
        chain references.  Purely wall-clock — the modeled deserialize
        time is still charged in full.
        """
        if self.fault_hook is not None:
            try:
                self.fault_hook(self)
            except Exception:
                self.spans.mark_fault("backend_fault")
                raise
        self.requests_processed += 1
        if plan is not None:
            header, entries, skips = plan.header, plan.entries, plan.skips
        else:
            header, entries, skips = deserialize_request(chain, self.memory)
        # Rank bound at arrival time (RELEASE unlinks while handling).
        rank = str(self.mapping.rank_index) if self.mapping else "none"
        span = self.spans.begin("backend.request", "backend",
                                kind=header.kind.name.lower(),
                                rank=rank, device=self.device_id)
        try:
            result = self._handle(header, entries, skips, program,
                                  batch_records, plan)
        except BaseException:
            self.spans.end(span, error=True)
            raise
        self.spans.end(span, duration=result.duration)
        self.obs.request(header.kind.name.lower(), rank, result.duration)
        return result

    def _handle(self, header: RequestHeader,
                entries: List[SerializedEntry],
                skips: List[SkipExtent],
                program: Optional[DpuProgram],
                batch_records: Optional[List[BatchRecord]],
                plan=None) -> BackendResult:
        kind = header.kind

        if kind is RequestKind.GET_CONFIG:
            return BackendResult(
                duration=self.cost.config_request_cost,
                payload=self.driver.config,
            )
        if kind is RequestKind.RELEASE:
            self.unlink()
            self.resident.invalidate_all()
            return BackendResult(duration=self.cost.backend_request_fixed)

        mapping = self._require_mapping()

        if kind is RequestKind.LOAD:
            if program is None:
                raise SerializationError("LOAD request without a program image")
            # load_program rebuilds every symbol buffer; nothing resident
            # from the previous program can be trusted afterwards.
            self.resident.invalidate_all()
            duration = (self.cost.backend_request_fixed
                        + mapping.load(program))
            return BackendResult(duration=duration)

        if kind is RequestKind.LAUNCH:
            if self.cache_enabled:
                return self._launch_collecting_dirty(mapping)
            duration = (self.cost.backend_request_fixed
                        + mapping.launch())
            return BackendResult(duration=duration)

        if kind is RequestKind.CI_OP:
            duration = (self.cost.backend_request_fixed
                        + mapping.ci_ops(header.count))
            return BackendResult(duration=duration)

        # Data transfers: deserialization + translation + zero-copy access.
        if skips and not self.cache_enabled:
            raise SerializationError(
                "request carries SKIP extents but the transfer cache is off")
        for skip in skips:
            # A SKIP the resident index cannot vouch for is a protocol
            # violation — suppressing it silently would corrupt the DPU.
            if not self.resident.lookup(skip.dpu_index, header.symbol,
                                        header.offset, skip.size,
                                        skip.digest):
                raise SerializationError(
                    f"SKIP extent (dpu {skip.dpu_index}, symbol "
                    f"{header.symbol!r}, offset {header.offset}, size "
                    f"{skip.size}) is not resident on the backend")

        pool = self.pool
        reuse0 = pool.reuse_count

        # Non-batched writes rebuild the matrix up front so the payload
        # bytes are available for broadcast detection.  A plan already
        # holds a matrix whose payloads alias the (just-refreshed) guest
        # views, so the gather disappears entirely.
        matrix = None
        loaned: List[np.ndarray] = []
        broadcast = False
        if kind is RequestKind.WRITE_RANK and batch_records is None:
            if plan is not None:
                matrix = plan.matrix
            else:
                matrix, loaned = self._rebuild_matrix(
                    header, entries, XferKind.TO_DPU)
            broadcast = self.cache_enabled and _is_broadcast(matrix)

        try:
            total_pages = sum(e.page_gpas.size for e in entries)
            # Broadcast-identical payloads (the all-DPUs-same-buffer PrIM
            # pattern) are deserialized and translated once, then fanned
            # out — only the modeled time changes, every page is still
            # validated and written.
            modeled_pages = (entries[0].page_gpas.size if broadcast
                             else total_pages)
            deser_time = (self.cost.backend_request_fixed
                          + modeled_pages * self.cost.deserialize_per_page
                          + len(skips) * self.cost.cache_skip_lookup_cost)
            # Threaded GPA->HVA translation saturates at 8 threads — the
            # paper "empirically validate[d] that using more than 8 threads
            # does not provide additional benefits" (Section 4.2), which
            # matches the 8-DPUs-per-chip memory parallelism.
            effective_threads = max(1, min(self.translation_threads, 8))
            translate_time = (self.cost.translate_fixed
                              + modeled_pages * self.cost.translate_per_page
                              / effective_threads)
            xlb = self.xlb
            if plan is not None and plan.xlb_generation == xlb.generation:
                # Replay: the plan's page runs were resolved (and bounds-
                # validated) at this XLB generation, and its GPAs are
                # frozen reservations — count the hits without walking.
                xlb.hits += len(entries)
                self.obs.xlb(len(entries), 0)
            else:
                hits0, misses0 = xlb.hits, xlb.misses
                for entry in entries:
                    xlb.translate(entry.page_gpas)  # bounds-checked on miss
                self.obs.xlb(xlb.hits - hits0, xlb.misses - misses0)
                if plan is not None:
                    plan.xlb_generation = xlb.generation
            self.obs.translation(total_pages, translate_time)
            self.spans.event("backend.deserialize", "backend", deser_time,
                             pages=total_pages, broadcast=broadcast)
            self.spans.event("backend.translate", "backend", translate_time,
                             pages=total_pages, threads=effective_threads)

            dispatch_time = self.cost.backend_dispatch
            self.spans.event("backend.dispatch", "backend", dispatch_time)

            if kind is RequestKind.WRITE_RANK:
                if batch_records is not None:
                    tdata = self._replay_batch(mapping, header, batch_records)
                else:
                    pinned = (self._pinned_write_for(plan, mapping)
                              if plan is not None else None)
                    if pinned is not None:
                        tdata = mapping.write_pinned(
                            pinned, rust_interleave=self.rust_data_path)
                    else:
                        tdata = mapping.write(
                            matrix, rust_interleave=self.rust_data_path)
                    if self.cache_enabled:
                        for entry in entries:
                            if entry.digest:
                                self.resident.insert(
                                    entry.dpu_index, header.symbol,
                                    header.offset, entry.size, entry.digest)
                self.obs.bufpool_reuse(pool.reuse_count - reuse0)
                self.obs.interleave(tdata)
                tdata += self._bus_share(tdata)
                steps = {"Deser": deser_time + translate_time,
                         "T-data": tdata}
                duration = deser_time + translate_time + dispatch_time + tdata
                return BackendResult(duration=duration, steps=steps)

            if kind is RequestKind.READ_RANK:
                if plan is not None:
                    # MRAM reads deposit straight into the pinned guest
                    # destinations; WRAM symbol reads return fresh
                    # buffers that one slice copy lands in place.
                    if plan.direct_read:
                        buffers, tdata = mapping.read(
                            plan.matrix, rust_interleave=self.rust_data_path,
                            into=plan.read_views)
                    else:
                        buffers, tdata = mapping.read(
                            plan.matrix, rust_interleave=self.rust_data_path)
                        for view, buf in zip(plan.read_views, buffers):
                            view[...] = buf
                    self.obs.bufpool_reuse(pool.reuse_count - reuse0)
                    self.obs.interleave(tdata)
                    tdata += self._bus_share(tdata)
                    steps = {"Deser": deser_time + translate_time,
                             "T-data": tdata}
                    duration = (deser_time + translate_time + dispatch_time
                                + tdata)
                    return BackendResult(duration=duration, steps=steps,
                                         payload=len(buffers))
                matrix, _ = self._rebuild_matrix(header, entries,
                                                 XferKind.FROM_DPU)
                loaned_reads = [pool.acquire(e.size) for e in entries]
                try:
                    buffers, tdata = mapping.read(
                        matrix, rust_interleave=self.rust_data_path,
                        into=loaned_reads)
                    for entry, buf in zip(entries, buffers):
                        scatter_entry_data(entry, buf, self.memory)
                finally:
                    for buf in loaned_reads:
                        pool.release(buf)
                self.obs.bufpool_reuse(pool.reuse_count - reuse0)
                self.obs.interleave(tdata)
                tdata += self._bus_share(tdata)
                steps = {"Deser": deser_time + translate_time,
                         "T-data": tdata}
                duration = deser_time + translate_time + dispatch_time + tdata
                return BackendResult(duration=duration, steps=steps,
                                     payload=len(buffers))

            raise SerializationError(
                f"backend cannot handle request kind {kind}")
        finally:
            # Runs on injected transport faults too: pooled buffers must
            # never leak out of an aborted request.
            for buf in loaned:
                pool.release(buf)

    # -- helpers ---------------------------------------------------------------------

    def _bus_share(self, bus_seconds: float) -> float:
        """Modeled stretch of a bus occupancy from co-resident demand.

        Folded into the T-data step so per-step breakdowns show the
        contention as data-path elongation (the shape of Fig. 16), not
        a synthetic extra phase.  Also reports this device's own usage
        to the arbiter's demand window.
        """
        if self.qos is None:
            return 0.0
        return self.qos.on_bus(bus_seconds, self.driver.machine.clock.now)

    def _pinned_write_for(self, plan, mapping: PerfModeMapping):
        """The plan's resolved MRAM destination pairing, or ``None``.

        Pinning needs a stable rank binding, so only a plain
        :class:`~repro.driver.driver.PerfModeMapping` qualifies (paged
        mappings re-resolve their frame per operation).  The cached
        pairing is revalidated against the mapping's rank and every
        touched MRAM's backing-store generation (a reset or restore
        recycles extents); anything stale is re-resolved in place.
        """
        matrix = plan.matrix
        if (matrix is None or matrix.target is not Target.MRAM
                or type(mapping) is not PerfModeMapping):
            return None
        pinned = plan.pinned_write
        if (pinned is not None and pinned.rank is mapping.rank
                and pinned.valid()):
            return pinned
        plan.pinned_write = None
        try:
            specs = [WriteSpec(e.dpu_index, matrix.offset, e.data)
                     for e in matrix.entries]
            plan.pinned_write = mapping.rank.pin_mram_write(specs)
        except Exception:
            # Anything unpinnable (offline rank mid-drill, bounds) falls
            # back to the ordinary write, which surfaces the real error.
            return None
        return plan.pinned_write

    def _rebuild_matrix(self, header: RequestHeader,
                        entries: List[SerializedEntry],
                        kind: XferKind,
                        ) -> Tuple[TransferMatrix, List[np.ndarray]]:
        """Rebuild the transfer matrix, gathering write payloads into
        pooled scratch buffers.

        Returns ``(matrix, loaned)`` — the caller must release every
        buffer in ``loaned`` (in a ``finally``) once the rank operation
        has consumed the payloads.
        """
        dpu_entries = []
        loaned: List[np.ndarray] = []
        pool = self.pool
        try:
            for entry in entries:
                data = None
                if kind is XferKind.TO_DPU:
                    buf = pool.acquire(entry.size)
                    loaned.append(buf)
                    data = gather_entry_data(entry, self.memory, out=buf)
                dpu_entries.append(DpuEntry(dpu_index=entry.dpu_index,
                                            size=entry.size, data=data))
            matrix = TransferMatrix(kind, header.symbol, header.offset,
                                    dpu_entries)
            matrix.validate()
        except BaseException:
            for buf in loaned:
                pool.release(buf)
            raise
        return matrix, loaned

    def _launch_collecting_dirty(self, mapping: PerfModeMapping,
                                 ) -> BackendResult:
        """LAUNCH with kernel dirty-store collection (cache on only).

        Every DPU's dirty log is armed around the run; stores collected
        there invalidate overlapping resident digests and travel back to
        the frontend (in the payload) so its index stays honest too.
        """
        dpus = mapping.rank.dpus
        for dpu in dpus:
            dpu.dirty_log = []
        dirty: List[Tuple[int, str, int, int]] = []
        try:
            duration = (self.cost.backend_request_fixed
                        + mapping.launch())
        finally:
            # Disarm and prune even when the launch faults: the kernel
            # may have stored before raising.
            for dpu in dpus:
                log, dpu.dirty_log = dpu.dirty_log, None
                for space, offset, nbytes in log or ():
                    self.resident.prune(dpu.dpu_index, space, offset, nbytes)
                    dirty.append((dpu.dpu_index, space, offset, nbytes))
        return BackendResult(duration=duration, payload=dirty)

    def _replay_batch(self, mapping: PerfModeMapping, header: RequestHeader,
                      records: List[BatchRecord]) -> float:
        """Apply buffered small writes one hardware operation each.

        Batching merges *messages*, not hardware operations: "this batching
        mechanism does not reduce the total data writing time" (Section
        4.1) — each record still pays the rank's per-operation cost.

        With the transfer cache on, adjacent records carrying the *same*
        payload to the same offset on distinct DPUs (the broadcast
        argument-push pattern) are deduplicated into one multi-DPU rank
        operation: the content-aware exception to the rule above.
        """
        total = 0.0
        i = 0
        while i < len(records):
            run = [records[i]]
            if self.cache_enabled:
                j = i + 1
                while j < len(records):
                    nxt = records[j]
                    if (nxt.offset == run[0].offset
                            and nxt.data.size == run[0].data.size
                            and all(nxt.dpu_index != r.dpu_index
                                    for r in run)
                            and np.array_equal(nxt.data, run[0].data)):
                        run.append(nxt)
                        j += 1
                    else:
                        break
            matrix = TransferMatrix(
                XferKind.TO_DPU, header.symbol, run[0].offset,
                [DpuEntry(dpu_index=r.dpu_index,
                          size=r.data.size, data=r.data) for r in run],
            )
            total += mapping.write(matrix, rust_interleave=self.rust_data_path)
            i += len(run)
        self.obs.batch_replay(len(records))
        return total
