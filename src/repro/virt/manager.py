"""The vPIM Manager: host-wide rank arbitration (Section 3.5, Fig. 5).

One manager runs per host.  It maintains a *rank table* tracking every
rank's index, status-file location, assigned vUPMEM device and state:

- ``ALLO`` — allocated to a VM (or a native application);
- ``NAAV`` — not allocated, available;
- ``NANA`` — not allocated, not available: released and undergoing the
  memory reset that guarantees isolation between tenants;
- ``FAIL`` — quarantined after a detected hardware failure; never
  allocated until explicitly repaired, and blacklisted for good after
  repeated failures (``blacklist_threshold``).

Allocation policy (paper order):

1. a NANA rank previously used by the requester is handed back without
   reset (no leak: it is the requester's own data);
2. otherwise a NAAV rank, chosen round-robin;
3. otherwise, if NANA ranks exist, wait for the earliest reset to finish;
4. otherwise retry after an exponential backoff with jitter, a
   configurable number of times, then abandon the request.

Oversubscription tiering (§7 extensions, both off by default): with a
:class:`~repro.paging.config.PagingConfig`, the manager skips the
ladder entirely and hands out *virtual* ranks the
:class:`~repro.paging.pager.RankPager` demand-pages onto physical
frames at full speed (``docs/paging.md``); only once the pager's
virtual capacity is exhausted does the ladder above run, with
``oversubscription=True``'s 20x-derated emulated ranks as the last
resort before backoff.

Releases are *not* signalled by VMs: a dedicated observer watches the
driver's sysfs status files, so native host applications and VMs coexist
without modification (requirement R3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.config import MANAGER_POOL_THREADS
from repro.errors import DriverError, ManagerError
from repro.driver.driver import UpmemDriver
from repro.hardware.clock import SimClock
from repro.hardware.machine import Machine
from repro.hardware.rank import RankHealth
from repro.hardware.timing import CostModel
from repro.observability.instruments import ManagerInstruments

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.paging.config import PagingConfig


class RankState(enum.Enum):
    """Rank lifecycle states of the manager's rank table (§3.5, Fig. 5)."""

    ALLO = "ALLO"   #: in use
    NAAV = "NAAV"   #: not allocated, available
    NANA = "NANA"   #: not allocated, not available (reset in progress)
    FAIL = "FAIL"   #: quarantined after a hardware failure


@dataclass
class RankRecord:
    """One row of the manager's rank table (Fig. 5: index, status file,
    state, assigned device)."""

    rank_index: int
    status_file: str
    state: RankState = RankState.NAAV
    assigned_device: Optional[str] = None
    last_owner: Optional[str] = None
    reset_done_at: float = 0.0
    #: Lifetime failure count; at ``blacklist_threshold`` the rank is
    #: refused repair and stays FAIL for good.
    fault_count: int = 0
    failed_at: float = 0.0


@dataclass
class ManagerStats:
    """Cumulative manager counters backing the §4.2 overhead discussion."""

    allocations: int = 0
    nana_reuses: int = 0
    resets: int = 0
    waits: int = 0
    abandoned: int = 0
    emulated_allocations: int = 0
    paged_allocations: int = 0
    failures: int = 0
    repairs: int = 0
    retries_exhausted: int = 0


class Manager:
    """The userspace manager daemon (§3.5: one per host, arbitrating ranks
    between VMs and native applications)."""

    #: Selectable NAAV-allocation policies.  The paper's prototype uses
    #: round-robin over the rank table; ``first_fit`` always picks the
    #: lowest free index (densest packing, lets high ranks idle), and
    #: ``coldest`` picks the rank that has been free the longest
    #: (wear/thermal levelling across DIMMs).
    POLICIES = ("round_robin", "first_fit", "coldest")

    def __init__(self, machine: Machine, driver: UpmemDriver,
                 pool_threads: int = MANAGER_POOL_THREADS,
                 max_attempts: int = 5,
                 oversubscription: bool = False,
                 emulation_slowdown: float = 20.0,
                 paging: Optional["PagingConfig"] = None,
                 policy: str = "round_robin",
                 blacklist_threshold: int = 3,
                 backoff_factor: float = 2.0,
                 backoff_jitter: float = 0.1,
                 backoff_seed: int = 0) -> None:
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown allocation policy {policy!r}; "
                f"choose from {self.POLICIES}"
            )
        self.machine = machine
        self.driver = driver
        self.clock: SimClock = machine.clock
        self.cost: CostModel = machine.cost
        self.pool_threads = pool_threads
        self.max_attempts = max_attempts
        self.policy = policy
        self.blacklist_threshold = blacklist_threshold
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        #: Seeded jitter stream: retries desynchronize without breaking
        #: the simulation's run-to-run determinism.
        self._backoff_rng = np.random.default_rng(backoff_seed)
        self.stats = ManagerStats()
        #: Live telemetry (shares the machine registry): state transitions,
        #: allocation outcomes/waits per policy and the rank-table gauge.
        self.obs = ManagerInstruments(machine.metrics, policy=policy)
        self._rr_cursor = 0
        self._freed_at: Dict[int, float] = {}
        #: Section 7 extension: hand out software-emulated ranks when the
        #: physical ones are exhausted, at reduced performance.
        self.oversubscription = oversubscription
        self.emulated_pool = None
        if oversubscription:
            from repro.virt.emulation import EmulatedRankPool
            self.emulated_pool = EmulatedRankPool(machine,
                                                  slowdown=emulation_slowdown)
            driver.emulated_pool = self.emulated_pool
        #: §7 demand paging (``docs/paging.md``): when configured, VM
        #: allocations become virtual ranks the pager time-multiplexes
        #: over the physical frames at full speed — the tier *above*
        #: emulated ranks.  ``None`` (the default) models no paging.
        self.pager = None
        if paging is not None:
            from repro.paging.pager import RankPager
            self.pager = RankPager(self, paging)
            driver.pager = self.pager
        self.rank_table: Dict[int, RankRecord] = {
            rank.index: RankRecord(
                rank_index=rank.index,
                status_file=driver.sysfs.rank_status_path(rank.index),
            )
            for rank in machine.ranks
        }
        driver.sysfs.subscribe(self._on_sysfs_write)
        self._refresh_rank_gauge()

    def _transition(self, record: RankRecord, to_state: RankState) -> None:
        """Move ``record`` to ``to_state``, accounting the edge."""
        self.obs.transition(record.state.value.lower(), to_state.value.lower())
        record.state = to_state
        self._refresh_rank_gauge()

    def _refresh_rank_gauge(self) -> None:
        counts = {state.value.lower(): 0 for state in RankState}
        for record in self.rank_table.values():
            counts[record.state.value.lower()] += 1
        self.obs.set_rank_states(counts)

    # -- observer thread --------------------------------------------------------

    def _on_sysfs_write(self, path: str, content: str) -> None:
        """The observer: react to driver status-file changes."""
        for record in self.rank_table.values():
            if record.status_file != path:
                continue
            if content.startswith("busy"):
                # A native application (or a backend we told to map) took
                # the rank; record it so VMs cannot double-allocate.
                if record.state is not RankState.ALLO:
                    self._transition(record, RankState.ALLO)
                    owner = content.split(":", 1)[1] if ":" in content else ""
                    record.assigned_device = owner or record.assigned_device
            else:
                if record.state is RankState.ALLO:
                    self._begin_release(record)
            return

    def _begin_release(self, record: RankRecord) -> None:
        """Rank released: enter NANA and schedule the isolation reset."""
        if (self.pager is not None
                and self.pager.is_virtual(record.rank_index)):
            # Virtual ranks are destroyed like emulated ones: the pager
            # discards the swap-store state and frees the frame; any
            # frame leaving the pager's pool re-enters NAAV only through
            # the normal isolation reset (see RankPager.release).
            self.pager.release(record.rank_index)
            self.obs.transition(record.state.value.lower(), "destroyed")
            del self.rank_table[record.rank_index]
            self._refresh_rank_gauge()
            return
        if (self.emulated_pool is not None
                and self.emulated_pool.is_emulated(record.rank_index)):
            # Emulated ranks are destroyed, not reset: the host memory is
            # simply freed, and nothing remains to leak.
            self.emulated_pool.destroy(record.rank_index)
            self.obs.transition(record.state.value.lower(), "destroyed")
            del self.rank_table[record.rank_index]
            self._refresh_rank_gauge()
            return
        record.last_owner = record.assigned_device
        record.assigned_device = None
        self._transition(record, RankState.NANA)
        # Detection latency of the observer plus the memset of the rank.
        record.reset_done_at = (self.clock.now
                                + self.cost.manager_observe_period
                                + self.cost.manager_reset)
        self.stats.resets += 1
        self.obs.reset_scheduled()

    def _settle(self, record: RankRecord) -> None:
        """Complete a finished reset: NANA -> NAAV with zeroed memory."""
        if (record.state is RankState.NANA
                and self.clock.now >= record.reset_done_at):
            self.machine.rank(record.rank_index).reset()
            self._transition(record, RankState.NAAV)
            self._freed_at[record.rank_index] = record.reset_done_at

    # -- allocation ---------------------------------------------------------------

    def allocate(self, requester: str) -> int:
        """Allocate a rank to ``requester`` (a vUPMEM device id).

        Advances the simulated clock by the allocation cost (and any wait
        for pending resets).  Returns the physical rank index; raises
        :class:`ManagerError` after ``max_attempts`` fruitless retries.
        """
        arrived_at = self.clock.now

        # 0. Demand paging (§7 extension, docs/paging.md): every VM
        # allocation becomes a virtual rank while the pager has virtual
        # capacity.  The pager binds free physical frames first, so an
        # under-committed host still runs at full speed with zero swaps
        # — and because *all* tenants hold evictable vranks, any of
        # them can be a victim once frames run short.
        if self.pager is not None and self.pager.has_capacity():
            vrank = self.pager.create(requester)
            self.rank_table[vrank] = RankRecord(
                rank_index=vrank,
                status_file=self.driver.sysfs.rank_status_path(vrank),
                state=RankState.ALLO,
                assigned_device=requester,
                last_owner=requester,
            )
            self.obs.allocation("paged", self.clock.now - arrived_at)
            self._refresh_rank_gauge()
            self.clock.advance(self.cost.manager_alloc)
            self.stats.allocations += 1
            self.stats.paged_allocations += 1
            return vrank

        for _attempt in range(self.max_attempts):
            for record in self.rank_table.values():
                self._settle(record)

            # 1. NANA rank previously used by this requester: no reset.
            for record in self.rank_table.values():
                if (record.state is RankState.NANA
                        and record.last_owner == requester):
                    self._transition(record, RankState.ALLO)
                    record.assigned_device = requester
                    self.obs.allocation("nana_reuse",
                                        self.clock.now - arrived_at)
                    self.clock.advance(self.cost.manager_alloc)
                    self.stats.allocations += 1
                    self.stats.nana_reuses += 1
                    return record.rank_index

            # 2. A NAAV rank, by the configured policy.
            idx = self._pick_naav()
            if idx is not None:
                record = self.rank_table[idx]
                self._transition(record, RankState.ALLO)
                record.assigned_device = requester
                record.last_owner = requester
                self.obs.allocation("naav", self.clock.now - arrived_at)
                self.clock.advance(self.cost.manager_alloc)
                self.stats.allocations += 1
                return record.rank_index

            # 3. Wait for the earliest NANA reset to complete.
            nana = [r for r in self.rank_table.values()
                    if r.state is RankState.NANA]
            if nana:
                earliest = min(r.reset_done_at for r in nana)
                self.clock.advance_to(earliest)
                self.stats.waits += 1
                continue

            # 4. Oversubscription (Section 7 extension): no physical rank
            # will free up; hand out an emulated one at reduced speed.
            if self.emulated_pool is not None:
                rank = self.emulated_pool.create()
                self.rank_table[rank.index] = RankRecord(
                    rank_index=rank.index,
                    status_file=self.driver.sysfs.rank_status_path(rank.index),
                    state=RankState.ALLO,
                    assigned_device=requester,
                    last_owner=requester,
                )
                # No sysfs write yet: the backend's claim will mark it
                # busy; a "free" write would look like an instant release.
                self.obs.allocation("emulated", self.clock.now - arrived_at)
                self._refresh_rank_gauge()
                self.clock.advance(self.cost.manager_alloc)
                self.stats.allocations += 1
                self.stats.emulated_allocations += 1
                return rank.index

            # 5. Nothing at all: exponential backoff with jitter — a
            # herd of waiting requesters spreads out instead of
            # re-polling the rank table in lockstep.
            delay = min(self.cost.manager_retry_timeout
                        * self.backoff_factor ** _attempt,
                        self.cost.manager_retry_max)
            delay *= 1.0 + self.backoff_jitter * float(
                self._backoff_rng.random())
            self.clock.advance(delay)
            self.stats.waits += 1

        self.stats.abandoned += 1
        self.stats.retries_exhausted += 1
        self.obs.allocation("abandoned", self.clock.now - arrived_at)
        self.obs.retries_exhausted()
        raise ManagerError(
            f"no rank available for {requester!r} after "
            f"{self.max_attempts} attempts"
        )

    def _pick_naav(self) -> Optional[int]:
        """Choose an available rank per the allocation policy."""
        free = [idx for idx, rec in sorted(self.rank_table.items())
                if rec.state is RankState.NAAV]
        if not free:
            return None
        if self.policy == "first_fit":
            return free[0]
        if self.policy == "coldest":
            return min(free, key=lambda idx: self._freed_at.get(idx, 0.0))
        # round_robin (the paper's prototype behaviour)
        indices = sorted(self.rank_table)
        for step in range(len(indices)):
            idx = indices[(self._rr_cursor + step) % len(indices)]
            if idx in free:
                self._rr_cursor = (indices.index(idx) + 1) % len(indices)
                return idx
        return None

    # -- frame pool (demand paging, docs/paging.md) --------------------------------

    def rank_capacity(self) -> int:
        """Allocatable ranks this host advertises.

        Physical count normally; the pager's virtual capacity (physical
        x overcommit ratio) when paging is configured.  VM sizing
        (:meth:`~repro.virt.firecracker.VmConfig.validate`) and cluster
        placement both size against this.
        """
        if self.pager is not None:
            return self.pager.virtual_capacity
        return self.machine.nr_ranks

    def acquire_frame(self, wait: bool = False) -> Optional[int]:
        """Claim one NAAV rank as a pager frame; None if none is free.

        The claim goes through the driver, so sysfs shows the frame busy
        under the ``"pager"`` owner and the observer moves the record to
        ALLO — frames stay first-class rows of the rank table.  With
        ``wait`` the call sits out the earliest pending NANA reset
        (advancing the clock) before giving up.
        """
        for record in self.rank_table.values():
            self._settle(record)
        idx = self._pick_naav()
        if idx is None and wait:
            nana = [r for r in self.rank_table.values()
                    if r.state is RankState.NANA]
            if nana:
                self.clock.advance_to(min(r.reset_done_at for r in nana))
                self.stats.waits += 1
                for record in self.rank_table.values():
                    self._settle(record)
                idx = self._pick_naav()
        if idx is None:
            return None
        self.driver.claim_rank(idx, "pager")
        self.rank_table[idx].last_owner = "pager"
        return idx

    def return_frame(self, rank_index: int) -> None:
        """Give a pager frame back to the general pool.

        A plain driver release: the observer walks the rank through NANA
        and the full isolation reset, so nothing a pager tenant wrote
        can leak to the next (non-pager) owner.
        """
        self.driver.release_rank(rank_index, "pager")

    # -- failure handling (health tracking + quarantine) ---------------------------

    def mark_failed(self, rank_index: int) -> None:
        """Quarantine a rank after a detected hardware failure.

        Idempotent; unknown indices (e.g. already-destroyed emulated
        ranks) are ignored so unwind paths can call this untidily.
        """
        record = self.rank_table.get(rank_index)
        if record is None or record.state is RankState.FAIL:
            return
        record.fault_count += 1
        record.failed_at = self.clock.now
        record.assigned_device = None
        # The owner's data on a failed rank is untrustworthy: forget the
        # owner so the NANA fast path can never hand it back unreset.
        record.last_owner = None
        self._transition(record, RankState.FAIL)
        self.stats.failures += 1

    def is_blacklisted(self, rank_index: int) -> bool:
        """True once a rank has failed ``blacklist_threshold`` times."""
        record = self.rank_table.get(rank_index)
        return (record is not None
                and record.fault_count >= self.blacklist_threshold)

    def repair(self, rank_index: int) -> float:
        """Return a FAIL rank to service through the isolation reset.

        Restores the hardware's health, then walks the rank through
        NANA so it re-enters the pool only after a full memory reset —
        failed ranks may hold arbitrary garbage.  Refuses blacklisted
        ranks.  Returns the modeled reset duration.
        """
        record = self.rank_table.get(rank_index)
        if record is None or record.state is not RankState.FAIL:
            state = record.state.value if record else "absent"
            raise ManagerError(
                f"rank {rank_index} is {state}, not FAIL; nothing to repair")
        if self.is_blacklisted(rank_index):
            raise ManagerError(
                f"rank {rank_index} failed {record.fault_count} times "
                f"(threshold {self.blacklist_threshold}); blacklisted")
        try:
            rank = self.driver.resolve_rank(rank_index)
        except DriverError:
            rank = None
        if rank is not None:
            rank.health = RankHealth.OK
            rank.degradation = 1.0
        self._transition(record, RankState.NANA)
        record.reset_done_at = self.clock.now + self.cost.manager_reset
        self.stats.repairs += 1
        self.stats.resets += 1
        self.obs.reset_scheduled()
        return self.cost.manager_reset

    def failed_ranks(self) -> List[int]:
        """Indices currently quarantined (FAIL), sorted."""
        return [idx for idx, rec in sorted(self.rank_table.items())
                if rec.state is RankState.FAIL]

    # -- modeled resource usage (Section 4.2 "Manager's Overhead") -----------------

    def idle_cpu_utilization(self) -> float:
        """Idle manager CPU share, dominated by the observer thread."""
        return 0.40

    def reset_cpu_utilization(self, concurrent_resets: int = 1) -> float:
        """CPU share while resetting; memset of 8 GB peaks at ~92%."""
        if concurrent_resets <= 0:
            return self.idle_cpu_utilization()
        return min(0.92, 0.40 + 0.065 * concurrent_resets * 8)

    # -- introspection ------------------------------------------------------------

    def states(self) -> Dict[int, RankState]:
        for record in self.rank_table.values():
            self._settle(record)
        return {idx: rec.state for idx, rec in self.rank_table.items()}

    def available_ranks(self) -> List[int]:
        return [idx for idx, state in self.states().items()
                if state is RankState.NAAV]
